//! # HILOS — near-storage processing for offline inference of long-context LLMs
//!
//! This is the umbrella crate of the HILOS reproduction (Jang et al.,
//! ASPLOS 2026). It re-exports every subsystem crate under a single
//! namespace so that examples and downstream users can depend on one crate.
//!
//! The repository contains:
//!
//! * [`sim`] — deterministic flow-level discrete-event simulator (the
//!   hardware substrate every experiment runs on),
//! * [`interconnect`] — PCIe topology model (Fig. 3 of the paper),
//! * [`storage`] — SSD/NAND flash model with endurance accounting,
//! * [`accel`] — the attention accelerator: bit-faithful functional kernel
//!   (two-pass softmax, online transpose, GQA) plus cycle/resource models,
//! * [`llm`] — model configurations (Table 2) and workloads,
//! * [`platform`] — device catalog and system builders,
//! * [`core`] — the HILOS framework itself: attention-near-storage,
//!   cooperative X-cache, delayed KV-cache writeback,
//! * [`baselines`] — FlexGen-, DeepSpeed-, vLLM- and InstAttention-style
//!   comparison systems,
//! * [`metrics`] — energy, cost-efficiency and endurance models,
//! * [`trace`] — deterministic request-lifecycle event log with latency
//!   attribution and Perfetto export.
//!
//! # Quick start
//!
//! ```
//! use hilos::core::{HilosConfig, HilosSystem};
//! use hilos::llm::presets;
//! use hilos::platform::SystemSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = presets::opt_30b();
//! let config = HilosConfig::new(8).with_spill_interval(16);
//! let system = HilosSystem::new(&SystemSpec::a100_server(), &model, &config)?;
//! let report = system.run_decode(4, 16 * 1024, 4)?;
//! assert!(report.tokens_per_second() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use hilos_accel as accel;
pub use hilos_baselines as baselines;
pub use hilos_core as core;
pub use hilos_interconnect as interconnect;
pub use hilos_llm as llm;
pub use hilos_metrics as metrics;
pub use hilos_platform as platform;
pub use hilos_sim as sim;
pub use hilos_storage as storage;
pub use hilos_trace as trace;
