//! Cluster-serving integration tests: the multi-deployment router layer
//! end to end — golden 1-deployment equivalence (the cluster adds no
//! simulation drift), the heterogeneous routing-policy ordering, and
//! cross-deployment re-dispatch of preempted requests.

use hilos::core::cluster::{
    ClusterConfig, ClusterEngine, ClusterSnapshot, JoinShortestQueue, LedgerPressure, RoundRobin,
    RouteRequest, RoutingPolicy,
};
use hilos::core::{
    ChunkMode, ClusterReport, HilosConfig, HilosSystem, PriorityPreempt, ServeConfig, ServeEngine,
};
use hilos::llm::{presets, DeploymentId, Request, TraceConfig};
use hilos::platform::SystemSpec;

fn hilos(n: usize) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(1)
}

use hilos::core::outcome_lifecycle_fnv as outcome_hash;

/// Golden equivalence: a 1-deployment cluster — under *any* routing
/// policy — serves the seeded Azure-mix trace bit-identically to the
/// non-cluster engine. The FNV hash over every outcome's lifecycle
/// timestamps is the exact constant `tests/serving.rs` pins for the
/// pre-cluster engine, so the whole chain (PR 2 hard-wired loop → PR 3
/// policy API → this router layer) is provably drift-free.
#[test]
fn single_deployment_cluster_is_bit_identical_to_serve_engine() {
    let trace = TraceConfig::azure_mix(512, 42).generate().unwrap();
    let mut eng = ServeEngine::new(hilos(8), ServeConfig::new(16)).unwrap();
    let direct = eng.run_trace(&trace).unwrap();
    assert_eq!(outcome_hash(&direct.outcomes), 0x988a698736a9c8fe, "pre-cluster pin drifted");

    for routing in [
        Box::new(RoundRobin::new()) as Box<dyn RoutingPolicy>,
        Box::new(JoinShortestQueue),
        Box::new(LedgerPressure::new()),
    ] {
        let name = routing.name();
        let mut cluster = ClusterEngine::new(
            vec![ServeEngine::new(hilos(8), ServeConfig::new(16)).unwrap()],
            routing,
        );
        assert_eq!(cluster.deployment_count(), 1);
        let report = cluster.run_trace(&trace).unwrap();
        assert_eq!(report.routing, name);
        assert_eq!(report.deployments.len(), 1);
        assert_eq!(report.deployments[0], direct, "{name}: cluster layer drifted");
        assert_eq!(outcome_hash(&report.deployments[0].outcomes), 0x988a698736a9c8fe, "{name}");
        assert_eq!(report.dispatched, vec![512]);
        assert_eq!(report.redispatches, 0, "{name}: nowhere else to re-dispatch");
    }
}

/// The seeded contended heterogeneous cluster of the acceptance
/// criteria: three deployments with distinct device counts and
/// degradations, arrivals well above the weakest deployment's service
/// rate. Routing quality decides who meets their SLO.
fn heterogeneous_deployments() -> Vec<ServeEngine> {
    vec![
        // A healthy 8-device array.
        ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
        // A mid-size array with one half-degraded device.
        ServeEngine::new(hilos(6).with_degraded_device(1, 0.5), ServeConfig::new(8)).unwrap(),
        // A small array with one severely degraded device.
        ServeEngine::new(hilos(4).with_degraded_device(0, 0.25), ServeConfig::new(8)).unwrap(),
    ]
}

fn contended_trace() -> Vec<Request> {
    TraceConfig { mean_interarrival_steps: 10, ..TraceConfig::azure_mix(384, 42) }
        .generate()
        .unwrap()
}

fn run_routing(routing: Box<dyn RoutingPolicy>) -> ClusterReport {
    let mut cluster = ClusterEngine::new(heterogeneous_deployments(), routing);
    cluster.run_trace(&contended_trace()).unwrap()
}

/// Acceptance: on the seeded contended trace over 3 heterogeneous
/// deployments, pressure-aware routing beats capacity-blind round-robin
/// on SLO goodput (the margin is recorded in `BENCH_cluster.json` and
/// gated exactly in CI, together with `ledger-pressure ≥
/// join-shortest-queue`). Every request completes exactly once under
/// every policy.
#[test]
fn ledger_pressure_routing_beats_round_robin_on_goodput() {
    let rr = run_routing(Box::new(RoundRobin::new()));
    let jsq = run_routing(Box::new(JoinShortestQueue));
    let lp = run_routing(Box::new(LedgerPressure::new()));

    for r in [&rr, &jsq, &lp] {
        assert_eq!(r.completed() + r.rejected_len(), 384, "{}: lost requests", r.routing);
        assert_eq!(r.rejected_len(), 0, "{}: nothing here is unplaceable", r.routing);
        // Every deployment served something (no policy collapses to one).
        for (d, dep) in r.deployments.iter().enumerate() {
            assert!(!dep.outcomes.is_empty(), "{}: deployment {d} served nothing", r.routing);
        }
        // Exactly-once: the union of outcome ids is the full trace.
        let mut ids: Vec<u64> = r.outcomes().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 384, "{}: duplicated or lost ids", r.routing);
    }

    assert!(
        lp.slo_token_goodput() > rr.slo_token_goodput(),
        "ledger-pressure {} must beat round-robin {} on SLO goodput",
        lp.slo_token_goodput(),
        rr.slo_token_goodput()
    );
    assert!(
        jsq.slo_token_goodput() >= rr.slo_token_goodput(),
        "join-shortest-queue {} must not lose to round-robin {}",
        jsq.slo_token_goodput(),
        rr.slo_token_goodput()
    );
    assert!(
        lp.slo_token_goodput() >= jsq.slo_token_goodput(),
        "ledger-pressure {} must not lose to join-shortest-queue {}",
        lp.slo_token_goodput(),
        jsq.slo_token_goodput()
    );

    // Round-robin overloads the weak deployments; pressure-aware routing
    // shifts dispatch toward the healthy 8-device array.
    assert!(
        lp.dispatched[0] > rr.dispatched[0],
        "pressure routing should favor the big healthy deployment: {:?} vs {:?}",
        lp.dispatched,
        rr.dispatched
    );

    // Deterministic: the whole cluster simulation reproduces bit for bit.
    let again = run_routing(Box::new(LedgerPressure::new()));
    assert_eq!(lp, again, "same seed must route and serve bit-identically");
}

/// Cross-deployment re-dispatch: preempted victims are offered back to
/// the router and may finish on a different deployment than the one that
/// preempted them — with their generated progress retained.
#[test]
fn preempted_requests_redispatch_across_deployments_and_complete() {
    let trace = TraceConfig { mean_interarrival_steps: 30, ..TraceConfig::azure_mix(128, 33) }
        .generate()
        .unwrap();
    let build = || {
        vec![
            ServeEngine::with_policy(
                hilos(4),
                ServeConfig::new(3),
                Box::new(PriorityPreempt::new()),
            )
            .unwrap(),
            ServeEngine::with_policy(
                hilos(4).with_degraded_device(0, 0.5),
                ServeConfig::new(3),
                Box::new(PriorityPreempt::new()),
            )
            .unwrap(),
        ]
    };
    let mut cluster = ClusterEngine::new(build(), Box::new(RoundRobin::new()));
    let report = cluster.run_trace(&trace).unwrap();
    assert!(report.preemptions() > 0, "the contended cluster must preempt");
    assert!(report.redispatches > 0, "preempted victims must cross deployments");
    assert_eq!(report.completed(), 128, "every preempted request still completes");
    // Ledger conservation on every deployment, even across re-dispatch.
    for eng in cluster.deployments() {
        assert_eq!(eng.ledger().live_requests(), 0, "leaked shard allocations");
    }
    // Every lifecycle stays causally ordered with non-negative
    // latencies, even for requests whose timestamps crossed clock
    // domains.
    for o in report.outcomes() {
        assert!(o.first_token_s <= o.finished_s, "{o:?}");
        assert!(o.ttft() >= 0.0 && o.itl() >= 0.0 && o.e2e() >= 0.0, "{o:?}");
        assert!(o.output_len > 0, "retained progress must survive the move: {o:?}");
    }
    // Deterministic under preemption + re-dispatch too.
    let mut cluster2 = ClusterEngine::new(build(), Box::new(RoundRobin::new()));
    assert_eq!(report, cluster2.run_trace(&trace).unwrap());
}

/// Chunked prefill through the cluster layer: a 1-deployment chunked
/// cluster is bit-identical to the chunked engine driven directly (the
/// router adds no drift to the token-budgeted step either), and a
/// heterogeneous chunked cluster completes everything while aggregating
/// the prefill-interference breakdown across deployments.
#[test]
fn chunked_cluster_is_drift_free_and_aggregates_breakdowns() {
    let mut cfg = TraceConfig::long_context(96, 42, 4).with_mean_interarrival(30);
    cfg.class_weights = [2, 4, 4];
    let trace = cfg.generate().unwrap();
    let chunked_config = || ServeConfig::new(8).with_chunk_mode(ChunkMode::chunked());

    // Direct vs 1-deployment cluster.
    let mut eng = ServeEngine::new(hilos(8), chunked_config()).unwrap();
    let direct = eng.run_trace(&trace).unwrap();
    assert!(direct.prefill.chunks > 0, "the trace must actually chunk");
    let mut one = ClusterEngine::new(
        vec![ServeEngine::new(hilos(8), chunked_config()).unwrap()],
        Box::new(LedgerPressure::new()),
    );
    let one_report = one.run_trace(&trace).unwrap();
    assert_eq!(one_report.deployments[0], direct, "cluster layer drifted under chunking");

    // Heterogeneous chunked cluster: everything completes, the global
    // breakdown merges per-deployment chunk work, and the router saw the
    // prefill backlog while dispatching.
    let mut cluster = ClusterEngine::new(
        vec![
            ServeEngine::new(hilos(8), chunked_config()).unwrap(),
            ServeEngine::new(hilos(4).with_degraded_device(0, 0.5), chunked_config()).unwrap(),
        ],
        Box::new(LedgerPressure::new()),
    );
    let report = cluster.run_trace(&trace).unwrap();
    assert_eq!(report.completed(), 96);
    let merged = report.prefill_breakdown();
    assert_eq!(merged.chunks, report.deployments.iter().map(|d| d.prefill.chunks).sum::<u64>());
    assert_eq!(
        merged.chunk_tokens,
        report.outcomes().map(|o| o.prefill_tokens).sum::<u64>(),
        "cluster-wide chunk conservation"
    );
    assert!(merged.prefill_seconds() > 0.0);
    assert!(report.step_itl_stats().count > 0);
    for eng in cluster.deployments() {
        assert_eq!(eng.ledger().live_requests(), 0);
    }
}

/// A directed migration probe: every fresh arrival goes to deployment 0,
/// every preemption re-dispatch to deployment 1. Deployment 1 can then
/// *only* hold migrated victims, so its outcomes prove cross-deployment
/// completion with retained progress — and because deployment 1's clock
/// lags deployment 0's by its whole idle prefix, the run exercises the
/// timestamp re-basing across wildly diverged clock domains (latencies
/// must stay non-negative and causally ordered).
#[derive(Debug)]
struct MigrateToSpare;

impl RoutingPolicy for MigrateToSpare {
    fn name(&self) -> &'static str {
        "migrate-to-spare"
    }
    fn route(&mut self, req: &RouteRequest, _snap: &ClusterSnapshot<'_>) -> usize {
        usize::from(req.redispatch)
    }
}

/// Parallel lockstep stepping is outcome-identical: the same seeded
/// heterogeneous contended run produces a bit-identical [`ClusterReport`]
/// at 1, 2 and 4 worker threads — phase B's deployment-index-order merge
/// is the only place routing, migration and reporting observe state, so
/// how phase A was scheduled cannot leak into any result.
#[test]
fn parallel_stepping_is_bit_identical_across_thread_counts() {
    let run_at = |threads: usize| {
        let mut cluster = ClusterEngine::with_config(
            heterogeneous_deployments(),
            Box::new(LedgerPressure::new()),
            ClusterConfig::new().with_cluster_threads(threads),
        );
        cluster.run_trace(&contended_trace()).unwrap()
    };
    let serial = run_at(1);
    for threads in [2, 4] {
        assert_eq!(serial, run_at(threads), "{threads}-thread run drifted from serial");
    }
}

/// The golden 1-deployment pin holds with the worker pool engaged: a
/// single-slot cluster stepped through 4 fan-out threads still produces
/// the exact pre-cluster FNV constant.
#[test]
fn golden_pin_survives_four_worker_threads() {
    let trace = TraceConfig::azure_mix(512, 42).generate().unwrap();
    let mut cluster = ClusterEngine::with_config(
        vec![ServeEngine::new(hilos(8), ServeConfig::new(16)).unwrap()],
        Box::new(RoundRobin::new()),
        ClusterConfig::new().with_cluster_threads(4),
    );
    let report = cluster.run_trace(&trace).unwrap();
    assert_eq!(outcome_hash(&report.deployments[0].outcomes), 0x988a698736a9c8fe);
    assert_eq!(report.misrouted, 0);
}

/// A policy that answers with a deployment index past the end of the
/// fleet — a routing bug the engine must surface, not silently absorb.
#[derive(Debug)]
struct OutOfRangeRouting;

impl RoutingPolicy for OutOfRangeRouting {
    fn name(&self) -> &'static str {
        "out-of-range"
    }
    fn route(&mut self, _req: &RouteRequest, snap: &ClusterSnapshot<'_>) -> usize {
        snap.deployments.len() + 3
    }
}

/// Debug builds refuse an out-of-range routing answer loudly.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "routing policy picked deployment")]
fn out_of_range_routing_panics_in_debug_builds() {
    let trace = TraceConfig::azure_mix(16, 7).generate().unwrap();
    let mut cluster = ClusterEngine::new(heterogeneous_deployments(), Box::new(OutOfRangeRouting));
    let _ = cluster.run_trace(&trace);
}

/// Release builds clamp to the last deployment but count every
/// out-of-range answer in [`ClusterReport::misrouted`] — the bug stays
/// visible in the report instead of vanishing into a silent `.min()`.
#[cfg(not(debug_assertions))]
#[test]
fn out_of_range_routing_is_counted_and_clamped_in_release_builds() {
    let trace = TraceConfig::azure_mix(16, 7).generate().unwrap();
    let mut cluster = ClusterEngine::new(heterogeneous_deployments(), Box::new(OutOfRangeRouting));
    let report = cluster.run_trace(&trace).unwrap();
    assert_eq!(report.misrouted as usize, 16, "every dispatch was out of range");
    assert_eq!(report.dispatched, vec![0, 0, 16], "clamped to the last deployment");
}

#[test]
fn migrated_victims_finish_on_the_spare_deployment_with_sane_latencies() {
    let trace = TraceConfig { mean_interarrival_steps: 30, ..TraceConfig::azure_mix(128, 33) }
        .generate()
        .unwrap();
    let preempting = || {
        ServeEngine::with_policy(hilos(4), ServeConfig::new(3), Box::new(PriorityPreempt::new()))
            .unwrap()
    };
    let mut cluster =
        ClusterEngine::new(vec![preempting(), preempting()], Box::new(MigrateToSpare));
    let report = cluster.run_trace(&trace).unwrap();
    assert_eq!(report.completed(), 128);
    assert_eq!(report.dispatched, vec![128, 0], "fresh arrivals all pinned to deployment 0");
    assert!(report.deployments[0].preemptions > 0, "deployment 0 must preempt under the load");
    // Every deployment-0 victim migrates to the spare; victims the spare
    // itself preempts re-route to the spare and are not migrations.
    assert_eq!(
        report.redispatches, report.deployments[0].preemptions,
        "every deployment-0 victim must migrate to the spare"
    );
    // Deployment 1 holds only migrated victims — each one a preempted
    // request that finished elsewhere than it started, with its
    // generated progress intact.
    let spare = &report.deployments[1];
    assert!(!spare.outcomes.is_empty(), "no victim ever completed on the spare");
    for o in &spare.outcomes {
        assert_eq!(o.deployment, DeploymentId(1), "{o:?}");
        assert!(o.preemptions > 0, "only preempted requests can reach the spare: {o:?}");
        assert!(o.output_len > 0, "retained progress lost in migration: {o:?}");
        // The spare's clock lags deployment 0 by thousands of seconds;
        // re-based timestamps must still be causally ordered and yield
        // non-negative latencies.
        assert!(o.first_token_s <= o.finished_s, "{o:?}");
        assert!(o.ttft() >= 0.0 && o.itl() >= 0.0 && o.e2e() >= 0.0, "{o:?}");
        assert!(o.met_slo() == (o.e2e() <= o.slo_deadline_s), "{o:?}");
    }
    // Conservation still holds across the directed migration.
    for eng in cluster.deployments() {
        assert_eq!(eng.ledger().live_requests(), 0);
    }
}
