//! Request-level serving integration tests: the continuous-batching layer
//! end to end, the decode-step context fix, and baseline parity.

use hilos::baselines::VllmMultiNode;
use hilos::core::{
    DecodeStepExecutor, HilosConfig, HilosSystem, ServeConfig, ServingCampaign, SpillDecision,
};
use hilos::llm::{presets, BatchSpec, TraceConfig};
use hilos::platform::SystemSpec;

fn hilos(n: usize, sim_layers: u32) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(sim_layers)
}

/// The decode-step context fix: the old frozen-midpoint approximation
/// (`mid_ctx = context + output_len/2` for every step) must agree with the
/// exact per-step sum over `BatchSpec::context_at_step` to within a
/// fraction of a percent for the paper's shapes — which is why `run_decode`
/// may sample a centered window and scale.
#[test]
fn midpoint_approximation_matches_exact_per_step_sum() {
    let quiet = SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 };
    for (batch, ctx) in [(16u32, 32 * 1024u64), (16, 128 * 1024), (64, 16 * 1024)] {
        let spec = BatchSpec::new(batch, ctx, 64);
        let system = hilos(8, 2);
        let alpha = system.select_alpha(batch, ctx).unwrap();
        let mut exec = DecodeStepExecutor::new(&system).unwrap();

        let exact: f64 = (0..spec.output_len)
            .map(|i| {
                exec.execute_step(batch, spec.context_at_step(i), alpha, &quiet).unwrap().seconds
            })
            .sum();
        let mid_ctx = ctx + spec.output_len / 2;
        let midpoint = spec.output_len as f64
            * exec.execute_step(batch, mid_ctx, alpha, &quiet).unwrap().seconds;

        let rel = (midpoint - exact).abs() / exact;
        assert!(
            rel < 0.01,
            "midpoint diverged from exact sum at bs={batch} s={ctx}: {rel:.4} ({midpoint} vs {exact})"
        );
    }
}

/// `run_decode` (centered exact window) stays within tolerance of the full
/// exact per-step sum, so the refactor did not change reported results.
#[test]
fn run_decode_window_matches_full_sum() {
    let quiet = SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 };
    let system = hilos(8, 2);
    let spec = BatchSpec::new(16, 32 * 1024, 64);
    let alpha = system.select_alpha(spec.batch, spec.context_len).unwrap();
    let report = system.run_decode(spec.batch, spec.context_len, spec.output_len).unwrap();

    let mut exec = DecodeStepExecutor::new(&system).unwrap();
    let exact: f64 = (0..spec.output_len)
        .map(|i| {
            exec.execute_step(spec.batch, spec.context_at_step(i), alpha, &quiet).unwrap().seconds
        })
        .sum();
    // The windowed run interleaves writeback phases the quiet sum does
    // not, so allow a few percent.
    let rel = (report.decode_seconds - exact).abs() / exact;
    assert!(rel < 0.05, "run_decode diverged from exact sum: {rel:.4}");
}

/// Acceptance: a 10k-request heterogeneous trace completes under
/// continuous batching, reports sane tail latencies, and two invocations
/// with the same seed are bit-identical.
#[test]
fn ten_thousand_request_trace_is_deterministic() {
    let trace = TraceConfig::azure_mix(10_000, 42).generate();
    let run = || {
        let mut campaign = ServingCampaign::new(hilos(8, 1));
        campaign.run_trace(&trace, &ServeConfig::new(32)).unwrap()
    };
    let report = run();
    assert_eq!(report.outcomes.len() + report.rejected.len(), 10_000);
    assert!(report.rejected.is_empty());
    assert!(report.peak_batch > 8, "traffic should fill the batch");
    assert!(report.steps > 10_000);
    let ttft = report.ttft_stats();
    let itl = report.itl_stats();
    assert!(ttft.p50 > 0.0 && ttft.p50 <= ttft.p95 && ttft.p95 <= ttft.p99);
    assert!(itl.p50 > 0.0 && itl.p99 >= itl.p50);
    assert!(report.tokens_per_second() > 0.0);

    let again = run();
    assert_eq!(report, again, "same seed must serve bit-identically");
}

/// Baseline parity: the same trace driven through the serial
/// recompute-from-prefill vLLM baseline yields lower goodput than HILOS
/// continuous batching in the paper's regime — a >100B model whose KV
/// spills out of GPU memory (Fig. 17b). (For small models at short
/// context, the all-resident vLLM testbed legitimately wins; the
/// near-storage design pays off exactly where HBM capacity runs out.)
#[test]
fn continuous_batching_beats_serial_vllm_on_goodput() {
    let model = presets::opt_175b();
    let trace = TraceConfig::long_context(100, 42, 8).generate();
    let deadline = 24.0 * 3600.0;

    let system = HilosSystem::new(&SystemSpec::a100_smartssd(16), &model, &HilosConfig::new(16))
        .unwrap()
        .with_sim_layers(1);
    let mut campaign = ServingCampaign::new(system);
    let h = campaign.run_trace(&trace, &ServeConfig::new(32).with_deadline(deadline)).unwrap();
    assert!(h.rejected.is_empty(), "all long-context requests should place");

    let v = VllmMultiNode::paper_testbed().run_trace(&model, &trace, deadline).unwrap();

    assert!(
        h.tokens_per_second() > v.tokens_per_second(),
        "HILOS {} tok/s vs vLLM {} tok/s",
        h.tokens_per_second(),
        v.tokens_per_second()
    );
    assert!(
        h.token_goodput() >= v.token_goodput(),
        "HILOS goodput {} vs vLLM {}",
        h.token_goodput(),
        v.token_goodput()
    );
}
