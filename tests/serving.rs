//! Request-level serving integration tests: the continuous-batching layer
//! end to end, the pluggable scheduling-policy API (FIFO golden parity,
//! EDF/priority improvements), the decode-step context fix, and baseline
//! parity.

use hilos::baselines::VllmMultiNode;
use hilos::core::{
    ChunkMode, DeadlineEdf, DecodeStepExecutor, Fifo, FlowEngineImpl, HilosConfig, HilosSystem,
    PrefixCacheConfig, PriorityPreempt, SchedulingPolicy, ServeConfig, ServeEngine,
    ServingCampaign, SpillDecision, TraceReport,
};
use hilos::llm::{presets, BatchSpec, RequestClass, TraceConfig};
use hilos::platform::SystemSpec;
use hilos::trace::{
    check_conservation, events_fnv, perfetto_json, prefill_chunk_totals, spans_nest, validate_json,
    LatencyAttribution,
};

fn hilos(n: usize, sim_layers: u32) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(sim_layers)
}

/// The decode-step context fix: the old frozen-midpoint approximation
/// (`mid_ctx = context + output_len/2` for every step) must agree with the
/// exact per-step sum over `BatchSpec::context_at_step` to within a
/// fraction of a percent for the paper's shapes — which is why `run_decode`
/// may sample a centered window and scale.
#[test]
fn midpoint_approximation_matches_exact_per_step_sum() {
    let quiet = SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 };
    for (batch, ctx) in [(16u32, 32 * 1024u64), (16, 128 * 1024), (64, 16 * 1024)] {
        let spec = BatchSpec::new(batch, ctx, 64);
        let system = hilos(8, 2);
        let alpha = system.select_alpha(batch, ctx).unwrap();
        let mut exec = DecodeStepExecutor::new(&system).unwrap();

        let exact: f64 = (0..spec.output_len)
            .map(|i| {
                exec.execute_step(batch, spec.context_at_step(i), alpha, &quiet).unwrap().seconds
            })
            .sum();
        let mid_ctx = ctx + spec.output_len / 2;
        let midpoint = spec.output_len as f64
            * exec.execute_step(batch, mid_ctx, alpha, &quiet).unwrap().seconds;

        let rel = (midpoint - exact).abs() / exact;
        assert!(
            rel < 0.01,
            "midpoint diverged from exact sum at bs={batch} s={ctx}: {rel:.4} ({midpoint} vs {exact})"
        );
    }
}

/// `run_decode` (centered exact window) stays within tolerance of the full
/// exact per-step sum, so the refactor did not change reported results.
#[test]
fn run_decode_window_matches_full_sum() {
    let quiet = SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 };
    let system = hilos(8, 2);
    let spec = BatchSpec::new(16, 32 * 1024, 64);
    let alpha = system.select_alpha(spec.batch, spec.context_len).unwrap();
    let report = system.run_decode(spec.batch, spec.context_len, spec.output_len).unwrap();

    let mut exec = DecodeStepExecutor::new(&system).unwrap();
    let exact: f64 = (0..spec.output_len)
        .map(|i| {
            exec.execute_step(spec.batch, spec.context_at_step(i), alpha, &quiet).unwrap().seconds
        })
        .sum();
    // The windowed run interleaves writeback phases the quiet sum does
    // not, so allow a few percent.
    let rel = (report.decode_seconds - exact).abs() / exact;
    assert!(rel < 0.05, "run_decode diverged from exact sum: {rel:.4}");
}

/// Acceptance: a 10k-request heterogeneous trace completes under
/// continuous batching, reports sane tail latencies, and two invocations
/// with the same seed are bit-identical.
#[test]
fn ten_thousand_request_trace_is_deterministic() {
    let trace = TraceConfig::azure_mix(10_000, 42).generate().unwrap();
    let run = || {
        let mut campaign = ServingCampaign::new(hilos(8, 1));
        campaign.run_trace(&trace, &ServeConfig::new(32)).unwrap()
    };
    let report = run();
    assert_eq!(report.outcomes.len() + report.rejected.len(), 10_000);
    assert!(report.rejected.is_empty());
    assert!(report.peak_batch > 8, "traffic should fill the batch");
    assert!(report.steps > 10_000);
    let ttft = report.ttft_stats();
    let itl = report.itl_stats();
    assert!(ttft.p50 > 0.0 && ttft.p50 <= ttft.p95 && ttft.p95 <= ttft.p99);
    assert!(itl.p50 > 0.0 && itl.p99 >= itl.p50);
    assert!(report.tokens_per_second() > 0.0);

    let again = run();
    assert_eq!(report, again, "same seed must serve bit-identically");
}

/// Intra-step sharding pin: building each step's per-device sub-graphs
/// on N workers must change *nothing* — the whole trace report, every
/// outcome timestamp included, is bit-identical to the serial build.
#[test]
fn step_thread_sharding_is_outcome_identical() {
    let trace = TraceConfig::azure_mix(256, 42).generate().unwrap();
    let run = |threads: usize| {
        let cfg = ServeConfig::new(16).with_step_threads(threads);
        let mut eng = ServeEngine::new(hilos(8, 1), cfg).unwrap();
        eng.run_trace(&trace).unwrap()
    };
    let serial = run(1);
    assert_eq!(serial.outcomes.len(), 256);
    assert_eq!(serial, run(4), "sharded step build drifted from the serial build");
}

/// The virtual-time flow engine serves the same workload to completion,
/// deterministically, and conserves the trace's token accounting — only
/// timing may differ (conservatively) from the progressive-filling
/// oracle.
#[test]
fn virtual_time_engine_serves_deterministically() {
    let trace = TraceConfig::azure_mix(512, 42).generate().unwrap();
    let run = |flow_impl| {
        let cfg = ServeConfig::new(16).with_flow_impl(flow_impl);
        let mut eng = ServeEngine::new(hilos(8, 1), cfg).unwrap();
        eng.run_trace(&trace).unwrap()
    };
    let fast = run(FlowEngineImpl::VirtualTime);
    assert_eq!(fast.outcomes.len(), 512);
    assert!(fast.rejected.is_empty());
    assert!(fast.tokens_per_second() > 0.0);
    assert_eq!(fast, run(FlowEngineImpl::VirtualTime), "same seed must serve bit-identically");

    // Work conservation across engines: identical requests, identical
    // token totals — only the clock may differ.
    let oracle = run(FlowEngineImpl::ProgressiveFilling);
    assert_eq!(fast.generated_tokens, oracle.generated_tokens);
    assert_eq!(fast.outcomes.len(), oracle.outcomes.len());
}

/// Golden pin of the FIFO policy against the pre-policy-API engine: the
/// hard-wired admission loop of PR 2 produced exactly these numbers on
/// the seeded Azure-mix trace, and the policy-generic engine driving
/// [`Fifo`] must reproduce them bit for bit — every field below,
/// including an FNV-1a hash over every outcome's id, lengths and
/// f64-bit-exact lifecycle timestamps.
#[test]
fn fifo_is_bit_identical_to_pre_policy_engine() {
    let trace = TraceConfig::azure_mix(512, 42).generate().unwrap();
    let mut eng = ServeEngine::new(hilos(8, 1), ServeConfig::new(16)).unwrap();
    let r = eng.run_trace(&trace).unwrap();

    assert_eq!(r.policy, "fifo");
    assert_eq!(r.outcomes.len(), 512);
    assert_eq!(r.rejected.len(), 0);
    assert_eq!(r.steps, 6562);
    assert_eq!(r.elapsed_s.to_bits(), 0x40ce34c80da9f4da, "elapsed_s drifted: {}", r.elapsed_s);
    assert_eq!(r.generated_tokens, 99_823);
    assert_eq!(r.peak_batch, 16);
    assert_eq!(r.joins, 512);
    assert_eq!(r.evictions, 512);
    assert_eq!(r.preemptions, 0);
    assert_eq!(r.alpha_recomputes, 928);
    assert_eq!(r.mean_alpha.to_bits(), 0x3fe8000000000000);
    assert_eq!(r.host_pcie_bytes.to_bits(), 0x42fbac24b5b80000);
    assert_eq!(r.internal_read_bytes.to_bits(), 0x42cdabf18c400000);

    assert_eq!(
        hilos::core::outcome_lifecycle_fnv(&r.outcomes),
        0x988a698736a9c8fe,
        "per-outcome lifecycle timings drifted"
    );

    // The default config *is* ChunkMode::Off; spelling it out must
    // reproduce the same run bit for bit (the chunked-prefill refactor
    // added no drift to the legacy side-prefill path).
    let mut off =
        ServeEngine::new(hilos(8, 1), ServeConfig::new(16).with_chunk_mode(ChunkMode::Off))
            .unwrap();
    assert_eq!(off.run_trace(&trace).unwrap(), r, "explicit ChunkMode::Off drifted");
}

/// The long-prompt contended trace of the chunked-vs-lump comparison
/// (`bench_serving`'s `chunked` section): Long-heavy prompts stretched 8x,
/// arriving fast enough that prompt ingestion overlaps running decodes.
fn long_prompt_trace() -> Vec<hilos::llm::Request> {
    let mut cfg = TraceConfig::long_context(96, 42, 8).with_mean_interarrival(80);
    cfg.class_weights = [1, 3, 6];
    cfg.generate().unwrap()
}

/// Acceptance: with chunking on, the decode-gap tail under the
/// long-prompt contended trace improves measurably over inline lump
/// prefill — p95, p99 and worst-case all shrink, because a whole-prompt
/// ingestion can no longer land inside a single decode step. Both modes
/// do the same total prefill work (conservation), and the legacy
/// side-prefill mode charges none of it.
#[test]
fn chunked_prefill_tames_the_decode_gap_tail_vs_lump() {
    let trace = long_prompt_trace();
    let run = |mode| {
        let mut eng =
            ServeEngine::new(hilos(8, 1), ServeConfig::new(8).with_chunk_mode(mode)).unwrap();
        eng.run_trace(&trace).unwrap()
    };
    let off = run(ChunkMode::Off);
    let lump = run(ChunkMode::Lump);
    let chunked = run(ChunkMode::chunked());

    for r in [&off, &lump, &chunked] {
        assert_eq!(r.outcomes.len(), 96, "incomplete");
        assert!(r.rejected.is_empty() && r.shed.is_empty());
    }

    let (ls, cs) = (lump.step_itl_stats(), chunked.step_itl_stats());
    assert!(cs.p95 < ls.p95, "chunked p95 {} must beat lump {}", cs.p95, ls.p95);
    assert!(cs.p99 < ls.p99, "chunked p99 {} must beat lump {}", cs.p99, ls.p99);
    assert!(
        cs.max * 2.0 < ls.max,
        "chunking must collapse the worst decode gap: {} vs {}",
        cs.max,
        ls.max
    );

    // Conservation: same prompts, same total ingestion seconds. This run
    // uses auto-α, where the admission α depends on the live batch size
    // and can in principle drift between the modes, so the seconds check
    // is loose here — the strict 1e-9 telescoping claim is pinned under
    // fixed α by the conservation proptest.
    assert_eq!(lump.prefill.chunk_tokens, chunked.prefill.chunk_tokens);
    let (a, b) = (lump.prefill.prefill_seconds(), chunked.prefill.prefill_seconds());
    assert!((a - b).abs() < 0.01 * a, "prefill totals diverged: {a} vs {b}");

    // The legacy mode models no contention at all — the inline modes
    // exist precisely because its decode tail is optimistic.
    assert_eq!(off.prefill.chunks, 0);
    assert_eq!(off.prefill.prefill_seconds(), 0.0);

    // Interference is visible and attributed: most chunk time coincided
    // with running decodes on this trace.
    assert!(chunked.prefill.interference_seconds > chunked.prefill.stall_seconds);
    assert!(chunked.prefill.interference_ratio() > 0.0);
}

/// Acceptance: EDF with overload shedding strictly lifts SLO goodput
/// over plain EDF on the overloaded seeded trace (the domino effect:
/// plain EDF burns capacity on requests whose deadlines are already
/// dead). The margin is recorded in `BENCH_serving.json` and gated
/// exactly in CI.
#[test]
fn edf_shedding_lifts_slo_goodput_under_overload() {
    let trace = TraceConfig::azure_mix(256, 42).with_mean_interarrival(10).generate().unwrap();
    let run = |policy: Box<dyn SchedulingPolicy>| {
        let mut eng = ServeEngine::with_policy(hilos(8, 1), ServeConfig::new(8), policy).unwrap();
        eng.run_trace(&trace).unwrap()
    };
    let plain = run(Box::new(DeadlineEdf::new()));
    let shed = run(Box::new(DeadlineEdf::with_shedding()));

    assert_eq!(plain.outcomes.len(), 256);
    assert!(plain.shed.is_empty());
    assert!(!shed.shed.is_empty(), "overload must shed");
    assert_eq!(shed.outcomes.len() + shed.shed.len(), 256, "partition must hold");
    assert!(
        shed.slo_token_goodput() > plain.slo_token_goodput(),
        "shedding goodput {} must beat plain EDF {}",
        shed.slo_token_goodput(),
        plain.slo_token_goodput()
    );
    assert!(shed.slo_hit_rate() > plain.slo_hit_rate());
    // Shedding sacrifices raw throughput only marginally.
    assert!(shed.tokens_per_second() > 0.9 * plain.tokens_per_second());
    // Every shed was past its deadline when dropped.
    for s in &shed.shed {
        assert!(s.overdue_s() >= 0.0, "{s:?}");
    }
    // Deterministic.
    assert_eq!(shed, run(Box::new(DeadlineEdf::with_shedding())));
}

/// The contended seeded trace of the three-way policy comparison
/// (`examples/serving_trace.rs`, `bench_serving`): arrivals at roughly
/// 2.3x the service rate, so a deep queue forms and admission order
/// decides who meets their SLO.
fn contended_trace() -> Vec<hilos::llm::Request> {
    TraceConfig { mean_interarrival_steps: 20, ..TraceConfig::azure_mix(256, 42) }
        .generate()
        .unwrap()
}

fn run_policy(policy: Box<dyn SchedulingPolicy>) -> TraceReport {
    let mut eng = ServeEngine::with_policy(hilos(8, 1), ServeConfig::new(8), policy).unwrap();
    eng.run_trace(&contended_trace()).unwrap()
}

/// Acceptance: on the contended seeded trace, deadline-EDF strictly
/// improves SLO goodput over FIFO, and priority-preemptive scheduling
/// strictly improves the high-class (Short) p95 TTFT over FIFO. All
/// three policies complete the full workload and release every shard
/// byte.
#[test]
fn edf_and_priority_beat_fifo_on_their_objectives() {
    let fifo = run_policy(Box::new(Fifo));
    let edf = run_policy(Box::new(DeadlineEdf::new()));
    let pp = run_policy(Box::new(PriorityPreempt::new()));

    for r in [&fifo, &edf, &pp] {
        assert_eq!(r.outcomes.len(), 256, "{}: incomplete", r.policy);
        assert!(r.rejected.is_empty(), "{}: rejected requests", r.policy);
    }

    // DeadlineEdf: strictly better SLO goodput and hit rate than FIFO.
    assert!(
        edf.slo_token_goodput() > fifo.slo_token_goodput(),
        "EDF goodput {} must beat FIFO {}",
        edf.slo_token_goodput(),
        fifo.slo_token_goodput()
    );
    assert!(
        edf.slo_hit_rate() > fifo.slo_hit_rate(),
        "EDF hit rate {} must beat FIFO {}",
        edf.slo_hit_rate(),
        fifo.slo_hit_rate()
    );

    // PriorityPreempt: strictly better high-class p95 TTFT than FIFO —
    // by a wide margin, so the gate survives any future re-tuning noise.
    let short_p95 = |r: &TraceReport| r.class_report(RequestClass::Short).unwrap().ttft.p95;
    assert!(
        short_p95(&pp) < short_p95(&fifo) / 10.0,
        "priority-preempt Short p95 TTFT {} must be far below FIFO {}",
        short_p95(&pp),
        short_p95(&fifo)
    );
    assert!(pp.preemptions > 0, "the contended trace must actually preempt");
    assert_eq!(fifo.preemptions, 0);
    assert_eq!(edf.preemptions, 0, "EDF is admission-only");

    // The preemption tax is visible but bounded: total throughput stays
    // within a few percent of FIFO's.
    assert!(pp.tokens_per_second() > 0.9 * fifo.tokens_per_second());

    // Per-class breakdown is present for all three classes.
    for r in [&fifo, &edf, &pp] {
        assert_eq!(r.class_breakdown().len(), 3, "{}", r.policy);
    }
}

/// The shared-prefix long-context trace of the prefix-cache comparison
/// (`bench_serving`'s `prefix_cache` section): prompts stretched 8x into
/// the paper's long-context regime, every fresh conversation opening
/// with the same 8192-token document prefix, and 60% of arrivals
/// continuing a session whose whole served context is cached. Light
/// arrival pressure, so TTFT is prefill-bound — the regime prefix reuse
/// exists for.
fn shared_prefix_trace() -> Vec<hilos::llm::Request> {
    let shared = hilos::llm::SharedPrefixConfig {
        system_prompt_tokens: 8192,
        follow_up_fraction: 0.6,
        follow_up_tokens: 256,
        max_turns: 8,
    };
    TraceConfig::long_context(192, 42, 8)
        .with_mean_interarrival(100)
        .with_shared_prefix(shared)
        .generate()
        .unwrap()
}

/// Acceptance: on the seeded shared-prefix trace, turning the prefix
/// cache on cuts TTFT p95 by at least 2x while serving exactly the same
/// tokens — hits skip their prefix's prefill chunks, and the recall I/O
/// they pay instead is priced by the residency ladder. The margin is
/// recorded in `BENCH_serving.json` and gated in CI; with the cache off
/// (the default) the report's cache section stays all-zero and the FIFO
/// golden pins above are untouched.
#[test]
fn prefix_cache_halves_ttft_p95_on_shared_prefix_trace() {
    let trace = shared_prefix_trace();
    let run = |cache: Option<PrefixCacheConfig>| {
        let mut cfg = ServeConfig::new(16);
        if let Some(pc) = cache {
            cfg = cfg.with_prefix_cache(pc);
        }
        let mut eng = ServeEngine::new(hilos(8, 1), cfg).unwrap();
        eng.run_trace(&trace).unwrap()
    };
    let off = run(None);
    let on = run(Some(PrefixCacheConfig::default()));

    // Identical service: same request set, same per-request tokens.
    assert_eq!(on.generated_tokens, off.generated_tokens);
    let served = |r: &TraceReport| {
        let mut v: Vec<(u64, u64)> = r.outcomes.iter().map(|o| (o.id, o.output_len)).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(served(&on), served(&off));
    assert!(on.rejected.is_empty() && off.rejected.is_empty());

    // The cache actually worked.
    assert!(on.prefix.hits > 0, "shared-prefix trace never hit");
    assert!(on.prefix.hit_rate() > 0.5, "most arrivals share a prefix: {}", on.prefix.hit_rate());
    assert!(on.prefix.saved_prefill_tokens > 0);
    assert_eq!(off.prefix.hits, 0, "cache off must not probe");

    // The headline: reuse at least halves the TTFT tail.
    let (t_on, t_off) = (on.ttft_stats(), off.ttft_stats());
    assert!(
        t_on.p95 * 2.0 <= t_off.p95,
        "cache-on TTFT p95 {} must be at most half of cache-off {}",
        t_on.p95,
        t_off.p95
    );
    assert!(t_on.p50 < t_off.p50, "the median must improve too");

    // Deterministic both ways.
    assert_eq!(on, run(Some(PrefixCacheConfig::default())));
}

/// Golden pin of the lifecycle event stream: on the seeded shared-prefix
/// trace under chunked prefill and the prefix cache, a tracing-enabled
/// run must (1) leave every serving number bit-identical to the untraced
/// run — emission is observational — and (2) produce exactly this
/// FNV-1a event-stream hash, gated again by CI's `trace-smoke` job. The
/// same stream must satisfy the conservation law (every arrival
/// terminates exactly once), reconcile its chunk events against
/// [`TraceReport::prefill`], decompose every completed request's e2e
/// additively, and export as a Perfetto document whose spans nest.
#[test]
fn event_stream_is_deterministic_and_reconciles_on_shared_prefix_trace() {
    let trace = shared_prefix_trace();
    let run = |tracing: Option<usize>| {
        let mut cfg = ServeConfig::new(16)
            .with_chunk_mode(ChunkMode::chunked())
            .with_prefix_cache(PrefixCacheConfig::default());
        if let Some(cap) = tracing {
            cfg = cfg.with_tracing(cap);
        }
        let mut eng = ServeEngine::new(hilos(8, 1), cfg).unwrap();
        eng.run_trace(&trace).unwrap()
    };
    let traced = run(Some(1 << 20));
    let plain = run(None);

    // Tracing is observational: strip the events and the reports agree
    // bit for bit; off leaves the stream empty.
    assert!(plain.events.is_empty() && plain.events_dropped == 0);
    assert!(!traced.events.is_empty());
    assert_eq!(traced.events_dropped, 0, "ring capacity must retain the whole run");
    let mut stripped = traced.clone();
    stripped.events = vec![];
    assert_eq!(stripped, plain, "emission must not perturb the serving numbers");

    // The pinned stream hash — deterministic across runs and platforms.
    assert_eq!(traced.events, run(Some(1 << 20)).events, "event stream must be reproducible");
    assert_eq!(
        events_fnv(&traced.events),
        0xb4a9f0c6ea15d652,
        "the lifecycle event stream drifted"
    );

    // Conservation: every arrival terminates exactly once.
    let cons = check_conservation(&[&traced.events]);
    assert!(cons.holds(), "conservation violated: {cons:?}");
    assert_eq!(cons.arrived, 192);
    assert_eq!(cons.completed, traced.outcomes.len());

    // Chunk events reconcile against the report's prefill breakdown.
    let totals = prefill_chunk_totals(&traced.events);
    assert_eq!(totals.chunks, traced.prefill.chunks);
    assert_eq!(totals.tokens, traced.prefill.chunk_tokens);
    assert!((totals.interference_seconds - traced.prefill.interference_seconds).abs() < 1e-9);
    assert!((totals.stall_seconds - traced.prefill.stall_seconds).abs() < 1e-9);

    // Per-request attribution: one row per completed request, each
    // decomposing its end-to-end latency additively and agreeing with
    // the outcome's own timestamps.
    let attr = LatencyAttribution::analyze(&[&traced.events]);
    assert_eq!(attr.rows.len(), traced.outcomes.len());
    for o in &traced.outcomes {
        let row = attr.get(o.id).expect("every outcome has a row");
        // e2e_s is the component fold; it matches the outcome's own
        // timestamps to within a ulp (see `RequestAttribution::e2e_s`).
        let e2e = o.finished_s - o.arrival_s;
        assert!((row.e2e_s - e2e).abs() <= 4.0 * f64::EPSILON * e2e.max(1.0));
        assert_eq!(row.ttft_s, o.first_token_s - o.arrival_s);
        assert_eq!(row.components_sum(), row.e2e_s, "request {} leaks time", o.id);
    }

    // The exporter produces a valid Chrome-trace document whose request
    // and phase spans nest on every track.
    let doc = perfetto_json(&[&traced.events]);
    validate_json(&doc).unwrap();
    assert!(spans_nest(&doc).unwrap() > traced.outcomes.len());
}

/// Baseline parity: the same trace driven through the serial
/// recompute-from-prefill vLLM baseline yields lower goodput than HILOS
/// continuous batching in the paper's regime — a >100B model whose KV
/// spills out of GPU memory (Fig. 17b). (For small models at short
/// context, the all-resident vLLM testbed legitimately wins; the
/// near-storage design pays off exactly where HBM capacity runs out.)
#[test]
fn continuous_batching_beats_serial_vllm_on_goodput() {
    let model = presets::opt_175b();
    let trace = TraceConfig::long_context(100, 42, 8).generate().unwrap();
    let deadline = 24.0 * 3600.0;

    let system = HilosSystem::new(&SystemSpec::a100_smartssd(16), &model, &HilosConfig::new(16))
        .unwrap()
        .with_sim_layers(1);
    let mut campaign = ServingCampaign::new(system);
    let h = campaign.run_trace(&trace, &ServeConfig::new(32).with_deadline(deadline)).unwrap();
    assert!(h.rejected.is_empty(), "all long-context requests should place");

    let v = VllmMultiNode::paper_testbed().run_trace(&model, &trace, deadline).unwrap();

    assert!(
        h.tokens_per_second() > v.tokens_per_second(),
        "HILOS {} tok/s vs vLLM {} tok/s",
        h.tokens_per_second(),
        v.tokens_per_second()
    );
    assert!(
        h.token_goodput() >= v.token_goodput(),
        "HILOS goodput {} vs vLLM {}",
        h.token_goodput(),
        v.token_goodput()
    );
}
