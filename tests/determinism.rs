//! The reproducibility guarantee: every experiment and every simulated
//! run is bit-deterministic — the property that lets EXPERIMENTS.md quote
//! exact numbers.

use hilos::core::{HilosConfig, HilosSystem};
use hilos::llm::presets;
use hilos::platform::SystemSpec;
use hilos_bench::experiments;

#[test]
fn decode_runs_are_bit_identical() {
    let run = || {
        HilosSystem::new(&SystemSpec::a100_smartssd(8), &presets::opt_66b(), &HilosConfig::new(8))
            .unwrap()
            .with_sim_layers(4)
            .run_decode(16, 32 * 1024, 8)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.avg_step_seconds.to_bits(), b.avg_step_seconds.to_bits());
    assert_eq!(a.gpu_utilization.to_bits(), b.gpu_utilization.to_bits());
    assert_eq!(a.category_seconds, b.category_seconds);
}

#[test]
fn experiments_render_identically_across_runs() {
    // A representative subset covering the sim, analytic and functional
    // paths (the full set is exercised by the smoke tests).
    for id in ["table3", "estimator", "fig12a", "fig16b", "fig18c", "straggler"] {
        let a = experiments::run(id).unwrap();
        let b = experiments::run(id).unwrap();
        assert_eq!(a, b, "{id} not deterministic");
    }
}

#[test]
fn synthetic_tasks_and_kernels_are_seed_stable() {
    use hilos::accel::{attention_kernel, AttentionInputs};
    use hilos::llm::{RetrievalTask, RetrievalTaskConfig};
    let t1 = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(1024, 42));
    let t2 = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(1024, 42));
    let out = |t: &RetrievalTask| {
        attention_kernel(&AttentionInputs {
            queries: &t.queries,
            keys: &t.keys,
            values: &t.values,
            valid: None,
            scale: t.scale,
            host_tail: None,
        })
        .unwrap()
    };
    assert_eq!(out(&t1), out(&t2));
    assert_eq!(t1.answers, t2.answers);
}
