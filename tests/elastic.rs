//! Elastic-cluster integration tests: the autoscaling layer end to end —
//! golden 1-slot equivalence (elasticity off adds no simulation drift),
//! the cold-start lifecycle of a scaled-up slot, planned live drain with
//! zero lost requests and clean source ledgers, and the bursty
//! keep-alive run that scales up, drains and retires without dropping
//! anything.

use hilos::core::cluster::{
    AutoscalePolicy, ClusterConfig, CostNormalizedPressure, ElasticClusterEngine, ElasticConfig,
    FleetSnapshot, HybridHistogramKeepAlive, LedgerPressure, LifecycleState, PinnedFleet,
    RoundRobin, ScaleDecision,
};
use hilos::core::{HilosConfig, HilosSystem, PrefixCacheConfig, ServeConfig, ServeEngine};
use hilos::llm::{presets, TraceConfig};
use hilos::platform::SystemSpec;

fn hilos(n: usize) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(1)
}

use hilos::core::outcome_lifecycle_fnv as outcome_hash;

/// Golden equivalence: a 1-slot elastic cluster under the never-scaling
/// [`PinnedFleet`] policy serves the seeded Azure-mix trace
/// bit-identically to the non-cluster engine — the exact FNV constant
/// `tests/serving.rs` and `tests/cluster.rs` pin. With elasticity off,
/// the lifecycle/autoscale/billing machinery adds no simulation drift.
#[test]
fn pinned_single_slot_elastic_cluster_stays_on_the_golden_pin() {
    let trace = TraceConfig::azure_mix(512, 42).generate().unwrap();
    let mut eng = ServeEngine::new(hilos(8), ServeConfig::new(16)).unwrap();
    let direct = eng.run_trace(&trace).unwrap();
    assert_eq!(outcome_hash(&direct.outcomes), 0x988a698736a9c8fe, "pre-cluster pin drifted");

    let mut elastic = ElasticClusterEngine::new(
        vec![ServeEngine::new(hilos(8), ServeConfig::new(16)).unwrap()],
        Box::new(LedgerPressure::new()),
        Box::new(PinnedFleet),
        ElasticConfig::new(1),
    );
    let report = elastic.run_trace(&trace).unwrap();
    assert_eq!(report.cluster.deployments[0], direct, "elastic layer drifted");
    assert_eq!(outcome_hash(&report.cluster.deployments[0].outcomes), 0x988a698736a9c8fe);
    assert_eq!(report.autoscale, "pinned-fleet");
    assert!(report.events.is_empty(), "a pinned fleet has no lifecycle transitions");
    assert_eq!((report.scale_ups, report.drains, report.retires), (0, 0, 0));
    assert_eq!(report.drained_requests, 0);
    assert_eq!(report.peak_active, 1);
    assert_eq!(report.cold_start_s_total, 0.0, "the initial fleet bills no cold start");
    // Utilization billing: the one slot bills exactly its busy clock.
    assert_eq!(report.bills.len(), 1);
    assert_eq!(report.bills[0].billed_seconds, direct.elapsed_s);
    assert!(report.fleet_bill().cost_usd() > 0.0);
    assert!(report.cost_per_1k_goodput_tokens().is_finite());
}

/// A scripted autoscaler for directed lifecycle tests: provisions slot
/// ≥1 at one step, drains one slot at another.
#[derive(Debug)]
struct ScriptedScaler {
    up_at: Option<u64>,
    down_at: Option<u64>,
}

impl AutoscalePolicy for ScriptedScaler {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn decide(&mut self, snap: &FleetSnapshot<'_>) -> ScaleDecision {
        if let Some(t) = self.up_at {
            if snap.step >= t {
                self.up_at = None;
                return ScaleDecision::ScaleUp { count: 1 };
            }
        }
        if let Some(t) = self.down_at {
            if snap.step >= t {
                self.down_at = None;
                return ScaleDecision::ScaleDown { count: 1 };
            }
        }
        ScaleDecision::Hold
    }
}

/// Cold start end to end: a scripted scale-up walks slot 1 through
/// Provisioning → Warming → Active at exactly the steps the
/// [`ColdStartModel`] prices, the newly Active slot then serves traffic,
/// and its bill carries the cold-start seconds on top of busy time.
#[test]
fn scaled_up_slot_cold_starts_on_schedule_and_serves() {
    // Steady contended arrivals so there is traffic long after the cold
    // start completes.
    let trace = TraceConfig { mean_interarrival_steps: 8, ..TraceConfig::azure_mix(256, 42) }
        .generate()
        .unwrap();
    let config = ElasticConfig::new(1);
    let mut elastic = ElasticClusterEngine::new(
        vec![
            ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
            ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
        ],
        Box::new(LedgerPressure::new()),
        Box::new(ScriptedScaler { up_at: Some(40), down_at: None }),
        config,
    );
    // The cold-start model prices slot 1 off its own system: container
    // provision plus weights over aggregate device bandwidth.
    let cold = *elastic.cold_start(1);
    assert!(cold.provision_s == config.provision_s && cold.weight_load_s > 0.0);
    let provision_steps = cold.provision_steps(config.step_seconds_hint);
    let warm_steps = cold.warm_steps(config.step_seconds_hint);
    assert_eq!(elastic.lifecycle_state(1), LifecycleState::Retired);

    let report = elastic.run_trace(&trace).unwrap();
    assert_eq!(elastic.lifecycle_state(1), LifecycleState::Active);
    assert_eq!(report.scale_ups, 1);
    assert_eq!(report.peak_active, 2);
    assert_eq!(report.cold_start_s_total, cold.total_s());

    // The audit trail shows the full transit at the priced thresholds.
    let slot1: Vec<_> = report.events.iter().filter(|e| e.deployment == 1).collect();
    assert_eq!(
        slot1.iter().map(|e| e.to).collect::<Vec<_>>(),
        vec![LifecycleState::Provisioning, LifecycleState::Warming, LifecycleState::Active]
    );
    let provisioned_at = slot1[0].step;
    assert!(provisioned_at >= 40);
    assert_eq!(slot1[1].step, provisioned_at + provision_steps);
    assert_eq!(slot1[2].step, provisioned_at + provision_steps + warm_steps);

    // The scaled-up slot actually served: dispatches and outcomes.
    assert!(report.cluster.dispatched[1] > 0, "slot 1 never took traffic");
    assert!(!report.cluster.deployments[1].outcomes.is_empty());
    // No request was dispatched to slot 1 before it turned Active: every
    // outcome it served has a completion after the Active step's clock
    // (slot clocks only advance under work, so a nonzero busy clock
    // suffices), and nothing was lost cluster-wide.
    assert_eq!(report.cluster.completed(), 256);
    assert_eq!(report.lost(), 0);
    // Billing: slot 1 bills busy time plus its whole cold start.
    assert_eq!(
        report.bills[1].billed_seconds,
        report.cluster.deployments[1].elapsed_s + cold.total_s()
    );
    assert_eq!(report.bills[0].billed_seconds, report.cluster.deployments[0].elapsed_s);
}

/// Planned live drain: a scripted scale-down while both slots are full
/// of in-flight work migrates every evacuee with retained progress,
/// leaves the source's shard ledger and residency ladder empty, and
/// retires the slot — without losing a single request.
#[test]
fn planned_drain_migrates_in_flight_work_and_empties_the_source() {
    let trace = TraceConfig { mean_interarrival_steps: 6, ..TraceConfig::azure_mix(192, 42) }
        .generate()
        .unwrap();
    // Prefix caching on, so drained work exercises the demoted-KV
    // forget path too (parked victim KV must not outlive the drain);
    // tracing on, so the drain leaves an auditable event stream.
    let serve = || {
        ServeConfig::new(8).with_prefix_cache(PrefixCacheConfig::default()).with_tracing(1 << 20)
    };
    let build = |down_at: Option<u64>| {
        ElasticClusterEngine::new(
            vec![
                ServeEngine::new(hilos(8), serve()).unwrap(),
                ServeEngine::new(hilos(8), serve()).unwrap(),
            ],
            Box::new(RoundRobin::new()),
            Box::new(ScriptedScaler { up_at: None, down_at }),
            ElasticConfig { initial_active: 2, ..ElasticConfig::new(2) },
        )
    };
    let mut elastic = build(Some(300));
    let report = elastic.run_trace(&trace).unwrap();

    // Exactly one drain, retiring the slot it evacuated.
    assert_eq!(report.drains, 1);
    assert_eq!(report.retires, 1);
    let drained = report
        .events
        .iter()
        .find(|e| e.to == LifecycleState::Draining)
        .expect("a drain must have begun")
        .deployment as usize;
    let retired = report.events.iter().find(|e| e.to == LifecycleState::Retired).unwrap();
    assert_eq!(retired.deployment as usize, drained, "the draining slot is the one that retires");
    assert_eq!(elastic.lifecycle_state(drained), LifecycleState::Retired);

    // The drain happened live: in-flight requests migrated with
    // retained progress and completed elsewhere.
    assert!(report.drained_requests > 0, "the slot was full at step 300 — something must move");
    assert!(report.cluster.redispatches >= report.drained_requests);
    assert_eq!(report.cluster.completed(), 192, "every request completes exactly once");
    assert_eq!(report.lost(), 0);
    let mut ids: Vec<u64> = report.cluster.outcomes().map(|o| o.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 192, "duplicated or lost ids across the drain");

    // Migrated victims kept causally-ordered timestamps across the
    // clock-domain re-base.
    for o in report.cluster.outcomes() {
        assert!(o.first_token_s <= o.finished_s, "{o:?}");
        assert!(o.ttft() >= 0.0 && o.itl() >= 0.0 && o.e2e() >= 0.0, "{o:?}");
    }

    // The event stream audits the drain: conservation holds *across*
    // the deployments (arrivals on the drained slot terminate on the
    // survivor), every drained request left a Migrated event on its
    // target, and the drain/retire transitions are in the source ring.
    let rings: Vec<&[hilos::trace::Event]> =
        report.cluster.deployments.iter().map(|d| d.events.as_slice()).collect();
    let cons = hilos::trace::check_conservation(&rings);
    assert!(cons.holds(), "event conservation violated under drain: {cons:?}");
    assert_eq!(cons.arrived, 192);
    assert_eq!(cons.completed, 192);
    let migrations = rings
        .iter()
        .flat_map(|r| r.iter())
        .filter(|e| matches!(e.kind, hilos::trace::EventKind::Migrated { .. }))
        .count();
    assert!(migrations >= report.drained_requests as usize, "drained work must leave a trail");
    let source_kinds: Vec<&str> = rings[drained].iter().map(|e| e.kind.label()).collect();
    assert!(source_kinds.contains(&"drain") && source_kinds.contains(&"retired"));

    // The source is *empty*: no live shard allocations, no parked
    // demoted KV awaiting a recall that can never come.
    for eng in elastic.deployments() {
        assert_eq!(eng.ledger().live_requests(), 0, "leaked shard allocations");
        assert_eq!(eng.parked_victim_kv(), 0, "parked KV must drain with the slot");
    }

    // Deterministic under drain + migration too.
    let mut again = build(Some(300));
    assert_eq!(report, again.run_trace(&trace).unwrap());
}

/// The full elastic story on the bursty seeded trace: a keep-alive
/// autoscaler over cost-normalized routing scales up for bursts, drains
/// and retires between them, pre-warms from the learned gap histogram —
/// and never loses a request. Utilization billing undercuts what the
/// same fleet reserved at peak would have paid.
#[test]
fn bursty_keep_alive_run_scales_both_ways_with_zero_lost_requests() {
    let trace = TraceConfig::flash_crowd_mix(384, 42, 6, 2400).generate().unwrap();
    let build = || {
        ElasticClusterEngine::new(
            vec![
                ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
                ServeEngine::new(hilos(6), ServeConfig::new(8)).unwrap(),
                ServeEngine::new(hilos(4), ServeConfig::new(8)).unwrap(),
            ],
            Box::new(CostNormalizedPressure),
            Box::new(HybridHistogramKeepAlive::new(64)),
            ElasticConfig::new(1),
        )
    };
    let mut elastic = build();
    let report = elastic.run_trace(&trace).unwrap();

    // The fleet breathed: scaled up under bursts, released between them.
    assert!(report.scale_ups >= 1, "bursts must trigger scale-ups: {:?}", report.events);
    assert!(report.retires >= 1, "calm gaps must retire capacity: {:?}", report.events);
    assert!(report.peak_active > 1, "a flash crowd needs more than the floor");

    // Zero loss across every scale-up, drain and retire.
    assert_eq!(report.cluster.completed(), 384);
    assert_eq!(report.lost(), 0);
    let mut ids: Vec<u64> = report.cluster.outcomes().map(|o| o.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 384);
    for eng in elastic.deployments() {
        assert_eq!(eng.ledger().live_requests(), 0);
    }

    // Utilization billing beats reserving the peak fleet for the whole
    // run (the ≥1.3× margin is recorded in BENCH_cluster.json and gated
    // exactly in CI; here we assert the direction).
    let reserved_slots: Vec<(f64, f64)> =
        report.bills.iter().map(|b| (b.price_usd, b.power_w)).collect();
    let reserved = hilos::metrics::FleetBill::reserved(&reserved_slots, report.cluster.elapsed_s());
    let goodput = report.cluster.goodput_tokens();
    assert!(goodput > 0);
    assert!(
        report.fleet_bill().cost_usd() < reserved.cost_usd(),
        "elastic bill {} must undercut the reserved fleet {}",
        report.fleet_bill().cost_usd(),
        reserved.cost_usd()
    );

    // Deterministic end to end: lifecycle events, bills and outcomes.
    let mut again = build();
    assert_eq!(report, again.run_trace(&trace).unwrap());
}

/// Parallel lockstep stepping through the elastic engine: both the
/// bursty keep-alive run (scale-ups, pre-warms, retires) and a scripted
/// live drain (mid-run migration of in-flight work) produce a
/// bit-identical [`hilos::core::ElasticReport`] at 1, 2 and 4 worker
/// threads. The fleet-sizing loop is pure phase-B work, so the thread
/// count cannot reach any lifecycle, migration or billing decision.
#[test]
fn elastic_parallel_stepping_is_bit_identical_across_thread_counts() {
    let bursty_trace = TraceConfig::flash_crowd_mix(384, 42, 6, 2400).generate().unwrap();
    let bursty_at = |threads: usize| {
        let mut elastic = ElasticClusterEngine::new(
            vec![
                ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
                ServeEngine::new(hilos(6), ServeConfig::new(8)).unwrap(),
                ServeEngine::new(hilos(4), ServeConfig::new(8)).unwrap(),
            ],
            Box::new(CostNormalizedPressure),
            Box::new(HybridHistogramKeepAlive::new(64)),
            ElasticConfig {
                cluster: ClusterConfig::new().with_cluster_threads(threads),
                ..ElasticConfig::new(1)
            },
        );
        elastic.run_trace(&bursty_trace).unwrap()
    };
    let serial = bursty_at(1);
    assert!(serial.scale_ups >= 1 && serial.retires >= 1, "the fleet must breathe");
    for threads in [2, 4] {
        assert_eq!(serial, bursty_at(threads), "{threads}-thread bursty run drifted from serial");
    }

    let drain_trace = TraceConfig { mean_interarrival_steps: 6, ..TraceConfig::azure_mix(192, 42) }
        .generate()
        .unwrap();
    let drain_at = |threads: usize| {
        let mut elastic = ElasticClusterEngine::new(
            vec![
                ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
                ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
            ],
            Box::new(RoundRobin::new()),
            Box::new(ScriptedScaler { up_at: None, down_at: Some(300) }),
            ElasticConfig {
                initial_active: 2,
                cluster: ClusterConfig::new().with_cluster_threads(threads),
                ..ElasticConfig::new(2)
            },
        );
        elastic.run_trace(&drain_trace).unwrap()
    };
    let serial = drain_at(1);
    assert!(serial.drained_requests > 0, "the drain must migrate mid-flight work");
    for threads in [2, 4] {
        assert_eq!(serial, drain_at(threads), "{threads}-thread drain run drifted from serial");
    }
}
