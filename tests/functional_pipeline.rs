//! Cross-crate functional integration: the umbrella crate's numerics
//! paths and schedule tooling working together.

use hilos::accel::{attention_kernel, sliding_window_attention, AttentionInputs, MatrixF32};
use hilos::core::FunctionalBlock;
use hilos::llm::{RetrievalTask, RetrievalTaskConfig};
use hilos_bench::experiments;

fn context(s: usize, h: usize, seed: u64) -> MatrixF32 {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
    };
    MatrixF32::from_fn(s, h, |_, _| next())
}

/// A decode "session": grow the context token by token through the
/// writeback path and check every step against the baseline.
#[test]
fn incremental_decode_session_stays_exact() {
    let block = FunctionalBlock::new(32, 77);
    let xs = context(64, 32, 5);
    for step in 8..16 {
        let prefix = MatrixF32::from_fn(step, 32, |r, c| xs.at(r, c));
        let xq: Vec<f32> = xs.row(step).to_vec();
        let base = block.attend_baseline(&xq, &prefix);
        // Buffered tail of up to 7 tokens, as between spills.
        let wb = block.attend_writeback(&xq, &prefix, step % 8).unwrap();
        assert!(base.max_abs_diff(&wb) < 3e-4, "step {step}");
    }
}

/// The synthetic retrieval task decodes identically through the plain
/// kernel and through the windowed kernel when the window covers all
/// needles.
#[test]
fn windowed_attention_preserves_retrieval_when_window_suffices() {
    let task = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(512, 3));
    let inputs = AttentionInputs {
        queries: &task.queries,
        keys: &task.keys,
        values: &task.values,
        valid: None,
        scale: task.scale,
        host_tail: None,
    };
    let full = attention_kernel(&inputs).unwrap();
    let windowed =
        sliding_window_attention(&task.queries, &task.keys, &task.values, task.scale, 10_000)
            .unwrap();
    assert_eq!(task.decode(&full), task.decode(&windowed));
}

/// The schedule experiment renders the Fig. 4(a) stages and a critical
/// path through the executed graph.
#[test]
fn schedule_gantt_is_renderable() {
    let s = experiments::run("schedule").expect("schedule experiment");
    assert!(s.contains("critical path:"));
    assert!(s.contains("loadkv:"));
}
