//! Cross-crate integration tests asserting the paper's headline claims
//! hold in the reproduction (shape, not absolute numbers — see
//! EXPERIMENTS.md for the paper-vs-measured table).

use hilos::baselines::{
    accuracy_comparison, FlexGenSystem, KvLocation, VllmMultiNode, DEFAULT_KEEP_FRACTION,
};
use hilos::core::{traffic, AlphaPolicy, HilosConfig, HilosSystem};
use hilos::llm::{presets, BatchSpec, RequestClass};
use hilos::metrics::{tokens_per_second_per_dollar, EnduranceModel};
use hilos::platform::SystemSpec;

fn hilos(n: usize, model: &hilos::llm::ModelConfig) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), model, &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(4)
}

fn flex_ssd(model: &hilos::llm::ModelConfig) -> FlexGenSystem {
    FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), model, KvLocation::SsdArray)
        .unwrap()
        .with_sim_layers(4)
}

/// Abstract headline: "up to 7.86x throughput" over conventional
/// SSD-based solutions.
#[test]
fn headline_speedup_in_band() {
    let mut best = 0.0f64;
    for model in [presets::opt_30b(), presets::opt_66b(), presets::opt_175b()] {
        for ctx in [64 * 1024u64, 128 * 1024] {
            let base = flex_ssd(&model).run_decode(16, ctx, 4).unwrap().tokens_per_second();
            let h = hilos(16, &model).run_decode(16, ctx, 4).unwrap().tokens_per_second();
            best = best.max(h / base);
        }
    }
    assert!((5.0..12.0).contains(&best), "best speedup {best} (paper: up to 7.86x)");
}

/// §6.3: HILOS(4) edges out FLEX(DRAM); HILOS(16) roughly doubles+ it.
#[test]
fn fig10_relations_to_flex_dram() {
    let model = presets::opt_66b();
    let dram = FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), &model, KvLocation::HostDram)
        .unwrap()
        .with_sim_layers(4);
    let bs = dram.max_batch(32 * 1024, 8, 16).unwrap();
    let dram_tps = dram.run_decode(bs, 32 * 1024, 4).unwrap().tokens_per_second();
    let h4 = hilos(4, &model).run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
    let h16 = hilos(16, &model).run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
    assert!(h4 / dram_tps > 0.95, "HILOS(4)/FLEX(DRAM) = {}", h4 / dram_tps);
    assert!(h16 / dram_tps > 1.85, "HILOS(16)/FLEX(DRAM) = {}", h16 / dram_tps);
}

/// §6.3: disabling the FPGAs degrades the chassis to 0.64-0.94x of
/// FLEX(SSD) — near-data compute, not raw device count, is what matters.
#[test]
fn jbof_without_fpgas_is_no_better() {
    let model = presets::opt_66b();
    let base = flex_ssd(&model).run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
    let jbof =
        FlexGenSystem::new(&SystemSpec::a100_chassis_no_fpga(16), &model, KvLocation::SsdArray)
            .unwrap()
            .with_sim_layers(4)
            .run_decode(16, 32 * 1024, 4)
            .unwrap()
            .tokens_per_second();
    let ratio = jbof / base;
    assert!((0.6..1.0).contains(&ratio), "ratio {ratio} (paper: 0.64-0.94x)");
}

/// Eq. 3: the ANS interconnect-traffic reduction is (s+1)/2.
#[test]
fn eq3_traffic_ratio() {
    for s in [2u64, 1024, 32 * 1024, 128 * 1024] {
        let ratio = traffic::baseline_step_bytes(s, 12288) / traffic::ans_step_bytes(12288);
        assert!((ratio - traffic::traffic_reduction_ratio(s)).abs() < 1e-9);
    }
}

/// §4.2 / Fig. 13: the analytic α selector agrees with the empirical
/// sweep — its choice is within a few percent of the best fixed α.
#[test]
fn alpha_selector_matches_empirical_optimum() {
    let model = presets::opt_66b();
    let selected = hilos(16, &model).select_alpha(16, 32 * 1024).unwrap();
    let mut best_alpha = 0.0;
    let mut best_tps = 0.0f64;
    let mut selected_tps = 0.0;
    for alpha in [0.0, 0.125, 0.25, 0.5, 0.75] {
        let cfg = HilosConfig::new(16).with_alpha(AlphaPolicy::Fixed(alpha));
        let sys = HilosSystem::new(&SystemSpec::a100_smartssd(16), &model, &cfg)
            .unwrap()
            .with_sim_layers(4);
        let tps = sys.run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
        if tps > best_tps {
            best_tps = tps;
            best_alpha = alpha;
        }
        if alpha == selected {
            selected_tps = tps;
        }
    }
    assert!(
        selected_tps >= best_tps * 0.95,
        "selected alpha {selected} ({selected_tps} tok/s) vs empirical best {best_alpha} ({best_tps})"
    );
}

/// Fig. 15: every optimization contributes, X-cache more than writeback.
#[test]
fn ablation_ordering_holds() {
    let model = presets::opt_30b();
    let base = flex_ssd(&model).run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
    let run = |wb: bool, x: bool| {
        let cfg = HilosConfig::ans_only(16).with_writeback(wb).with_xcache(x);
        HilosSystem::new(&SystemSpec::a100_smartssd(16), &model, &cfg)
            .unwrap()
            .with_sim_layers(4)
            .run_decode(16, 32 * 1024, 8)
            .unwrap()
            .tokens_per_second()
    };
    let ans = run(false, false);
    let wb = run(true, false);
    let x = run(false, true);
    let full = run(true, true);
    assert!(ans > 2.0 * base, "ANS alone should be a multiple of FLEX(SSD)");
    assert!(wb > ans && x > ans && full > ans);
    assert!(x > wb, "X-cache is the bigger lever (paper: 1.64x vs 1.32x)");
}

/// Fig. 16a: HILOS beats FLEX(SSD) on tokens/s/$ despite costing ~3x.
#[test]
fn cost_efficiency_band() {
    let model = presets::opt_66b();
    let flex_spec = SystemSpec::a100_pm9a3(4);
    let hilos_spec = SystemSpec::a100_smartssd(16);
    let base = flex_ssd(&model).run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
    let h = hilos(16, &model).run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
    let rel = tokens_per_second_per_dollar(&hilos_spec, h)
        / tokens_per_second_per_dollar(&flex_spec, base);
    assert!((1.2..5.0).contains(&rel), "relative cost efficiency {rel} (paper: up to 2.02x)");
}

/// Fig. 16b / §6.6: endurance gains over the baseline and the 4M-request
/// claim for long requests on the 175B model.
#[test]
fn endurance_claims() {
    let e = EnduranceModel::smartssd_array(16);
    let m175 = presets::opt_175b();
    let hilos_long =
        e.serviceable_requests(e.hilos_request_bytes(&m175, RequestClass::Long, 0.5, 16));
    assert!(hilos_long > 3.0e6, "long-request budget {hilos_long} (paper: >4.08M)");
    for class in RequestClass::all() {
        let gain = e.flexgen_request_bytes(&presets::opt_66b(), class, 16)
            / e.hilos_request_bytes(&presets::opt_66b(), class, 0.5, 16);
        assert!((1.2..1.6).contains(&gain), "{class}: gain {gain} (paper: 1.34-1.47x)");
    }
}

/// Fig. 17b: HILOS outruns the 2x4xA6000 vLLM deployment on 175B.
#[test]
fn beats_multinode_vllm() {
    let model = presets::opt_175b();
    let v = VllmMultiNode::paper_testbed();
    for ctx in [16 * 1024u64, 32 * 1024] {
        let vllm_tps = v.tokens_per_second(&model, 1, ctx).unwrap();
        let h = hilos(16, &model).run_decode(16, ctx, 4).unwrap().tokens_per_second();
        let ratio = h / vllm_tps;
        assert!(ratio > 1.2, "ctx {ctx}: HILOS/vLLM = {ratio} (paper: 1.64-1.81x)");
    }
}

/// Fig. 18c: HILOS is lossless; InstAttention's 1/8 retrieval pays F1.
#[test]
fn accuracy_is_lossless_vs_lossy() {
    let cmp = accuracy_comparison(4096, 8, DEFAULT_KEEP_FRACTION).unwrap();
    assert!((cmp.hilos_f1 - cmp.flash_f1).abs() < 0.02, "HILOS must match FlashAttention");
    let gap = cmp.lossy_gap_points();
    assert!((1.0..12.0).contains(&gap), "lossy gap {gap} pp (paper: 3.52-5.73)");
}

/// §7.1: one ISP-CSD ≈ four SmartSSDs.
#[test]
fn isp_parity_with_four_smartssds() {
    let model = presets::opt_66b();
    let four = hilos(4, &model).run_decode(16, 32 * 1024, 4).unwrap().tokens_per_second();
    let isp = HilosSystem::new(&SystemSpec::a100_isp(1), &model, &HilosConfig::new(1))
        .unwrap()
        .with_sim_layers(4)
        .run_decode(16, 32 * 1024, 4)
        .unwrap()
        .tokens_per_second();
    let ratio = isp / four;
    assert!((0.7..1.8).contains(&ratio), "ISP/4xSmartSSD = {ratio} (paper: ~1x)");
}

/// The paper's OOM walls reproduce exactly where they should.
#[test]
fn oom_walls() {
    let m66 = presets::opt_66b();
    // FLEX(DRAM): 66B/32K caps at batch 2; 128K fails even at batch 1.
    let dram = FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), &m66, KvLocation::HostDram).unwrap();
    assert_eq!(dram.max_batch(32 * 1024, 8, 16), Some(2));
    assert_eq!(dram.max_batch(128 * 1024, 8, 16), None);
    // HILOS swallows the same jobs on flash.
    hilos(16, &m66).check_capacity(&BatchSpec::new(16, 128 * 1024, 64)).unwrap();
}

/// Decode throughput monotonically degrades with context and improves
/// with device count, across every Table 2 model.
#[test]
fn monotonicity_across_model_zoo() {
    for model in presets::all() {
        let short = hilos(8, &model).run_decode(8, 16 * 1024, 4).unwrap().tokens_per_second();
        let long = hilos(8, &model).run_decode(8, 64 * 1024, 4).unwrap().tokens_per_second();
        assert!(short > long, "{}: {short} vs {long}", model.name());
        // Device scaling shows once KV I/O dominates (64K); at short
        // contexts GQA models are weight-streaming-bound and flat.
        let more_dev = hilos(16, &model).run_decode(8, 64 * 1024, 4).unwrap().tokens_per_second();
        assert!(more_dev > long * 0.999, "{}: 16 dev {more_dev} vs 8 dev {long}", model.name());
    }
}
