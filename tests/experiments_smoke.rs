//! Smoke tests: every `repro` experiment renders a non-empty table with
//! its expected headers. These run the same code paths as the binary.

use hilos_bench::experiments;

fn check(id: &str, must_contain: &[&str]) {
    let out = experiments::run(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    assert!(!out.trim().is_empty(), "{id} produced no output");
    for needle in must_contain {
        assert!(out.contains(needle), "{id}: missing {needle:?} in output:\n{out}");
    }
}

#[test]
fn fig2_smoke() {
    check("fig2", &["Figure 2(a)", "Figure 2(b)", "kv_cache", "TB"]);
}

#[test]
fn fig4_smoke() {
    check("fig4", &["Figure 4(b)", "Figure 4(c)", "Baseline(SSD+CPU)", "Proposed(ANS)"]);
}

#[test]
fn table3_smoke() {
    check("table3", &["Table 3", "model", "paper", "296.05"]);
}

#[test]
fn estimator_smoke() {
    check("estimator", &["§5.1", "Pearson r"]);
}

#[test]
fn fig10_smoke() {
    check("fig10", &["Figure 10", "OPT-175B", "HILOS(16)", "OOM"]);
}

#[test]
fn fig11_smoke() {
    check("fig11", &["Figure 11(a)", "Figure 11(b)", "CPU OOM"]);
}

#[test]
fn fig12_smoke() {
    check("fig12a", &["Figure 12(a)", "SSD P2P read"]);
    check("fig12b", &["Figure 12(b)", "Qwen2.5-32B", "Mixtral-8x7B", "GLaM-143B"]);
}

#[test]
fn fig13_smoke() {
    check("fig13", &["Figure 13", "OPT-30B", "OPT-66B", "a=50%"]);
}

#[test]
fn fig14_smoke() {
    check("fig14", &["Figure 14", "speedup"]);
}

#[test]
fn fig15_smoke() {
    check("fig15", &["Figure 15", "ANS+WB+X", "GLaM-143B"]);
}

#[test]
fn fig16_smoke() {
    check("fig16a", &["Figure 16(a)", "H100", "HILOS(16)"]);
    check("fig16b", &["Figure 16(b)", "Long(I:8K/O:350)"]);
}

#[test]
fn fig17_smoke() {
    check("fig17a", &["Figure 17(a)", "J/tok"]);
    check("fig17b", &["Figure 17(b)", "vLLM(8xA6000)"]);
}

#[test]
fn fig18_smoke() {
    check("fig18ab", &["ISP-CSD"]);
    check("fig18c", &["Figure 18(c)", "FlashAttention", "InstAttention"]);
}

#[test]
fn unknown_experiment_rejected() {
    assert!(experiments::run("fig99").is_none());
}

#[test]
fn all_ids_resolve() {
    for id in experiments::ALL {
        assert!(experiments::run(id).is_some(), "{id} should resolve");
    }
}
