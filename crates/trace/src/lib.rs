//! # hilos-trace — deterministic request-lifecycle tracing
//!
//! A zero-cost, ring-buffered, structured event log for the serving stack,
//! plus the analysis layers built on top of it: exact per-request latency
//! attribution and a Chrome `trace_event` / Perfetto JSON exporter.
//!
//! ## Event taxonomy
//!
//! Every [`Event`] is stamped with the **deployment-local clock** (`t_s`,
//! seconds on that deployment's busy-time axis), the deployment index, and
//! a request id ([`NO_REQUEST`] for deployment-scoped events). The
//! [`EventKind`] payloads carry the byte/token quantities needed for
//! attribution:
//!
//! | phase        | events |
//! |--------------|--------|
//! | arrival      | [`EventKind::Arrived`], [`EventKind::Routed`] |
//! | admission    | [`EventKind::Admitted`], [`EventKind::PrefixHit`], [`EventKind::Recall`] |
//! | prefill      | [`EventKind::PrefillChunk`], [`EventKind::Joined`] |
//! | decode       | [`EventKind::Emit`] |
//! | displacement | [`EventKind::Preempted`], [`EventKind::Demoted`], [`EventKind::Migrated`] |
//! | terminal     | [`EventKind::Completed`], [`EventKind::Rejected`], [`EventKind::Shed`] |
//! | elastic      | [`EventKind::ScaleUp`], [`EventKind::Warming`], [`EventKind::Activated`], [`EventKind::Drain`], [`EventKind::Retired`] |
//!
//! Conservation invariant (proptested in `hilos-core`): every `Arrived` is
//! terminally paired with **exactly one** of `Completed | Rejected | Shed`,
//! across preemption, cross-deployment migration, and elastic drain. A
//! migrated request's terminal event lands on the *target* deployment's
//! ring; [`check_conservation`] therefore matches ids across all rings.
//!
//! ## Determinism contract
//!
//! Emission is **observational**: recording an event never mutates engine
//! clocks or accounting, so with tracing off (the default [`NullSink`])
//! every golden FNV pin of the serving stack is bit-identical, and with
//! tracing on the event stream itself is deterministic — same seed, same
//! stream — and pinned in CI via [`events_fnv`] (FNV-1a over each event's
//! kind code, `f64::to_bits` timestamp, ids, and payload fields in
//! declaration order). [`EventRing`] additionally folds a streaming FNV at
//! record time ([`EventRing::stream_fnv`]) that covers events beyond the
//! ring's capacity.
//!
//! ## Exporter format
//!
//! [`perfetto_json`] writes the Chrome `trace_event` JSON array format
//! (`{"displayTimeUnit": "ms", "traceEvents": [...]}`), which
//! `ui.perfetto.dev` and `chrome://tracing` both load directly:
//!
//! * one **process per deployment** (`pid` = deployment index, named via
//!   `process_name` metadata),
//! * one **async span per completed request** (`ph: "b"/"e"`, `cat:
//!   "request"`, `id` = request id) from (rebased) arrival to completion,
//!   tiled internally with the request's additive attribution phases
//!   (migration → queue → recall → prefill → interference → preempt-lost →
//!   decode) so the child slices exactly partition the parent span,
//! * **instant events** (`ph: "i"`) for preemptions, demotions,
//!   migrations, sheds, and elastic lifecycle transitions.
//!
//! Timestamps are microseconds (`t_s * 1e6`). [`validate_json`] and
//! [`spans_nest`] check the export without any external JSON dependency.
//!
//! ## Attribution
//!
//! [`LatencyAttribution`] folds each completed request's events into an
//! exact additive decomposition of its end-to-end latency
//! ([`RequestAttribution`]): `queue + recall + prefill + interference +
//! preemption-loss + migration + decode == e2e`, with decode defined as
//! the remainder so the identity holds to f64 exactness by construction.
//! Chunk totals reconcile against the engine's `PrefillBreakdown` via
//! [`prefill_chunk_totals`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod event;
mod export;
mod json;
mod sink;

pub use attribution::{
    check_conservation, prefill_chunk_totals, ConservationReport, LatencyAttribution,
    PrefillChunkTotals, RequestAttribution,
};
pub use event::{events_fnv, Event, EventKind, NO_REQUEST};
pub use export::perfetto_json;
pub use json::{parse_json, spans_nest, validate_json, Json};
pub use sink::{EventRing, NullSink, TraceSink};
