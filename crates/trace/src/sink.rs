//! The sink abstraction: where emitted events go.

use std::collections::VecDeque;

use crate::event::{Event, FNV_OFFSET};

/// Destination for emitted lifecycle events.
///
/// Engines cache [`TraceSink::enabled`] and skip event construction
/// entirely when it is `false`, so the disabled path costs one branch —
/// the [`NullSink`] makes instrumented builds bit-identical (and
/// wall-clock-identical, guarded in `bench_serving`) to uninstrumented
/// ones.
/// `Send` is a supertrait so a traced run state can cross into a cluster
/// fan-out worker for its lockstep iteration; both shipped sinks are
/// plain owned buffers.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool;
    /// Record one event. Must be observational: no engine state changes.
    fn record(&mut self, ev: Event);
    /// Copy out the retained events, oldest first.
    fn snapshot(&self) -> Vec<Event>;
    /// How many events were evicted beyond the sink's capacity.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The tracing-off sink: reports disabled, retains nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _ev: Event) {}
    fn snapshot(&self) -> Vec<Event> {
        Vec::new()
    }
}

/// Bounded ring buffer of events with a streaming FNV-1a hash.
///
/// The ring retains the most recent `capacity` events (oldest evicted
/// first, counted in [`EventRing::dropped`]); the hash is folded at record
/// time so [`EventRing::stream_fnv`] covers the *entire* stream even after
/// eviction.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    fnv: u64,
}

impl EventRing {
    /// A ring retaining up to `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            fnv: FNV_OFFSET,
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// FNV-1a hash over every event ever recorded, eviction included.
    pub fn stream_fnv(&self) -> u64 {
        self.fnv
    }
}

impl TraceSink for EventRing {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: Event) {
        self.fnv = ev.fold_fnv(self.fnv);
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().copied().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{events_fnv, EventKind};

    fn ev(i: u64) -> Event {
        Event { t_s: i as f64, deployment: 0, request: i, kind: EventKind::Routed }
    }

    #[test]
    fn ring_retains_newest_and_counts_drops() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.record(ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let snap = ring.snapshot();
        assert_eq!(snap.iter().map(|e| e.request).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn stream_fnv_covers_evicted_events() {
        let all: Vec<Event> = (0..5).map(ev).collect();
        let mut ring = EventRing::new(2);
        for e in &all {
            ring.record(*e);
        }
        assert_eq!(ring.stream_fnv(), events_fnv(&all));
        assert_ne!(ring.stream_fnv(), events_fnv(&ring.snapshot()));
    }

    #[test]
    fn snapshot_fnv_matches_stream_when_nothing_dropped() {
        let mut ring = EventRing::new(16);
        for i in 0..5 {
            ring.record(ev(i));
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.stream_fnv(), events_fnv(&ring.snapshot()));
    }

    #[test]
    fn null_sink_is_disabled_and_empty() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(ev(1));
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
    }
}
