//! Typed lifecycle events and the deterministic stream hash.

/// Request-id sentinel for deployment-scoped events (elastic lifecycle
/// transitions) that are not tied to any single request.
pub const NO_REQUEST: u64 = u64::MAX;

pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;
pub(crate) const FNV_PRIME: u64 = 0x100000001b3;

/// One structured lifecycle event.
///
/// `t_s` is the **deployment-local** clock: each deployment advances its
/// own busy-time axis, so timestamps are comparable only within one
/// deployment's ring. Cross-deployment moves carry rebased timestamps in
/// the [`EventKind::Migrated`] payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Deployment-local timestamp in seconds.
    pub t_s: f64,
    /// Index of the deployment the event happened on.
    pub deployment: u32,
    /// Request id, or [`NO_REQUEST`] for deployment-scoped events.
    pub request: u64,
    /// What happened, with its attribution payload.
    pub kind: EventKind,
}

/// The event taxonomy. Payload fields carry the byte/token quantities the
/// attribution layer needs; see the crate docs for the phase table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A request entered a deployment's arrival queue.
    Arrived {
        /// Prompt length of the arriving request.
        prompt_tokens: u64,
    },
    /// The cluster router dispatched the request to this deployment.
    Routed,
    /// Admission: the request left the queue and claimed KV shards.
    Admitted {
        /// Prefix-cache tokens whose prefill was skipped at admission.
        reused_tokens: u64,
    },
    /// The prefix-cache probe matched a cached prefix.
    PrefixHit {
        /// Tokens of prefill skipped thanks to the hit.
        reused_tokens: u64,
    },
    /// Residency-ladder recall I/O charged to this request.
    Recall {
        /// Bytes moved back up the ladder.
        bytes: u64,
        /// Seconds of recall I/O charged on the deployment clock.
        seconds: f64,
    },
    /// One token-budgeted prefill chunk was executed.
    PrefillChunk {
        /// First prompt token position of the chunk.
        start: u64,
        /// Tokens ingested by the chunk.
        tokens: u64,
        /// Seconds the chunk occupied the step.
        seconds: f64,
        /// Whether the chunk overlapped a running decode batch.
        interference: bool,
    },
    /// Prefill finished; the request joined the decode batch.
    Joined,
    /// One output token was emitted.
    Emit {
        /// Zero-based index of the emitted token.
        index: u64,
        /// Prefill-chunk seconds that stretched this decode step.
        interference_s: f64,
    },
    /// The scheduler preempted the request; its progress re-queues.
    Preempted {
        /// Output tokens already emitted when preempted.
        emitted: u64,
    },
    /// Victim KV was demoted down the residency ladder instead of dropped.
    Demoted {
        /// KV tokens demoted.
        tokens: u64,
        /// KV bytes demoted.
        bytes: u64,
        /// Destination tier index (0 = HBM, 1 = DRAM, 2 = SSD).
        tier: u8,
    },
    /// The request was re-dispatched onto **this** deployment from another.
    Migrated {
        /// Source deployment index.
        from: u32,
        /// Arrival timestamp rebased onto this deployment's clock.
        arrival_s: f64,
        /// First-token timestamp rebased onto this deployment's clock
        /// (meaningful only when `emitted > 0`).
        first_token_s: f64,
        /// Output tokens already emitted on the source deployment.
        emitted: u64,
    },
    /// Terminal: the request finished its full output budget.
    Completed {
        /// Output tokens served.
        output_tokens: u64,
    },
    /// Terminal: the request could never be placed and was rejected.
    Rejected,
    /// Terminal: overload control dropped the request past its deadline.
    Shed,
    /// Elastic: a deployment slot began provisioning.
    ScaleUp,
    /// Elastic: provisioned slot started loading weights.
    Warming,
    /// Elastic: slot became active and joined the serving fleet.
    Activated,
    /// Elastic: slot began draining ahead of retirement.
    Drain,
    /// Elastic: slot retired and stopped billing.
    Retired,
}

impl EventKind {
    /// Stable one-byte discriminant fed to the stream hash. Codes are
    /// append-only: changing an existing code breaks the CI event-stream
    /// pin by design.
    pub fn code(&self) -> u8 {
        match self {
            EventKind::Arrived { .. } => 0,
            EventKind::Routed => 1,
            EventKind::Admitted { .. } => 2,
            EventKind::PrefixHit { .. } => 3,
            EventKind::Recall { .. } => 4,
            EventKind::PrefillChunk { .. } => 5,
            EventKind::Joined => 6,
            EventKind::Emit { .. } => 7,
            EventKind::Preempted { .. } => 8,
            EventKind::Demoted { .. } => 9,
            EventKind::Migrated { .. } => 10,
            EventKind::Completed { .. } => 11,
            EventKind::Rejected => 12,
            EventKind::Shed => 13,
            EventKind::ScaleUp => 14,
            EventKind::Warming => 15,
            EventKind::Activated => 16,
            EventKind::Drain => 17,
            EventKind::Retired => 18,
        }
    }

    /// Human-readable label, used as the Perfetto instant-event name.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Arrived { .. } => "arrived",
            EventKind::Routed => "routed",
            EventKind::Admitted { .. } => "admitted",
            EventKind::PrefixHit { .. } => "prefix_hit",
            EventKind::Recall { .. } => "recall",
            EventKind::PrefillChunk { .. } => "prefill_chunk",
            EventKind::Joined => "joined",
            EventKind::Emit { .. } => "emit",
            EventKind::Preempted { .. } => "preempted",
            EventKind::Demoted { .. } => "demoted",
            EventKind::Migrated { .. } => "migrated",
            EventKind::Completed { .. } => "completed",
            EventKind::Rejected => "rejected",
            EventKind::Shed => "shed",
            EventKind::ScaleUp => "scale_up",
            EventKind::Warming => "warming",
            EventKind::Activated => "activated",
            EventKind::Drain => "drain",
            EventKind::Retired => "retired",
        }
    }
}

fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Event {
    /// Fold this event into a running FNV-1a hash: kind code, then
    /// `t_s.to_bits()`, deployment, request, then payload fields in
    /// declaration order (all little-endian; bools as one byte).
    pub fn fold_fnv(&self, h: u64) -> u64 {
        let mut h = fold_bytes(h, &[self.kind.code()]);
        h = fold_bytes(h, &self.t_s.to_bits().to_le_bytes());
        h = fold_bytes(h, &self.deployment.to_le_bytes());
        h = fold_bytes(h, &self.request.to_le_bytes());
        match self.kind {
            EventKind::Arrived { prompt_tokens } => fold_bytes(h, &prompt_tokens.to_le_bytes()),
            EventKind::Admitted { reused_tokens } | EventKind::PrefixHit { reused_tokens } => {
                fold_bytes(h, &reused_tokens.to_le_bytes())
            }
            EventKind::Recall { bytes, seconds } => {
                let h = fold_bytes(h, &bytes.to_le_bytes());
                fold_bytes(h, &seconds.to_bits().to_le_bytes())
            }
            EventKind::PrefillChunk { start, tokens, seconds, interference } => {
                let h = fold_bytes(h, &start.to_le_bytes());
                let h = fold_bytes(h, &tokens.to_le_bytes());
                let h = fold_bytes(h, &seconds.to_bits().to_le_bytes());
                fold_bytes(h, &[interference as u8])
            }
            EventKind::Emit { index, interference_s } => {
                let h = fold_bytes(h, &index.to_le_bytes());
                fold_bytes(h, &interference_s.to_bits().to_le_bytes())
            }
            EventKind::Preempted { emitted } => fold_bytes(h, &emitted.to_le_bytes()),
            EventKind::Demoted { tokens, bytes, tier } => {
                let h = fold_bytes(h, &tokens.to_le_bytes());
                let h = fold_bytes(h, &bytes.to_le_bytes());
                fold_bytes(h, &[tier])
            }
            EventKind::Migrated { from, arrival_s, first_token_s, emitted } => {
                let h = fold_bytes(h, &from.to_le_bytes());
                let h = fold_bytes(h, &arrival_s.to_bits().to_le_bytes());
                let h = fold_bytes(h, &first_token_s.to_bits().to_le_bytes());
                fold_bytes(h, &emitted.to_le_bytes())
            }
            EventKind::Completed { output_tokens } => fold_bytes(h, &output_tokens.to_le_bytes()),
            EventKind::Routed
            | EventKind::Joined
            | EventKind::Rejected
            | EventKind::Shed
            | EventKind::ScaleUp
            | EventKind::Warming
            | EventKind::Activated
            | EventKind::Drain
            | EventKind::Retired => h,
        }
    }
}

/// FNV-1a hash of an event stream — the CI-pinned determinism surface.
/// Equals [`crate::EventRing::stream_fnv`] when nothing was dropped.
pub fn events_fnv(events: &[Event]) -> u64 {
    events.iter().fold(FNV_OFFSET, |h, e| e.fold_fnv(h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, kind: EventKind) -> Event {
        Event { t_s, deployment: 0, request: 7, kind }
    }

    #[test]
    fn fnv_is_order_and_payload_sensitive() {
        let a = ev(1.0, EventKind::Arrived { prompt_tokens: 100 });
        let b = ev(2.0, EventKind::Completed { output_tokens: 8 });
        assert_ne!(events_fnv(&[a, b]), events_fnv(&[b, a]));
        let a2 = ev(1.0, EventKind::Arrived { prompt_tokens: 101 });
        assert_ne!(events_fnv(&[a, b]), events_fnv(&[a2, b]));
        assert_eq!(events_fnv(&[a, b]), events_fnv(&[a, b]));
    }

    #[test]
    fn empty_stream_hashes_to_the_fnv_offset() {
        assert_eq!(events_fnv(&[]), FNV_OFFSET);
    }

    #[test]
    fn codes_are_distinct() {
        let kinds = [
            EventKind::Arrived { prompt_tokens: 0 },
            EventKind::Routed,
            EventKind::Admitted { reused_tokens: 0 },
            EventKind::PrefixHit { reused_tokens: 0 },
            EventKind::Recall { bytes: 0, seconds: 0.0 },
            EventKind::PrefillChunk { start: 0, tokens: 0, seconds: 0.0, interference: false },
            EventKind::Joined,
            EventKind::Emit { index: 0, interference_s: 0.0 },
            EventKind::Preempted { emitted: 0 },
            EventKind::Demoted { tokens: 0, bytes: 0, tier: 0 },
            EventKind::Migrated { from: 0, arrival_s: 0.0, first_token_s: 0.0, emitted: 0 },
            EventKind::Completed { output_tokens: 0 },
            EventKind::Rejected,
            EventKind::Shed,
            EventKind::ScaleUp,
            EventKind::Warming,
            EventKind::Activated,
            EventKind::Drain,
            EventKind::Retired,
        ];
        let mut codes: Vec<u8> = kinds.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
        for k in &kinds {
            assert!(!k.label().is_empty());
        }
    }
}
