//! Chrome `trace_event` / Perfetto JSON export.

use std::fmt::Write as _;

use crate::attribution::LatencyAttribution;
use crate::event::{Event, EventKind};

/// Render one event stream per deployment as a Chrome `trace_event` JSON
/// document that `ui.perfetto.dev` loads directly.
///
/// Layout: one process per deployment (`pid` = index in `rings`), an async
/// span per completed request (`cat: "request"`, `id` = request id) tiled
/// with its additive attribution phases, and instant events for
/// preemptions, demotions, migrations, sheds, and elastic lifecycle
/// transitions. Timestamps are microseconds of deployment-local busy time.
pub fn perfetto_json(rings: &[&[Event]]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    for (pid, ring) in rings.iter().enumerate() {
        if ring.is_empty() {
            continue;
        }
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"deployment {pid}\"}}}}"
            ),
        );
    }

    // One async span per completed request, internally tiled with its
    // attribution phases so the child slices exactly partition the span.
    let attr = LatencyAttribution::analyze(rings);
    for r in &attr.rows {
        let pid = r.deployment;
        let id = r.id;
        let begin = r.arrival_s * 1e6;
        let end = r.finished_s * 1e6;
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"request {id}\", \"cat\": \"request\", \"ph\": \"b\", \
                 \"pid\": {pid}, \"id\": {id}, \"ts\": {begin}, \
                 \"args\": {{\"ttft_ms\": {}, \"preemptions\": {}, \"reused_tokens\": {}}}}}",
                r.ttft_s * 1e3,
                r.preemptions,
                r.reused_tokens
            ),
        );
        let phases = [
            ("migration", r.migration_s),
            ("queue", r.queue_s),
            ("recall", r.recall_s),
            ("prefill", r.prefill_s),
            ("interference", r.interference_s),
            ("preempt_lost", r.preemption_lost_s),
            ("decode", r.decode_s),
        ];
        let mut t = begin;
        let last = phases.iter().rposition(|(_, d)| *d > 0.0);
        for (i, (name, dur)) in phases.iter().enumerate() {
            if *dur <= 0.0 {
                continue;
            }
            // The components sum to e2e, so sequential tiling lands on
            // `end`; clamp the final boundary to it against f64 drift.
            let stop = if Some(i) == last { end } else { (t + dur * 1e6).min(end) };
            push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"{name}\", \"cat\": \"request\", \"ph\": \"b\", \
                     \"pid\": {pid}, \"id\": {id}, \"ts\": {t}}}"
                ),
            );
            push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"{name}\", \"cat\": \"request\", \"ph\": \"e\", \
                     \"pid\": {pid}, \"id\": {id}, \"ts\": {stop}}}"
                ),
            );
            t = stop;
        }
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"request {id}\", \"cat\": \"request\", \"ph\": \"e\", \
                 \"pid\": {pid}, \"id\": {id}, \"ts\": {end}}}"
            ),
        );
    }

    // Instant markers for displacement and elastic lifecycle events.
    for (pid, ring) in rings.iter().enumerate() {
        for ev in ring.iter() {
            let mark = matches!(
                ev.kind,
                EventKind::Preempted { .. }
                    | EventKind::Demoted { .. }
                    | EventKind::Migrated { .. }
                    | EventKind::Shed
                    | EventKind::Rejected
                    | EventKind::ScaleUp
                    | EventKind::Warming
                    | EventKind::Activated
                    | EventKind::Drain
                    | EventKind::Retired
            );
            if !mark {
                continue;
            }
            let mut line = format!(
                "{{\"name\": \"{}\", \"cat\": \"lifecycle\", \"ph\": \"i\", \"s\": \"p\", \
                 \"pid\": {pid}, \"tid\": 0, \"ts\": {}",
                ev.kind.label(),
                ev.t_s * 1e6
            );
            if ev.request != crate::event::NO_REQUEST {
                let _ = write!(line, ", \"args\": {{\"request\": {}}}", ev.request);
            }
            line.push('}');
            push(&mut out, &mut first, &line);
        }
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_REQUEST;
    use crate::json::{parse_json, spans_nest, validate_json, Json};

    fn ev(t_s: f64, request: u64, kind: EventKind) -> Event {
        Event { t_s, deployment: 0, request, kind }
    }

    fn sample_ring() -> Vec<Event> {
        vec![
            ev(1.0, 7, EventKind::Arrived { prompt_tokens: 100 }),
            ev(1.5, 7, EventKind::Admitted { reused_tokens: 0 }),
            ev(2.0, 7, EventKind::Joined),
            ev(2.5, 7, EventKind::Emit { index: 0, interference_s: 0.0 }),
            ev(2.5, 7, EventKind::Completed { output_tokens: 1 }),
            ev(3.0, NO_REQUEST, EventKind::Drain),
        ]
    }

    #[test]
    fn export_is_valid_json_with_nesting_spans() {
        let ring = sample_ring();
        let doc = perfetto_json(&[&ring]);
        validate_json(&doc).unwrap();
        let spans = spans_nest(&doc).unwrap();
        // The request span plus its queue/prefill/decode phase slices.
        assert_eq!(spans, 4);
    }

    #[test]
    fn export_contains_process_metadata_and_instants() {
        let ring = sample_ring();
        let doc = perfetto_json(&[&ring]);
        let parsed = parse_json(&doc).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
        assert!(events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("i")
            && e.get("name").and_then(Json::as_str) == Some("drain")));
    }

    #[test]
    fn empty_rings_export_an_empty_document() {
        let doc = perfetto_json(&[]);
        validate_json(&doc).unwrap();
        assert_eq!(spans_nest(&doc).unwrap(), 0);
    }
}
