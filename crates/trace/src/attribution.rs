//! Per-request latency attribution and stream-conservation checks.

use std::collections::HashMap;

use crate::event::{Event, EventKind, NO_REQUEST};

/// Exact additive decomposition of one completed request's end-to-end
/// latency. The seven phase components sum to `e2e_s` by construction:
/// `decode_s` is defined as the remainder after the six measured phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestAttribution {
    /// Request id.
    pub id: u64,
    /// Deployment the request completed on.
    pub deployment: u32,
    /// Arrival timestamp, rebased onto the completing deployment's clock.
    pub arrival_s: f64,
    /// Completion timestamp on the completing deployment's clock.
    pub finished_s: f64,
    /// Time to first token (completion-stamped if nothing was emitted).
    pub ttft_s: f64,
    /// End-to-end latency. Defined as the component fold itself so the
    /// additive identity `components_sum() == e2e_s` is *bit-exact* (the
    /// fold re-associates identically); it agrees with
    /// `finished_s - arrival_s` to within one ulp.
    pub e2e_s: f64,
    /// Queue-wait: arrival/requeue to admission (routing is folded in —
    /// dispatch shares the arrival timestamp).
    pub queue_s: f64,
    /// Residency-ladder recall I/O charged at admission.
    pub recall_s: f64,
    /// Prompt-ingestion compute of the completing admission episode(s).
    pub prefill_s: f64,
    /// Prefill-chunk seconds of *other* requests stretching this
    /// request's decode steps.
    pub interference_s: f64,
    /// Admission-to-preemption time of episodes that were preempted.
    pub preemption_lost_s: f64,
    /// Time spent before re-entry on the completing deployment (source
    /// residency + re-dispatch), for migrated requests.
    pub migration_s: f64,
    /// Decode remainder: `e2e_s` minus the six components above.
    pub decode_s: f64,
    /// Preemptions suffered on the completing deployment.
    pub preemptions: u64,
    /// Prefix-cache tokens whose prefill was skipped.
    pub reused_tokens: u64,
}

impl RequestAttribution {
    /// Sum of the seven phase components — equals `e2e_s`.
    pub fn components_sum(&self) -> f64 {
        self.queue_s
            + self.recall_s
            + self.prefill_s
            + self.interference_s
            + self.preemption_lost_s
            + self.migration_s
            + self.decode_s
    }
}

/// Per-request fold state while walking one deployment's stream.
#[derive(Debug, Clone, Copy)]
struct Acc {
    arrival: f64,
    /// Timestamp through which latency has been attributed.
    cursor: f64,
    in_queue: bool,
    first_emit: Option<f64>,
    migration_t: Option<f64>,
    episode_recall: f64,
    episode_interference: f64,
    queue_s: f64,
    recall_s: f64,
    prefill_s: f64,
    lost_s: f64,
    preemptions: u64,
    reused_tokens: u64,
}

impl Acc {
    fn entering(t: f64) -> Self {
        Acc {
            arrival: t,
            cursor: t,
            in_queue: true,
            first_emit: None,
            migration_t: None,
            episode_recall: 0.0,
            episode_interference: 0.0,
            queue_s: 0.0,
            recall_s: 0.0,
            prefill_s: 0.0,
            lost_s: 0.0,
            preemptions: 0,
            reused_tokens: 0,
        }
    }
}

/// The latency-attribution analyzer: folds each completed request's
/// events into a [`RequestAttribution`] row.
///
/// Pass `rings` as one event slice per deployment (a single-deployment
/// run is `&[&report.events]`). A migrated request is attributed on the
/// deployment it *completed* on: the [`EventKind::Migrated`] payload
/// carries its rebased arrival, and everything before re-entry is lumped
/// into `migration_s`.
#[derive(Debug, Clone)]
pub struct LatencyAttribution {
    /// One row per completed request, in completion order per deployment.
    pub rows: Vec<RequestAttribution>,
}

impl LatencyAttribution {
    /// Analyze one event stream per deployment.
    pub fn analyze(rings: &[&[Event]]) -> Self {
        let mut rows = Vec::new();
        for ring in rings {
            let mut acc: HashMap<u64, Acc> = HashMap::new();
            for ev in ring.iter() {
                if ev.request == NO_REQUEST {
                    continue;
                }
                match ev.kind {
                    EventKind::Arrived { .. } => {
                        acc.insert(ev.request, Acc::entering(ev.t_s));
                    }
                    EventKind::Migrated { arrival_s, first_token_s, emitted, .. } => {
                        let mut a = Acc::entering(ev.t_s);
                        a.arrival = arrival_s;
                        a.migration_t = Some(ev.t_s);
                        a.first_emit = (emitted > 0).then_some(first_token_s);
                        acc.insert(ev.request, a);
                    }
                    EventKind::Admitted { reused_tokens } => {
                        if let Some(a) = acc.get_mut(&ev.request) {
                            a.queue_s += ev.t_s - a.cursor;
                            a.cursor = ev.t_s;
                            a.in_queue = false;
                            a.reused_tokens += reused_tokens;
                        }
                    }
                    EventKind::Recall { seconds, .. } => {
                        if let Some(a) = acc.get_mut(&ev.request) {
                            a.recall_s += seconds;
                            // Recall shares the admission stamp but is
                            // clock-charged after it; remember the charge
                            // so the prefill window excludes it.
                            a.episode_recall += seconds;
                        }
                    }
                    EventKind::Joined => {
                        if let Some(a) = acc.get_mut(&ev.request) {
                            a.prefill_s += ev.t_s - a.cursor - a.episode_recall;
                            a.cursor = ev.t_s;
                            a.episode_recall = 0.0;
                        }
                    }
                    EventKind::Emit { interference_s, .. } => {
                        if let Some(a) = acc.get_mut(&ev.request) {
                            if a.first_emit.is_none() {
                                a.first_emit = Some(ev.t_s);
                            }
                            a.episode_interference += interference_s;
                        }
                    }
                    EventKind::Preempted { .. } => {
                        if let Some(a) = acc.get_mut(&ev.request) {
                            // The whole admission episode is written off as
                            // preemption loss; interference inside it is
                            // part of that window, not double-counted, and
                            // recall already counted stays excluded.
                            a.lost_s += ev.t_s - a.cursor - a.episode_recall;
                            a.cursor = ev.t_s;
                            a.in_queue = true;
                            a.episode_recall = 0.0;
                            a.episode_interference = 0.0;
                            a.preemptions += 1;
                        }
                    }
                    EventKind::Completed { .. } => {
                        if let Some(mut a) = acc.remove(&ev.request) {
                            if a.in_queue {
                                // Completed straight out of the queue
                                // (unplaceable with retained output).
                                a.queue_s += ev.t_s - a.cursor;
                            }
                            let e2e = ev.t_s - a.arrival;
                            let migration_s = a.migration_t.map(|m| m - a.arrival).unwrap_or(0.0);
                            // `measured` associates left-to-right in the
                            // same order as `components_sum`, so storing
                            // `measured + decode_s` as e2e makes the
                            // additive identity bit-exact — double
                            // rounding of `S + (e2e - S)` can otherwise
                            // miss `e2e` by one ulp.
                            let measured = a.queue_s
                                + a.recall_s
                                + a.prefill_s
                                + a.episode_interference
                                + a.lost_s
                                + migration_s;
                            let decode_s = e2e - measured;
                            rows.push(RequestAttribution {
                                id: ev.request,
                                deployment: ev.deployment,
                                arrival_s: a.arrival,
                                finished_s: ev.t_s,
                                ttft_s: a.first_emit.unwrap_or(ev.t_s) - a.arrival,
                                e2e_s: measured + decode_s,
                                queue_s: a.queue_s,
                                recall_s: a.recall_s,
                                prefill_s: a.prefill_s,
                                interference_s: a.episode_interference,
                                preemption_lost_s: a.lost_s,
                                migration_s,
                                decode_s,
                                preemptions: a.preemptions,
                                reused_tokens: a.reused_tokens,
                            });
                        }
                    }
                    EventKind::Rejected | EventKind::Shed => {
                        acc.remove(&ev.request);
                    }
                    _ => {}
                }
            }
        }
        LatencyAttribution { rows }
    }

    /// The `n` completed requests with the worst TTFT, worst first
    /// (deterministic: ties broken by request id).
    pub fn worst_ttft(&self, n: usize) -> Vec<&RequestAttribution> {
        let mut sorted: Vec<&RequestAttribution> = self.rows.iter().collect();
        sorted.sort_by(|a, b| b.ttft_s.total_cmp(&a.ttft_s).then_with(|| a.id.cmp(&b.id)));
        sorted.truncate(n);
        sorted
    }

    /// The attribution row for one request id, if it completed.
    pub fn get(&self, id: u64) -> Option<&RequestAttribution> {
        self.rows.iter().find(|r| r.id == id)
    }
}

/// Outcome of the `Arrived` ↔ terminal pairing check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConservationReport {
    /// Distinct requests that arrived somewhere.
    pub arrived: usize,
    /// Requests that terminated `Completed`.
    pub completed: usize,
    /// Requests that terminated `Rejected`.
    pub rejected: usize,
    /// Requests that terminated `Shed`.
    pub shed: usize,
    /// Arrived requests with no terminal event (sorted).
    pub unterminated: Vec<u64>,
    /// Requests with duplicate arrivals, duplicate terminals, or a
    /// terminal without an arrival (sorted).
    pub violations: Vec<u64>,
}

impl ConservationReport {
    /// Whether every `Arrived` paired with exactly one terminal event.
    pub fn holds(&self) -> bool {
        self.unterminated.is_empty() && self.violations.is_empty()
    }
}

/// Check the conservation invariant across every deployment's stream:
/// each request id carries exactly one `Arrived` and exactly one of
/// `Completed | Rejected | Shed` — possibly on *different* deployments
/// when the request migrated.
pub fn check_conservation(rings: &[&[Event]]) -> ConservationReport {
    let mut arrivals: HashMap<u64, u32> = HashMap::new();
    let mut terminals: HashMap<u64, u32> = HashMap::new();
    let mut report = ConservationReport::default();
    for ring in rings {
        for ev in ring.iter() {
            if ev.request == NO_REQUEST {
                continue;
            }
            match ev.kind {
                EventKind::Arrived { .. } => *arrivals.entry(ev.request).or_default() += 1,
                EventKind::Completed { .. } => {
                    report.completed += 1;
                    *terminals.entry(ev.request).or_default() += 1;
                }
                EventKind::Rejected => {
                    report.rejected += 1;
                    *terminals.entry(ev.request).or_default() += 1;
                }
                EventKind::Shed => {
                    report.shed += 1;
                    *terminals.entry(ev.request).or_default() += 1;
                }
                _ => {}
            }
        }
    }
    report.arrived = arrivals.len();
    for (&id, &n) in &arrivals {
        match (n, terminals.get(&id).copied().unwrap_or(0)) {
            (1, 1) => {}
            (1, 0) => report.unterminated.push(id),
            _ => report.violations.push(id),
        }
    }
    for &id in terminals.keys() {
        if !arrivals.contains_key(&id) {
            report.violations.push(id);
        }
    }
    report.unterminated.sort_unstable();
    report.violations.sort_unstable();
    report.violations.dedup();
    report
}

/// Aggregate of a stream's `PrefillChunk` events, for reconciliation
/// against the engine's `PrefillBreakdown`: `tokens` and `chunks` match
/// exactly (integer accounting), the seconds match to float-association
/// tolerance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrefillChunkTotals {
    /// Chunk seconds that overlapped a running decode batch.
    pub interference_seconds: f64,
    /// Chunk seconds with no decode batch to disturb.
    pub stall_seconds: f64,
    /// Total prompt tokens ingested by chunks.
    pub tokens: u64,
    /// Number of chunks executed.
    pub chunks: u64,
}

impl PrefillChunkTotals {
    /// All chunk seconds, interfering or not.
    pub fn seconds(&self) -> f64 {
        self.interference_seconds + self.stall_seconds
    }
}

/// Fold one deployment's stream into its [`PrefillChunkTotals`].
pub fn prefill_chunk_totals(ring: &[Event]) -> PrefillChunkTotals {
    let mut t = PrefillChunkTotals::default();
    for ev in ring {
        if let EventKind::PrefillChunk { tokens, seconds, interference, .. } = ev.kind {
            if interference {
                t.interference_seconds += seconds;
            } else {
                t.stall_seconds += seconds;
            }
            t.tokens += tokens;
            t.chunks += 1;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, request: u64, kind: EventKind) -> Event {
        Event { t_s, deployment: 0, request, kind }
    }

    #[test]
    fn single_request_decomposition_is_exact() {
        let ring = vec![
            ev(1.0, 7, EventKind::Arrived { prompt_tokens: 100 }),
            ev(1.5, 7, EventKind::Recall { bytes: 4096, seconds: 0.25 }),
            ev(1.5, 7, EventKind::Admitted { reused_tokens: 64 }),
            ev(
                2.0,
                7,
                EventKind::PrefillChunk {
                    start: 0,
                    tokens: 36,
                    seconds: 0.25,
                    interference: false,
                },
            ),
            ev(2.25, 7, EventKind::Joined),
            ev(2.5, 7, EventKind::Emit { index: 0, interference_s: 0.1 }),
            ev(3.0, 7, EventKind::Emit { index: 1, interference_s: 0.0 }),
            ev(3.0, 7, EventKind::Completed { output_tokens: 2 }),
        ];
        let attr = LatencyAttribution::analyze(&[&ring]);
        assert_eq!(attr.rows.len(), 1);
        let r = &attr.rows[0];
        assert_eq!(r.id, 7);
        assert_eq!(r.e2e_s, 2.0);
        assert_eq!(r.queue_s, 0.5);
        assert_eq!(r.recall_s, 0.25);
        assert_eq!(r.prefill_s, 0.5);
        assert_eq!(r.interference_s, 0.1);
        assert_eq!(r.ttft_s, 1.5);
        assert_eq!(r.reused_tokens, 64);
        assert_eq!(r.components_sum(), r.e2e_s, "additive identity must be exact");
    }

    #[test]
    fn preempted_episode_is_written_off_as_loss() {
        let ring = vec![
            ev(0.0, 1, EventKind::Arrived { prompt_tokens: 10 }),
            ev(1.0, 1, EventKind::Admitted { reused_tokens: 0 }),
            ev(2.0, 1, EventKind::Preempted { emitted: 0 }),
            ev(3.0, 1, EventKind::Admitted { reused_tokens: 0 }),
            ev(3.5, 1, EventKind::Joined),
            ev(4.0, 1, EventKind::Emit { index: 0, interference_s: 0.0 }),
            ev(4.0, 1, EventKind::Completed { output_tokens: 1 }),
        ];
        let attr = LatencyAttribution::analyze(&[&ring]);
        let r = &attr.rows[0];
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.preemption_lost_s, 1.0);
        assert_eq!(r.queue_s, 2.0, "both queue waits count");
        assert_eq!(r.prefill_s, 0.5);
        assert_eq!(r.components_sum(), r.e2e_s);
    }

    #[test]
    fn migrated_request_attributes_on_the_target_with_rebased_arrival() {
        let source: Vec<Event> = vec![
            ev(0.0, 3, EventKind::Arrived { prompt_tokens: 10 }),
            ev(1.0, 3, EventKind::Admitted { reused_tokens: 0 }),
            ev(2.0, 3, EventKind::Preempted { emitted: 0 }),
        ];
        let target = vec![
            Event {
                t_s: 5.0,
                deployment: 1,
                request: 3,
                kind: EventKind::Migrated {
                    from: 0,
                    arrival_s: 3.0,
                    first_token_s: 0.0,
                    emitted: 0,
                },
            },
            Event {
                t_s: 6.0,
                deployment: 1,
                request: 3,
                kind: EventKind::Admitted { reused_tokens: 0 },
            },
            Event { t_s: 6.5, deployment: 1, request: 3, kind: EventKind::Joined },
            Event {
                t_s: 7.0,
                deployment: 1,
                request: 3,
                kind: EventKind::Emit { index: 0, interference_s: 0.0 },
            },
            Event {
                t_s: 7.0,
                deployment: 1,
                request: 3,
                kind: EventKind::Completed { output_tokens: 1 },
            },
        ];
        let attr = LatencyAttribution::analyze(&[&source, &target]);
        assert_eq!(attr.rows.len(), 1);
        let r = &attr.rows[0];
        assert_eq!(r.deployment, 1);
        assert_eq!(r.arrival_s, 3.0);
        assert_eq!(r.migration_s, 2.0, "everything before re-entry is migration");
        assert_eq!(r.queue_s, 1.0);
        assert_eq!(r.e2e_s, 4.0);
        assert_eq!(r.components_sum(), r.e2e_s);
    }

    #[test]
    fn worst_ttft_sorts_descending_with_id_ties() {
        let ring = vec![
            ev(0.0, 1, EventKind::Arrived { prompt_tokens: 1 }),
            ev(0.0, 2, EventKind::Arrived { prompt_tokens: 1 }),
            ev(1.0, 1, EventKind::Emit { index: 0, interference_s: 0.0 }),
            ev(3.0, 2, EventKind::Emit { index: 0, interference_s: 0.0 }),
            ev(4.0, 1, EventKind::Completed { output_tokens: 1 }),
            ev(4.0, 2, EventKind::Completed { output_tokens: 1 }),
        ];
        let attr = LatencyAttribution::analyze(&[&ring]);
        let worst = attr.worst_ttft(1);
        assert_eq!(worst.len(), 1);
        assert_eq!(worst[0].id, 2);
    }

    #[test]
    fn conservation_flags_unterminated_and_orphans() {
        let ring = vec![
            ev(0.0, 1, EventKind::Arrived { prompt_tokens: 1 }),
            ev(0.0, 2, EventKind::Arrived { prompt_tokens: 1 }),
            ev(1.0, 1, EventKind::Completed { output_tokens: 1 }),
            ev(1.0, 9, EventKind::Shed),
        ];
        let report = check_conservation(&[&ring]);
        assert!(!report.holds());
        assert_eq!(report.unterminated, vec![2]);
        assert_eq!(report.violations, vec![9]);
        assert_eq!(report.arrived, 2);
        assert_eq!(report.completed, 1);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn conservation_holds_across_rings() {
        let a = vec![ev(0.0, 4, EventKind::Arrived { prompt_tokens: 1 })];
        let b = vec![Event {
            t_s: 9.0,
            deployment: 1,
            request: 4,
            kind: EventKind::Completed { output_tokens: 1 },
        }];
        assert!(check_conservation(&[&a, &b]).holds());
    }

    #[test]
    fn chunk_totals_split_by_interference() {
        let ring = vec![
            ev(
                0.0,
                1,
                EventKind::PrefillChunk { start: 0, tokens: 64, seconds: 0.5, interference: true },
            ),
            ev(
                1.0,
                1,
                EventKind::PrefillChunk {
                    start: 64,
                    tokens: 32,
                    seconds: 0.25,
                    interference: false,
                },
            ),
        ];
        let t = prefill_chunk_totals(&ring);
        assert_eq!(t.interference_seconds, 0.5);
        assert_eq!(t.stall_seconds, 0.25);
        assert_eq!(t.seconds(), 0.75);
        assert_eq!(t.tokens, 96);
        assert_eq!(t.chunks, 2);
    }
}
