//! A minimal dependency-free JSON parser, used to validate the Perfetto
//! export and check that its async spans nest — the container has no
//! `serde`, and the exporter's output is small enough that a
//! recursive-descent pass is plenty.

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our exporter.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so it is valid.
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

/// Parse a JSON document.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Validate that `s` is a well-formed JSON document.
pub fn validate_json(s: &str) -> Result<(), String> {
    parse_json(s).map(|_| ())
}

/// Check that a Chrome `trace_event` export's async spans nest properly:
/// within each `(pid, id)` track, every `"e"` closes the most recent
/// `"b"` of the same name, and every opened span is closed. Returns the
/// number of complete spans.
pub fn spans_nest(s: &str) -> Result<usize, String> {
    let doc = parse_json(s)?;
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
    let mut stacks: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    let mut spans = 0usize;
    let mut last_ts: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).ok_or("event missing ph")?;
        if ph != "b" && ph != "e" {
            continue;
        }
        let pid = ev.get("pid").and_then(Json::as_f64).ok_or("async event missing pid")? as u64;
        let id = ev.get("id").and_then(Json::as_f64).ok_or("async event missing id")? as u64;
        let name =
            ev.get("name").and_then(Json::as_str).ok_or("async event missing name")?.to_string();
        let ts = ev.get("ts").and_then(Json::as_f64).ok_or("async event missing ts")?;
        let key = (pid, id);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!("track {key:?} not time-ordered: {ts} after {prev}"));
            }
        }
        last_ts.insert(key, ts);
        let stack = stacks.entry(key).or_default();
        if ph == "b" {
            stack.push(name);
        } else {
            match stack.pop() {
                Some(open) if open == name => spans += 1,
                Some(open) => return Err(format!("span 'e' {name} closes '{open}' on {key:?}")),
                None => return Err(format!("span 'e' {name} with empty stack on {key:?}")),
            }
        }
    }
    for (key, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("unclosed spans {stack:?} on {key:?}"));
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse_json(r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\n"}, "d": null, "e": true}"#)
            .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(validate_json(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn span_nesting_accepts_sequential_and_nested() {
        let doc = r#"{"traceEvents": [
            {"name": "r", "ph": "b", "pid": 0, "id": 1, "ts": 0},
            {"name": "queue", "ph": "b", "pid": 0, "id": 1, "ts": 0},
            {"name": "queue", "ph": "e", "pid": 0, "id": 1, "ts": 5},
            {"name": "decode", "ph": "b", "pid": 0, "id": 1, "ts": 5},
            {"name": "decode", "ph": "e", "pid": 0, "id": 1, "ts": 9},
            {"name": "r", "ph": "e", "pid": 0, "id": 1, "ts": 9}
        ]}"#;
        assert_eq!(spans_nest(doc).unwrap(), 3);
    }

    #[test]
    fn span_nesting_rejects_mismatch_and_unclosed() {
        let crossed = r#"{"traceEvents": [
            {"name": "a", "ph": "b", "pid": 0, "id": 1, "ts": 0},
            {"name": "b", "ph": "e", "pid": 0, "id": 1, "ts": 1}
        ]}"#;
        assert!(spans_nest(crossed).is_err());
        let unclosed = r#"{"traceEvents": [
            {"name": "a", "ph": "b", "pid": 0, "id": 1, "ts": 0}
        ]}"#;
        assert!(spans_nest(unclosed).is_err());
    }
}
