//! Request-level latency statistics for the serving layer.
//!
//! Continuous batching is judged on tail latency, not just throughput:
//! time-to-first-token (TTFT), inter-token latency (ITL) and end-to-end
//! completion, summarized at p50/p95/p99, plus *goodput* — the throughput
//! counting only requests that met a deadline (the way the request-level
//! serving literature compares schedulers).

use std::fmt;

/// Order statistics over a set of latency samples (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    /// Computes the statistics from raw samples. Empty input yields all
    /// zeros. Percentiles use the nearest-rank method on a sorted copy,
    /// so the result is deterministic in the multiset of samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencyStats { count: 0, mean: 0.0, p50: 0.0, p95: 0.0, p99: 0.0, max: 0.0 };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let rank = |p: f64| -> f64 {
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        LatencyStats {
            count: n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: sorted[n - 1],
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {} / p95 {} / p99 {} (mean {}, max {}, n={})",
            fmt_seconds(self.p50),
            fmt_seconds(self.p95),
            fmt_seconds(self.p99),
            fmt_seconds(self.mean),
            fmt_seconds(self.max),
            self.count
        )
    }
}

/// Formats a duration in seconds with an adaptive unit.
pub fn fmt_seconds(s: f64) -> String {
    let abs = s.abs();
    if abs >= 60.0 {
        format!("{:.1}min", s / 60.0)
    } else if abs >= 1.0 {
        format!("{s:.2}s")
    } else if abs >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Goodput: units credited only to requests that met the deadline, over
/// the elapsed wall-clock. `met` holds each completed request's
/// `(met_deadline, units)` — units being 1.0 for request-goodput or the
/// generated token count for token-goodput.
pub fn goodput(met: impl IntoIterator<Item = (bool, f64)>, elapsed_s: f64) -> f64 {
    if elapsed_s <= 0.0 {
        return 0.0;
    }
    met.into_iter().filter(|(ok, _)| *ok).map(|(_, u)| u).sum::<f64>() / elapsed_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_samples() {
        let empty = LatencyStats::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
        let one = LatencyStats::from_samples(&[0.25]);
        assert_eq!((one.p50, one.p95, one.p99, one.max), (0.25, 0.25, 0.25, 0.25));
    }

    #[test]
    fn order_independent() {
        let a = LatencyStats::from_samples(&[3.0, 1.0, 2.0]);
        let b = LatencyStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn goodput_counts_only_met_deadlines() {
        let g = goodput([(true, 100.0), (false, 50.0), (true, 20.0)], 10.0);
        assert_eq!(g, 12.0);
        assert_eq!(goodput([(true, 1.0)], 0.0), 0.0);
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_seconds(90.0), "1.5min");
        assert_eq!(fmt_seconds(2.5), "2.50s");
        assert_eq!(fmt_seconds(0.0042), "4.2ms");
        assert_eq!(fmt_seconds(3.3e-5), "33.0us");
    }
}
