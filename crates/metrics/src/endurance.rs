//! SSD endurance analysis (Fig. 16b): serviceable requests under the PBW
//! budget.
//!
//! The KV workload is write-once-read-many, so lifetime is governed by
//! total NAND write volume per request. HILOS reduces it two ways: the
//! X-cache stores `X` (half the K+V bytes for MHA) for an α fraction, and
//! the delayed writeback spills page-aligned chunks instead of one page
//! per 256-byte entry.

use hilos_llm::{ModelConfig, RequestClass, FP16_BYTES};

/// Endurance budget of the storage complex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    /// NAND page size in bytes.
    pub page_bytes: u64,
    /// Endurance of one device in bytes (PBW × 10¹⁵).
    pub endurance_bytes_per_device: f64,
    /// Device count.
    pub n_devices: usize,
}

impl EnduranceModel {
    /// The paper's 16-SmartSSD array: 7.008 PBW each (§6.6).
    pub fn smartssd_array(n_devices: usize) -> Self {
        EnduranceModel { page_bytes: 4096, endurance_bytes_per_device: 7.008e15, n_devices }
    }

    /// Total endurance budget in bytes.
    pub fn total_endurance_bytes(&self) -> f64 {
        self.endurance_bytes_per_device * self.n_devices as f64
    }

    /// NAND bytes for a token stream of `tokens` written in per-head
    /// chunks of `chunk_tokens` entries of `entry_bytes` each (the final
    /// partial chunk rounds up to pages).
    fn chunked_stream_bytes(&self, tokens: u64, chunk_tokens: u64, entry_bytes: u64) -> f64 {
        let full_chunks = tokens / chunk_tokens;
        let rem = tokens % chunk_tokens;
        let chunk_payload = chunk_tokens * entry_bytes;
        let chunk_pages = chunk_payload.div_ceil(self.page_bytes);
        let mut bytes = full_chunks as f64 * (chunk_pages * self.page_bytes) as f64;
        if rem > 0 {
            let rem_pages = (rem * entry_bytes).div_ceil(self.page_bytes);
            bytes += (rem_pages * self.page_bytes) as f64;
        }
        bytes
    }

    /// NAND bytes one request writes under HILOS with X-cache ratio
    /// `alpha` and spill interval `c`. Prefill writes are bulk and
    /// page-aligned; decode writes stream through the spill buffer.
    pub fn hilos_request_bytes(
        &self,
        model: &ModelConfig,
        class: RequestClass,
        alpha: f64,
        spill_interval: u32,
    ) -> f64 {
        let kv_entry = 2 * model.head_dim() as u64 * FP16_BYTES; // K+V per head
        let x_entry = model.hidden() as u64 * FP16_BYTES; // X per layer
        let kv_streams = (model.kv_heads() * model.layers()) as f64;
        let x_streams = model.layers() as f64;

        // Prefill: one bulk row-wise write per stream.
        let pf = class.input_tokens();
        let prefill_kv =
            kv_streams * ((pf * kv_entry).div_ceil(self.page_bytes) * self.page_bytes) as f64;
        let prefill_x =
            x_streams * ((pf * x_entry).div_ceil(self.page_bytes) * self.page_bytes) as f64;

        // Decode: chunked spills of c tokens.
        let out = class.output_tokens();
        let decode_kv =
            kv_streams * self.chunked_stream_bytes(out, spill_interval as u64, kv_entry);
        let decode_x = x_streams * self.chunked_stream_bytes(out, spill_interval as u64, x_entry);

        (1.0 - alpha) * (prefill_kv + decode_kv) + alpha * (prefill_x + decode_x)
    }

    /// NAND bytes one request writes under the FlexGen-style baseline:
    /// full KV, prefill bulk plus per-step layer-coalesced decode writes
    /// (the whole batch's new entries for a layer written contiguously).
    pub fn flexgen_request_bytes(
        &self,
        model: &ModelConfig,
        class: RequestClass,
        batch: u32,
    ) -> f64 {
        let kv_entry = 2 * model.head_dim() as u64 * FP16_BYTES;
        let kv_streams = (model.kv_heads() * model.layers()) as f64;
        let pf = class.input_tokens();
        let prefill =
            kv_streams * ((pf * kv_entry).div_ceil(self.page_bytes) * self.page_bytes) as f64;
        // Per step, per layer: batch x kv_dim entries written together,
        // rounded to pages and amortized per request.
        let layer_step_payload = batch as u64 * 2 * model.kv_dim() as u64 * FP16_BYTES;
        let layer_step_nand = layer_step_payload.div_ceil(self.page_bytes) * self.page_bytes;
        let decode = class.output_tokens() as f64 * model.layers() as f64 * layer_step_nand as f64
            / batch as f64;
        prefill + decode
    }

    /// Serviceable requests (the Fig. 16b bars) given per-request bytes.
    pub fn serviceable_requests(&self, bytes_per_request: f64) -> f64 {
        self.total_endurance_bytes() / bytes_per_request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;

    #[test]
    fn long_requests_on_175b_exceed_four_million() {
        // §6.6: "even for long requests with the 175B model, our system
        // supports over 4.08 million requests" on 16 SmartSSDs.
        let e = EnduranceModel::smartssd_array(16);
        let bytes = e.hilos_request_bytes(&presets::opt_175b(), RequestClass::Long, 0.5, 16);
        let requests = e.serviceable_requests(bytes) / 1e6;
        assert!((3.0..6.0).contains(&requests), "requests {requests}M");
    }

    #[test]
    fn hilos_beats_flexgen_endurance() {
        // Fig 16b: 1.34x-1.47x more serviceable requests.
        let e = EnduranceModel::smartssd_array(16);
        let m = presets::opt_66b();
        for class in RequestClass::all() {
            let hilos = e.hilos_request_bytes(&m, class, 0.5, 16);
            let flex = e.flexgen_request_bytes(&m, class, 16);
            let gain = flex / hilos;
            assert!((1.15..1.9).contains(&gain), "{class}: gain {gain}");
        }
    }

    #[test]
    fn xcache_reduces_writes_by_about_alpha_over_two() {
        // §6.6: an X-cache rate of α lowers storage writes by ~α/2.
        let e = EnduranceModel::smartssd_array(16);
        let m = presets::opt_66b();
        let with = e.hilos_request_bytes(&m, RequestClass::Medium, 0.5, 16);
        let without = e.hilos_request_bytes(&m, RequestClass::Medium, 0.0, 16);
        let reduction = 1.0 - with / without;
        assert!((0.18..0.32).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn larger_spill_interval_never_hurts() {
        let e = EnduranceModel::smartssd_array(16);
        let m = presets::opt_30b();
        for class in RequestClass::all() {
            let c16 = e.hilos_request_bytes(&m, class, 0.5, 16);
            let c32 = e.hilos_request_bytes(&m, class, 0.5, 32);
            assert!(c32 <= c16 * 1.001, "{class}: c32 {c32} vs c16 {c16}");
        }
    }

    #[test]
    fn shorter_requests_serve_more() {
        let e = EnduranceModel::smartssd_array(16);
        let m = presets::opt_66b();
        let short = e.serviceable_requests(e.hilos_request_bytes(&m, RequestClass::Short, 0.5, 16));
        let long = e.serviceable_requests(e.hilos_request_bytes(&m, RequestClass::Long, 0.5, 16));
        assert!(short > 5.0 * long);
    }

    #[test]
    fn bigger_models_wear_faster() {
        let e = EnduranceModel::smartssd_array(16);
        let small = e.hilos_request_bytes(&presets::opt_30b(), RequestClass::Medium, 0.5, 16);
        let large = e.hilos_request_bytes(&presets::opt_175b(), RequestClass::Medium, 0.5, 16);
        assert!(large > 2.0 * small);
    }
}
