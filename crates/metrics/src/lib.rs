//! # hilos-metrics — energy, cost and endurance models
//!
//! The derived analyses of the paper's evaluation:
//!
//! * [`energy`] / [`EnergyBreakdown`] — per-component energy integration
//!   (Fig. 17a),
//! * [`tokens_per_second_per_dollar`] — cost efficiency (Fig. 16a),
//! * [`FleetBill`] — fleet-scale billing: reserved vs utilization
//!   accounting and USD per 1k goodput tokens, the elastic-cluster
//!   comparison metric,
//! * [`EnduranceModel`] — PBW-budget endurance and serviceable requests
//!   (Fig. 16b),
//! * [`LatencyStats`] / [`goodput`] — request-level latency order
//!   statistics (TTFT, inter-token, end-to-end) and deadline goodput for
//!   the serving layer,
//! * [`PrefillBreakdown`] — where the token-budgeted serving step's time
//!   went: decode, prefill-chunk interference with the running batch, or
//!   prefill stall with nothing decoding,
//! * [`PrefixCacheStats`] — prefix KV-cache reuse accounting: hit rate,
//!   saved prefill tokens, and per-tier demote/recall traffic of the
//!   HBM→DRAM→SSD residency ladder,
//! * [`Table`] — plain-text table rendering used by the `repro` harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod endurance;
mod energy;
mod fleet;
mod latency;
mod prefill;
mod prefix_cache;
mod report;

pub use cost::{normalized_cost_efficiency, tokens_per_second_per_dollar};
pub use endurance::EnduranceModel;
pub use energy::{energy, joules_per_token, ActivitySnapshot, EnergyBreakdown};
pub use fleet::{
    hourly_capex_usd, hourly_cost_usd, provisioned_power_w, FleetBill, SlotBill,
    AMORTIZATION_YEARS, ENERGY_USD_PER_KWH,
};
pub use latency::{class_breakdown, fmt_seconds, goodput, ClassReport, ClassSample, LatencyStats};
pub use prefill::PrefillBreakdown;
pub use prefix_cache::{PrefixCacheStats, TierTrafficStats};
pub use report::{fmt_bytes, fmt_ratio, Table};
