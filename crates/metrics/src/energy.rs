//! Energy model (Fig. 17a): per-component idle/active power integrated
//! over simulated activity.
//!
//! The paper measures GPU power with NVML, CPU/DRAM with RAPL and the
//! SmartSSD power from the chassis BMC; we integrate the same component
//! set over the utilizations the simulator reports.

use hilos_platform::SystemSpec;

/// Activity levels of one decoding step, in `[0, 1]` per component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivitySnapshot {
    /// Seconds the snapshot covers.
    pub seconds: f64,
    /// GPU utilization.
    pub gpu: f64,
    /// CPU utilization.
    pub cpu: f64,
    /// Host DRAM utilization.
    pub dram: f64,
    /// Storage-device utilization (average across devices).
    pub ssd: f64,
}

/// Energy in joules, broken down by component (the Fig. 17a stack).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// CPU package energy.
    pub cpu_j: f64,
    /// Host DRAM energy.
    pub dram_j: f64,
    /// GPU energy.
    pub gpu_j: f64,
    /// Storage (SSD or SmartSSD incl. FPGA) energy.
    pub ssd_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.cpu_j + self.dram_j + self.gpu_j + self.ssd_j
    }
}

/// Computes the energy of an activity window on a system.
pub fn energy(spec: &SystemSpec, activity: &ActivitySnapshot) -> EnergyBreakdown {
    let t = activity.seconds;
    let n_ssd = spec.storage.device_count() as f64;
    EnergyBreakdown {
        cpu_j: spec.host.cpu_power.at_utilization(activity.cpu) * t,
        dram_j: spec.host.dram_power.at_utilization(activity.dram) * t,
        gpu_j: spec.gpu.power.at_utilization(activity.gpu) * t,
        ssd_j: spec.storage_price_power.power.at_utilization(activity.ssd) * t * n_ssd,
    }
}

/// Energy per generated token: energy of one step divided by the batch.
pub fn joules_per_token(spec: &SystemSpec, activity: &ActivitySnapshot, batch: u32) -> f64 {
    energy(spec, activity).total() / batch as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(seconds: f64) -> ActivitySnapshot {
        ActivitySnapshot { seconds, gpu: 0.0, cpu: 0.0, dram: 0.0, ssd: 0.0 }
    }

    #[test]
    fn idle_energy_is_idle_power_times_time() {
        let spec = SystemSpec::a100_pm9a3(4);
        let e = energy(&spec, &idle(10.0));
        let expect = (spec.host.cpu_power.idle_w
            + spec.host.dram_power.idle_w
            + spec.gpu.power.idle_w
            + 4.0 * spec.storage_price_power.power.idle_w)
            * 10.0;
        assert!((e.total() - expect).abs() < 1e-9);
    }

    #[test]
    fn activity_increases_energy() {
        let spec = SystemSpec::a100_smartssd(16);
        let busy = ActivitySnapshot { seconds: 5.0, gpu: 0.8, cpu: 0.5, dram: 0.6, ssd: 0.9 };
        assert!(energy(&spec, &busy).total() > energy(&spec, &idle(5.0)).total());
    }

    #[test]
    fn smartssd_array_draws_more_than_plain_ssds() {
        // §6.6: "HILOS's SmartSSDs consume more power than conventional
        // SSDs" — but runtime, not power, decides the energy outcome.
        let hilos = SystemSpec::a100_smartssd(16);
        let flex = SystemSpec::a100_pm9a3(4);
        let act = ActivitySnapshot { seconds: 1.0, gpu: 0.2, cpu: 0.2, dram: 0.3, ssd: 0.9 };
        let e_h = energy(&hilos, &act);
        let e_f = energy(&flex, &act);
        assert!(e_h.ssd_j > e_f.ssd_j);
    }

    #[test]
    fn faster_run_wins_despite_higher_power() {
        // The Fig 17a mechanism: a 5x faster step at higher device power
        // still uses far less energy per token.
        let hilos = SystemSpec::a100_smartssd(16);
        let flex = SystemSpec::a100_pm9a3(4);
        let fast = ActivitySnapshot { seconds: 2.0, gpu: 0.3, cpu: 0.1, dram: 0.2, ssd: 0.9 };
        let slow = ActivitySnapshot { seconds: 10.0, gpu: 0.1, cpu: 0.4, dram: 0.7, ssd: 0.8 };
        let per_tok_hilos = joules_per_token(&hilos, &fast, 16);
        let per_tok_flex = joules_per_token(&flex, &slow, 16);
        assert!(per_tok_hilos < per_tok_flex * 0.5);
    }
}
