//! Fleet-level cost reporting: what a set of deployments *bills* for a
//! serving run, under utilization (elastic) or reserved (static)
//! accounting.
//!
//! The per-system capex model ([`tokens_per_second_per_dollar`]) prices
//! one deployment in isolation; an elastic cluster needs the next layer:
//! each deployment slot bills for the seconds it was actually
//! provisioned — cold-start included — at an hourly rate that amortizes
//! its purchase price and adds its energy draw. A statically-provisioned
//! fleet bills every slot for the whole run, idle or not; the gap
//! between the two bills is the autoscaler's value.
//!
//! [`tokens_per_second_per_dollar`]: crate::tokens_per_second_per_dollar

use hilos_platform::SystemSpec;

use crate::energy::{energy, ActivitySnapshot};

/// Capex amortization horizon used by [`hourly_capex_usd`], in years —
/// the paper's cost-efficiency comparisons assume hardware is written
/// off over a standard 3-year serving lifetime.
pub const AMORTIZATION_YEARS: f64 = 3.0;

/// Electricity price used by [`hourly_cost_usd`], in USD per kWh
/// (US industrial average).
pub const ENERGY_USD_PER_KWH: f64 = 0.12;

/// Purchase price amortized to an hourly rate over
/// [`AMORTIZATION_YEARS`].
pub fn hourly_capex_usd(price_usd: f64) -> f64 {
    price_usd / (AMORTIZATION_YEARS * 365.25 * 24.0)
}

/// The system's full-utilization power draw in watts — every component
/// of the [`energy`] model (CPU, DRAM, GPU, storage devices) at
/// utilization 1.0. The conservative provisioning figure: a billed
/// deployment is billed as if busy.
pub fn provisioned_power_w(spec: &SystemSpec) -> f64 {
    let one_second = ActivitySnapshot { seconds: 1.0, gpu: 1.0, cpu: 1.0, dram: 1.0, ssd: 1.0 };
    energy(spec, &one_second).total()
}

/// Hourly cost of keeping one deployment provisioned: amortized capex
/// plus energy at `power_w` ([`ENERGY_USD_PER_KWH`]).
pub fn hourly_cost_usd(price_usd: f64, power_w: f64) -> f64 {
    hourly_capex_usd(price_usd) + power_w / 1000.0 * ENERGY_USD_PER_KWH
}

/// One deployment slot's bill for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotBill {
    /// The slot's cluster index.
    pub deployment: u32,
    /// Purchase price of the slot's system.
    pub price_usd: f64,
    /// Provisioned power draw, watts ([`provisioned_power_w`]).
    pub power_w: f64,
    /// Seconds the slot billed: provisioned time under utilization
    /// accounting (busy seconds + cold start), or the whole run under
    /// reserved accounting.
    pub billed_seconds: f64,
}

impl SlotBill {
    /// This slot's cost: [`hourly_cost_usd`] × billed hours.
    pub fn cost_usd(&self) -> f64 {
        hourly_cost_usd(self.price_usd, self.power_w) * self.billed_seconds / 3600.0
    }
}

/// A whole fleet's bill: one [`SlotBill`] per deployment slot.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBill {
    /// Per-slot bills, in deployment order.
    pub slots: Vec<SlotBill>,
}

impl FleetBill {
    /// The reserved (statically-provisioned) bill: every slot billed for
    /// the full `seconds` — the peak fleet paid for whether it served or
    /// idled. `slots` are `(price_usd, power_w)` pairs in deployment
    /// order.
    pub fn reserved(slots: &[(f64, f64)], seconds: f64) -> Self {
        FleetBill {
            slots: slots
                .iter()
                .enumerate()
                .map(|(i, &(price_usd, power_w))| SlotBill {
                    deployment: i as u32,
                    price_usd,
                    power_w,
                    billed_seconds: seconds,
                })
                .collect(),
        }
    }

    /// Total billed seconds across the fleet.
    pub fn billed_seconds(&self) -> f64 {
        self.slots.iter().map(|s| s.billed_seconds).sum()
    }

    /// Total fleet cost in USD.
    pub fn cost_usd(&self) -> f64 {
        self.slots.iter().map(SlotBill::cost_usd).sum()
    }

    /// The fleet-scale cost-efficiency metric: USD per 1000 goodput
    /// tokens (zero tokens reports an infinite cost, never a NaN).
    pub fn cost_per_1k_tokens(&self, goodput_tokens: u64) -> f64 {
        if goodput_tokens == 0 {
            return f64::INFINITY;
        }
        self.cost_usd() / (goodput_tokens as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_capex_amortizes_over_three_years() {
        let hours = AMORTIZATION_YEARS * 365.25 * 24.0;
        assert!((hourly_capex_usd(70_400.0) - 70_400.0 / hours).abs() < 1e-12);
        // Paying the hourly rate for the whole horizon repays the price.
        assert!((hourly_capex_usd(70_400.0) * hours - 70_400.0).abs() < 1e-6);
    }

    #[test]
    fn provisioned_power_sums_components() {
        let spec = SystemSpec::a100_smartssd(8);
        let w = provisioned_power_w(&spec);
        // At least the GPU's active draw, and storage scales with count.
        assert!(w > 250.0, "full-utilization draw too small: {w}");
        let w16 = provisioned_power_w(&SystemSpec::a100_smartssd(16));
        assert!(w16 > w, "more devices must draw more power");
    }

    #[test]
    fn energy_term_raises_hourly_cost() {
        let capex_only = hourly_cost_usd(70_400.0, 0.0);
        let with_power = hourly_cost_usd(70_400.0, 1000.0);
        assert!((capex_only - hourly_capex_usd(70_400.0)).abs() < 1e-12);
        assert!((with_power - capex_only - ENERGY_USD_PER_KWH).abs() < 1e-12);
    }

    #[test]
    fn reserved_bill_charges_every_slot_the_makespan() {
        let bill = FleetBill::reserved(&[(70_400.0, 1200.0), (51_200.0, 900.0)], 7200.0);
        assert_eq!(bill.slots.len(), 2);
        assert_eq!(bill.billed_seconds(), 14_400.0);
        let expected =
            hourly_cost_usd(70_400.0, 1200.0) * 2.0 + hourly_cost_usd(51_200.0, 900.0) * 2.0;
        assert!((bill.cost_usd() - expected).abs() < 1e-9);
    }

    #[test]
    fn cost_per_1k_tokens_guards_zero() {
        let bill = FleetBill::reserved(&[(70_400.0, 1200.0)], 3600.0);
        assert!(bill.cost_per_1k_tokens(0).is_infinite());
        let per_1k = bill.cost_per_1k_tokens(2000);
        assert!((per_1k - bill.cost_usd() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_bill_beats_reserved_when_slots_idle() {
        // Two identical slots; the elastic one billed 1/4 of the run on
        // slot 1. Cost ratio must reflect exactly the billed-seconds gap.
        let reserved = FleetBill::reserved(&[(70_400.0, 1200.0), (70_400.0, 1200.0)], 4000.0);
        let elastic = FleetBill {
            slots: vec![
                SlotBill {
                    deployment: 0,
                    price_usd: 70_400.0,
                    power_w: 1200.0,
                    billed_seconds: 4000.0,
                },
                SlotBill {
                    deployment: 1,
                    price_usd: 70_400.0,
                    power_w: 1200.0,
                    billed_seconds: 1000.0,
                },
            ],
        };
        let ratio = reserved.cost_usd() / elastic.cost_usd();
        assert!((ratio - 8000.0 / 5000.0).abs() < 1e-9);
    }
}
