//! Plain-text table rendering for the reproduction harness.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use hilos_metrics::Table;
///
/// let mut t = Table::new(vec!["system", "tok/s"]);
/// t.row(vec!["FLEX(SSD)".into(), "0.12".into()]);
/// t.row(vec!["HILOS".into(), "0.94".into()]);
/// let s = t.to_string();
/// assert!(s.contains("HILOS"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the header width with blanks.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        fn cell(row: &[String], i: usize) -> &str {
            row.get(i).map(String::as_str).unwrap_or("")
        }
        for (i, w) in widths.iter_mut().enumerate() {
            *w = std::iter::once(cell(&self.headers, i).len())
                .chain(self.rows.iter().map(|r| cell(r, i).len()))
                .max()
                .unwrap_or(0);
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<w$}", cell(row, i), w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a byte count with a binary-ish SI suffix.
pub fn fmt_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= 1e12 {
        format!("{:.2}TB", bytes / 1e12)
    } else if abs >= 1e9 {
        format!("{:.2}GB", bytes / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2}MB", bytes / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2}KB", bytes / 1e3)
    } else {
        format!("{bytes:.0}B")
    }
}

/// Formats a ratio as `x.xx×`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width up to trailing spaces.
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("xxxxxx"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ragged_rows_tolerated() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "extra".into()]);
        t.row(vec![]);
        let s = t.to_string();
        assert!(s.contains("extra"));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(1.5e12), "1.50TB");
        assert_eq!(fmt_bytes(2.0e9), "2.00GB");
        assert_eq!(fmt_bytes(3.1e6), "3.10MB");
        assert_eq!(fmt_bytes(1024.0), "1.02KB");
        assert_eq!(fmt_bytes(12.0), "12B");
        assert_eq!(fmt_ratio(7.856), "7.86x");
    }
}
