//! Cost-efficiency analysis (Fig. 16a): tokens per second per dollar.

use hilos_platform::SystemSpec;

/// Cost efficiency of a measured throughput on a system, in
/// tokens/second/USD.
pub fn tokens_per_second_per_dollar(spec: &SystemSpec, tokens_per_second: f64) -> f64 {
    tokens_per_second / spec.total_price_usd()
}

/// Normalizes a set of `(label, tps, spec)` triples to the first entry's
/// cost efficiency (the Fig. 16a presentation).
pub fn normalized_cost_efficiency(entries: &[(&str, f64, &SystemSpec)]) -> Vec<(String, f64)> {
    if entries.is_empty() {
        return Vec::new();
    }
    let base = tokens_per_second_per_dollar(entries[0].2, entries[0].1);
    entries
        .iter()
        .map(|(label, tps, spec)| {
            (label.to_string(), tokens_per_second_per_dollar(spec, *tps) / base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_scales_with_throughput_and_price() {
        let flex = SystemSpec::a100_pm9a3(4);
        let hilos = SystemSpec::a100_smartssd(16);
        // HILOS costs ~3x more; it needs >3x throughput to win on cost.
        let price_ratio = hilos.total_price_usd() / flex.total_price_usd();
        assert!((2.5..3.5).contains(&price_ratio), "ratio {price_ratio}");
        let even = tokens_per_second_per_dollar(&hilos, price_ratio)
            / tokens_per_second_per_dollar(&flex, 1.0);
        assert!((even - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_sets_base_to_one() {
        let flex = SystemSpec::a100_pm9a3(4);
        let hilos = SystemSpec::a100_smartssd(16);
        let rows = normalized_cost_efficiency(&[("flex", 0.2, &flex), ("hilos", 1.4, &hilos)]);
        assert_eq!(rows[0].1, 1.0);
        assert!(rows[1].1 > 2.0, "hilos at 7x throughput should win on cost: {}", rows[1].1);
    }

    #[test]
    fn h100_upgrade_is_cost_inefficient_without_speedup() {
        // Fig 16a: a 1.39x speedup on a $30k GPU loses to HILOS.
        let h100 = SystemSpec::h100_pm9a3(4);
        let a100 = SystemSpec::a100_pm9a3(4);
        let e_h = tokens_per_second_per_dollar(&h100, 1.39);
        let e_a = tokens_per_second_per_dollar(&a100, 1.0);
        assert!(e_h < e_a, "H100 {e_h} vs A100 {e_a}");
    }

    #[test]
    fn empty_input() {
        assert!(normalized_cost_efficiency(&[]).is_empty());
    }
}
