//! Prefill-stall and chunk-interference accounting for the serving layer.
//!
//! When prompt ingestion shares the device bandwidth with token
//! generation (the serving engine's token-budgeted step), every second a
//! prefill chunk executes is paid by someone: either a *running decode
//! batch* whose inter-token latency inflates (interference), or an
//! *empty* decode pipeline waiting for its first join (stall). This
//! breakdown separates the two so schedulers and routers can be judged on
//! where they put the prompt-ingestion cost — the near-storage systems
//! this reproduction follows show the interleaving of the two phases,
//! not their isolated speeds, determines end-to-end cost.

/// Where the serving step's time went once prefill runs *inside* the
/// step instead of on the side.
///
/// All fields are zero under the legacy side-prefill mode (prefill fully
/// overlapped, never charged to the step) except `decode_seconds`, which
/// is always the sum of executed decode-step times.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrefillBreakdown {
    /// Seconds of executed decode steps.
    pub decode_seconds: f64,
    /// Prefill-chunk seconds charged to steps that *also* decoded — the
    /// time that inflated the running batch's inter-token latency.
    pub interference_seconds: f64,
    /// Prefill-chunk seconds charged to steps with nothing decoding —
    /// the pipeline stalled on prompt ingestion (cold start, or the
    /// batch drained before the next join).
    pub stall_seconds: f64,
    /// Prefill chunks executed.
    pub chunks: u64,
    /// Prompt tokens ingested across all executed chunks (re-admissions
    /// after preemption re-ingest and are counted again).
    pub chunk_tokens: u64,
}

impl PrefillBreakdown {
    /// Total inline prefill seconds (interference plus stall).
    pub fn prefill_seconds(&self) -> f64 {
        self.interference_seconds + self.stall_seconds
    }

    /// Prefill seconds charged to decoding steps per decode second — how
    /// much of the batch's inter-token latency is prompt ingestion (zero
    /// when nothing decoded).
    pub fn interference_ratio(&self) -> f64 {
        if self.decode_seconds > 0.0 {
            self.interference_seconds / self.decode_seconds
        } else {
            0.0
        }
    }

    /// Fraction of the step-charged busy time that was prefill (zero for
    /// an idle run).
    pub fn prefill_share(&self) -> f64 {
        let busy = self.decode_seconds + self.prefill_seconds();
        if busy > 0.0 {
            self.prefill_seconds() / busy
        } else {
            0.0
        }
    }

    /// Mean tokens per executed chunk (zero when nothing was chunked).
    pub fn mean_chunk_tokens(&self) -> f64 {
        if self.chunks > 0 {
            self.chunk_tokens as f64 / self.chunks as f64
        } else {
            0.0
        }
    }

    /// Element-wise sum — cluster reports merge per-deployment
    /// breakdowns with this.
    pub fn merged(&self, other: &PrefillBreakdown) -> PrefillBreakdown {
        PrefillBreakdown {
            decode_seconds: self.decode_seconds + other.decode_seconds,
            interference_seconds: self.interference_seconds + other.interference_seconds,
            stall_seconds: self.stall_seconds + other.stall_seconds,
            chunks: self.chunks + other.chunks,
            chunk_tokens: self.chunk_tokens + other.chunk_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_empty_runs() {
        let empty = PrefillBreakdown::default();
        assert_eq!(empty.prefill_seconds(), 0.0);
        assert_eq!(empty.interference_ratio(), 0.0);
        assert_eq!(empty.prefill_share(), 0.0);
        assert_eq!(empty.mean_chunk_tokens(), 0.0);
        assert!(!empty.interference_ratio().is_nan());
    }

    #[test]
    fn breakdown_arithmetic() {
        let b = PrefillBreakdown {
            decode_seconds: 10.0,
            interference_seconds: 2.0,
            stall_seconds: 3.0,
            chunks: 4,
            chunk_tokens: 1024,
        };
        assert_eq!(b.prefill_seconds(), 5.0);
        assert!((b.interference_ratio() - 0.2).abs() < 1e-12);
        assert!((b.prefill_share() - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(b.mean_chunk_tokens(), 256.0);
        let m = b.merged(&b);
        assert_eq!(m.chunks, 8);
        assert_eq!(m.chunk_tokens, 2048);
        assert_eq!(m.decode_seconds, 20.0);
        assert_eq!(m.prefill_seconds(), 10.0);
    }
}
