//! Prefix KV-cache accounting: reuse hits, saved prefill work, and the
//! demote/recall traffic of the tiered residency ladder.

/// Demote/recall traffic of one residency tier, as carried into a trace
/// report (mirrors `hilos-storage`'s per-tier accounting without the
/// dependency).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierTrafficStats {
    /// Bytes demoted *into* this tier from the rung above.
    pub demoted_bytes: u64,
    /// Bytes recalled *out of* this tier toward the hot end.
    pub recalled_bytes: u64,
    /// Seconds of side-channel demote I/O into this tier.
    pub demote_seconds: f64,
    /// Seconds of critical-path recall I/O out of this tier.
    pub recall_seconds: f64,
}

impl TierTrafficStats {
    /// Sums two tiers' traffic (cluster-level aggregation).
    pub fn merged(&self, other: &TierTrafficStats) -> TierTrafficStats {
        TierTrafficStats {
            demoted_bytes: self.demoted_bytes + other.demoted_bytes,
            recalled_bytes: self.recalled_bytes + other.recalled_bytes,
            demote_seconds: self.demote_seconds + other.demote_seconds,
            recall_seconds: self.recall_seconds + other.recall_seconds,
        }
    }
}

/// What the prefix KV cache did for one serving run: probe outcomes, the
/// prefill work that reuse skipped, the recall seconds charged into
/// TTFT, and the per-tier demote/recall traffic of the residency ladder.
/// All-zero (the [`Default`]) when the cache is off.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrefixCacheStats {
    /// Admission probes against the prefix index.
    pub lookups: u64,
    /// Probes that hit a cached prefix.
    pub hits: u64,
    /// Prefill tokens skipped by hits — work the engine never did.
    pub saved_prefill_tokens: u64,
    /// Critical-path seconds spent recalling cached or demoted KV back
    /// to the hot tier (charged into the hitting requests' TTFT).
    pub recall_seconds: f64,
    /// Preempted victims whose KV was demoted down the ladder instead of
    /// discarded.
    pub victim_demotions: u64,
    /// Preempted victims re-admitted by recalling their demoted KV —
    /// prefill work that would otherwise have been recomputed.
    pub victim_recalls: u64,
    /// Prefill tokens restored by victim recalls (recompute debt repaid
    /// from the ladder instead of the compute pipeline).
    pub recalled_prefill_tokens: u64,
    /// Demote/recall traffic per tier, hottest first (HBM, DRAM, SSD).
    pub tiers: [TierTrafficStats; 3],
}

impl PrefixCacheStats {
    /// Hit rate over probes, `0.0` for an idle (or disabled) cache.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Total bytes demoted down the ladder across tiers.
    pub fn demoted_bytes(&self) -> u64 {
        self.tiers.iter().map(|t| t.demoted_bytes).sum()
    }

    /// Total bytes recalled toward the hot end across tiers.
    pub fn recalled_bytes(&self) -> u64 {
        self.tiers.iter().map(|t| t.recalled_bytes).sum()
    }

    /// Sums two runs' cache accounting (cluster-level aggregation).
    pub fn merged(&self, other: &PrefixCacheStats) -> PrefixCacheStats {
        PrefixCacheStats {
            lookups: self.lookups + other.lookups,
            hits: self.hits + other.hits,
            saved_prefill_tokens: self.saved_prefill_tokens + other.saved_prefill_tokens,
            recall_seconds: self.recall_seconds + other.recall_seconds,
            victim_demotions: self.victim_demotions + other.victim_demotions,
            victim_recalls: self.victim_recalls + other.victim_recalls,
            recalled_prefill_tokens: self.recalled_prefill_tokens + other.recalled_prefill_tokens,
            tiers: [
                self.tiers[0].merged(&other.tiers[0]),
                self.tiers[1].merged(&other.tiers[1]),
                self.tiers[2].merged(&other.tiers[2]),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_idle_and_guarded() {
        let s = PrefixCacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.demoted_bytes(), 0);
        assert_eq!(s.recalled_bytes(), 0);
        assert_eq!(s.merged(&s), s);
    }

    #[test]
    fn merged_sums_every_field() {
        let a = PrefixCacheStats {
            lookups: 10,
            hits: 4,
            saved_prefill_tokens: 4096,
            recall_seconds: 1.5,
            victim_demotions: 2,
            victim_recalls: 1,
            recalled_prefill_tokens: 512,
            tiers: [
                TierTrafficStats::default(),
                TierTrafficStats {
                    demoted_bytes: 100,
                    recalled_bytes: 50,
                    demote_seconds: 0.5,
                    recall_seconds: 0.25,
                },
                TierTrafficStats { demoted_bytes: 7, ..TierTrafficStats::default() },
            ],
        };
        let m = a.merged(&a);
        assert_eq!(m.lookups, 20);
        assert_eq!(m.hits, 8);
        assert_eq!(m.saved_prefill_tokens, 8192);
        assert_eq!(m.recall_seconds, 3.0);
        assert_eq!(m.victim_demotions, 4);
        assert_eq!(m.victim_recalls, 2);
        assert_eq!(m.recalled_prefill_tokens, 1024);
        assert_eq!(m.tiers[1].demoted_bytes, 200);
        assert_eq!(m.tiers[1].recall_seconds, 0.5);
        assert_eq!(m.demoted_bytes(), 214);
        assert_eq!(m.recalled_bytes(), 100);
        assert!((m.hit_rate() - 0.4).abs() < 1e-12);
    }
}
