//! DeepSpeed ZeRO-Inference extended with Unified Virtual Memory — the
//! `DS+UVM(DRAM)` baseline of §6.1.
//!
//! The paper extends ZeRO-Inference with UVM because long-context
//! intermediate activations overflow GPU memory; the UVM fault path then
//! throttles every KV sweep, costing >4× versus FLEX(DRAM) (Fig. 10).
//! We model that by routing the attention's KV traffic through a
//! fault-handled path with far lower effective bandwidth than raw DRAM.

use crate::error::BaselineError;
use crate::flexgen::{FlexGenSystem, KvLocation};
use hilos_core::RunReport;
use hilos_llm::ModelConfig;
use hilos_platform::SystemSpec;

/// Effective bandwidth of UVM-managed memory sweeps (page-fault handling
/// plus migration): calibrated so DS+UVM lands ≈4× below FLEX(DRAM), as
/// Fig. 10 measures.
pub const UVM_EFFECTIVE_BW: f64 = 5.0e9;

/// The DeepSpeed + UVM baseline.
#[derive(Debug, Clone)]
pub struct DeepSpeedUvm {
    inner: FlexGenSystem,
}

impl DeepSpeedUvm {
    /// Creates the deployment (KV in DRAM, UVM-managed).
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the underlying model.
    pub fn new(spec: &SystemSpec, model: &ModelConfig) -> Result<Self, BaselineError> {
        Ok(DeepSpeedUvm {
            inner: FlexGenSystem::new(spec, model, KvLocation::HostDram)?
                .with_uvm_kv_bw(UVM_EFFECTIVE_BW),
        })
    }

    /// Overrides the number of simulated layers.
    pub fn with_sim_layers(mut self, layers: u32) -> Self {
        self.inner = self.inner.with_sim_layers(layers);
        self
    }

    /// Capacity check (same DRAM limits as FLEX(DRAM)).
    ///
    /// # Errors
    ///
    /// [`BaselineError::HostOom`] when the working set exceeds host DRAM.
    pub fn check_capacity(
        &self,
        batch: u32,
        context: u64,
        output: u64,
    ) -> Result<(), BaselineError> {
        self.inner.check_capacity(batch, context, output)
    }

    /// Runs the decode phase.
    ///
    /// # Errors
    ///
    /// Capacity or simulation errors.
    pub fn run_decode(
        &self,
        batch: u32,
        context: u64,
        output_len: u64,
    ) -> Result<RunReport, BaselineError> {
        self.inner.run_decode(batch, context, output_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;

    #[test]
    fn uvm_is_several_times_slower_than_flex_dram() {
        let spec = SystemSpec::a100_pm9a3(4);
        let model = presets::opt_30b();
        let flex =
            FlexGenSystem::new(&spec, &model, KvLocation::HostDram).unwrap().with_sim_layers(4);
        let ds = DeepSpeedUvm::new(&spec, &model).unwrap().with_sim_layers(4);
        let f = flex.run_decode(4, 32 * 1024, 4).unwrap().tokens_per_second();
        let d = ds.run_decode(4, 32 * 1024, 4).unwrap().tokens_per_second();
        let slowdown = f / d;
        // Fig 10: "a slowdown of over 4x relative to FLEX(DRAM)".
        assert!(slowdown > 3.0, "slowdown {slowdown}");
        assert!(slowdown < 12.0, "slowdown {slowdown} implausibly large");
    }

    #[test]
    fn same_oom_envelope_as_flex_dram() {
        let ds = DeepSpeedUvm::new(&SystemSpec::a100_pm9a3(4), &presets::opt_66b()).unwrap();
        assert!(matches!(ds.check_capacity(16, 32 * 1024, 64), Err(BaselineError::HostOom { .. })));
    }
}
