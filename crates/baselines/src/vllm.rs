//! Multi-node vLLM baseline (Fig. 17b): tensor parallelism inside each
//! node, pipeline parallelism across nodes, no offloading.
//!
//! The paper's configuration: two nodes × four RTX A6000, InfiniBand EDR
//! between them. All weights and KV must fit the aggregate GPU memory;
//! what does not fit spills to vLLM's host swap space over PCIe — the
//! "small batches and inter-node communication" bottleneck the paper
//! measures. This model is analytic (no task graph): per-layer GEMM time,
//! HBM-bound attention sweeps, per-layer all-reduces and the pipeline
//! hop, plus swap traffic when KV overflows.

use crate::error::BaselineError;
use hilos_llm::ModelConfig;
use hilos_platform::GpuSpec;

/// A multi-node tensor+pipeline-parallel deployment.
#[derive(Debug, Clone)]
pub struct VllmMultiNode {
    /// Node count (pipeline stages).
    pub nodes: u32,
    /// GPUs per node (tensor-parallel degree).
    pub gpus_per_node: u32,
    /// The GPU model.
    pub gpu: GpuSpec,
    /// Effective intra-node GPU-to-GPU bandwidth (PCIe P2P), bytes/s.
    pub intra_bw: f64,
    /// Effective inter-node bandwidth (InfiniBand EDR), bytes/s.
    pub inter_bw: f64,
    /// Host link bandwidth for KV swap traffic, bytes/s.
    pub swap_bw: f64,
    /// Fraction of GPU memory usable for weights + KV.
    pub mem_efficiency: f64,
}

impl VllmMultiNode {
    /// The paper's Fig. 17b testbed: 2 × 4 × A6000 with IB EDR. Swap
    /// bandwidth reflects vLLM's page-granular block copies over the
    /// shared PCIe fabric (~12 GB/s effective).
    pub fn paper_testbed() -> Self {
        VllmMultiNode {
            nodes: 2,
            gpus_per_node: 4,
            gpu: GpuSpec::a6000_48g(),
            intra_bw: 12e9,
            inter_bw: 12.5e9,
            swap_bw: 12e9,
            mem_efficiency: 0.95,
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// Usable bytes per GPU.
    fn usable_per_gpu(&self) -> f64 {
        self.gpu.mem_bytes as f64 * self.mem_efficiency
    }

    /// Bytes of KV per GPU for a job (sharded over TP heads and PP
    /// layers).
    fn kv_per_gpu(&self, model: &ModelConfig, batch: u32, context: u64) -> f64 {
        model.kv_bytes_per_token() as f64 * batch as f64 * context as f64 / self.total_gpus() as f64
    }

    /// Weight bytes per GPU.
    fn weights_per_gpu(&self, model: &ModelConfig) -> f64 {
        model.weight_bytes() as f64 / self.total_gpus() as f64
    }

    /// Checks whether the weights alone fit; returns the KV bytes per GPU
    /// that overflow into swap (0 when everything fits).
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if even the weights do not fit.
    pub fn kv_overflow_per_gpu(
        &self,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> Result<f64, BaselineError> {
        let w = self.weights_per_gpu(model);
        let usable = self.usable_per_gpu();
        if w > usable {
            return Err(BaselineError::GpuOom { needed: w as u64, available: usable as u64 });
        }
        let kv = self.kv_per_gpu(model, batch, context);
        Ok((kv - (usable - w)).max(0.0))
    }

    /// The largest power-of-two batch whose KV fits without swapping, if
    /// any.
    pub fn max_resident_batch(&self, model: &ModelConfig, context: u64, limit: u32) -> Option<u32> {
        let mut best = None;
        let mut bs = 1;
        while bs <= limit {
            if let Ok(0.0) = self.kv_overflow_per_gpu(model, bs, context) {
                best = Some(bs);
            }
            bs *= 2;
        }
        best
    }

    /// Seconds per decoding step for the whole batch.
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if the weights do not fit at all.
    pub fn step_seconds(
        &self,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> Result<f64, BaselineError> {
        let overflow = self.kv_overflow_per_gpu(model, batch, context)?;
        let tp = self.gpus_per_node as f64;
        let bs = batch as f64;
        let s = context as f64;
        let h = model.hidden() as f64;
        let layers = model.layers() as f64;

        // Per-layer GEMM work, sharded over TP.
        let flops_layer =
            bs * (model.qkv_flops_per_token_layer() + model.mlp_flops_per_token_layer(0));
        let compute = flops_layer / (tp * self.gpu.fp16_flops);
        // Attention: HBM sweep of the resident KV shard.
        let kv_layer = bs * 2.0 * s * model.kv_dim() as f64 * 2.0;
        let resident_frac = {
            let kv_gpu = self.kv_per_gpu(model, batch, context);
            if kv_gpu > 0.0 {
                ((kv_gpu - overflow) / kv_gpu).clamp(0.0, 1.0)
            } else {
                1.0
            }
        };
        let attn_hbm = kv_layer * resident_frac / (tp * self.gpu.hbm_bw);
        // Swapped KV pages come over the host link.
        let attn_swap = kv_layer * (1.0 - resident_frac) / self.swap_bw;
        // Two all-reduces per layer (after attention and after MLP).
        let ar_bytes = 2.0 * (tp - 1.0) / tp * bs * h * 2.0;
        let allreduce = 2.0 * ar_bytes / self.intra_bw;

        let per_layer = compute + attn_hbm + attn_swap + allreduce;
        // Pipeline: stages run in sequence for a single decode step, plus
        // the inter-node activation hop.
        let pp_hop = (self.nodes as f64 - 1.0) * (bs * h * 2.0 / self.inter_bw + 10e-6);
        Ok(layers * per_layer + pp_hop)
    }

    /// Decoding throughput in tokens/second.
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if the weights do not fit at all.
    pub fn tokens_per_second(
        &self,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> Result<f64, BaselineError> {
        Ok(batch as f64 / self.step_seconds(model, batch, context)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;

    #[test]
    fn weights_fit_but_kv_overflows_for_175b() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        // 350 GB over 8 x 45.6 GB: weights fit with almost nothing left.
        let overflow = v.kv_overflow_per_gpu(&m, 1, 16 * 1024).unwrap();
        assert!(overflow > 0.0, "16K-context KV should overflow");
        assert_eq!(v.max_resident_batch(&m, 16 * 1024, 16), None);
    }

    #[test]
    fn small_model_fits_comfortably() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_30b();
        assert_eq!(v.kv_overflow_per_gpu(&m, 1, 16 * 1024).unwrap(), 0.0);
        assert!(v.max_resident_batch(&m, 16 * 1024, 16).unwrap() >= 4);
    }

    #[test]
    fn swapping_destroys_throughput() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        let t_30b = v.tokens_per_second(&presets::opt_30b(), 1, 16 * 1024).unwrap();
        let t_175b = v.tokens_per_second(&m, 1, 16 * 1024).unwrap();
        assert!(t_175b < t_30b / 4.0, "30B {t_30b} vs 175B {t_175b}");
    }

    #[test]
    fn longer_context_is_slower() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        let t16 = v.tokens_per_second(&m, 1, 16 * 1024).unwrap();
        let t32 = v.tokens_per_second(&m, 1, 32 * 1024).unwrap();
        assert!(t32 < t16);
    }

    #[test]
    fn absolute_range_matches_fig17b() {
        // Fig 17b's axis tops out at 0.2 token/s for 175B.
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        let t = v.tokens_per_second(&m, 1, 16 * 1024).unwrap();
        assert!((0.01..1.0).contains(&t), "t={t}");
    }
}
