//! Multi-node vLLM baseline (Fig. 17b): tensor parallelism inside each
//! node, pipeline parallelism across nodes, no offloading.
//!
//! The paper's configuration: two nodes × four RTX A6000, InfiniBand EDR
//! between them. All weights and KV must fit the aggregate GPU memory;
//! what does not fit spills to vLLM's host swap space over PCIe — the
//! "small batches and inter-node communication" bottleneck the paper
//! measures. This model is analytic (no task graph): per-layer GEMM time,
//! HBM-bound attention sweeps, per-layer all-reduces and the pipeline
//! hop, plus swap traffic when KV overflows.

use crate::error::BaselineError;
use hilos_core::RequestOutcome;
use hilos_llm::{ModelConfig, Request};
use hilos_metrics::LatencyStats;
use hilos_platform::GpuSpec;

/// A multi-node tensor+pipeline-parallel deployment.
#[derive(Debug, Clone)]
pub struct VllmMultiNode {
    /// Node count (pipeline stages).
    pub nodes: u32,
    /// GPUs per node (tensor-parallel degree).
    pub gpus_per_node: u32,
    /// The GPU model.
    pub gpu: GpuSpec,
    /// Effective intra-node GPU-to-GPU bandwidth (PCIe P2P), bytes/s.
    pub intra_bw: f64,
    /// Effective inter-node bandwidth (InfiniBand EDR), bytes/s.
    pub inter_bw: f64,
    /// Host link bandwidth for KV swap traffic, bytes/s.
    pub swap_bw: f64,
    /// Fraction of GPU memory usable for weights + KV.
    pub mem_efficiency: f64,
}

impl VllmMultiNode {
    /// The paper's Fig. 17b testbed: 2 × 4 × A6000 with IB EDR. Swap
    /// bandwidth reflects vLLM's page-granular block copies over the
    /// shared PCIe fabric (~12 GB/s effective).
    pub fn paper_testbed() -> Self {
        VllmMultiNode {
            nodes: 2,
            gpus_per_node: 4,
            gpu: GpuSpec::a6000_48g(),
            intra_bw: 12e9,
            inter_bw: 12.5e9,
            swap_bw: 12e9,
            mem_efficiency: 0.95,
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// Usable bytes per GPU.
    fn usable_per_gpu(&self) -> f64 {
        self.gpu.mem_bytes as f64 * self.mem_efficiency
    }

    /// Bytes of KV per GPU for a job (sharded over TP heads and PP
    /// layers).
    fn kv_per_gpu(&self, model: &ModelConfig, batch: u32, context: u64) -> f64 {
        model.kv_bytes_per_token() as f64 * batch as f64 * context as f64 / self.total_gpus() as f64
    }

    /// Weight bytes per GPU.
    fn weights_per_gpu(&self, model: &ModelConfig) -> f64 {
        model.weight_bytes() as f64 / self.total_gpus() as f64
    }

    /// Checks whether the weights alone fit; returns the KV bytes per GPU
    /// that overflow into swap (0 when everything fits).
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if even the weights do not fit.
    pub fn kv_overflow_per_gpu(
        &self,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> Result<f64, BaselineError> {
        let w = self.weights_per_gpu(model);
        let usable = self.usable_per_gpu();
        if w > usable {
            return Err(BaselineError::GpuOom { needed: w as u64, available: usable as u64 });
        }
        let kv = self.kv_per_gpu(model, batch, context);
        Ok((kv - (usable - w)).max(0.0))
    }

    /// The largest power-of-two batch whose KV fits without swapping, if
    /// any.
    pub fn max_resident_batch(&self, model: &ModelConfig, context: u64, limit: u32) -> Option<u32> {
        let mut best = None;
        let mut bs = 1;
        while bs <= limit {
            if let Ok(0.0) = self.kv_overflow_per_gpu(model, bs, context) {
                best = Some(bs);
            }
            bs *= 2;
        }
        best
    }

    /// Seconds per decoding step for the whole batch.
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if the weights do not fit at all.
    pub fn step_seconds(
        &self,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> Result<f64, BaselineError> {
        let overflow = self.kv_overflow_per_gpu(model, batch, context)?;
        let tp = self.gpus_per_node as f64;
        let bs = batch as f64;
        let s = context as f64;
        let h = model.hidden() as f64;
        let layers = model.layers() as f64;

        // Per-layer GEMM work, sharded over TP.
        let flops_layer =
            bs * (model.qkv_flops_per_token_layer() + model.mlp_flops_per_token_layer(0));
        let compute = flops_layer / (tp * self.gpu.fp16_flops);
        // Attention: HBM sweep of the resident KV shard.
        let kv_layer = bs * 2.0 * s * model.kv_dim() as f64 * 2.0;
        let resident_frac = {
            let kv_gpu = self.kv_per_gpu(model, batch, context);
            if kv_gpu > 0.0 {
                ((kv_gpu - overflow) / kv_gpu).clamp(0.0, 1.0)
            } else {
                1.0
            }
        };
        let attn_hbm = kv_layer * resident_frac / (tp * self.gpu.hbm_bw);
        // Swapped KV pages come over the host link.
        let attn_swap = kv_layer * (1.0 - resident_frac) / self.swap_bw;
        // Two all-reduces per layer (after attention and after MLP).
        let ar_bytes = 2.0 * (tp - 1.0) / tp * bs * h * 2.0;
        let allreduce = 2.0 * ar_bytes / self.intra_bw;

        let per_layer = compute + attn_hbm + attn_swap + allreduce;
        // Pipeline: stages run in sequence for a single decode step, plus
        // the inter-node activation hop.
        let pp_hop = (self.nodes as f64 - 1.0) * (bs * h * 2.0 / self.inter_bw + 10e-6);
        Ok(layers * per_layer + pp_hop)
    }

    /// Decoding throughput in tokens/second.
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if the weights do not fit at all.
    pub fn tokens_per_second(
        &self,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> Result<f64, BaselineError> {
        Ok(batch as f64 / self.step_seconds(model, batch, context)?)
    }

    /// Prefill seconds for a `batch × context` job: the prompt's GEMM
    /// work sharded over every GPU, plus the per-layer all-reduces on the
    /// prompt activations and the pipeline hop.
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if the weights do not fit at all.
    pub fn prefill_seconds(
        &self,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> Result<f64, BaselineError> {
        // Surface the same OOM condition decode would hit.
        self.kv_overflow_per_gpu(model, batch, context)?;
        let tp = self.gpus_per_node as f64;
        let bs = batch as f64;
        let s = context as f64;
        let h = model.hidden() as f64;
        let layers = model.layers() as f64;
        let compute =
            bs * model.prefill_flops(context) / (self.total_gpus() as f64 * self.gpu.fp16_flops);
        let ar_bytes = 2.0 * (tp - 1.0) / tp * bs * s * h * 2.0;
        let allreduce = layers * 2.0 * ar_bytes / self.intra_bw;
        let pp_hop = (self.nodes as f64 - 1.0) * (bs * s * h * 2.0 / self.inter_bw + 10e-6);
        Ok(compute + allreduce + pp_hop)
    }

    /// Drives the same request trace the HILOS serving layer consumes,
    /// with vLLM's serial recompute-from-prefill semantics: requests
    /// drain in arrival order one at a time, each paying a full prefill
    /// before decoding at batch 1 (KV is not retained across requests).
    /// Arrival timing is ignored — the backlog is treated as offline —
    /// so the report is an *upper* bound on this baseline's goodput.
    ///
    /// Decode time uses the midpoint-context approximation
    /// (`prompt + output/2`), which the serving regression test pins to
    /// within a fraction of a percent of the exact per-step sum.
    ///
    /// # Errors
    ///
    /// [`BaselineError::GpuOom`] if the weights do not fit at all.
    pub fn run_trace(
        &self,
        model: &ModelConfig,
        trace: &[Request],
        deadline_s: f64,
    ) -> Result<VllmTraceReport, BaselineError> {
        let mut clock = 0.0f64;
        let mut outcomes = Vec::with_capacity(trace.len());
        let mut generated = 0u64;
        for req in trace {
            let admitted_s = clock;
            let prefill = self.prefill_seconds(model, 1, req.prompt_len)?;
            let mid_ctx = req.prompt_len + req.output_budget / 2;
            let step = self.step_seconds(model, 1, mid_ctx)?;
            let first_token_s = admitted_s + prefill + step;
            let finished_s = admitted_s + prefill + step * req.output_budget as f64;
            clock = finished_s;
            generated += req.output_budget;
            outcomes.push(RequestOutcome {
                id: req.id,
                class: req.class,
                deployment: hilos_llm::DeploymentId::default(),
                prompt_len: req.prompt_len,
                output_len: req.output_budget,
                arrival_s: 0.0,
                admitted_s,
                first_token_s,
                finished_s,
                slo_deadline_s: req.slo.deadline_s(),
                preemptions: 0,
                // Serial recompute-from-prefill: every prompt is
                // ingested exactly once, in one piece.
                prefill_tokens: req.prompt_len,
            });
        }
        Ok(VllmTraceReport { outcomes, elapsed_s: clock, generated_tokens: generated, deadline_s })
    }
}

/// Result of serially draining a request trace on the vLLM baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct VllmTraceReport {
    /// Per-request lifecycles (arrival pinned at zero — offline backlog).
    pub outcomes: Vec<RequestOutcome>,
    /// Total seconds to drain the trace.
    pub elapsed_s: f64,
    /// Tokens generated.
    pub generated_tokens: u64,
    /// The deadline used for goodput accounting.
    pub deadline_s: f64,
}

impl VllmTraceReport {
    /// Generated-token throughput.
    pub fn tokens_per_second(&self) -> f64 {
        hilos_core::throughput_of(self.generated_tokens, self.elapsed_s)
    }

    /// Token goodput under the deadline.
    pub fn token_goodput(&self) -> f64 {
        hilos_core::token_goodput_of(&self.outcomes, self.deadline_s, self.elapsed_s)
    }

    /// TTFT order statistics (queue wait included).
    pub fn ttft_stats(&self) -> LatencyStats {
        hilos_core::ttft_stats_of(&self.outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;

    #[test]
    fn weights_fit_but_kv_overflows_for_175b() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        // 350 GB over 8 x 45.6 GB: weights fit with almost nothing left.
        let overflow = v.kv_overflow_per_gpu(&m, 1, 16 * 1024).unwrap();
        assert!(overflow > 0.0, "16K-context KV should overflow");
        assert_eq!(v.max_resident_batch(&m, 16 * 1024, 16), None);
    }

    #[test]
    fn small_model_fits_comfortably() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_30b();
        assert_eq!(v.kv_overflow_per_gpu(&m, 1, 16 * 1024).unwrap(), 0.0);
        assert!(v.max_resident_batch(&m, 16 * 1024, 16).unwrap() >= 4);
    }

    #[test]
    fn swapping_destroys_throughput() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        let t_30b = v.tokens_per_second(&presets::opt_30b(), 1, 16 * 1024).unwrap();
        let t_175b = v.tokens_per_second(&m, 1, 16 * 1024).unwrap();
        assert!(t_175b < t_30b / 4.0, "30B {t_30b} vs 175B {t_175b}");
    }

    #[test]
    fn longer_context_is_slower() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        let t16 = v.tokens_per_second(&m, 1, 16 * 1024).unwrap();
        let t32 = v.tokens_per_second(&m, 1, 32 * 1024).unwrap();
        assert!(t32 < t16);
    }

    #[test]
    fn serial_trace_drains_in_arrival_order() {
        use hilos_llm::TraceConfig;
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_30b();
        let trace = TraceConfig::azure_mix(24, 3).generate().unwrap();
        let report = v.run_trace(&m, &trace, 60.0).unwrap();
        assert_eq!(report.outcomes.len(), 24);
        assert!(report.elapsed_s > 0.0);
        // Strictly serial: each request starts when the previous ends.
        for w in report.outcomes.windows(2) {
            assert!(w[1].admitted_s >= w[0].finished_s - 1e-9);
        }
        // Queue wait makes late requests' TTFT dwarf early ones'.
        let stats = report.ttft_stats();
        assert!(stats.p99 > 2.0 * stats.p50, "no queueing visible: {stats:?}");
        assert!(report.token_goodput() <= report.tokens_per_second() + 1e-9);
        // Determinism.
        assert_eq!(report, v.run_trace(&m, &trace, 60.0).unwrap());
    }

    #[test]
    fn prefill_grows_with_context() {
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_30b();
        let p16 = v.prefill_seconds(&m, 1, 16 * 1024).unwrap();
        let p64 = v.prefill_seconds(&m, 1, 64 * 1024).unwrap();
        assert!(p64 > 3.0 * p16, "{p64} vs {p16}");
    }

    #[test]
    fn absolute_range_matches_fig17b() {
        // Fig 17b's axis tops out at 0.2 token/s for 175B.
        let v = VllmMultiNode::paper_testbed();
        let m = presets::opt_175b();
        let t = v.tokens_per_second(&m, 1, 16 * 1024).unwrap();
        assert!((0.01..1.0).contains(&t), "t={t}");
    }
}
