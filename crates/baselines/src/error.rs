//! Baseline error types.

use hilos_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors from baseline systems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The spec has no storage devices but the configuration needs them.
    NoStorage,
    /// Host DRAM cannot hold the working set (the paper's "CPU OOM").
    HostOom {
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// The SSD array cannot hold the KV cache.
    StorageCapacity {
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// GPU memory cannot hold even a single sequence (multi-node vLLM).
    GpuOom {
        /// Bytes needed per GPU.
        needed: u64,
        /// Bytes available per GPU.
        available: u64,
    },
    /// A platform build failure.
    Platform(String),
    /// A wrapped simulation error.
    Sim(SimError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::NoStorage => write!(f, "configuration requires storage devices"),
            BaselineError::HostOom { needed, available } => {
                write!(f, "CPU OOM: need {needed} bytes of host DRAM, have {available}")
            }
            BaselineError::StorageCapacity { needed, available } => {
                write!(f, "SSD array too small: need {needed} bytes, have {available}")
            }
            BaselineError::GpuOom { needed, available } => {
                write!(f, "GPU OOM: need {needed} bytes per GPU, have {available}")
            }
            BaselineError::Platform(e) => write!(f, "platform error: {e}"),
            BaselineError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = BaselineError::HostOom { needed: 10, available: 5 };
        assert!(e.to_string().contains("CPU OOM"));
        assert!(BaselineError::NoStorage.to_string().contains("storage"));
    }
}
