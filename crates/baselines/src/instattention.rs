//! InstAttention-style in-storage attention with lossy sparse retrieval
//! (§7.1, Fig. 18c).
//!
//! InstAttention offloads attention into the SSD but meets its resource
//! limits by retrieving only a fraction (default 1/8) of the KV cache per
//! step, selected by approximate scores. This wrapper runs the accuracy
//! comparison of Fig. 18c: FlashAttention (lossless streaming reference),
//! HILOS (lossless accelerator kernel) and InstAttention (lossy top-k)
//! over synthetic long-context retrieval tasks.

use hilos_accel::{
    attention_kernel, attention_streaming_f16, parallel_map, sparse_topk_attention,
    AttentionInputs, EstimationNoise, KernelError,
};
use hilos_llm::{RetrievalTask, RetrievalTaskConfig};

/// InstAttention's default compression (1/8 of the KV retrieved).
pub const DEFAULT_KEEP_FRACTION: f64 = 1.0 / 8.0;

/// Noise amplitude of the approximate score estimation (quantized key
/// sketches), calibrated so the F1 drop lands in the paper's 3.5–5.7 pp
/// band on the synthetic tasks (3.8 pp at 4K context, 6.2 pp at 8K).
pub const DEFAULT_ESTIMATION_NOISE: f32 = 4.5;

/// Average F1 of the three systems over a set of tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyComparison {
    /// FlashAttention (lossless GPU streaming attention).
    pub flash_f1: f64,
    /// HILOS accelerator kernel (lossless).
    pub hilos_f1: f64,
    /// InstAttention with lossy 1/8 retrieval.
    pub instattention_f1: f64,
}

impl AccuracyComparison {
    /// The lossy accuracy gap in F1 points (×100), the Fig. 18c headline.
    pub fn lossy_gap_points(&self) -> f64 {
        (self.flash_f1 - self.instattention_f1) * 100.0
    }
}

/// Runs the Fig. 18c accuracy comparison over `n_tasks` synthetic
/// retrieval tasks at the given context length.
///
/// # Errors
///
/// Propagates kernel errors (impossible for well-formed generated tasks).
pub fn accuracy_comparison(
    context_len: usize,
    n_tasks: u64,
    keep_fraction: f64,
) -> Result<AccuracyComparison, KernelError> {
    accuracy_comparison_with_threads(context_len, n_tasks, keep_fraction, 1)
}

/// [`accuracy_comparison`] fanned out over up to `threads` workers, one
/// task per work item.
///
/// Per-task F1 triples are computed independently and reduced in task
/// order, so the result is bit-identical to the serial run for any thread
/// count. The kernel runs over each worker's thread-local scratch arena,
/// so the sweep does not allocate per block.
///
/// # Errors
///
/// Propagates kernel errors (impossible for well-formed generated tasks).
pub fn accuracy_comparison_with_threads(
    context_len: usize,
    n_tasks: u64,
    keep_fraction: f64,
    threads: usize,
) -> Result<AccuracyComparison, KernelError> {
    let seeds: Vec<u64> = (0..n_tasks).collect();
    let per_task = parallel_map(&seeds, threads, |_, &seed| {
        let task = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(context_len, seed));
        let inputs = AttentionInputs {
            queries: &task.queries,
            keys: &task.keys,
            values: &task.values,
            valid: None,
            scale: task.scale,
            host_tail: None,
        };
        let flash_out =
            attention_streaming_f16(&task.queries, &task.keys, &task.values, None, task.scale);
        let hilos_out = attention_kernel(&inputs)?;
        let inst_out = sparse_topk_attention(
            &inputs,
            keep_fraction,
            Some(EstimationNoise { amplitude: DEFAULT_ESTIMATION_NOISE, seed: seed * 7 + 1 }),
        )?;
        Ok((
            task.f1(&task.decode(&flash_out)),
            task.f1(&task.decode(&hilos_out)),
            task.f1(&task.decode(&inst_out)),
        ))
    });
    let mut flash = 0.0;
    let mut hilos = 0.0;
    let mut inst = 0.0;
    for triple in per_task {
        let (f, h, i) = triple?;
        flash += f;
        hilos += h;
        inst += i;
    }
    let n = n_tasks as f64;
    Ok(AccuracyComparison { flash_f1: flash / n, hilos_f1: hilos / n, instattention_f1: inst / n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilos_is_lossless_like_flashattention() {
        let cmp = accuracy_comparison(2048, 6, DEFAULT_KEEP_FRACTION).unwrap();
        // Same algorithm, same FP16 inputs: decoded answers agree.
        assert!(
            (cmp.flash_f1 - cmp.hilos_f1).abs() < 0.02,
            "flash {} vs hilos {}",
            cmp.flash_f1,
            cmp.hilos_f1
        );
    }

    #[test]
    fn lossy_retrieval_drops_f1() {
        let cmp = accuracy_comparison(2048, 10, DEFAULT_KEEP_FRACTION).unwrap();
        assert!(
            cmp.instattention_f1 < cmp.flash_f1,
            "inst {} should trail flash {}",
            cmp.instattention_f1,
            cmp.flash_f1
        );
        let gap = cmp.lossy_gap_points();
        assert!(gap > 0.5, "gap {gap} pp too small");
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let serial = accuracy_comparison_with_threads(1024, 6, 0.125, 1).unwrap();
        let parallel = accuracy_comparison_with_threads(1024, 6, 0.125, 4).unwrap();
        assert_eq!(serial.flash_f1.to_bits(), parallel.flash_f1.to_bits());
        assert_eq!(serial.hilos_f1.to_bits(), parallel.hilos_f1.to_bits());
        assert_eq!(serial.instattention_f1.to_bits(), parallel.instattention_f1.to_bits());
    }

    #[test]
    fn keeping_everything_restores_accuracy() {
        let lossless = accuracy_comparison(1024, 4, 1.0).unwrap();
        assert!(
            (lossless.instattention_f1 - lossless.flash_f1).abs() < 0.15,
            "inst {} vs flash {}",
            lossless.instattention_f1,
            lossless.flash_f1
        );
    }
}
