//! InstAttention-style in-storage attention with lossy sparse retrieval
//! (§7.1, Fig. 18c).
//!
//! InstAttention offloads attention into the SSD but meets its resource
//! limits by retrieving only a fraction (default 1/8) of the KV cache per
//! step, selected by approximate scores. This wrapper runs the accuracy
//! comparison of Fig. 18c: FlashAttention (lossless streaming reference),
//! HILOS (lossless accelerator kernel) and InstAttention (lossy top-k)
//! over synthetic long-context retrieval tasks.

use hilos_accel::{
    attention_kernel, attention_streaming, sparse_topk_attention, AttentionInputs,
    EstimationNoise, KernelError,
};
use hilos_llm::{RetrievalTask, RetrievalTaskConfig};

/// InstAttention's default compression (1/8 of the KV retrieved).
pub const DEFAULT_KEEP_FRACTION: f64 = 1.0 / 8.0;

/// Noise amplitude of the approximate score estimation (quantized key
/// sketches), calibrated so the F1 drop lands in the paper's 3.5–5.7 pp
/// band on the synthetic tasks (3.8 pp at 4K context, 6.2 pp at 8K).
pub const DEFAULT_ESTIMATION_NOISE: f32 = 4.5;

/// Average F1 of the three systems over a set of tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyComparison {
    /// FlashAttention (lossless GPU streaming attention).
    pub flash_f1: f64,
    /// HILOS accelerator kernel (lossless).
    pub hilos_f1: f64,
    /// InstAttention with lossy 1/8 retrieval.
    pub instattention_f1: f64,
}

impl AccuracyComparison {
    /// The lossy accuracy gap in F1 points (×100), the Fig. 18c headline.
    pub fn lossy_gap_points(&self) -> f64 {
        (self.flash_f1 - self.instattention_f1) * 100.0
    }
}

/// Runs the Fig. 18c accuracy comparison over `n_tasks` synthetic
/// retrieval tasks at the given context length.
///
/// # Errors
///
/// Propagates kernel errors (impossible for well-formed generated tasks).
pub fn accuracy_comparison(
    context_len: usize,
    n_tasks: u64,
    keep_fraction: f64,
) -> Result<AccuracyComparison, KernelError> {
    let mut flash = 0.0;
    let mut hilos = 0.0;
    let mut inst = 0.0;
    for seed in 0..n_tasks {
        let task = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(context_len, seed));
        let inputs = AttentionInputs {
            queries: &task.queries,
            keys: &task.keys,
            values: &task.values,
            valid: None,
            scale: task.scale,
            host_tail: None,
        };
        let flash_out = attention_streaming(
            &task.queries.to_f32(),
            &task.keys.to_f32(),
            &task.values.to_f32(),
            None,
            task.scale,
        );
        let hilos_out = attention_kernel(&inputs)?;
        let inst_out = sparse_topk_attention(
            &inputs,
            keep_fraction,
            Some(EstimationNoise { amplitude: DEFAULT_ESTIMATION_NOISE, seed: seed * 7 + 1 }),
        )?;
        flash += task.f1(&task.decode(&flash_out));
        hilos += task.f1(&task.decode(&hilos_out));
        inst += task.f1(&task.decode(&inst_out));
    }
    let n = n_tasks as f64;
    Ok(AccuracyComparison {
        flash_f1: flash / n,
        hilos_f1: hilos / n,
        instattention_f1: inst / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilos_is_lossless_like_flashattention() {
        let cmp = accuracy_comparison(2048, 6, DEFAULT_KEEP_FRACTION).unwrap();
        // Same algorithm, same FP16 inputs: decoded answers agree.
        assert!(
            (cmp.flash_f1 - cmp.hilos_f1).abs() < 0.02,
            "flash {} vs hilos {}",
            cmp.flash_f1,
            cmp.hilos_f1
        );
    }

    #[test]
    fn lossy_retrieval_drops_f1() {
        let cmp = accuracy_comparison(2048, 10, DEFAULT_KEEP_FRACTION).unwrap();
        assert!(
            cmp.instattention_f1 < cmp.flash_f1,
            "inst {} should trail flash {}",
            cmp.instattention_f1,
            cmp.flash_f1
        );
        let gap = cmp.lossy_gap_points();
        assert!(gap > 0.5, "gap {gap} pp too small");
    }

    #[test]
    fn keeping_everything_restores_accuracy() {
        let lossless = accuracy_comparison(1024, 4, 1.0).unwrap();
        assert!(
            (lossless.instattention_f1 - lossless.flash_f1).abs() < 0.15,
            "inst {} vs flash {}",
            lossless.instattention_f1,
            lossless.flash_f1
        );
    }
}
