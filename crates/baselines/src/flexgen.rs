//! FlexGen-style offloading-based batched inference (the paper's primary
//! baseline, §2.2 / Fig. 1).
//!
//! Weights stream from host DRAM (or storage for >100B models) to the
//! GPU; the KV cache lives in host DRAM or on an SSD array; attention for
//! decoding runs on the host CPU (§6.1: "all baselines offload attention
//! computation to the CPU"). Weight loads overlap with compute through a
//! depth-1 prefetch chain, exactly like the HILOS scheduler, so the two
//! systems differ only in what the paper says they differ in: where the
//! KV bytes flow.

use crate::error::BaselineError;
use hilos_accel::{attention_streaming_f16, MatrixF16, MatrixF32};
use hilos_core::{load_weights, weight_source, RunReport};
use hilos_llm::ModelConfig;
use hilos_platform::{BuiltSystem, StorageConfig, SystemSpec};
use hilos_sim::{execute, TaskGraph, TaskId};

/// Where the baseline keeps the KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvLocation {
    /// Host DRAM — FLEX(DRAM). Fast but capacity-bound.
    HostDram,
    /// The SSD array — FLEX(SSD) / FLEX(16 PCIe 3.0 SSDs).
    SsdArray,
}

/// Efficiency of host-managed bulk storage I/O relative to raw device
/// bandwidth. FlexGen's synchronous, chunked KV pipeline sustains well
/// under half the raw array bandwidth (the paper measures >60–80% of step
/// time in KV I/O, Fig. 2b/11b, and ~0.1 token/s for 66B/32K/bs16 in
/// Fig. 11a); 0.42 reproduces those absolute numbers and places the
/// long-context HILOS speedups in the paper's 5.3–7.8× band. Calibrated
/// once and shared by all baselines.
pub const HOST_IO_EFFICIENCY: f64 = 0.42;

/// Extra penalty for driving a JBOF of 16 devices behind a shared
/// switch fabric with software RAID (mdadm chunking over two switch
/// levels). Calibrated so FLEX(16 PCIe 3.0 SSDs) lands in the paper's
/// 0.64–0.94× of FLEX(SSD) (§6.3).
pub const FABRIC_EFFICIENCY: f64 = 0.70;

/// Effective memory bandwidth of the CPU attention sweep. FlexGen's CPU
/// attention (fp16→fp32 conversion, framework overheads) sustains a small
/// fraction of raw DRAM bandwidth; 18 GB/s places FLEX(DRAM) in the
/// paper's Fig. 10 relation to HILOS(4) (which beats it by 1.10–1.36×)
/// and near its absolute Fig. 11a numbers.
pub const CPU_ATTENTION_BW: f64 = 18e9;

/// The functional model of the baselines' CPU attention (§6.1: "all
/// baselines offload attention computation to the CPU"): a
/// FlashAttention-style online-softmax sweep over the FP16 KV cache,
/// decoding rows through the shared LUT instead of widening the whole
/// cache to FP32 first — the same access pattern the
/// [`CPU_ATTENTION_BW`] throughput constant models at the simulation
/// level.
///
/// `queries` is `g × d`; `keys`/`values` are `s × d`.
///
/// # Panics
///
/// Panics if shapes disagree or the context is empty.
pub fn functional_cpu_attention(
    queries: &MatrixF16,
    keys: &MatrixF16,
    values: &MatrixF16,
    scale: f32,
) -> MatrixF32 {
    attention_streaming_f16(queries, keys, values, None, scale)
}

/// A FlexGen-style deployment.
#[derive(Debug, Clone)]
pub struct FlexGenSystem {
    spec: SystemSpec,
    model: ModelConfig,
    kv: KvLocation,
    sim_layers: u32,
    /// Extra per-layer host-DRAM traffic factor (used by the DeepSpeed+UVM
    /// wrapper; 1.0 for plain FlexGen).
    uvm_kv_bw: Option<f64>,
}

impl FlexGenSystem {
    /// Creates a deployment.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NoStorage`] if `kv` is `SsdArray` and the spec has
    /// no storage devices.
    pub fn new(
        spec: &SystemSpec,
        model: &ModelConfig,
        kv: KvLocation,
    ) -> Result<Self, BaselineError> {
        if kv == KvLocation::SsdArray && spec.storage.device_count() == 0 {
            return Err(BaselineError::NoStorage);
        }
        Ok(FlexGenSystem {
            spec: spec.clone(),
            model: model.clone(),
            kv,
            sim_layers: 8,
            uvm_kv_bw: None,
        })
    }

    /// Overrides the number of simulated layers (default 8).
    pub fn with_sim_layers(mut self, layers: u32) -> Self {
        assert!(layers >= 1, "must simulate at least one layer");
        self.sim_layers = layers;
        self
    }

    pub(crate) fn with_uvm_kv_bw(mut self, bw: f64) -> Self {
        self.uvm_kv_bw = Some(bw);
        self
    }

    /// The KV location.
    pub fn kv_location(&self) -> KvLocation {
        self.kv
    }

    /// The model.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The system spec.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Checks whether a job fits, mirroring the paper's "CPU OOM" bars.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::HostOom`] for FLEX(DRAM) jobs whose weights +
    ///   KV + workspace exceed host DRAM,
    /// * [`BaselineError::StorageCapacity`] for FLEX(SSD) jobs beyond the
    ///   array.
    pub fn check_capacity(
        &self,
        batch: u32,
        context: u64,
        output: u64,
    ) -> Result<(), BaselineError> {
        let max_ctx = context + output;
        let kv = self.model.kv_bytes_per_token() * batch as u64 * max_ctx;
        let workspace = 32u64 << 30;
        match self.kv {
            KvLocation::HostDram => {
                let weights = if self.model.weight_bytes() < 200_000_000_000 {
                    self.model.weight_bytes()
                } else {
                    0 // >100B weights live on storage even in FLEX(DRAM)
                };
                // FlexGen keeps the KV cache in pinned, double-buffered
                // segments (~1.25x) and needs an fp32 score workspace for
                // the CPU attention — this is what caps 66B/32K at batch 2
                // (Fig. 11a).
                let kv = kv + kv / 4;
                let scores = batch as u64 * self.model.heads() as u64 * max_ctx * 4;
                let needed = weights + kv + scores + workspace;
                if needed > self.spec.host.dram_bytes {
                    return Err(BaselineError::HostOom {
                        needed,
                        available: self.spec.host.dram_bytes,
                    });
                }
            }
            KvLocation::SsdArray => {
                let capacity = self.spec.storage.ssd_spec().capacity_bytes()
                    * self.spec.storage.device_count() as u64;
                if kv > capacity {
                    return Err(BaselineError::StorageCapacity { needed: kv, available: capacity });
                }
            }
        }
        Ok(())
    }

    /// The largest batch (power of two up to `limit`) that fits.
    pub fn max_batch(&self, context: u64, output: u64, limit: u32) -> Option<u32> {
        let mut best = None;
        let mut bs = 1;
        while bs <= limit {
            if self.check_capacity(bs, context, output).is_ok() {
                best = Some(bs);
            }
            bs *= 2;
        }
        best
    }

    fn build_world(&self) -> Result<BuiltSystem, BaselineError> {
        BuiltSystem::build(&self.spec, None, self.model.head_dim())
            .map_err(|e| BaselineError::Platform(e.to_string()))
    }

    fn is_chassis(&self) -> bool {
        matches!(self.spec.storage, StorageConfig::SmartSsdChassis { .. })
    }

    fn build_decode_step(&self, sys: &BuiltSystem, batch: u32, context: u64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let m = &self.model;
        let n = sys.devices.len();
        let bs = batch as f64;
        let s = context as f64;
        let kv_layer_bytes = bs * 2.0 * s * m.kv_dim() as f64 * 2.0;
        let page = self.spec.storage.ssd_spec().page_bytes() as f64;
        let source = weight_source(sys, m, 32 << 30);
        let fabric = if self.is_chassis() { FABRIC_EFFICIENCY } else { 1.0 };

        let mut prev_w: Option<TaskId> = None;
        let mut prev_layer: Option<TaskId> = None;
        for l in 0..self.sim_layers {
            // 1-2: attention weights + QKV projection on the GPU.
            let w_attn = load_weights(
                &mut g,
                sys,
                source,
                &format!("loadw:attn{l}"),
                m.attn_weight_bytes_per_layer() as f64,
                prev_w,
            );
            let mut deps = vec![w_attn];
            deps.extend(prev_layer);
            let qkv =
                g.compute(format!("qkv:l{l}"), bs * m.qkv_flops_per_token_layer(), sys.gpu, &deps);
            // Fresh activations hop to the host for the CPU attention.
            g.transfer(
                format!("act:down{l}"),
                bs * m.hidden() as f64 * 2.0,
                sys.topo.route(sys.gpu_node, sys.host_node).expect("route exists"),
                &[qkv],
            );

            // 3: the KV cache reaches the CPU.
            let mut atn_deps = vec![qkv];
            match self.kv {
                KvLocation::HostDram => {}
                KvLocation::SsdArray => {
                    let mut parts = Vec::with_capacity(n);
                    for (d, dev) in sys.devices.iter().enumerate() {
                        let mut tail = sys.device_to_host_route(d);
                        tail.push(sys.host_dram);
                        let bytes = kv_layer_bytes / n as f64 / (HOST_IO_EFFICIENCY * fabric);
                        parts.push(dev.ssd.read_task(
                            &mut g,
                            &format!("loadkv:l{l}.d{d}"),
                            bytes,
                            &tail,
                            &[],
                        ));
                    }
                    atn_deps.push(g.milestone(format!("sync:kv{l}"), &parts));
                }
            }

            // 4: CPU attention — compute in parallel with the DRAM sweep
            // over the KV bytes (memory-bound GEMV).
            let atn_c = g.compute(
                format!("atn:cpu{l}"),
                bs * m.heads() as f64 * 4.0 * s * m.head_dim() as f64,
                sys.cpu,
                &atn_deps,
            );
            // The KV sweep runs at the CPU attention's effective
            // bandwidth (or the UVM fault path's, for DS+UVM), modeled by
            // inflating the bytes crossing the DRAM port.
            let sweep_bw = self.uvm_kv_bw.unwrap_or(CPU_ATTENTION_BW).min(CPU_ATTENTION_BW);
            let sweep_bytes = kv_layer_bytes * (self.spec.host.dram_bw / sweep_bw);
            let atn_m =
                g.transfer(format!("atnmem:l{l}"), sweep_bytes, vec![sys.host_dram], &atn_deps);
            let atn_done = g.milestone(format!("sync:atn{l}"), &[atn_c, atn_m]);

            // Result hops back to the GPU.
            let act_up = g.transfer(
                format!("act:up{l}"),
                bs * m.hidden() as f64 * 2.0,
                sys.host_to_gpu_route(),
                &[atn_done],
            );

            // 7: new KV entries written back (buffered page-aligned by the
            // framework; off the critical path).
            if self.kv == KvLocation::SsdArray {
                for (d, dev) in sys.devices.iter().enumerate() {
                    let payload = bs * 2.0 * m.kv_dim() as f64 * 2.0 / n as f64;
                    let bytes = (payload / page).ceil() * page;
                    let store = dev.ssd.write_task(
                        &mut g,
                        &format!("storekv:l{l}.d{d}"),
                        bytes,
                        &sys.host_to_device_route(d),
                        &[qkv],
                    );
                    g.set_background(store);
                }
            }

            // 5-6: MLP weights + feed-forward.
            let w_mlp = load_weights(
                &mut g,
                sys,
                source,
                &format!("loadw:mlp{l}"),
                (m.decode_weight_traffic_bytes(batch) / m.layers() as u64
                    - m.attn_weight_bytes_per_layer()) as f64,
                Some(w_attn),
            );
            let mlp = g.compute(
                format!("mlp:l{l}"),
                bs * m.mlp_flops_per_token_layer(l),
                sys.gpu,
                &[w_mlp, act_up],
            );
            prev_layer = Some(mlp);
            prev_w = Some(w_mlp);
        }
        g
    }

    /// Runs the decode phase.
    ///
    /// # Errors
    ///
    /// Capacity errors ("CPU OOM") or wrapped simulation errors.
    pub fn run_decode(
        &self,
        batch: u32,
        context: u64,
        output_len: u64,
    ) -> Result<RunReport, BaselineError> {
        self.check_capacity(batch, context, output_len)?;
        let mut sys = self.build_world()?;
        let mid_ctx = context + output_len / 2;
        let layer_scale = self.model.layers() as f64 / self.sim_layers as f64;
        let graph = self.build_decode_step(&sys, batch, mid_ctx);
        let timeline = execute(&mut sys.engine, &graph).map_err(BaselineError::Sim)?;
        let avg = timeline.makespan().as_secs_f64() * layer_scale;

        let m = &self.model;
        let bs = batch as f64;
        let s = mid_ctx as f64;
        let layers = m.layers() as f64;
        let kv_step = bs * 2.0 * s * m.kv_dim() as f64 * 2.0 * layers;
        let weights = m.decode_weight_traffic_bytes(batch) as f64;
        let host_pcie = match self.kv {
            KvLocation::HostDram => weights,
            KvLocation::SsdArray => weights + kv_step,
        };
        // Naive per-step writes: each 256 B KV entry programs a page
        // unless buffered; FlexGen buffers per-layer, so the per-step
        // write is one page per (layer × device) at minimum.
        let nand_writes =
            hilos_core::spill_nand_bytes_per_token(m, 1, self.spec.storage.ssd_spec().page_bytes())
                * bs;

        Ok(RunReport {
            batch,
            output_len,
            avg_step_seconds: avg,
            decode_seconds: avg * output_len as f64,
            alpha: 0.0,
            category_seconds: timeline.category_seconds(&graph),
            gpu_utilization: timeline.utilization(sys.gpu),
            cpu_utilization: timeline.utilization(sys.cpu),
            dram_utilization: timeline.utilization(sys.host_dram),
            host_pcie_bytes_per_step: host_pcie,
            internal_read_bytes_per_step: 0.0,
            nand_write_bytes_per_step: if self.kv == KvLocation::SsdArray {
                nand_writes
            } else {
                0.0
            },
        })
    }

    /// Runs the prefill phase (FlashAttention on the GPU, like every
    /// system in §6.1).
    ///
    /// # Errors
    ///
    /// Capacity errors or wrapped simulation errors.
    pub fn run_prefill(&self, batch: u32, context: u64) -> Result<f64, BaselineError> {
        self.check_capacity(batch, context, 1)?;
        let mut sys = self.build_world()?;
        let m = &self.model;
        let layer_scale = m.layers() as f64 / self.sim_layers as f64;
        let source = weight_source(&sys, m, 32 << 30);
        let mut g = TaskGraph::new();
        let per_layer_flops = batch as f64 * m.prefill_flops(context) / m.layers() as f64;
        let kv_layer = batch as f64 * 2.0 * context as f64 * m.kv_dim() as f64 * 2.0;
        let mut prev_w: Option<TaskId> = None;
        let mut prev_layer: Option<TaskId> = None;
        for l in 0..self.sim_layers {
            let w = load_weights(
                &mut g,
                &sys,
                source,
                &format!("loadw:pf{l}"),
                (m.attn_weight_bytes_per_layer()
                    + m.decode_weight_traffic_bytes(batch) / m.layers() as u64)
                    as f64,
                prev_w,
            );
            let mut deps = vec![w];
            deps.extend(prev_layer);
            let c = g.compute(format!("prefill:l{l}"), per_layer_flops, sys.gpu, &deps);
            let done = match self.kv {
                KvLocation::HostDram => {
                    let mut route = sys.topo.route(sys.gpu_node, sys.host_node).unwrap();
                    route.push(sys.host_dram);
                    g.transfer(format!("writekv:pf{l}"), kv_layer, route, &[c])
                }
                KvLocation::SsdArray => {
                    let n = sys.devices.len();
                    let mut parts = Vec::new();
                    for (d, dev) in sys.devices.iter().enumerate() {
                        parts.push(dev.ssd.write_task(
                            &mut g,
                            &format!("writekv:pf{l}.d{d}"),
                            kv_layer / n as f64,
                            &sys.gpu_to_device_route(d),
                            &[c],
                        ));
                    }
                    g.milestone(format!("sync:pf{l}"), &parts)
                }
            };
            prev_layer = Some(done);
            prev_w = Some(w);
        }
        let timeline = execute(&mut sys.engine, &g).map_err(BaselineError::Sim)?;
        Ok(timeline.makespan().as_secs_f64() * layer_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;

    fn flex_ssd() -> FlexGenSystem {
        FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), &presets::opt_66b(), KvLocation::SsdArray)
            .unwrap()
            .with_sim_layers(4)
    }

    fn flex_dram() -> FlexGenSystem {
        FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), &presets::opt_66b(), KvLocation::HostDram)
            .unwrap()
            .with_sim_layers(4)
    }

    #[test]
    fn flex_dram_oom_matches_fig11() {
        // FLEX(DRAM) on 66B/32K is capped at batch 2 by the 512 GB host.
        let f = flex_dram();
        assert_eq!(f.max_batch(32 * 1024, 64, 16), Some(2));
        assert!(matches!(f.check_capacity(4, 32 * 1024, 64), Err(BaselineError::HostOom { .. })));
    }

    #[test]
    fn flex_ssd_supports_large_batches() {
        let f = flex_ssd();
        f.check_capacity(16, 32 * 1024, 64).unwrap();
        assert_eq!(f.max_batch(32 * 1024, 64, 16), Some(16));
    }

    #[test]
    fn kv_io_dominates_flex_ssd_fig2b() {
        // Fig 2b: KV-cache I/O over 60% of execution time at long context.
        let f = flex_ssd();
        let r = f.run_decode(16, 32 * 1024, 4).unwrap();
        let total: f64 = r.category_seconds.iter().map(|(_, s)| s).sum();
        let kv: f64 = r
            .category_seconds
            .iter()
            .filter(|(c, _)| c == "loadkv" || c == "atnmem")
            .map(|(_, s)| s)
            .sum();
        assert!(kv / total > 0.5, "kv fraction {}", kv / total);
    }

    #[test]
    fn dram_beats_ssd_at_feasible_batch() {
        let d = flex_dram().run_decode(2, 32 * 1024, 4).unwrap();
        let s = flex_ssd().run_decode(2, 32 * 1024, 4).unwrap();
        assert!(
            d.tokens_per_second() > s.tokens_per_second(),
            "dram {} vs ssd {}",
            d.tokens_per_second(),
            s.tokens_per_second()
        );
    }

    #[test]
    fn ssd_wins_overall_via_batch_at_long_context() {
        // The FLEX(SSD) advantage: batch 16 fits, while DRAM stops at 2.
        let d = flex_dram().run_decode(2, 64 * 1024, 4);
        let s = flex_ssd().run_decode(16, 64 * 1024, 4).unwrap();
        // At 64K the DRAM variant can't even hold batch 2.
        assert!(d.is_err() || s.tokens_per_second() > 0.0);
        assert!(s.tokens_per_second() > 0.0);
    }

    #[test]
    fn absolute_throughput_in_paper_ballpark() {
        // FLEX(DRAM) 66B/32K/bs2 lands near the paper's ~0.4-0.6 tok/s
        // (Fig. 11a axis), sanity-checking the calibration.
        let r = flex_dram().run_decode(2, 32 * 1024, 4).unwrap();
        let t = r.tokens_per_second();
        assert!((0.2..1.2).contains(&t), "tok/s = {t}");
    }

    #[test]
    fn chassis_jbof_no_faster_than_four_pm9a3() {
        // §6.3: FLEX(16 PCIe 3.0 SSDs) reaches only 0.64-0.94x FLEX(SSD).
        let four = flex_ssd().run_decode(16, 32 * 1024, 4).unwrap();
        let jbof = FlexGenSystem::new(
            &SystemSpec::a100_chassis_no_fpga(16),
            &presets::opt_66b(),
            KvLocation::SsdArray,
        )
        .unwrap()
        .with_sim_layers(4)
        .run_decode(16, 32 * 1024, 4)
        .unwrap();
        let ratio = jbof.tokens_per_second() / four.tokens_per_second();
        assert!((0.55..1.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prefill_runs() {
        let t = flex_ssd().run_prefill(4, 16 * 1024).unwrap();
        assert!(t > 0.0);
    }

    #[test]
    fn cpu_attention_agrees_with_accelerator_kernel() {
        // The baselines' CPU attention and the HILOS accelerator kernel
        // compute the same mathematical function over the same FP16
        // cache; they differ only in summation strategy (online vs
        // two-pass softmax), so outputs agree to FP32 round-off.
        let mut state = 91u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        let q = hilos_accel::MatrixF32::from_fn(2, 32, |_, _| next()).to_f16();
        let k = hilos_accel::MatrixF32::from_fn(300, 32, |_, _| next()).to_f16();
        let v = hilos_accel::MatrixF32::from_fn(300, 32, |_, _| next()).to_f16();
        let scale = 1.0 / 32f32.sqrt();
        let cpu = functional_cpu_attention(&q, &k, &v, scale);
        let accel = hilos_accel::attention_kernel(&hilos_accel::AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale,
            host_tail: None,
        })
        .unwrap();
        assert!(cpu.max_abs_diff(&accel) < 1e-4);
    }
}
