//! # hilos-baselines — the comparison systems of the evaluation
//!
//! Everything HILOS is measured against in §6:
//!
//! * [`FlexGenSystem`] — FlexGen-style offloading-based batched inference
//!   with the KV cache in host DRAM (`FLEX(DRAM)`) or on an SSD array
//!   (`FLEX(SSD)`, `FLEX(16 PCIe 3.0 SSDs)` via the FPGA-disabled chassis
//!   spec),
//! * [`DeepSpeedUvm`] — DeepSpeed ZeRO-Inference extended with UVM,
//! * [`VllmMultiNode`] — the 2×4×A6000 tensor+pipeline-parallel vLLM
//!   deployment of Fig. 17b,
//! * [`accuracy_comparison`] — the InstAttention lossy-retrieval accuracy
//!   study of Fig. 18c.
//!
//! All graph-based baselines execute on the same simulation substrate as
//! HILOS, so comparisons isolate scheduling and data placement — exactly
//! what the paper varies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deepspeed;
mod error;
mod flexgen;
mod instattention;
mod vllm;

pub use deepspeed::{DeepSpeedUvm, UVM_EFFECTIVE_BW};
pub use error::BaselineError;
pub use flexgen::{
    functional_cpu_attention, FlexGenSystem, KvLocation, CPU_ATTENTION_BW, FABRIC_EFFICIENCY,
    HOST_IO_EFFICIENCY,
};
pub use instattention::{
    accuracy_comparison, accuracy_comparison_with_threads, AccuracyComparison,
    DEFAULT_ESTIMATION_NOISE, DEFAULT_KEEP_FRACTION,
};
pub use vllm::VllmMultiNode;
