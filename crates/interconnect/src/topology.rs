//! Tree topologies of PCIe nodes and their instantiation as simulation
//! resources.

use crate::pcie::LinkSpec;
use hilos_sim::{FlowEngine, ResourceId, ResourceKind, ResourceSpec};
use std::error::Error;
use std::fmt;

/// Identifier of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Index of the node inside its topology.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The root complex (host CPU + DRAM side).
    Host,
    /// A PCIe switch.
    Switch,
    /// An endpoint device (GPU, SSD, NSP device, NIC...).
    Device,
}

/// Errors from topology operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A node id did not belong to this topology.
    UnknownNode(usize),
    /// A route between identical endpoints was requested.
    SameEndpoint(usize),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(i) => write!(f, "unknown topology node index {i}"),
            TopologyError::SameEndpoint(i) => {
                write!(f, "route endpoints are the same node (index {i})")
            }
        }
    }
}

impl Error for TopologyError {}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    /// Parent node and the link connecting to it (None for the root).
    parent: Option<(NodeId, LinkSpec)>,
    depth: u32,
}

/// A tree of PCIe nodes.
///
/// Construction is purely structural; call [`Topology::instantiate`] to
/// materialize each link direction as a bandwidth resource inside a
/// [`FlowEngine`].
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
}

impl Topology {
    /// Creates a topology containing only the host root complex.
    pub fn new(host_name: impl Into<String>) -> Self {
        Topology {
            nodes: vec![Node {
                name: host_name.into(),
                kind: NodeKind::Host,
                parent: None,
                depth: 0,
            }],
        }
    }

    /// The root (host) node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the topology has only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn add_node(&mut self, name: String, kind: NodeKind, parent: NodeId, link: LinkSpec) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "unknown parent {parent}");
        let depth = self.nodes[parent.index()].depth + 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name, kind, parent: Some((parent, link)), depth });
        id
    }

    /// Adds a PCIe switch under `parent`, connected with `link`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not belong to this topology.
    pub fn add_switch(
        &mut self,
        name: impl Into<String>,
        parent: NodeId,
        link: LinkSpec,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Switch, parent, link)
    }

    /// Adds an endpoint device under `parent`, connected with `link`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not belong to this topology.
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        parent: NodeId,
        link: LinkSpec,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Device, parent, link)
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// The link connecting `id` to its parent, or `None` for the root.
    pub fn uplink(&self, id: NodeId) -> Option<LinkSpec> {
        self.nodes[id.index()].parent.map(|(_, l)| l)
    }

    /// Registers every link direction as a resource in `engine` and
    /// returns the instance used to compute routes.
    pub fn instantiate(&self, engine: &mut FlowEngine) -> TopologyInstance {
        let mut links = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.parent {
                None => links.push(None),
                Some((parent, link)) => {
                    let pname = &self.nodes[parent.index()].name;
                    let up = engine.add_resource(ResourceSpec::new(
                        format!("pcie:{}->{}:{}", node.name, pname, link),
                        ResourceKind::Link,
                        link.bandwidth(),
                    ));
                    let down = engine.add_resource(ResourceSpec::new(
                        format!("pcie:{}->{}:{}", pname, node.name, link),
                        ResourceKind::Link,
                        link.bandwidth(),
                    ));
                    let _ = i;
                    links.push(Some(DirectedLinks { up, down }));
                }
            }
        }
        TopologyInstance { topo: self.clone(), links }
    }
}

#[derive(Debug, Clone, Copy)]
struct DirectedLinks {
    /// Towards the root.
    up: ResourceId,
    /// Away from the root.
    down: ResourceId,
}

/// A [`Topology`] whose links are materialized as engine resources.
#[derive(Debug, Clone)]
pub struct TopologyInstance {
    topo: Topology,
    links: Vec<Option<DirectedLinks>>,
}

impl TopologyInstance {
    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Resource carrying traffic from `id` towards its parent, or `None`
    /// for the root.
    pub fn uplink_resource(&self, id: NodeId) -> Option<ResourceId> {
        self.links.get(id.index())?.map(|l| l.up)
    }

    /// Resource carrying traffic from the parent towards `id`, or `None`
    /// for the root.
    pub fn downlink_resource(&self, id: NodeId) -> Option<ResourceId> {
        self.links.get(id.index())?.map(|l| l.down)
    }

    /// Computes the ordered list of directed link resources a transfer from
    /// `from` to `to` traverses (up to the lowest common ancestor, then
    /// down).
    ///
    /// # Errors
    ///
    /// * [`TopologyError::UnknownNode`] if either endpoint is not in the
    ///   topology.
    /// * [`TopologyError::SameEndpoint`] if `from == to` (a zero-hop route
    ///   would model an on-chip copy, which the caller should express as a
    ///   memory-port resource instead).
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<Vec<ResourceId>, TopologyError> {
        let n = self.topo.nodes.len();
        if from.index() >= n {
            return Err(TopologyError::UnknownNode(from.index()));
        }
        if to.index() >= n {
            return Err(TopologyError::UnknownNode(to.index()));
        }
        if from == to {
            return Err(TopologyError::SameEndpoint(from.index()));
        }

        // Walk both endpoints to the same depth, then in lockstep to the LCA.
        let mut a = from;
        let mut b = to;
        let mut up_path: Vec<ResourceId> = Vec::new();
        let mut down_path: Vec<ResourceId> = Vec::new();

        let depth = |id: NodeId| self.topo.nodes[id.index()].depth;
        while depth(a) > depth(b) {
            up_path.push(self.links[a.index()].unwrap().up);
            a = self.topo.nodes[a.index()].parent.unwrap().0;
        }
        while depth(b) > depth(a) {
            down_path.push(self.links[b.index()].unwrap().down);
            b = self.topo.nodes[b.index()].parent.unwrap().0;
        }
        while a != b {
            up_path.push(self.links[a.index()].unwrap().up);
            a = self.topo.nodes[a.index()].parent.unwrap().0;
            down_path.push(self.links[b.index()].unwrap().down);
            b = self.topo.nodes[b.index()].parent.unwrap().0;
        }
        down_path.reverse();
        up_path.extend(down_path);
        Ok(up_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcie::PcieGen;
    use hilos_sim::SimTime;

    fn x4g3() -> LinkSpec {
        LinkSpec::new(PcieGen::Gen3, 4)
    }
    fn x16g4() -> LinkSpec {
        LinkSpec::new(PcieGen::Gen4, 16)
    }

    #[test]
    fn route_device_to_host_is_uplinks() {
        let mut t = Topology::new("host");
        let sw = t.add_switch("sw", t.root(), x16g4());
        let dev = t.add_device("ssd", sw, x4g3());
        let mut eng = FlowEngine::new();
        let inst = t.instantiate(&mut eng);
        let r = inst.route(dev, t.root()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], inst.uplink_resource(dev).unwrap());
        assert_eq!(r[1], inst.uplink_resource(sw).unwrap());
    }

    #[test]
    fn route_between_siblings_goes_through_parent() {
        let mut t = Topology::new("host");
        let sw = t.add_switch("sw", t.root(), x16g4());
        let a = t.add_device("a", sw, x4g3());
        let b = t.add_device("b", sw, x4g3());
        let mut eng = FlowEngine::new();
        let inst = t.instantiate(&mut eng);
        let r = inst.route(a, b).unwrap();
        // a->sw (up), sw->b (down). Does not touch the host uplink: P2P
        // stays inside the switch, as in the SmartSSD chassis.
        assert_eq!(r, vec![inst.uplink_resource(a).unwrap(), inst.downlink_resource(b).unwrap()]);
    }

    #[test]
    fn route_across_switches() {
        let mut t = Topology::new("host");
        let s1 = t.add_switch("s1", t.root(), x16g4());
        let s2 = t.add_switch("s2", t.root(), x16g4());
        let a = t.add_device("a", s1, x4g3());
        let b = t.add_device("b", s2, x4g3());
        let mut eng = FlowEngine::new();
        let inst = t.instantiate(&mut eng);
        let r = inst.route(a, b).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], inst.uplink_resource(a).unwrap());
        assert_eq!(r[1], inst.uplink_resource(s1).unwrap());
        assert_eq!(r[2], inst.downlink_resource(s2).unwrap());
        assert_eq!(r[3], inst.downlink_resource(b).unwrap());
    }

    #[test]
    fn errors_on_bad_endpoints() {
        let t = Topology::new("host");
        let mut eng = FlowEngine::new();
        let inst = t.instantiate(&mut eng);
        assert_eq!(inst.route(t.root(), t.root()), Err(TopologyError::SameEndpoint(0)));
        assert_eq!(inst.route(t.root(), NodeId(7)), Err(TopologyError::UnknownNode(7)));
    }

    #[test]
    fn full_duplex_links_do_not_contend() {
        let mut t = Topology::new("host");
        let dev = t.add_device("gpu", t.root(), x16g4());
        let mut eng = FlowEngine::new();
        let inst = t.instantiate(&mut eng);
        let up = inst.route(dev, t.root()).unwrap();
        let down = inst.route(t.root(), dev).unwrap();
        let bw = x16g4().bandwidth();
        eng.submit(&up, bw, None).unwrap();
        eng.submit(&down, bw, None).unwrap();
        // Both directions run at full rate: total time is 1 s, not 2 s.
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_secs(1));
    }

    #[test]
    fn shared_uplink_contention_matches_fig3() {
        // 4 devices behind one Gen4 x16 uplink, each with a Gen3 x4 link.
        // Aggregate device bandwidth (4 x 3.94 = 15.8 GB/s) fits the uplink,
        // but 16 devices (63 GB/s) saturate it.
        let build = |n: usize| {
            let mut t = Topology::new("host");
            let sw = t.add_switch("sw", t.root(), x16g4());
            let devs: Vec<_> = (0..n).map(|i| t.add_device(format!("d{i}"), sw, x4g3())).collect();
            let mut eng = FlowEngine::new();
            let inst = t.instantiate(&mut eng);
            for d in &devs {
                let route = inst.route(*d, t.root()).unwrap();
                eng.submit(&route, 1e9, None).unwrap();
            }
            eng.run_to_idle().unwrap().as_secs_f64()
        };
        let t4 = build(4);
        let t16 = build(16);
        // 4 devices: device-link bound (1e9/3.94e9 s each, parallel).
        assert!((t4 - 1.0 / 3.94).abs() < 0.01, "t4={t4}");
        // 16 devices: uplink bound (16e9 / 31.5e9 s).
        assert!((t16 - 16.0 / 31.5).abs() < 0.01, "t16={t16}");
        assert!(t16 > t4 * 1.5);
    }

    #[test]
    fn node_metadata_accessors() {
        let mut t = Topology::new("host");
        let sw = t.add_switch("sw", t.root(), x16g4());
        let d = t.add_device("nvme", sw, x4g3());
        assert_eq!(t.name(d), "nvme");
        assert_eq!(t.kind(sw), NodeKind::Switch);
        assert_eq!(t.kind(t.root()), NodeKind::Host);
        assert_eq!(t.uplink(d), Some(x4g3()));
        assert_eq!(t.uplink(t.root()), None);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
