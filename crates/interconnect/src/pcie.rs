//! PCIe link characteristics.

use std::fmt;

/// PCIe generation.
///
/// Effective per-lane bandwidth accounts for encoding and protocol
/// overhead (TLP headers, flow control): roughly 0.985 GB/s per Gen3 lane
/// and double per generation after that — the figures commonly measured
/// for large DMA transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PcieGen {
    /// PCIe 3.0 — 8 GT/s, 128b/130b encoding.
    Gen3,
    /// PCIe 4.0 — 16 GT/s.
    Gen4,
    /// PCIe 5.0 — 32 GT/s (the §7.2 what-if analysis).
    Gen5,
}

impl PcieGen {
    /// Effective payload bandwidth per lane in bytes/second.
    pub fn bytes_per_sec_per_lane(self) -> f64 {
        match self {
            PcieGen::Gen3 => 0.985e9,
            PcieGen::Gen4 => 1.969e9,
            PcieGen::Gen5 => 3.938e9,
        }
    }
}

impl fmt::Display for PcieGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcieGen::Gen3 => write!(f, "PCIe3.0"),
            PcieGen::Gen4 => write!(f, "PCIe4.0"),
            PcieGen::Gen5 => write!(f, "PCIe5.0"),
        }
    }
}

/// A link: a PCIe generation and a lane count.
///
/// # Examples
///
/// ```
/// use hilos_interconnect::{LinkSpec, PcieGen};
///
/// let x16 = LinkSpec::new(PcieGen::Gen4, 16);
/// assert!((x16.bandwidth() - 31.5e9).abs() < 0.1e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    gen: PcieGen,
    lanes: u8,
}

impl LinkSpec {
    /// Creates a link spec.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or not a power of two ≤ 16 (PCIe widths
    /// are ×1/×2/×4/×8/×16).
    pub fn new(gen: PcieGen, lanes: u8) -> Self {
        assert!(
            matches!(lanes, 1 | 2 | 4 | 8 | 16),
            "PCIe lane width must be 1, 2, 4, 8 or 16; got {lanes}"
        );
        LinkSpec { gen, lanes }
    }

    /// The PCIe generation.
    pub fn gen(self) -> PcieGen {
        self.gen
    }

    /// Lane count.
    pub fn lanes(self) -> u8 {
        self.lanes
    }

    /// Effective one-direction bandwidth in bytes/second.
    pub fn bandwidth(self) -> f64 {
        self.gen.bytes_per_sec_per_lane() * self.lanes as f64
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x{}", self.gen, self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_lane_bandwidth_doubles_per_gen() {
        assert!(
            PcieGen::Gen4.bytes_per_sec_per_lane() > 1.9 * PcieGen::Gen3.bytes_per_sec_per_lane()
        );
        assert!(
            PcieGen::Gen5.bytes_per_sec_per_lane() > 1.9 * PcieGen::Gen4.bytes_per_sec_per_lane()
        );
    }

    #[test]
    fn known_link_bandwidths() {
        // Gen3 x4 (SmartSSD host link) ~ 3.94 GB/s.
        let g3x4 = LinkSpec::new(PcieGen::Gen3, 4).bandwidth();
        assert!((g3x4 - 3.94e9).abs() < 0.01e9);
        // Gen4 x16 (A100 host link) ~ 31.5 GB/s.
        let g4x16 = LinkSpec::new(PcieGen::Gen4, 16).bandwidth();
        assert!((g4x16 - 31.5e9).abs() < 0.1e9);
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn invalid_lane_count_rejected() {
        let _ = LinkSpec::new(PcieGen::Gen3, 3);
    }

    #[test]
    fn display_format() {
        let l = LinkSpec::new(PcieGen::Gen4, 8);
        assert_eq!(l.to_string(), "PCIe4.0 x8");
    }
}
