//! # hilos-interconnect — PCIe topology model
//!
//! Models the system interconnects of the paper's two platforms (Fig. 3):
//! a conventional server where each SSD owns a dedicated root port, and the
//! SmartSSD expansion chassis where 16 NSP devices share a single ×16
//! uplink through a PCIe switch — the topology that makes host-side KV
//! traffic saturate while NSP-internal paths stay private.
//!
//! The model is a **tree of nodes connected by full-duplex links**. Each
//! link direction (towards the root / away from it) becomes one bandwidth
//! resource in the [`hilos_sim::FlowEngine`], so simultaneous reads and
//! writes do not contend with each other but flows in the same direction
//! share max-min fairly.
//!
//! # Example
//!
//! ```
//! use hilos_interconnect::{LinkSpec, PcieGen, Topology};
//! use hilos_sim::FlowEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut topo = Topology::new("host");
//! let sw = topo.add_switch("chassis", topo.root(), LinkSpec::new(PcieGen::Gen4, 16));
//! let ssd = topo.add_device("smartssd0", sw, LinkSpec::new(PcieGen::Gen3, 4));
//!
//! let mut eng = FlowEngine::new();
//! let inst = topo.instantiate(&mut eng);
//! let downstream = inst.route(topo.root(), ssd)?;
//! assert_eq!(downstream.len(), 2); // host->switch, switch->ssd
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pcie;
mod topology;

pub use pcie::{LinkSpec, PcieGen};
pub use topology::{NodeId, NodeKind, Topology, TopologyError, TopologyInstance};
