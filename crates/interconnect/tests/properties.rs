//! Property tests for topology routing.

use hilos_interconnect::{LinkSpec, NodeId, PcieGen, Topology};
use hilos_sim::FlowEngine;
use proptest::prelude::*;

/// Builds a random tree of `n` nodes under the root, parents chosen among
/// earlier nodes.
fn random_tree(parents: &[usize]) -> (Topology, Vec<NodeId>) {
    let mut topo = Topology::new("host");
    let mut nodes = vec![topo.root()];
    for (i, &p) in parents.iter().enumerate() {
        let parent = nodes[p % nodes.len()];
        let node = if i % 2 == 0 {
            topo.add_switch(format!("s{i}"), parent, LinkSpec::new(PcieGen::Gen4, 8))
        } else {
            topo.add_device(format!("d{i}"), parent, LinkSpec::new(PcieGen::Gen3, 4))
        };
        nodes.push(node);
    }
    (topo, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pair of distinct nodes has a route; its length equals the
    /// tree distance; and the reverse route has equal length.
    #[test]
    fn routes_exist_and_are_symmetric_in_length(
        parents in prop::collection::vec(0usize..8, 1..12),
        a_pick in any::<usize>(),
        b_pick in any::<usize>(),
    ) {
        let (topo, nodes) = random_tree(&parents);
        let mut eng = FlowEngine::new();
        let inst = topo.instantiate(&mut eng);
        let a = nodes[a_pick % nodes.len()];
        let b = nodes[b_pick % nodes.len()];
        if a == b {
            prop_assert!(inst.route(a, b).is_err());
            return Ok(());
        }
        let fwd = inst.route(a, b).unwrap();
        let rev = inst.route(b, a).unwrap();
        prop_assert_eq!(fwd.len(), rev.len());
        prop_assert!(!fwd.is_empty());
        // Opposite directions never share a resource.
        for r in &fwd {
            prop_assert!(!rev.contains(r), "shared directed link between directions");
        }
    }

    /// Routes through the tree touch each link at most once (no cycles).
    #[test]
    fn routes_are_simple_paths(
        parents in prop::collection::vec(0usize..6, 1..14),
        a_pick in any::<usize>(),
        b_pick in any::<usize>(),
    ) {
        let (topo, nodes) = random_tree(&parents);
        let mut eng = FlowEngine::new();
        let inst = topo.instantiate(&mut eng);
        let a = nodes[a_pick % nodes.len()];
        let b = nodes[b_pick % nodes.len()];
        prop_assume!(a != b);
        let route = inst.route(a, b).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &route {
            prop_assert!(seen.insert(*r), "link repeated on route");
        }
        // A tree route can never exceed the node count in hops.
        prop_assert!(route.len() <= nodes.len());
    }

    /// A transfer along any route completes in the time implied by its
    /// slowest link (no phantom contention).
    #[test]
    fn single_flow_matches_bottleneck(
        parents in prop::collection::vec(0usize..4, 1..8),
        bytes in 1.0e6..1.0e10f64,
    ) {
        let (topo, nodes) = random_tree(&parents);
        let mut eng = FlowEngine::new();
        let inst = topo.instantiate(&mut eng);
        let leaf = *nodes.last().unwrap();
        prop_assume!(leaf != topo.root());
        let route = inst.route(leaf, topo.root()).unwrap();
        let bottleneck = route
            .iter()
            .map(|r| eng.resource(*r).capacity())
            .fold(f64::INFINITY, f64::min);
        eng.submit(&route, bytes, None).unwrap();
        let end = eng.run_to_idle().unwrap().as_secs_f64();
        let expect = bytes / bottleneck;
        prop_assert!((end - expect).abs() / expect < 1e-6, "end={end} expect={expect}");
    }
}
