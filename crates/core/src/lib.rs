//! # hilos-core — the HILOS framework
//!
//! The paper's primary contribution: high-throughput offline LLM inference
//! with near-storage processing. This crate implements, on top of the
//! simulation substrates:
//!
//! * **attention near storage** (§4.1) — the decode schedule that confines
//!   KV-cache traffic to the devices' internal paths ([`build_hilos_decode_step`],
//!   with the Eq. 3 traffic model in [`traffic`]),
//! * **cooperative X-cache** (§4.2) — the analytic α model and candidate
//!   selection ([`AlphaModel`]), exercised by the *Cache Scheduler*,
//! * **delayed KV-cache writeback** (§4.3) — the host-side buffer and
//!   spill policy ([`WritebackManager`]) plus the sub-page write-cost
//!   model,
//! * the **Inference Controller** ([`HilosSystem`]) that runs simulated
//!   prefill/decode jobs and reports throughput, utilization and traffic,
//!   with every decode step executed by the reusable
//!   [`DecodeStepExecutor`],
//! * **request-level serving** ([`serve`]) — continuous batching over
//!   heterogeneous request traces behind a pluggable [`SchedulingPolicy`]
//!   API (FIFO, deadline-EDF with opt-in overload shedding,
//!   priority-preemptive), with per-device KV shard admission,
//!   recompute-style preemption, token-budgeted chunked prefill
//!   ([`ChunkMode`]) that models prompt-ingestion contention with the
//!   running decode batch, and TTFT/ITL/goodput reporting,
//! * **cluster serving** ([`cluster`]) — one trace balanced across
//!   heterogeneous deployments by a pluggable [`RoutingPolicy`]
//!   (round-robin, join-shortest-queue, ledger-pressure), with
//!   cross-deployment re-dispatch of preempted requests and aggregated
//!   [`ClusterReport`]s,
//! * a **functional pipeline** ([`FunctionalBlock`]) proving bit-level
//!   equivalence of the ANS / X-cache / writeback numerics against the
//!   baseline.
//!
//! # Example
//!
//! ```
//! use hilos_core::{HilosConfig, HilosSystem};
//! use hilos_llm::presets;
//! use hilos_platform::SystemSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = HilosSystem::new(
//!     &SystemSpec::a100_smartssd(8),
//!     &presets::opt_30b(),
//!     &HilosConfig::new(8),
//! )?
//! .with_sim_layers(4);
//! let report = system.run_decode(16, 16 * 1024, 4)?;
//! assert!(report.tokens_per_second() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
pub mod cluster;
mod config;
mod functional;
mod middleware;
mod runner;
mod scheduler;
pub mod serve;
mod step;
pub mod traffic;
mod writeback;
mod xcache;

pub use campaign::{CampaignSummary, ServingCampaign};
pub use cluster::{
    AutoscalePolicy, ClusterConfig, ClusterEngine, ClusterReport, ClusterSnapshot, ColdStartModel,
    CostNormalizedPressure, DeploymentView, ElasticClusterEngine, ElasticConfig, ElasticReport,
    FleetSnapshot, HybridHistogramKeepAlive, JoinShortestQueue, LedgerPressure, LifecycleEvent,
    LifecycleState, PinnedFleet, RoundRobin, RouteRequest, RoutingPolicy, ScaleDecision,
    TargetPressureScaler,
};
pub use config::{AlphaPolicy, HilosConfig};
pub use functional::FunctionalBlock;
pub use hilos_sim::FlowEngineImpl;
pub use hilos_trace as trace;
pub use middleware::{CacheScheduler, WeightsPrefetcher};
pub use runner::{CoreError, HilosSystem, JobReport, PrefillReport, RunReport};
pub use scheduler::{
    build_hilos_decode_step, build_hilos_decode_step_sharded, build_hilos_prefill, load_weights,
    weight_source, DecodeStepSpec, WeightSource, GDS_EFFICIENCY, SUB_PAGE_WRITE_PENALTY_S,
};
pub use serve::{
    class_breakdown_of, outcome_lifecycle_fnv, throughput_of, token_goodput_of, ttft_stats_of,
    ChunkMode, DeadlineEdf, Fifo, InFlightView, PrefixCacheConfig, PriorityPreempt, QueuedView,
    RequestOutcome, SchedDecision, SchedSnapshot, SchedulingPolicy, ServeConfig, ServeEngine,
    ShedOutcome, TraceReport,
};
pub use step::{AlphaSelector, DecodeStepExecutor, StepOutcome};
pub use writeback::{spill_nand_bytes_per_token, SpillDecision, WritebackManager};
pub use xcache::{paper_alpha_mha, AlphaModel, ALPHA_CANDIDATES};
