//! The interconnect-traffic model of attention near storage (§4.1,
//! Eq. 3).
//!
//! Per decoding step, per token and transformer block, the baseline moves
//! the whole KV cache plus the new entries over the shared system
//! interconnect, while ANS moves only the fresh Q/K/V down and the
//! attention output back up.

use hilos_llm::FP16_BYTES;

/// Baseline interconnect bytes per decoding step for one token and one
/// transformer block at context `s` and hidden size `h`: `4·s·h` of KV
/// reads plus `4·h` of new-KV writes (Eq. 3 numerator).
pub fn baseline_step_bytes(s: u64, h: u64) -> f64 {
    (4 * s * h + 4 * h) as f64 * (FP16_BYTES as f64 / 2.0)
}

/// ANS interconnect bytes for the same step: the `2·h`-byte attention
/// output up plus the `6·h` bytes of fresh Q/K/V down (Eq. 3 denominator).
pub fn ans_step_bytes(h: u64) -> f64 {
    (2 * h + 6 * h) as f64 * (FP16_BYTES as f64 / 2.0)
}

/// The traffic-reduction ratio `T_BASE / T_ANS = (s + 1)/2` of Eq. 3.
pub fn traffic_reduction_ratio(s: u64) -> f64 {
    (s as f64 + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_ratio_exact() {
        for s in [1u64, 2, 100, 4096, 32 * 1024, 128 * 1024] {
            let ratio = baseline_step_bytes(s, 12288) / ans_step_bytes(12288);
            assert!(
                (ratio - traffic_reduction_ratio(s)).abs() < 1e-9,
                "s={s}: {ratio} vs {}",
                traffic_reduction_ratio(s)
            );
        }
    }

    #[test]
    fn ans_always_wins_beyond_one_token() {
        // Eq 3: (s+1)/2 > 1 for s > 1.
        for s in [2u64, 16, 1024] {
            assert!(traffic_reduction_ratio(s) > 1.0);
        }
        assert_eq!(traffic_reduction_ratio(1), 1.0);
    }

    #[test]
    fn ratio_grows_linearly_with_context() {
        let r32 = traffic_reduction_ratio(32 * 1024);
        let r64 = traffic_reduction_ratio(64 * 1024);
        assert!((r64 / r32 - 2.0).abs() < 0.001);
        // At 128K context the reduction is ~65,000x.
        assert!(traffic_reduction_ratio(128 * 1024) > 65_000.0);
    }

    #[test]
    fn ans_write_traffic_increases_slightly() {
        // §4.1: writes grow from 4h to 6h bytes — the price of shipping Q.
        let h = 8192u64;
        let base_writes = 4 * h;
        let ans_writes = 6 * h;
        assert_eq!(ans_writes as f64 / base_writes as f64, 1.5);
        assert!(ans_step_bytes(h) < baseline_step_bytes(2, h));
    }
}
