//! The delayed KV-cache writeback manager (§4.3).
//!
//! New per-step KV vectors are tiny (256 B per head) against the 4 KiB
//! flash page, so writing them through immediately amplifies writes by
//! 16× *and* puts a flash program on the critical path. The manager
//! buffers them in host memory, lets the CPU pre-compute the partial
//! `QKᵀ` scores for the buffered tail, and spills page-sized chunks every
//! `c` steps, off the critical path.

use hilos_llm::ModelConfig;

/// What the manager decides at each decoding step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillDecision {
    /// Tokens per sequence buffered in host memory *before* this step's
    /// new token is appended (the tail the CPU pre-computes scores for).
    pub buffered_tokens: u32,
    /// Whether the buffer spills to flash at the end of this step.
    pub spill_now: bool,
    /// Tokens per sequence spilled if `spill_now` (including this step's).
    pub spill_tokens: u32,
}

/// Tracks the host-side KV buffer across decoding steps (the paper's
/// *Writeback Manager* middleware component).
///
/// # Examples
///
/// ```
/// use hilos_core::WritebackManager;
///
/// let mut wb = WritebackManager::new(4);
/// let mut spills = 0;
/// for _ in 0..8 {
///     if wb.on_step().spill_now {
///         spills += 1;
///     }
/// }
/// assert_eq!(spills, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritebackManager {
    spill_interval: u32,
    buffered: u32,
    total_spills: u64,
}

impl WritebackManager {
    /// Creates a manager with spill interval `c` (the paper's default is
    /// 16, aligning a 256 B/step/head stream with 4 KiB pages).
    ///
    /// # Panics
    ///
    /// Panics if `c` is zero.
    pub fn new(spill_interval: u32) -> Self {
        assert!(spill_interval >= 1, "spill interval must be at least 1");
        WritebackManager { spill_interval, buffered: 0, total_spills: 0 }
    }

    /// The configured spill interval.
    pub fn spill_interval(&self) -> u32 {
        self.spill_interval
    }

    /// Tokens per sequence currently buffered.
    pub fn buffered_tokens(&self) -> u32 {
        self.buffered
    }

    /// Number of spills so far.
    pub fn total_spills(&self) -> u64 {
        self.total_spills
    }

    /// Advances one decoding step: the new token's KV joins the buffer,
    /// and the buffer spills when it reaches the interval.
    pub fn on_step(&mut self) -> SpillDecision {
        let before = self.buffered;
        self.buffered += 1;
        if self.buffered >= self.spill_interval {
            let spilled = self.buffered;
            self.buffered = 0;
            self.total_spills += 1;
            SpillDecision { buffered_tokens: before, spill_now: true, spill_tokens: spilled }
        } else {
            SpillDecision { buffered_tokens: before, spill_now: false, spill_tokens: 0 }
        }
    }

    /// Host-memory bytes the buffer occupies for a whole batch right
    /// before a spill (all layers): `c · batch · kv_bytes_per_token`.
    pub fn peak_buffer_bytes(&self, model: &ModelConfig, batch: u32) -> u64 {
        self.spill_interval as u64 * batch as u64 * model.kv_bytes_per_token()
    }

    /// CPU FLOPs to pre-compute the partial `QKᵀ` scores for `buffered`
    /// tail tokens: every query head dots its query against each buffered
    /// key (2 FLOPs/MAC), for the whole batch and all layers.
    pub fn partial_score_flops(model: &ModelConfig, batch: u32, buffered: u32) -> f64 {
        2.0 * model.layers() as f64
            * batch as f64
            * model.heads() as f64
            * model.head_dim() as f64
            * buffered as f64
    }
}

/// NAND bytes programmed per spilled step-token for one sequence across
/// all layers, under the given page size: page-aligned buffered spills
/// program `ceil(c·kv/page)·page / c` per token versus a full page per
/// 256-byte entry for the naive path.
pub fn spill_nand_bytes_per_token(model: &ModelConfig, spill_interval: u32, page: u64) -> f64 {
    let per_head_entry = 2 * model.head_dim() as u64 * 2; // K+V fp16
    let heads = model.kv_heads() as u64 * model.layers() as u64;
    let chunk = per_head_entry * spill_interval as u64;
    let pages_per_chunk = chunk.div_ceil(page);
    heads as f64 * pages_per_chunk as f64 * page as f64 / spill_interval as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;

    #[test]
    fn spills_every_c_steps() {
        let mut wb = WritebackManager::new(16);
        let mut spill_steps = Vec::new();
        for step in 0..64 {
            let d = wb.on_step();
            if d.spill_now {
                spill_steps.push(step);
                assert_eq!(d.spill_tokens, 16);
            }
        }
        assert_eq!(spill_steps, vec![15, 31, 47, 63]);
        assert_eq!(wb.total_spills(), 4);
        assert_eq!(wb.buffered_tokens(), 0);
    }

    #[test]
    fn buffered_tail_grows_between_spills() {
        let mut wb = WritebackManager::new(4);
        assert_eq!(wb.on_step().buffered_tokens, 0);
        assert_eq!(wb.on_step().buffered_tokens, 1);
        assert_eq!(wb.on_step().buffered_tokens, 2);
        let d = wb.on_step();
        assert_eq!(d.buffered_tokens, 3);
        assert!(d.spill_now);
        assert_eq!(wb.on_step().buffered_tokens, 0);
    }

    #[test]
    fn interval_one_degenerates_to_write_through() {
        let mut wb = WritebackManager::new(1);
        for _ in 0..5 {
            let d = wb.on_step();
            assert!(d.spill_now);
            assert_eq!(d.buffered_tokens, 0);
            assert_eq!(d.spill_tokens, 1);
        }
    }

    #[test]
    fn spill_interval_16_fills_pages_exactly() {
        // §4.3: 256 B per head entry x c=16 = 4 KiB = one page: no
        // amplification. K+V = 512 B x 16 = two pages, still aligned.
        let m = presets::opt_66b();
        let per_token = spill_nand_bytes_per_token(&m, 16, 4096);
        let payload = m.kv_bytes_per_token() as f64;
        assert!((per_token / payload - 1.0).abs() < 1e-9, "waf={}", per_token / payload);
        // Naive write-through (c=1): each 512 B K+V entry burns a page.
        let naive = spill_nand_bytes_per_token(&m, 1, 4096);
        assert!((naive / payload - 8.0).abs() < 1e-9, "waf={}", naive / payload);
    }

    #[test]
    fn larger_pages_need_larger_intervals() {
        // §7.3: 16 KiB pages push the no-amplification point from c=16
        // out to c=32 (K+V: 512 B x 32 = 16 KiB exactly).
        let m = presets::opt_66b();
        let payload = m.kv_bytes_per_token() as f64;
        let c16 = spill_nand_bytes_per_token(&m, 16, 16384) / payload;
        let c32 = spill_nand_bytes_per_token(&m, 32, 16384) / payload;
        let c64 = spill_nand_bytes_per_token(&m, 64, 16384) / payload;
        assert!((c16 - 2.0).abs() < 1e-9, "c=16 on 16KiB pages amplifies 2x: {c16}");
        assert!((c32 - 1.0).abs() < 1e-9);
        assert!((c64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_fits_host_memory() {
        // c=16, bs=16 on OPT-175B: buffer stays far below 512 GB.
        let m = presets::opt_175b();
        let wb = WritebackManager::new(16);
        let bytes = wb.peak_buffer_bytes(&m, 16);
        assert!(bytes < (8u64 << 30), "buffer {bytes} too large");
    }

    #[test]
    fn partial_scores_are_cheap() {
        let m = presets::opt_66b();
        let flops = WritebackManager::partial_score_flops(&m, 16, 15);
        // Far below one GPU-millisecond of work; the point of §4.3.
        assert!(flops < 1e10, "flops={flops}");
    }
}
