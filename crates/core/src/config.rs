//! HILOS configuration: device count, optimization toggles and tuning
//! knobs.

use std::fmt;

/// How the X-cache ratio α is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlphaPolicy {
    /// Solve the §4.2 analytic model and snap to the best candidate ratio.
    Auto,
    /// Use a fixed ratio in `[0, 1]`.
    Fixed(f64),
}

/// Configuration of a HILOS deployment.
///
/// The three optimization toggles map onto the paper's ablation (Fig. 15):
/// `ANS` alone, `ANS+WB`, `ANS+X` and `ANS+WB+X`.
///
/// # Examples
///
/// ```
/// use hilos_core::HilosConfig;
///
/// let full = HilosConfig::new(8);
/// assert!(full.delayed_writeback() && full.cooperative_xcache());
///
/// let ans = HilosConfig::ans_only(8);
/// assert!(!ans.delayed_writeback() && !ans.cooperative_xcache());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HilosConfig {
    n_devices: usize,
    alpha: AlphaPolicy,
    spill_interval: u32,
    delayed_writeback: bool,
    cooperative_xcache: bool,
}

impl HilosConfig {
    /// Full HILOS: attention near storage + delayed writeback + X-cache,
    /// auto α, spill interval 16 (the paper's defaults, §6.1).
    ///
    /// # Panics
    ///
    /// Panics if `n_devices` is zero.
    pub fn new(n_devices: usize) -> Self {
        assert!(n_devices > 0, "need at least one NSP device");
        HilosConfig {
            n_devices,
            alpha: AlphaPolicy::Auto,
            spill_interval: 16,
            delayed_writeback: true,
            cooperative_xcache: true,
        }
    }

    /// Bare attention-near-storage (the `ANS` ablation point).
    pub fn ans_only(n_devices: usize) -> Self {
        HilosConfig::new(n_devices).with_writeback(false).with_xcache(false)
    }

    /// Sets the spill interval `c` (§4.3). Must be ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics if `c` is zero.
    pub fn with_spill_interval(mut self, c: u32) -> Self {
        assert!(c >= 1, "spill interval must be at least 1");
        self.spill_interval = c;
        self
    }

    /// Sets the α policy.
    ///
    /// # Panics
    ///
    /// Panics if a fixed α is outside `[0, 1]`.
    pub fn with_alpha(mut self, alpha: AlphaPolicy) -> Self {
        if let AlphaPolicy::Fixed(a) = alpha {
            assert!((0.0..=1.0).contains(&a), "alpha must be in [0,1], got {a}");
        }
        self.alpha = alpha;
        self
    }

    /// Enables or disables the delayed KV-cache writeback.
    pub fn with_writeback(mut self, on: bool) -> Self {
        self.delayed_writeback = on;
        self
    }

    /// Enables or disables the cooperative X-cache.
    pub fn with_xcache(mut self, on: bool) -> Self {
        self.cooperative_xcache = on;
        self
    }

    /// Number of NSP devices used.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// The α policy.
    pub fn alpha_policy(&self) -> AlphaPolicy {
        self.alpha
    }

    /// Spill interval `c`.
    pub fn spill_interval(&self) -> u32 {
        self.spill_interval
    }

    /// Whether delayed writeback is enabled.
    pub fn delayed_writeback(&self) -> bool {
        self.delayed_writeback
    }

    /// Whether the cooperative X-cache is enabled.
    pub fn cooperative_xcache(&self) -> bool {
        self.cooperative_xcache
    }
}

impl fmt::Display for HilosConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HILOS({} dev, {}{}, c={})",
            self.n_devices,
            if self.cooperative_xcache { "+X" } else { "" },
            if self.delayed_writeback { "+WB" } else { "" },
            self.spill_interval
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HilosConfig::new(8);
        assert_eq!(c.n_devices(), 8);
        assert_eq!(c.spill_interval(), 16);
        assert!(matches!(c.alpha_policy(), AlphaPolicy::Auto));
    }

    #[test]
    fn ablation_points() {
        let ans = HilosConfig::ans_only(4);
        assert!(!ans.delayed_writeback());
        assert!(!ans.cooperative_xcache());
        let ans_wb = HilosConfig::ans_only(4).with_writeback(true);
        assert!(ans_wb.delayed_writeback() && !ans_wb.cooperative_xcache());
        let ans_x = HilosConfig::ans_only(4).with_xcache(true);
        assert!(!ans_x.delayed_writeback() && ans_x.cooperative_xcache());
    }

    #[test]
    #[should_panic(expected = "at least one NSP device")]
    fn zero_devices_rejected() {
        let _ = HilosConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn bad_alpha_rejected() {
        let _ = HilosConfig::new(1).with_alpha(AlphaPolicy::Fixed(1.5));
    }
}
