//! Functional (bit-level) validation pipeline.
//!
//! The performance model says *when* things happen; this module checks
//! *what* HILOS computes. A small attention block with real weights is
//! evaluated through four code paths that must agree:
//!
//! 1. the plain baseline: project K/V on the GPU and attend with the
//!    reference implementation,
//! 2. **ANS**: K/V stored on the device (FP16 rows) and attended by the
//!    accelerator's functional kernel,
//! 3. **ANS + X-cache**: an α split where the X shard's K/V are
//!    *regenerated* from stored activations `X` and attended on the GPU
//!    while the rest runs on the accelerator,
//! 4. **ANS + delayed writeback**: the newest tokens' K/V live in a host
//!    buffer; the CPU pre-computes their `QKᵀ` scores and the accelerator
//!    merges them.
//!
//! This is the reproduction of the paper's functional-verification flow
//! (§5.1's "C/C++ simulator" integrated with lm-evaluation-harness).

use hilos_accel::{
    attention_kernel, attention_kernel_fused, attention_reference, host_partial_scores,
    AttentionInputs, HostTail, KernelError, MatrixF16, MatrixF32,
};

/// A single-head attention block with concrete weights, decoded one query
/// at a time over a stored context.
#[derive(Debug, Clone)]
pub struct FunctionalBlock {
    hidden: usize,
    w_q: MatrixF32,
    w_k: MatrixF32,
    w_v: MatrixF32,
}

fn matmul_row(x: &[f32], w: &MatrixF32) -> Vec<f32> {
    assert_eq!(x.len(), w.rows(), "dimension mismatch");
    let mut out = vec![0.0f32; w.cols()];
    for (i, &xi) in x.iter().enumerate() {
        let row = w.row(i);
        for (o, &wij) in out.iter_mut().zip(row) {
            *o += xi * wij;
        }
    }
    out
}

impl FunctionalBlock {
    /// Creates a block with deterministic pseudo-random weights.
    pub fn new(hidden: usize, seed: u64) -> Self {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0)
                / (hidden as f32).sqrt()
        };
        FunctionalBlock {
            hidden,
            w_q: MatrixF32::from_fn(hidden, hidden, |_, _| next()),
            w_k: MatrixF32::from_fn(hidden, hidden, |_, _| next()),
            w_v: MatrixF32::from_fn(hidden, hidden, |_, _| next()),
        }
    }

    /// Hidden width of the block.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Projects the context `xs` (`s × hidden`) into K/V caches stored in
    /// FP16, exactly as the prefill writes them.
    pub fn project_kv(&self, xs: &MatrixF32) -> (MatrixF16, MatrixF16) {
        let s = xs.rows();
        let mut k = MatrixF32::zeros(s, self.hidden);
        let mut v = MatrixF32::zeros(s, self.hidden);
        for t in 0..s {
            let kr = matmul_row(xs.row(t), &self.w_k);
            let vr = matmul_row(xs.row(t), &self.w_v);
            for c in 0..self.hidden {
                k.set(t, c, kr[c]);
                v.set(t, c, vr[c]);
            }
        }
        (k.to_f16(), v.to_f16())
    }

    /// Projects a query token.
    pub fn project_q(&self, x: &[f32]) -> MatrixF16 {
        let q = matmul_row(x, &self.w_q);
        MatrixF32::from_vec(1, self.hidden, q).to_f16()
    }

    fn scale(&self) -> f32 {
        1.0 / (self.hidden as f32).sqrt()
    }

    /// Path 1 — baseline: `f64` reference attention over the projected
    /// (FP16-rounded) caches.
    pub fn attend_baseline(&self, x_q: &[f32], xs: &MatrixF32) -> MatrixF32 {
        let (k, v) = self.project_kv(xs);
        let q = self.project_q(x_q);
        attention_reference(&q.to_f32(), &k.to_f32(), &v.to_f32(), None, self.scale())
    }

    /// Path 2 — ANS: the device's functional kernel over the same caches.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn attend_ans(&self, x_q: &[f32], xs: &MatrixF32) -> Result<MatrixF32, KernelError> {
        let (k, v) = self.project_kv(xs);
        let q = self.project_q(x_q);
        attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: self.scale(),
            host_tail: None,
        })
    }

    /// Path 2, fused: the accelerator kernel's streaming variant (softmax
    /// statistics folded into the block stream, no materialized score
    /// vector) — bit-identical to [`FunctionalBlock::attend_ans`], which
    /// the pipeline test asserts.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn attend_ans_fused(&self, x_q: &[f32], xs: &MatrixF32) -> Result<MatrixF32, KernelError> {
        let (k, v) = self.project_kv(xs);
        let q = self.project_q(x_q);
        attention_kernel_fused(&AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: self.scale(),
            host_tail: None,
        })
    }

    /// Path 3 — ANS + X-cache: tokens `[x_split, s)` are stored as `X`
    /// (FP16) and their K/V regenerated on the GPU; attention merges the
    /// device shard and the GPU shard through the streaming-stats
    /// interface (emulated here by concatenating the regenerated rows as
    /// a host tail).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn attend_xcache(
        &self,
        x_q: &[f32],
        xs: &MatrixF32,
        x_split: usize,
    ) -> Result<MatrixF32, KernelError> {
        let s = xs.rows();
        assert!(x_split <= s, "split beyond context");
        let q = self.project_q(x_q);
        // Device shard: K/V of the prefix, stored on flash.
        let prefix = MatrixF32::from_fn(x_split, self.hidden, |r, c| xs.at(r, c));
        let (k_dev, v_dev) = self.project_kv(&prefix);
        // X shard: activations stored in FP16 (the X-cache), regenerated.
        let x_rows = MatrixF32::from_fn(s - x_split, self.hidden, |r, c| xs.at(x_split + r, c))
            .to_f16()
            .to_f32();
        let (k_regen, v_regen) = self.project_kv(&x_rows);
        let tail_scores = host_partial_scores(&q, &k_regen, self.scale());
        attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &k_dev,
            values: &v_dev,
            valid: None,
            scale: self.scale(),
            host_tail: Some(HostTail { scores: &tail_scores, values: &v_regen }),
        })
    }

    /// Path 4 — ANS + delayed writeback: the last `buffered` tokens' K/V
    /// live in the host buffer; the CPU computes their partial scores.
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors.
    pub fn attend_writeback(
        &self,
        x_q: &[f32],
        xs: &MatrixF32,
        buffered: usize,
    ) -> Result<MatrixF32, KernelError> {
        let s = xs.rows();
        assert!(buffered <= s, "buffer larger than context");
        let split = s - buffered;
        let q = self.project_q(x_q);
        let stored = MatrixF32::from_fn(split, self.hidden, |r, c| xs.at(r, c));
        let (k_dev, v_dev) = self.project_kv(&stored);
        let tail = MatrixF32::from_fn(buffered, self.hidden, |r, c| xs.at(split + r, c));
        let (k_buf, v_buf) = self.project_kv(&tail);
        let scores = host_partial_scores(&q, &k_buf, self.scale());
        attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &k_dev,
            values: &v_dev,
            valid: None,
            scale: self.scale(),
            host_tail: Some(HostTail { scores: &scores, values: &v_buf }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context(s: usize, h: usize, seed: u64) -> MatrixF32 {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0) / (h as f32).sqrt()
        };
        MatrixF32::from_fn(s, h, |_, _| next() * (h as f32).sqrt())
    }

    const TOL: f32 = 3e-4;

    #[test]
    fn ans_matches_baseline() {
        let block = FunctionalBlock::new(32, 5);
        let xs = context(200, 32, 7);
        let xq: Vec<f32> = xs.row(100).to_vec();
        let base = block.attend_baseline(&xq, &xs);
        let ans = block.attend_ans(&xq, &xs).unwrap();
        let diff = base.max_abs_diff(&ans);
        assert!(diff < TOL, "diff={diff}");
    }

    #[test]
    fn fused_ans_path_is_bit_identical() {
        let block = FunctionalBlock::new(32, 5);
        let xs = context(200, 32, 7);
        let xq: Vec<f32> = xs.row(100).to_vec();
        let ans = block.attend_ans(&xq, &xs).unwrap();
        let fused = block.attend_ans_fused(&xq, &xs).unwrap();
        let a: Vec<u32> = ans.as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = fused.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn xcache_regeneration_is_lossless() {
        // §4.2: regenerating K/V from the stored X must give the same
        // attention output as reading stored K/V (X is stored in the same
        // FP16 the K/V would have been; the projection is deterministic).
        let block = FunctionalBlock::new(32, 11);
        let xs = context(150, 32, 13);
        let xq: Vec<f32> = xs.row(0).to_vec();
        let ans = block.attend_ans(&xq, &xs).unwrap();
        for split in [0usize, 75, 149] {
            let x = block.attend_xcache(&xq, &xs, split).unwrap();
            let diff = ans.max_abs_diff(&x);
            // X is FP16-rounded before regeneration, so allow a slightly
            // wider tolerance than pure path equivalence.
            assert!(diff < 5e-3, "split={split} diff={diff}");
        }
    }

    #[test]
    fn writeback_path_is_exact() {
        // §4.3: buffered entries merged through host partial scores must
        // not change the result at all (same FP16 K/V values).
        let block = FunctionalBlock::new(48, 17);
        let xs = context(100, 48, 19);
        let xq: Vec<f32> = xs.row(99).to_vec();
        let ans = block.attend_ans(&xq, &xs).unwrap();
        for buffered in [1usize, 7, 16, 100] {
            let wb = block.attend_writeback(&xq, &xs, buffered).unwrap();
            let diff = ans.max_abs_diff(&wb);
            assert!(diff < TOL, "buffered={buffered} diff={diff}");
        }
    }

    #[test]
    fn all_paths_agree_end_to_end() {
        let block = FunctionalBlock::new(64, 23);
        let xs = context(257, 64, 29);
        let xq: Vec<f32> = xs.row(256).to_vec();
        let base = block.attend_baseline(&xq, &xs);
        let ans = block.attend_ans(&xq, &xs).unwrap();
        let x = block.attend_xcache(&xq, &xs, 128).unwrap();
        let wb = block.attend_writeback(&xq, &xs, 15).unwrap();
        assert!(base.max_abs_diff(&ans) < TOL);
        assert!(base.max_abs_diff(&x) < 5e-3);
        assert!(base.max_abs_diff(&wb) < TOL);
    }

    #[test]
    fn projections_are_deterministic() {
        let block = FunctionalBlock::new(16, 3);
        let xs = context(10, 16, 4);
        let (k1, v1) = block.project_kv(&xs);
        let (k2, v2) = block.project_kv(&xs);
        assert_eq!(k1, k2);
        assert_eq!(v1, v2);
    }
}
