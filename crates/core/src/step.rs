//! The reusable decode-step executor.
//!
//! One HILOS decoding step — build the Fig. 4a task graph, execute it on
//! the system's flow engine, account the interconnect traffic — used to be
//! inlined in `HilosSystem::run_decode`. The serving layer needs the same
//! step for *heterogeneous* batches whose composition changes between
//! steps, so the body lives here: [`DecodeStepExecutor`] owns one built
//! simulation world and executes steps against it at any `(batch,
//! context, α, writeback)` operating point, returning a [`StepOutcome`]
//! per step. `run_decode`, `run_prefill` and `core::serve` are all thin
//! drivers over this executor.

use crate::config::HilosConfig;
use crate::runner::{CoreError, HilosSystem};
use crate::scheduler::GDS_EFFICIENCY;
use crate::scheduler::{build_hilos_decode_step_sharded, build_hilos_prefill, DecodeStepSpec};
use crate::writeback::SpillDecision;
use crate::xcache::AlphaModel;
use hilos_llm::ModelConfig;
use hilos_platform::BuiltSystem;
use hilos_sim::execute;

/// Everything one executed decode step reports.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Step wall-clock seconds, scaled to the model's full layer depth.
    pub seconds: f64,
    /// GPU utilization over the step, `[0, 1]`.
    pub gpu_utilization: f64,
    /// CPU utilization over the step.
    pub cpu_utilization: f64,
    /// Host DRAM-port utilization over the step.
    pub dram_utilization: f64,
    /// Bytes crossing the host interconnect (whole model, analytic).
    pub host_pcie_bytes: f64,
    /// Bytes read over the devices' internal paths (whole model).
    pub internal_read_bytes: f64,
    /// Per-category task seconds (for the breakdown figures).
    pub category_seconds: Vec<(String, f64)>,
}

/// Executes decode (and prefill) steps against one built simulation world.
///
/// The world is built once and reused: runs stay deterministic because the
/// engine is advanced only by the graphs executed on it, in call order.
#[derive(Debug)]
pub struct DecodeStepExecutor {
    sys: BuiltSystem,
    model: ModelConfig,
    config: HilosConfig,
    sim_layers: u32,
    layer_scale: f64,
    step_threads: usize,
}

impl DecodeStepExecutor {
    /// Builds the simulation world for `system`.
    ///
    /// # Errors
    ///
    /// Propagates platform build errors.
    pub fn new(system: &HilosSystem) -> Result<Self, CoreError> {
        DecodeStepExecutor::with_flow_impl(system, hilos_sim::FlowEngineImpl::default())
    }

    /// Like [`DecodeStepExecutor::new`], but selecting the rate-sharing
    /// implementation of the world's flow engine. The virtual-time
    /// implementation keeps step execution O(log n) in concurrent flows —
    /// the difference between simulating thousands and millions of
    /// requests — at the cost of bit-identity with the progressive-filling
    /// oracle (golden pins are always taken under the default).
    pub fn with_flow_impl(
        system: &HilosSystem,
        flow_impl: hilos_sim::FlowEngineImpl,
    ) -> Result<Self, CoreError> {
        let sys = system.build_world_with(flow_impl)?;
        let sim_layers = system.sim_layers();
        Ok(DecodeStepExecutor {
            sys,
            model: system.model().clone(),
            config: system.config().clone(),
            sim_layers,
            layer_scale: system.model().layers() as f64 / sim_layers as f64,
            step_threads: 1,
        })
    }

    /// Sets how many workers build the per-device sub-graphs of each step
    /// (see [`build_hilos_decode_step_sharded`]). The built graph — and
    /// therefore every outcome — is identical for any thread count.
    pub fn set_step_threads(&mut self, threads: usize) {
        self.step_threads = threads.max(1);
    }

    /// The built world (resources, devices, engine).
    pub fn system(&self) -> &BuiltSystem {
        &self.sys
    }

    /// Executes one decoding step at the given operating point.
    ///
    /// `context` is the *true* per-step context of the batch (for a
    /// uniform batch, [`hilos_llm::BatchSpec::context_at_step`]; for a
    /// heterogeneous serving batch, the mean context of the running
    /// requests — the step graph is linear in `batch × context`, so the
    /// mean reproduces the batch's total KV traffic).
    ///
    /// # Errors
    ///
    /// Wraps simulation errors.
    pub fn execute_step(
        &mut self,
        batch: u32,
        context: u64,
        alpha: f64,
        decision: &SpillDecision,
    ) -> Result<StepOutcome, CoreError> {
        let step = DecodeStepSpec {
            batch,
            context,
            alpha,
            buffered_tokens: decision.buffered_tokens,
            spill_now: decision.spill_now,
            spill_tokens: decision.spill_tokens,
            sim_layers: self.sim_layers,
        };
        let graph = build_hilos_decode_step_sharded(
            &self.sys,
            &self.model,
            &self.config,
            &step,
            self.step_threads,
        );
        let timeline = execute(&mut self.sys.engine, &graph)?;

        // Traffic accounting (whole model, analytic — every flow that
        // crosses the system interconnect counted once).
        let m = &self.model;
        let bs = batch as f64;
        let s = context as f64;
        let layers = m.layers() as f64;
        let weights = m.decode_weight_traffic_bytes(batch) as f64;
        let scatter =
            (1.0 - alpha) * bs * (m.hidden() as f64 + 2.0 * m.kv_dim() as f64) * 2.0 * layers;
        let gather = (1.0 - alpha) * bs * m.hidden() as f64 * 2.0 * layers;
        let x_reads = alpha * bs * s * m.hidden() as f64 * 2.0 * layers;
        let spill = if decision.spill_now {
            decision.spill_tokens as f64
                * bs
                * ((1.0 - alpha) * 2.0 * m.kv_dim() as f64 + alpha * m.hidden() as f64)
                * 2.0
                * layers
        } else {
            0.0
        };
        let internal = (1.0 - alpha)
            * bs
            * 2.0
            * (s - decision.buffered_tokens as f64).max(0.0)
            * m.kv_dim() as f64
            * 2.0
            * layers;

        Ok(StepOutcome {
            seconds: timeline.makespan().as_secs_f64() * self.layer_scale,
            gpu_utilization: timeline.utilization(self.sys.gpu),
            cpu_utilization: timeline.utilization(self.sys.cpu),
            dram_utilization: timeline.utilization(self.sys.host_dram),
            host_pcie_bytes: weights + scatter + gather + x_reads + spill,
            internal_read_bytes: internal,
            category_seconds: timeline.category_seconds(&graph),
        })
    }

    /// Executes the prefill phase for a `batch × context` job and returns
    /// its layer-scaled wall-clock seconds.
    ///
    /// # Errors
    ///
    /// Wraps simulation errors.
    pub fn execute_prefill(
        &mut self,
        batch: u32,
        context: u64,
        alpha: f64,
    ) -> Result<f64, CoreError> {
        let graph =
            build_hilos_prefill(&self.sys, &self.model, batch, context, alpha, self.sim_layers);
        let timeline = execute(&mut self.sys.engine, &graph)?;
        Ok(timeline.makespan().as_secs_f64() * self.layer_scale)
    }
}

/// The §4.2 α selection, precomputed from one built world so the serving
/// layer can re-select α every time the batch composition changes without
/// rebuilding the system.
#[derive(Debug, Clone, Copy)]
pub struct AlphaSelector {
    enabled: bool,
    fixed: Option<f64>,
    b_ssd: f64,
    b_pci: f64,
    c_gpu: f64,
}

impl AlphaSelector {
    /// Captures the bandwidth operating point of `sys` under `config`.
    pub fn new(config: &HilosConfig, sys: &BuiltSystem) -> Self {
        let fixed = match config.alpha_policy() {
            crate::config::AlphaPolicy::Fixed(a) => Some(a),
            crate::config::AlphaPolicy::Auto => None,
        };
        AlphaSelector {
            enabled: config.cooperative_xcache(),
            fixed,
            b_ssd: sys.aggregate_internal_read_bw(),
            b_pci: sys.effective_pci_bw() * GDS_EFFICIENCY,
            c_gpu: sys.spec.gpu.fp16_flops,
        }
    }

    /// The α for a `batch × context` job shape (mirrors
    /// [`HilosSystem::select_alpha`] exactly).
    pub fn select(&self, model: &ModelConfig, batch: u32, context: u64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        if let Some(a) = self.fixed {
            return a;
        }
        let bs = batch as f64;
        let s = context as f64;
        let layers = model.layers() as f64;
        AlphaModel {
            x_bytes: bs * s * model.hidden() as f64 * 2.0 * layers,
            kv_bytes: bs * 2.0 * s * model.kv_dim() as f64 * 2.0 * layers,
            b_ssd: self.b_ssd,
            b_pci: self.b_pci,
            regen_flops: 4.0 * bs * s * model.hidden() as f64 * model.kv_dim() as f64 * layers,
            c_gpu: self.c_gpu,
        }
        .select_alpha()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;
    use hilos_platform::SystemSpec;

    fn hilos(n: usize) -> HilosSystem {
        HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_66b(), &HilosConfig::new(n))
            .unwrap()
            .with_sim_layers(2)
    }

    #[test]
    fn executor_steps_are_reusable_and_context_sensitive() {
        let system = hilos(8);
        let mut exec = DecodeStepExecutor::new(&system).unwrap();
        let quiet = SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 };
        let short = exec.execute_step(16, 16 * 1024, 0.5, &quiet).unwrap();
        let long = exec.execute_step(16, 64 * 1024, 0.5, &quiet).unwrap();
        assert!(long.seconds > 2.0 * short.seconds, "{} vs {}", long.seconds, short.seconds);
        assert!(short.internal_read_bytes > 0.0);
        assert!(!short.category_seconds.is_empty());
    }

    #[test]
    fn alpha_selector_matches_system_selection() {
        let system = hilos(16);
        let exec = DecodeStepExecutor::new(&system).unwrap();
        let sel = AlphaSelector::new(system.config(), exec.system());
        for (b, s) in [(16u32, 32 * 1024u64), (8, 64 * 1024), (64, 8 * 1024)] {
            assert_eq!(
                sel.select(system.model(), b, s),
                system.select_alpha(b, s).unwrap(),
                "alpha diverged at bs={b} s={s}"
            );
        }
    }

    #[test]
    fn prefill_scales_with_context() {
        let system = hilos(8);
        let mut exec = DecodeStepExecutor::new(&system).unwrap();
        let t16 = exec.execute_prefill(4, 16 * 1024, 0.5).unwrap();
        let t32 = exec.execute_prefill(4, 32 * 1024, 0.5).unwrap();
        assert!(t32 > 1.5 * t16);
    }
}
