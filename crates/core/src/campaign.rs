//! Long-horizon serving campaigns: run many offline jobs back to back,
//! accumulating per-device NAND wear — the operational view behind the
//! §6.6 endurance analysis.
//!
//! Each job's reads and (amplification-inclusive) NAND writes are recorded
//! into stateful [`SsdDevice`] counters, so a campaign answers the
//! operator questions the paper's Fig. 16b compresses into one number:
//! how many jobs until the array hits its PBW budget, and how fast is it
//! burning down.

use crate::cluster::{ClusterEngine, ClusterReport, RoutingPolicy};
use crate::runner::{CoreError, HilosSystem, JobReport};
use crate::serve::{SchedulingPolicy, ServeConfig, ServeEngine, TraceReport};
use crate::writeback::spill_nand_bytes_per_token;
use hilos_llm::{BatchSpec, Request};
use hilos_storage::{SsdDevice, WritePattern};

/// Aggregate statistics of a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSummary {
    /// Jobs completed.
    pub jobs: u64,
    /// Generated tokens across all jobs.
    pub tokens: u64,
    /// Total simulated wall-clock seconds.
    pub seconds: f64,
    /// NAND bytes programmed across the array (amplification included).
    pub nand_bytes_written: f64,
    /// Fraction of the array's endurance budget consumed, `[0, 1]`.
    pub endurance_used: f64,
}

impl CampaignSummary {
    /// Sustained generated-token throughput over the campaign.
    pub fn tokens_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.tokens as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A stateful sequence of jobs on one HILOS deployment.
///
/// # Examples
///
/// ```
/// use hilos_core::{HilosConfig, HilosSystem, ServingCampaign};
/// use hilos_llm::{presets, BatchSpec};
/// use hilos_platform::SystemSpec;
///
/// # fn main() -> Result<(), hilos_core::CoreError> {
/// let system = HilosSystem::new(
///     &SystemSpec::a100_smartssd(8),
///     &presets::opt_30b(),
///     &HilosConfig::new(8),
/// )?
/// .with_sim_layers(2);
/// let mut campaign = ServingCampaign::new(system);
/// campaign.run_job(&BatchSpec::new(8, 4096, 4))?;
/// assert_eq!(campaign.summary().jobs, 1);
/// assert!(campaign.summary().endurance_used > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServingCampaign {
    system: HilosSystem,
    devices: Vec<SsdDevice>,
    jobs: u64,
    tokens: u64,
    seconds: f64,
}

impl ServingCampaign {
    /// Starts a campaign on a deployment with fresh devices.
    pub fn new(system: HilosSystem) -> Self {
        let n = system.config().n_devices();
        let spec = system.spec().storage.ssd_spec();
        ServingCampaign {
            system,
            devices: (0..n).map(|_| SsdDevice::new(spec.clone())).collect(),
            jobs: 0,
            tokens: 0,
            seconds: 0.0,
        }
    }

    /// The underlying deployment.
    pub fn system(&self) -> &HilosSystem {
        &self.system
    }

    /// Per-device states (counters, occupancy).
    pub fn devices(&self) -> &[SsdDevice] {
        &self.devices
    }

    /// Runs one job, accumulating wear and throughput statistics.
    ///
    /// # Errors
    ///
    /// Propagates capacity/simulation errors; a failed job records
    /// nothing.
    pub fn run_job(&mut self, spec: &BatchSpec) -> Result<JobReport, CoreError> {
        let report = self.system.run_job(spec)?;
        let n = self.devices.len() as f64;

        // Prefill writes the whole cache once, page-aligned and striped.
        let prefill_per_dev = (report.prefill.cache_bytes_written / n) as u64;
        // Decode writes arrive pre-amplified from the spill model.
        let decode_per_dev =
            (report.decode.nand_write_bytes_per_step * spec.output_len as f64 / n) as u64;
        let reads_per_dev = ((report.decode.internal_read_bytes_per_step
            + report.decode.host_pcie_bytes_per_step)
            * spec.output_len as f64
            / n) as u64;
        for dev in &mut self.devices {
            dev.record_write(prefill_per_dev, WritePattern::PageAligned);
            dev.record_write(decode_per_dev, WritePattern::PageAligned);
            dev.record_read(reads_per_dev);
        }

        self.jobs += 1;
        self.tokens += spec.total_generated_tokens();
        self.seconds += report.total_seconds();
        Ok(report)
    }

    /// Serves a heterogeneous request trace with continuous batching
    /// (see [`crate::serve`]) and folds its device wear and throughput
    /// into the campaign counters.
    ///
    /// Prefill payloads and spill-model decode writes are page-aligned,
    /// apportioned by the shard ledger's actual per-device placement
    /// (`TraceReport::kv_placed_bytes`) so degraded devices that held
    /// less of every stripe also wear less; reads are the decode steps'
    /// internal plus host traffic, swept in the same proportion.
    ///
    /// # Errors
    ///
    /// Propagates build/simulation errors; a failed run records nothing.
    pub fn run_trace(
        &mut self,
        trace: &[Request],
        config: &ServeConfig,
    ) -> Result<TraceReport, CoreError> {
        let engine = ServeEngine::new(self.system.clone(), config.clone())?;
        self.run_trace_on(engine, trace)
    }

    /// Like [`ServingCampaign::run_trace`] but scheduled by the given
    /// policy instead of FIFO — the three-way policy comparisons run
    /// through here.
    ///
    /// # Errors
    ///
    /// Propagates build/simulation errors; a failed run records nothing.
    pub fn run_trace_with_policy(
        &mut self,
        trace: &[Request],
        config: &ServeConfig,
        policy: Box<dyn SchedulingPolicy>,
    ) -> Result<TraceReport, CoreError> {
        let engine = ServeEngine::with_policy(self.system.clone(), config.clone(), policy)?;
        self.run_trace_on(engine, trace)
    }

    /// Serves a trace across a whole cluster — this campaign's system as
    /// deployment 0 plus `peers` as deployments 1..N, each under the
    /// default FIFO scheduling policy — dispatching every request through
    /// `routing` (see [`crate::cluster`]). Only deployment 0's share of
    /// the work wears *this* campaign's devices; peers are simulated but
    /// not wear-tracked here (they are different physical arrays).
    ///
    /// # Errors
    ///
    /// Propagates build/simulation errors; a failed run records nothing.
    pub fn run_cluster_trace(
        &mut self,
        peers: &[HilosSystem],
        trace: &[Request],
        config: &ServeConfig,
        routing: Box<dyn RoutingPolicy>,
    ) -> Result<ClusterReport, CoreError> {
        let mut deployments = Vec::with_capacity(1 + peers.len());
        deployments.push(ServeEngine::new(self.system.clone(), config.clone())?);
        for peer in peers {
            deployments.push(ServeEngine::new(peer.clone(), config.clone())?);
        }
        let mut cluster = ClusterEngine::new(deployments, routing);
        let report = cluster.run_trace(trace)?;
        self.record_trace(&report.deployments[0]);
        Ok(report)
    }

    fn run_trace_on(
        &mut self,
        mut engine: ServeEngine,
        trace: &[Request],
    ) -> Result<TraceReport, CoreError> {
        let report = engine.run_trace(trace)?;
        self.record_trace(&report);
        Ok(report)
    }

    /// Folds one deployment-level trace report into this campaign's wear
    /// and throughput counters (see [`ServingCampaign::run_trace`] for
    /// the apportioning rules).
    fn record_trace(&mut self, report: &TraceReport) {
        let n = self.devices.len() as f64;

        let placed_total: f64 = report.kv_placed_bytes.iter().sum();
        let share = |d: usize| {
            if placed_total > 0.0 {
                report.kv_placed_bytes[d] / placed_total
            } else {
                1.0 / n
            }
        };
        let nand_per_token = spill_nand_bytes_per_token(
            self.system.model(),
            if self.system.config().delayed_writeback() {
                self.system.config().spill_interval()
            } else {
                1
            },
            self.system.spec().storage.ssd_spec().page_bytes(),
        );
        let x_discount = 1.0 - report.mean_alpha * (1.0 - self.system.model().x_to_kv_ratio());
        let decode_writes = nand_per_token * report.generated_tokens as f64 * x_discount;
        let reads = report.internal_read_bytes + report.host_pcie_bytes;
        for (d, dev) in self.devices.iter_mut().enumerate() {
            let s = share(d);
            dev.record_write((report.prefill_payload_bytes * s) as u64, WritePattern::PageAligned);
            dev.record_write((decode_writes * s) as u64, WritePattern::PageAligned);
            dev.record_read((reads * s) as u64);
        }

        self.jobs += report.outcomes.len() as u64;
        self.tokens += report.generated_tokens;
        self.seconds += report.elapsed_s;
    }

    /// Fraction of the endurance budget consumed (worst device).
    pub fn endurance_used(&self) -> f64 {
        self.devices.iter().map(|d| d.endurance_used()).fold(0.0, f64::max)
    }

    /// Projected total jobs of this shape until the budget is exhausted.
    pub fn projected_lifetime_jobs(&self) -> f64 {
        let used = self.endurance_used();
        if used <= 0.0 {
            f64::INFINITY
        } else {
            self.jobs as f64 / used
        }
    }

    /// Aggregate statistics so far.
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary {
            jobs: self.jobs,
            tokens: self.tokens,
            seconds: self.seconds,
            nand_bytes_written: self
                .devices
                .iter()
                .map(|d| d.counters().nand_bytes_programmed as f64)
                .sum(),
            endurance_used: self.endurance_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HilosConfig;
    use hilos_llm::presets;
    use hilos_platform::SystemSpec;

    fn campaign() -> ServingCampaign {
        let system = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_30b(),
            &HilosConfig::new(8),
        )
        .unwrap()
        .with_sim_layers(2);
        ServingCampaign::new(system)
    }

    #[test]
    fn jobs_accumulate_wear_linearly() {
        let mut c = campaign();
        let job = BatchSpec::new(8, 8192, 4);
        c.run_job(&job).unwrap();
        let one = c.endurance_used();
        c.run_job(&job).unwrap();
        let two = c.endurance_used();
        assert!(one > 0.0);
        assert!((two / one - 2.0).abs() < 1e-6, "wear should be linear: {one} vs {two}");
    }

    #[test]
    fn summary_tracks_jobs_and_tokens() {
        let mut c = campaign();
        c.run_job(&BatchSpec::new(8, 8192, 4)).unwrap();
        c.run_job(&BatchSpec::new(4, 4096, 8)).unwrap();
        let s = c.summary();
        assert_eq!(s.jobs, 2);
        assert_eq!(s.tokens, 8 * 4 + 4 * 8);
        assert!(s.seconds > 0.0);
        assert!(s.tokens_per_second() > 0.0);
        assert!(s.nand_bytes_written > 0.0);
    }

    #[test]
    fn lifetime_projection_is_enormous_for_single_jobs() {
        // §6.6: millions of requests fit the PBW budget; one batch job
        // must project a very long lifetime.
        let mut c = campaign();
        c.run_job(&BatchSpec::new(8, 8192, 4)).unwrap();
        assert!(c.projected_lifetime_jobs() > 1e4, "{}", c.projected_lifetime_jobs());
    }

    #[test]
    fn failed_jobs_record_nothing() {
        let mut c = campaign();
        // Absurd job: exceeds device capacity.
        let err = c.run_job(&BatchSpec::new(512, 1024 * 1024, 64));
        assert!(err.is_err());
        assert_eq!(c.summary().jobs, 0);
        assert_eq!(c.endurance_used(), 0.0);
    }

    #[test]
    fn trace_campaign_accumulates_wear_and_metrics() {
        use hilos_llm::TraceConfig;
        let mut c = campaign();
        let trace = TraceConfig::azure_mix(32, 17).generate().unwrap();
        let report = c.run_trace(&trace, &ServeConfig::new(8)).unwrap();
        assert_eq!(report.outcomes.len(), 32);
        let s = c.summary();
        assert_eq!(s.jobs, 32);
        assert_eq!(s.tokens, report.generated_tokens);
        assert!(s.seconds > 0.0);
        assert!(c.endurance_used() > 0.0, "trace must burn endurance");
        assert!(report.ttft_stats().p99 >= report.ttft_stats().p50);
    }

    #[test]
    fn cluster_trace_wears_only_the_local_deployment_share() {
        use crate::cluster::RoundRobin;
        use hilos_llm::TraceConfig;
        let mut c = campaign();
        let peer = HilosSystem::new(
            &SystemSpec::a100_smartssd(4),
            &presets::opt_30b(),
            &HilosConfig::new(4),
        )
        .unwrap()
        .with_sim_layers(2);
        let trace = TraceConfig::azure_mix(32, 17).generate().unwrap();
        let report = c
            .run_cluster_trace(&[peer], &trace, &ServeConfig::new(8), Box::new(RoundRobin::new()))
            .unwrap();
        assert_eq!(report.deployment_count(), 2);
        assert_eq!(report.completed(), 32);
        // Round-robin: both deployments served requests.
        assert!(report.dispatched.iter().all(|&d| d > 0), "{:?}", report.dispatched);
        // Only deployment 0's outcomes count as this campaign's jobs.
        assert_eq!(c.summary().jobs, report.deployments[0].outcomes.len() as u64);
        assert_eq!(c.summary().tokens, report.deployments[0].generated_tokens);
        assert!(c.endurance_used() > 0.0, "the local share must burn endurance");
    }

    #[test]
    fn fresh_campaign_is_unworn() {
        let c = campaign();
        assert_eq!(c.endurance_used(), 0.0);
        assert_eq!(c.projected_lifetime_jobs(), f64::INFINITY);
        assert_eq!(c.devices().len(), 8);
    }
}
