//! Pluggable routing policies: which deployment gets each request.
//!
//! Routing mirrors the scheduling-policy API one layer up: a
//! [`RoutingPolicy`] is consulted once per dispatch with a read-only
//! [`ClusterSnapshot`] (per-deployment queue depth, in-flight batch
//! composition, KV shard-ledger pressure, degradation-discounted
//! bandwidth) and answers with a deployment index. The
//! [`ClusterEngine`](super::ClusterEngine) executes the choice — an
//! out-of-range index is a policy bug, `debug_assert!`ed in debug
//! builds and counted in
//! [`ClusterReport::misrouted`](super::ClusterReport::misrouted) (then
//! clamped to the last deployment) in release builds.
//!
//! Four policies ship:
//!
//! * [`RoundRobin`] — the capacity-blind baseline: deployments take
//!   turns regardless of size or health.
//! * [`JoinShortestQueue`] — classic load balancing on queue depth plus
//!   in-flight work; blind to *how fast* each deployment drains.
//! * [`LedgerPressure`] — power-of-two-choices scored by free KV bytes ×
//!   aggregate device bandwidth per unit of load: the near-storage
//!   insight that per-deployment storage bandwidth (not queue length) is
//!   the binding resource, turned into a router.
//! * [`CostNormalizedPressure`] — the ledger-pressure score divided by
//!   the deployment's hourly provisioning cost
//!   ([`DeploymentView::hourly_cost_usd`]): placement by goodput per
//!   dollar, the fleet-cost story at dispatch granularity.
//!
//! Every shipped policy routes only to
//! [routable](DeploymentView::routable) deployments — under the elastic
//! engine ([`ElasticClusterEngine`](super::ElasticClusterEngine)) a
//! Provisioning, Warming, Draining or Retired deployment never receives
//! traffic. A fixed fleet is always entirely Active, where the filter is
//! the identity and dispatch stays bit-identical to the golden pins.
//!
//! # Implementing your own policy
//!
//! ```
//! use hilos_core::cluster::{ClusterSnapshot, RouteRequest, RoutingPolicy};
//!
//! /// Send long prompts to the biggest deployment, the rest anywhere.
//! #[derive(Debug, Default)]
//! struct LongToBig;
//!
//! impl RoutingPolicy for LongToBig {
//!     fn name(&self) -> &'static str {
//!         "long-to-big"
//!     }
//!
//!     fn route(&mut self, req: &RouteRequest, snap: &ClusterSnapshot<'_>) -> usize {
//!         let biggest = snap
//!             .deployments
//!             .iter()
//!             .max_by(|a, b| {
//!                 a.placeable_free_bytes
//!                     .cmp(&b.placeable_free_bytes)
//!                     .then(b.id.cmp(&a.id)) // ties to the lower index
//!             })
//!             .expect("a cluster has at least one deployment")
//!             .id as usize;
//!         if req.prompt_len > 4096 {
//!             biggest
//!         } else {
//!             (req.id as usize) % snap.deployments.len()
//!         }
//!     }
//! }
//! # let _ = LongToBig;
//! ```
//!
//! Policies may keep state across dispatches (`route` takes `&mut
//! self`); determinism of a cluster run requires the policy itself to be
//! deterministic — [`LedgerPressure`]'s two "random" probes come from a
//! seeded LCG for exactly this reason.

use super::elastic::LifecycleState;
use hilos_llm::{Priority, Request, RequestClass};
use std::fmt;

/// The request being dispatched, as the routing policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteRequest {
    /// Request id.
    pub id: u64,
    /// Workload class.
    pub class: RequestClass,
    /// Scheduling priority from the request's SLO.
    pub priority: Priority,
    /// Prompt length in tokens.
    pub prompt_len: u64,
    /// Output budget in tokens.
    pub output_budget: u64,
    /// Tokens already generated (non-zero only when a preempted request
    /// is re-dispatched with retained progress).
    pub emitted: u64,
    /// `true` when this is a cross-deployment re-dispatch of a preempted
    /// request rather than a fresh arrival.
    pub redispatch: bool,
}

impl RouteRequest {
    /// The routing view of `req` — the single construction point for the
    /// fresh-arrival (`emitted == 0`, `redispatch == false`) and
    /// preemption re-dispatch paths, so a field added here reaches both.
    pub fn of(req: &Request, emitted: u64, redispatch: bool) -> Self {
        RouteRequest {
            id: req.id,
            class: req.class,
            priority: req.slo.priority,
            prompt_len: req.prompt_len,
            output_budget: req.output_budget,
            emitted,
            redispatch,
        }
    }
}

/// One deployment's serving state, as the routing policy sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentView {
    /// The deployment's cluster index.
    pub id: u32,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// In-flight requests whose prefill is still running.
    pub prefilling: usize,
    /// In-flight requests currently decoding.
    pub decoding: usize,
    /// The deployment's admission cap.
    pub max_batch: u32,
    /// The deployment's simulated clock, seconds (idle deployments lag —
    /// simulated time only advances under work).
    pub clock_s: f64,
    /// Aggregate KV shard-ledger pressure, `[0, 1]`
    /// ([`KvShardLedger::pressure`](hilos_storage::KvShardLedger::pressure)).
    pub pressure: f64,
    /// Per-device ledger pressure in device index order — the degradation
    /// profile shows up here as skewed occupancy.
    pub device_pressure: Vec<f64>,
    /// Free bytes across placement-eligible devices.
    pub placeable_free_bytes: u64,
    /// Sum of the ledger's placement weights: aggregate storage bandwidth
    /// with degraded/offline devices discounted.
    pub bandwidth_weight: f64,
    /// Number of storage devices.
    pub device_count: usize,
    /// Requests dispatched to this deployment so far.
    pub dispatched: u64,
    /// Prompt tokens the deployment's in-flight prefills still have to
    /// ingest — its remaining chunk debt under the token-budgeted step
    /// (see [`ChunkMode`](crate::ChunkMode)). The signal size-aware
    /// placement needs: a long prompt routed onto a deployment already
    /// drowning in prefill backlog pays for every queued chunk ahead of
    /// it before its first token.
    pub prefill_backlog_tokens: u64,
    /// Lifetime prefix KV-cache hit rate of the deployment's engine,
    /// `[0, 1]` — `0.0` with the cache off (or before any probe), so
    /// cache-off routing scores are untouched. A warm cache makes a
    /// deployment *more* attractive for prefix-sharing traffic: hits
    /// skip prefill work entirely.
    pub prefix_hit_rate: f64,
    /// Where the deployment is in its lifecycle. A fixed
    /// [`ClusterEngine`](super::ClusterEngine) fleet is always
    /// [`Active`](LifecycleState::Active); under the elastic engine only
    /// Active deployments may take traffic — the shipped policies skip
    /// everything else (see [`DeploymentView::routable`]).
    pub lifecycle: LifecycleState,
    /// What keeping this deployment provisioned costs per hour: 3-year
    /// amortized capex plus full-utilization energy
    /// ([`hilos_metrics::hourly_cost_usd`]). The denominator of
    /// cost-normalized routing.
    pub hourly_cost_usd: f64,
    /// Full-utilization power draw of the deployment's system, watts
    /// ([`hilos_metrics::provisioned_power_w`]).
    pub active_power_w: f64,
}

impl DeploymentView {
    /// In-flight requests (prefilling + decoding).
    pub fn in_flight(&self) -> usize {
        self.prefilling + self.decoding
    }

    /// Total load: queued plus in-flight requests.
    pub fn load(&self) -> usize {
        self.queued + self.in_flight()
    }

    /// Whether the deployment may take new traffic: only
    /// [`Active`](LifecycleState::Active) deployments are routable —
    /// Provisioning/Warming ones cannot serve yet, Draining ones are
    /// being evacuated, Retired ones are gone.
    pub fn routable(&self) -> bool {
        self.lifecycle == LifecycleState::Active
    }
}

/// Read-only snapshot of the whole cluster, handed to
/// [`RoutingPolicy::route`] once per dispatch.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot<'a> {
    /// The global arrival cursor (serving step).
    pub step: u64,
    /// Every deployment, in cluster index order (never empty).
    pub deployments: &'a [DeploymentView],
}

/// A request-to-deployment dispatch policy consulted once per arrival
/// (and once per cross-deployment re-dispatch of a preempted request).
pub trait RoutingPolicy: fmt::Debug {
    /// Stable policy name, recorded in
    /// [`ClusterReport::routing`](super::ClusterReport::routing).
    fn name(&self) -> &'static str;

    /// Picks the deployment index for `request`. An index past the last
    /// deployment is a policy bug: the engine `debug_assert!`s it,
    /// counts it in
    /// [`ClusterReport::misrouted`](super::ClusterReport::misrouted),
    /// and clamps to the last deployment in release builds.
    fn route(&mut self, request: &RouteRequest, snapshot: &ClusterSnapshot<'_>) -> usize;
}

/// Capacity-blind rotation: deployment `k`, then `k+1`, … — the baseline
/// every balancing policy must beat on a heterogeneous cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin router starting at deployment 0.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _request: &RouteRequest, snapshot: &ClusterSnapshot<'_>) -> usize {
        // Rotate over the *routable* deployments only; with the whole
        // fleet Active (every fixed cluster) this is the historical
        // rotation bit for bit.
        let routable: Vec<&DeploymentView> =
            snapshot.deployments.iter().filter(|d| d.routable()).collect();
        if routable.is_empty() {
            return 0;
        }
        let d = routable[self.next % routable.len()].id as usize;
        self.next = (self.next + 1) % routable.len();
        d
    }
}

/// Join-the-shortest-queue: the deployment with the least total load
/// (queued + in-flight), ties to the lower index. Better than rotation
/// under skewed load, but blind to how fast each deployment drains — a
/// half-degraded 4-device deployment looks as attractive as a healthy
/// 8-device one whenever their queues match.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinShortestQueue;

impl RoutingPolicy for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "join-shortest-queue"
    }

    fn route(&mut self, _request: &RouteRequest, snapshot: &ClusterSnapshot<'_>) -> usize {
        snapshot
            .deployments
            .iter()
            .filter(|d| d.routable())
            .min_by(|a, b| a.load().cmp(&b.load()).then(a.id.cmp(&b.id)))
            .map(|d| d.id as usize)
            .unwrap_or(0)
    }
}

/// Power-of-two-choices weighted by KV headroom and storage bandwidth.
///
/// Two deployments are probed per dispatch (deterministic seeded LCG);
/// the request goes to the one with the higher score
///
/// ```text
/// score(d) = free KV bytes(d) × bandwidth weight(d) / (1 + load(d))
/// ```
///
/// — free bytes measure how much more KV the deployment can hold,
/// the bandwidth weight (degradation-discounted aggregate device read
/// bandwidth) measures how fast it sweeps what it holds, and the load
/// divisor shares both among the requests already there. Probing two and
/// taking the better is the classic exponential improvement over random
/// placement, and keeps the policy O(1) per dispatch instead of scanning
/// the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerPressure {
    lcg: u64,
}

impl LedgerPressure {
    /// The default deterministic probe sequence.
    pub fn new() -> Self {
        LedgerPressure::seeded(0x9e3779b97f4a7c15)
    }

    /// A probe sequence from an explicit seed (runs are deterministic in
    /// the seed).
    pub fn seeded(seed: u64) -> Self {
        LedgerPressure { lcg: seed }
    }

    fn probe(&mut self, n: usize) -> usize {
        // Knuth's MMIX LCG; the high bits are the usable ones.
        self.lcg = self.lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.lcg >> 33) % n as u64) as usize
    }

    fn score(d: &DeploymentView) -> f64 {
        let mut s = d.placeable_free_bytes as f64 * d.bandwidth_weight / (1.0 + d.load() as f64);
        // Cache affinity: a warm prefix cache turns prompt tokens into
        // free admissions, worth up to 2× in the score. Inert (branch
        // untaken) with the cache off — hit rate is exactly 0.0.
        if d.prefix_hit_rate > 0.0 {
            s *= 1.0 + d.prefix_hit_rate;
        }
        s
    }
}

impl Default for LedgerPressure {
    fn default() -> Self {
        LedgerPressure::new()
    }
}

impl RoutingPolicy for LedgerPressure {
    fn name(&self) -> &'static str {
        "ledger-pressure"
    }

    fn route(&mut self, _request: &RouteRequest, snapshot: &ClusterSnapshot<'_>) -> usize {
        // Probe among the routable deployments only — with the whole
        // fleet Active the probe sequence (and thus the golden-pinned
        // dispatch) is the historical one bit for bit.
        let routable: Vec<&DeploymentView> =
            snapshot.deployments.iter().filter(|d| d.routable()).collect();
        if routable.is_empty() {
            return 0;
        }
        let n = routable.len();
        let (i, j) = (self.probe(n), self.probe(n));
        let (a, b) = (routable[i], routable[j]);
        let (sa, sb) = (LedgerPressure::score(a), LedgerPressure::score(b));
        // Ties (including i == j) go to the lower index.
        if sb > sa || (sb == sa && b.id < a.id) {
            b.id as usize
        } else {
            a.id as usize
        }
    }
}

/// Cost-normalized placement: the deployment where a request buys the
/// most serving capacity per dollar.
///
/// Every dispatch scans the routable fleet and places on the deployment
/// maximizing
///
/// ```text
/// score(d) = free KV bytes(d) × bandwidth weight(d)
///            / (1 + load(d)) / hourly cost(d)
/// ```
///
/// — the [`LedgerPressure`] capacity-per-load score divided by what
/// keeping the deployment provisioned costs per hour
/// ([`DeploymentView::hourly_cost_usd`]: 3-year amortized capex plus
/// full-utilization energy). Where ledger-pressure maximizes goodput,
/// this maximizes *goodput per dollar*: a small cheap array wins over a
/// big expensive one until its load catches up, which is exactly the
/// packing an elastic fleet wants — expensive capacity is the first to
/// go idle and be drained. Deterministic (no probe RNG) and O(n) per
/// dispatch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostNormalizedPressure;

impl CostNormalizedPressure {
    fn score(d: &DeploymentView) -> f64 {
        let mut s = d.placeable_free_bytes as f64 * d.bandwidth_weight / (1.0 + d.load() as f64);
        if d.prefix_hit_rate > 0.0 {
            s *= 1.0 + d.prefix_hit_rate;
        }
        // A zero-cost view (tests, synthetic snapshots) falls back to
        // the raw capacity score rather than dividing by zero.
        if d.hourly_cost_usd > 0.0 {
            s /= d.hourly_cost_usd;
        }
        s
    }
}

impl RoutingPolicy for CostNormalizedPressure {
    fn name(&self) -> &'static str {
        "cost-normalized-pressure"
    }

    fn route(&mut self, _request: &RouteRequest, snapshot: &ClusterSnapshot<'_>) -> usize {
        snapshot
            .deployments
            .iter()
            .filter(|d| d.routable())
            .max_by(|a, b| {
                CostNormalizedPressure::score(a)
                    .total_cmp(&CostNormalizedPressure::score(b))
                    // Exact score ties (e.g. freshly woken slots with
                    // identical free capacity) go to a deployment whose
                    // prefix cache is already warm — elastic scale-up
                    // lands traffic where prior requests left reusable
                    // KV prefixes.
                    .then((a.prefix_hit_rate > 0.0).cmp(&(b.prefix_hit_rate > 0.0)))
                    .then(b.id.cmp(&a.id)) // remaining ties to the lower index
            })
            .map(|d| d.id as usize)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, queued: usize, decoding: usize, free: u64, bw: f64) -> DeploymentView {
        DeploymentView {
            id,
            queued,
            prefilling: 0,
            decoding,
            max_batch: 8,
            clock_s: 0.0,
            pressure: 0.0,
            device_pressure: vec![],
            placeable_free_bytes: free,
            bandwidth_weight: bw,
            device_count: 4,
            dispatched: 0,
            prefill_backlog_tokens: 0,
            prefix_hit_rate: 0.0,
            lifecycle: LifecycleState::Active,
            hourly_cost_usd: 0.0,
            active_power_w: 0.0,
        }
    }

    fn req(id: u64) -> RouteRequest {
        RouteRequest {
            id,
            class: RequestClass::Medium,
            priority: Priority::Normal,
            prompt_len: 1024,
            output_budget: 350,
            emitted: 0,
            redispatch: false,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let views = [view(0, 0, 0, 1, 1.0), view(1, 0, 0, 1, 1.0), view(2, 0, 0, 1, 1.0)];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..7).map(|i| rr.route(&req(i), &snap)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(rr.name(), "round-robin");
    }

    #[test]
    fn jsq_picks_least_loaded_with_index_ties() {
        let views = [view(0, 3, 2, 1, 1.0), view(1, 1, 1, 1, 1.0), view(2, 0, 2, 1, 1.0)];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        let mut jsq = JoinShortestQueue;
        // Deployments 1 and 2 both have load 2 (vs 5): the lower index
        // wins the tie.
        assert_eq!(views[1].load(), 2);
        assert_eq!(views[2].load(), 2);
        assert_eq!(jsq.route(&req(0), &snap), 1);
        assert_eq!(jsq.name(), "join-shortest-queue");
    }

    #[test]
    fn ledger_pressure_prefers_headroom_times_bandwidth() {
        // Deployment 1 has twice the free bytes *and* bandwidth of 0;
        // whatever pair the probes draw, 1 must win every dispatch in a
        // 2-deployment cluster (every pair contains it or is {0,0}).
        let views = [view(0, 0, 0, 1 << 30, 10.0), view(1, 0, 0, 2 << 30, 20.0)];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        let mut lp = LedgerPressure::new();
        let picks: Vec<usize> = (0..32).map(|i| lp.route(&req(i), &snap)).collect();
        assert!(picks.contains(&1), "the better deployment is never probed?");
        // Whenever 1 is among the two probes it wins; 0 only appears when
        // both probes landed on 0.
        for (i, &p) in picks.iter().enumerate() {
            if p == 0 {
                // Re-derive the probe pair deterministically.
                let mut replay = LedgerPressure::new();
                let mut pair = (0, 0);
                for _ in 0..=i {
                    pair = (replay.probe(2), replay.probe(2));
                }
                assert_eq!(pair, (0, 0), "dispatch {i} picked 0 despite probing 1");
            }
        }
        assert_eq!(lp.name(), "ledger-pressure");
    }

    #[test]
    fn ledger_pressure_load_divisor_sheds_busy_deployments() {
        // Same capacity, but deployment 0 is buried in queued work: the
        // score divisor must route to 1 whenever both are probed.
        let views = [view(0, 50, 8, 1 << 30, 10.0), view(1, 0, 0, 1 << 30, 10.0)];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        assert!(LedgerPressure::score(&views[1]) > LedgerPressure::score(&views[0]));
        let mut lp = LedgerPressure::new();
        let picks: Vec<usize> = (0..32).map(|i| lp.route(&req(i), &snap)).collect();
        let to_idle = picks.iter().filter(|&&p| p == 1).count();
        assert!(to_idle > 16, "most dispatches should shed to the idle deployment: {picks:?}");
    }

    #[test]
    fn ledger_pressure_prefers_warm_prefix_caches() {
        // Identical capacity and load; the warm cache breaks the tie.
        let cold = view(0, 0, 0, 1 << 30, 10.0);
        let warm = DeploymentView { prefix_hit_rate: 0.5, ..view(1, 0, 0, 1 << 30, 10.0) };
        assert!(LedgerPressure::score(&warm) > LedgerPressure::score(&cold));
        assert!(
            (LedgerPressure::score(&warm) - 1.5 * LedgerPressure::score(&cold)).abs() < 1e-6,
            "a 0.5 hit rate is worth exactly 1.5x"
        );
        // Zero hit rate (cache off) takes no branch: score unchanged.
        assert_eq!(
            LedgerPressure::score(&cold),
            LedgerPressure::score(&view(2, 0, 0, 1 << 30, 10.0))
        );
    }

    #[test]
    fn ledger_pressure_is_deterministic_in_its_seed() {
        let views = [view(0, 1, 0, 1 << 30, 1.0), view(1, 0, 1, 1 << 29, 2.0)];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        let run = |seed| {
            let mut lp = LedgerPressure::seeded(seed);
            (0..64).map(|i| lp.route(&req(i), &snap)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same probe sequence");
    }

    #[test]
    fn views_expose_load_arithmetic() {
        let v = DeploymentView { prefilling: 2, ..view(0, 3, 4, 1, 1.0) };
        assert_eq!(v.in_flight(), 6);
        assert_eq!(v.load(), 9);
    }

    #[test]
    fn every_shipped_policy_skips_non_routable_deployments() {
        // Deployment 0 is the obvious winner on every score — but it is
        // Draining, and 2 is still Provisioning; only 1 may be picked.
        let views = [
            DeploymentView { lifecycle: LifecycleState::Draining, ..view(0, 0, 0, 8 << 30, 50.0) },
            view(1, 4, 2, 1 << 20, 1.0),
            DeploymentView {
                lifecycle: LifecycleState::Provisioning,
                ..view(2, 0, 0, 8 << 30, 50.0)
            },
        ];
        assert!(!views[0].routable() && views[1].routable() && !views[2].routable());
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        let mut policies: Vec<Box<dyn RoutingPolicy>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(JoinShortestQueue),
            Box::new(LedgerPressure::new()),
            Box::new(CostNormalizedPressure),
        ];
        for p in policies.iter_mut() {
            for i in 0..16 {
                assert_eq!(p.route(&req(i), &snap), 1, "{} routed to a dead deployment", p.name());
            }
        }
    }

    #[test]
    fn all_active_filter_is_the_identity_rotation_and_probe() {
        // With the whole fleet Active the routable filter must not
        // perturb round-robin order or the seeded probe sequence.
        let views = [view(0, 0, 0, 1, 1.0), view(1, 0, 0, 1, 1.0), view(2, 0, 0, 1, 1.0)];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|i| rr.route(&req(i), &snap)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // LedgerPressure over equal deployments: replaying the raw probe
        // pairs must reproduce the routed picks exactly.
        let mut lp = LedgerPressure::new();
        let mut replay = LedgerPressure::new();
        for i in 0..32 {
            let routed = lp.route(&req(i), &snap);
            let (a, b) = (replay.probe(3), replay.probe(3));
            // Equal scores: ties to the lower index.
            assert_eq!(routed, a.min(b), "dispatch {i}");
        }
    }

    #[test]
    fn cost_normalized_pressure_prefers_capacity_per_dollar() {
        // Deployment 1 has twice the capacity but four times the cost:
        // normalized, 0 wins.
        let cheap = DeploymentView { hourly_cost_usd: 1.0, ..view(0, 0, 0, 1 << 30, 10.0) };
        let pricey = DeploymentView { hourly_cost_usd: 4.0, ..view(1, 0, 0, 2 << 30, 10.0) };
        assert!(
            CostNormalizedPressure::score(&cheap) > CostNormalizedPressure::score(&pricey),
            "2x capacity at 4x cost must lose"
        );
        let views = [cheap.clone(), pricey.clone()];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        assert_eq!(CostNormalizedPressure.route(&req(0), &snap), 0);
        // Load the cheap one up and the expensive capacity earns its
        // keep: 9 queued requests divide its score by 10.
        let views = [DeploymentView { queued: 9, ..cheap }, pricey];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        assert_eq!(CostNormalizedPressure.route(&req(1), &snap), 1);
        assert_eq!(CostNormalizedPressure.name(), "cost-normalized-pressure");
    }

    #[test]
    fn cost_normalized_pressure_breaks_score_ties_toward_warm_caches() {
        // Two freshly woken slots with zero free capacity score exactly
        // 0.0 each — the warmth tie-break places on the one whose prefix
        // cache already holds reusable KV, even at the higher index.
        let cold = view(0, 0, 0, 0, 10.0);
        let warm = DeploymentView { prefix_hit_rate: 0.25, ..view(1, 0, 0, 0, 10.0) };
        assert_eq!(CostNormalizedPressure::score(&cold), CostNormalizedPressure::score(&warm));
        let views = [cold.clone(), warm.clone()];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        assert_eq!(CostNormalizedPressure.route(&req(0), &snap), 1);
        // Both cold (or both warm): the tie still goes to the lower index.
        let views = [cold.clone(), view(1, 0, 0, 0, 10.0)];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        assert_eq!(CostNormalizedPressure.route(&req(1), &snap), 0);
        let views = [DeploymentView { prefix_hit_rate: 0.5, ..cold }, warm];
        let snap = ClusterSnapshot { step: 0, deployments: &views };
        assert_eq!(CostNormalizedPressure.route(&req(2), &snap), 0);
    }

    #[test]
    fn zero_cost_views_fall_back_to_raw_capacity_score() {
        // Synthetic snapshots without cost wiring must not divide by 0.
        let v = view(0, 0, 0, 1 << 30, 10.0);
        assert!(CostNormalizedPressure::score(&v).is_finite());
        assert_eq!(CostNormalizedPressure::score(&v), LedgerPressure::score(&v));
    }
}
