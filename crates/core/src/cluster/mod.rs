//! Cluster serving: one trace balanced — and the fleet itself sized —
//! across heterogeneous HILOS deployments.
//!
//! The paper's cost story is about serving long-context offline
//! inference on *cheap, heterogeneous* near-storage deployments: arrays
//! differ in device count, degradation state and therefore KV capacity
//! and sweep bandwidth. This module turns that into two serving layers
//! above [`crate::serve`] — a **fixed** cluster (how should N
//! deployments share a trace) and an **elastic** one (how many
//! deployments should exist at each moment of it).
//!
//! # The fixed cluster
//!
//! * [`ClusterEngine`] owns N independent deployments (each a complete
//!   [`ServeEngine`](crate::ServeEngine): its own
//!   [`HilosSystem`](crate::HilosSystem), its own
//!   [`SchedulingPolicy`](crate::SchedulingPolicy), its own per-device
//!   [`KvShardLedger`](hilos_storage::KvShardLedger)) and advances them
//!   in lockstep under one global arrival cursor.
//! * Each arriving [`Request`](hilos_llm::Request) is dispatched through
//!   a pluggable [`RoutingPolicy`] fed a read-only [`ClusterSnapshot`] —
//!   queue depth, batch composition, ledger pressure, the degradation
//!   profile, prefill backlog
//!   ([`DeploymentView::prefill_backlog_tokens`]), prefix-cache warmth,
//!   and now each deployment's **lifecycle state and hourly cost**
//!   ([`DeploymentView::lifecycle`], [`DeploymentView::hourly_cost_usd`]).
//! * Requests a deployment preempts are offered back to the router,
//!   which may **re-dispatch them across deployments** with generated
//!   progress retained.
//! * A run aggregates into a [`ClusterReport`]: per-deployment
//!   [`TraceReport`](crate::TraceReport)s plus global TTFT/ITL/goodput
//!   views, including [`ClusterReport::goodput_tokens`], the numerator
//!   of fleet-cost accounting.
//!
//! Four routing policies ship in [`policy`]: [`RoundRobin`],
//! [`JoinShortestQueue`], [`LedgerPressure`] (power-of-two-choices on
//! free KV bytes × bandwidth per unit load) and
//! [`CostNormalizedPressure`] (the same score per dollar of hourly
//! provisioning cost — placement by goodput-per-dollar). All of them
//! route only to [routable](DeploymentView::routable) (Active)
//! deployments; on a fixed, fully-Active fleet that filter is the
//! identity.
//!
//! # The elastic cluster
//!
//! [`elastic`] wraps the same lockstep loop in a fleet-sizing loop.
//! Every slot carries a [`DeploymentLifecycle`]
//! (`Provisioning → Warming → Active → Draining → Retired`, with
//! `Retired → Provisioning` closing the keep-alive cycle); a cold start
//! is priced by [`ColdStartModel`] from the slot's own model size and
//! device bandwidth. Once per global step an [`AutoscalePolicy`] (the
//! reactive [`TargetPressureScaler`], or [`HybridHistogramKeepAlive`],
//! which learns the inter-burst gap histogram, releases capacity the
//! moment a burst is confirmed over and pre-warms a cold start ahead of
//! the predicted next one) sees a [`FleetSnapshot`] and scales the
//! fleet. A scale-down drains live through the migration machinery:
//! queued work re-routes at once, in-flight work evacuates a batch per
//! step with progress retained, parked demoted KV drops at the source,
//! and the slot retires only once empty. [`ElasticReport`] adds the
//! lifecycle audit trail and a utilization [`FleetBill`](hilos_metrics::FleetBill)
//! (busy seconds + paid cold starts per slot) to compare against a
//! statically-provisioned peak fleet.
//!
//! # The two-phase lockstep iteration
//!
//! Both engines execute every global step in two phases. **Phase A
//! (advance)**: each deployment with work runs one serving iteration
//! ([`ServeEngine::advance_once`](crate::ServeEngine)) touching only its
//! own state — queues, batch, ledgers, step caches, trace sink all live
//! inside the slot. Because the iterations are independent, they fan
//! out over a persistent worker pool
//! ([`ClusterConfig::with_cluster_threads`]) when one is configured.
//! **Phase B (merge)**: back on the calling thread, the per-slot results
//! ([`StepProgress`](crate::StepProgress) plus freshly preempted
//! victims) are folded **in deployment-index order** — stall detection,
//! victim re-routing, cross-deployment migration, elastic lifecycle
//! transitions and autoscale decisions all happen here, serially.
//!
//! # Determinism
//!
//! The two-phase split is the determinism contract: every routing
//! decision, migration, trace event and report field depends only on
//! the phase-B fold, whose inputs and order are independent of how
//! phase A was scheduled. A run is therefore **bit-identical at any
//! `cluster_threads` value** — same [`ClusterReport`], same
//! [`ElasticReport`], same event-stream FNV — and threads only change
//! wall-clock time. Likewise the copy-on-write shared warm-start
//! (identical-model deployments sharing one step-cache memo table,
//! [`ClusterConfig::with_shared_warm_start`]) is outcome-transparent:
//! cached step values are pure functions of their keys, so sharing
//! changes only which deployment computes an entry first, never what
//! any deployment observes.
//!
//! A cluster of **one** deployment is bit-identical to
//! [`ServeEngine::run_trace`](crate::ServeEngine::run_trace) on the same
//! system under any routing policy — and an [`ElasticClusterEngine`]
//! with one slot and the never-scaling [`PinnedFleet`] policy is
//! bit-identical to both (all golden-pinned down to the FNV hash of
//! every outcome's lifecycle timestamps): the cluster layers add no
//! simulation drift, only dispatch and fleet sizing.

pub mod elastic;
pub mod policy;
mod report;
mod router;

pub use elastic::{
    AutoscalePolicy, ColdStartModel, DeploymentLifecycle, ElasticClusterEngine, ElasticConfig,
    ElasticReport, FleetSnapshot, HybridHistogramKeepAlive, LifecycleEvent, LifecycleState,
    PinnedFleet, ScaleDecision, TargetPressureScaler,
};
pub use policy::{
    ClusterSnapshot, CostNormalizedPressure, DeploymentView, JoinShortestQueue, LedgerPressure,
    RoundRobin, RouteRequest, RoutingPolicy,
};
pub use report::ClusterReport;
pub use router::{ClusterConfig, ClusterEngine};
