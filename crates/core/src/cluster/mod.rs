//! Cluster serving: one trace balanced across heterogeneous HILOS
//! deployments by KV shard-ledger pressure.
//!
//! The paper's cost story is about serving long-context offline
//! inference on *cheap, heterogeneous* near-storage deployments: arrays
//! differ in device count, degradation state and therefore KV capacity
//! and sweep bandwidth. Related cluster-serving work picks the
//! deployment per request by cost and KV headroom, and the near-storage
//! literature shows per-deployment storage bandwidth — not queue length —
//! is the binding resource. This module turns that into a serving layer
//! one level above [`crate::serve`]:
//!
//! * [`ClusterEngine`] owns N independent deployments (each a complete
//!   [`ServeEngine`](crate::ServeEngine): its own
//!   [`HilosSystem`](crate::HilosSystem), its own
//!   [`SchedulingPolicy`](crate::SchedulingPolicy), its own per-device
//!   [`KvShardLedger`](hilos_storage::KvShardLedger)) and advances them
//!   in lockstep under one global arrival cursor. Each deployment's
//!   [`ServeConfig`](crate::ServeConfig) selects its flow engine via
//!   [`with_flow_impl`](crate::ServeConfig::with_flow_impl), so a
//!   cluster can run the O(log n) virtual-time engine
//!   ([`FlowEngineImpl::VirtualTime`](crate::FlowEngineImpl)) on every
//!   deployment — cross-deployment migration maps to job cancellation,
//!   which the fast engine supports natively.
//! * Each arriving [`Request`](hilos_llm::Request) is dispatched through
//!   a pluggable [`RoutingPolicy`] fed a read-only [`ClusterSnapshot`] —
//!   per-deployment queue depth, in-flight batch composition, ledger
//!   pressure
//!   ([`KvShardLedger::pressure`](hilos_storage::KvShardLedger::pressure)),
//!   the degradation profile (bandwidth-discounted placement weights),
//!   and the prefill backlog
//!   ([`DeploymentView::prefill_backlog_tokens`]): under the
//!   token-budgeted serving step ([`ChunkMode`](crate::ChunkMode)) a
//!   deployment's pending prompt-ingestion debt is a first-class load
//!   signal, so size-aware placement (long prompts to the deployment
//!   with the least backlog per unit bandwidth) is expressible as a
//!   routing policy.
//! * Requests a deployment's scheduling policy preempts are offered back
//!   to the router, which may **re-dispatch them across deployments**
//!   with their generated-token progress retained (their KV is
//!   re-materialized by a prefill over `prompt + progress` wherever they
//!   land, exactly as local re-admission does).
//! * A run aggregates into a [`ClusterReport`]: the per-deployment
//!   [`TraceReport`](crate::TraceReport)s plus global TTFT/ITL/goodput
//!   built on [`hilos_metrics::LatencyStats`] /
//!   [`hilos_metrics::ClassReport`], the pooled per-emission decode-gap
//!   distribution ([`ClusterReport::step_itl_stats`]), and the merged
//!   prefill-interference breakdown
//!   ([`ClusterReport::prefill_breakdown`] over
//!   [`hilos_metrics::PrefillBreakdown`]).
//!
//! Three routing policies ship in [`policy`]: [`RoundRobin`] (the
//! capacity-blind baseline), [`JoinShortestQueue`] (load-aware,
//! drain-rate-blind) and [`LedgerPressure`] (power-of-two-choices scored
//! by free KV bytes × aggregate device bandwidth per unit load). On the
//! seeded contended heterogeneous trace the three order exactly that way
//! on SLO goodput — recorded in `BENCH_cluster.json` and gated in CI.
//!
//! A cluster of **one** deployment is bit-identical to
//! [`ServeEngine::run_trace`](crate::ServeEngine::run_trace) on the same
//! system under any routing policy (golden-pinned down to the FNV hash
//! of every outcome's lifecycle timestamps): the cluster layer adds no
//! simulation drift, only dispatch.

pub mod policy;
mod report;
mod router;

pub use policy::{
    ClusterSnapshot, DeploymentView, JoinShortestQueue, LedgerPressure, RoundRobin, RouteRequest,
    RoutingPolicy,
};
pub use report::ClusterReport;
pub use router::ClusterEngine;
