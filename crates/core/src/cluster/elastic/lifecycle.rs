//! The deployment lifecycle state machine and the seeded cold-start
//! model that prices its Provisioning → Warming transit.

use crate::serve::ServeEngine;
use std::fmt;

/// Where a deployment slot is in its life. The only legal transitions
/// are the forward arc
///
/// ```text
/// Provisioning → Warming → Active → Draining → Retired
/// ```
///
/// plus `Retired → Provisioning` (a scale-up re-provisions a retired
/// slot — the serverless keep-alive loop). [`DeploymentLifecycle`]
/// enforces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifecycleState {
    /// Container/VM provisioning: the slot is being stood up and cannot
    /// serve.
    Provisioning,
    /// Weights are streaming from storage into the serving tiers; the
    /// slot cannot serve yet.
    Warming,
    /// Serving traffic.
    Active,
    /// Being evacuated: in-flight and queued requests migrate off; no
    /// new traffic routes here.
    Draining,
    /// Not provisioned (the initial state of spare slots, and the final
    /// state after a drain completes). Bills nothing.
    Retired,
}

impl fmt::Display for LifecycleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LifecycleState::Provisioning => "provisioning",
            LifecycleState::Warming => "warming",
            LifecycleState::Active => "active",
            LifecycleState::Draining => "draining",
            LifecycleState::Retired => "retired",
        };
        write!(f, "{s}")
    }
}

/// The cold-start price of bringing a deployment slot to Active:
/// container provisioning plus streaming the model's weights onto the
/// array, priced off the deployment's own device bandwidth and model
/// size — a bigger model on a smaller array warms slower, exactly the
/// asymmetry a keep-alive predictor has to beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdStartModel {
    /// Seconds to provision the container/VM before weights can load.
    pub provision_s: f64,
    /// Seconds to stream the model's weights onto the array:
    /// `weight_bytes / aggregate sequential device bandwidth`.
    pub weight_load_s: f64,
}

impl ColdStartModel {
    /// Prices the cold start of `engine`'s deployment: `provision_s` of
    /// container setup, then the model's full weight footprint pushed at
    /// the array's aggregate sequential bandwidth.
    pub fn for_deployment(engine: &ServeEngine, provision_s: f64) -> Self {
        let sys = engine.system();
        let spec = sys.spec();
        let per_device_bw = spec.storage.ssd_spec().seq_read_bw();
        let devices = spec.storage.device_count().max(1) as f64;
        let weight_load_s = sys.model().weight_bytes() as f64 / (per_device_bw * devices);
        ColdStartModel { provision_s, weight_load_s }
    }

    /// Total cold-start seconds (provision + weight load).
    pub fn total_s(&self) -> f64 {
        self.provision_s + self.weight_load_s
    }

    /// Provisioning seconds converted to global serving steps at
    /// `step_seconds_hint` seconds per step (at least 1 step).
    pub fn provision_steps(&self, step_seconds_hint: f64) -> u64 {
        to_steps(self.provision_s, step_seconds_hint)
    }

    /// Weight-load (warming) seconds converted to global serving steps
    /// (at least 1 step).
    pub fn warm_steps(&self, step_seconds_hint: f64) -> u64 {
        to_steps(self.weight_load_s, step_seconds_hint)
    }

    /// Whole cold start in steps: provisioning plus warming.
    pub fn total_steps(&self, step_seconds_hint: f64) -> u64 {
        self.provision_steps(step_seconds_hint) + self.warm_steps(step_seconds_hint)
    }
}

fn to_steps(seconds: f64, step_seconds_hint: f64) -> u64 {
    (seconds / step_seconds_hint.max(1e-9)).ceil().max(1.0) as u64
}

/// One lifecycle transition, stamped with the global step it happened
/// at — the elastic report's audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Global serving step of the transition.
    pub step: u64,
    /// The deployment slot that transitioned.
    pub deployment: u32,
    /// The state entered.
    pub to: LifecycleState,
}

/// The lifecycle state machine of one deployment slot: current state,
/// the cold-start model pricing its Provisioning → Warming → Active
/// transit, and the step thresholds of any transit in progress.
#[derive(Debug, Clone)]
pub struct DeploymentLifecycle {
    state: LifecycleState,
    cold_start: ColdStartModel,
    /// Step at which Provisioning flips to Warming (while provisioning).
    warm_at: u64,
    /// Step at which Warming flips to Active (while provisioning or
    /// warming).
    active_at: u64,
    /// Whether this slot was ever cold-started *during* the run (initial
    /// Active slots were provisioned before the trace began and bill no
    /// cold start to it).
    cold_started_in_run: bool,
}

impl DeploymentLifecycle {
    /// A slot that starts the run already Active (the initially
    /// provisioned fleet).
    pub fn active(cold_start: ColdStartModel) -> Self {
        DeploymentLifecycle {
            state: LifecycleState::Active,
            cold_start,
            warm_at: 0,
            active_at: 0,
            cold_started_in_run: false,
        }
    }

    /// A spare slot that starts the run unprovisioned.
    pub fn retired(cold_start: ColdStartModel) -> Self {
        DeploymentLifecycle {
            state: LifecycleState::Retired,
            cold_start,
            warm_at: 0,
            active_at: 0,
            cold_started_in_run: false,
        }
    }

    /// Current state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// The slot's cold-start price.
    pub fn cold_start(&self) -> &ColdStartModel {
        &self.cold_start
    }

    /// Whether a scale-up cold-started this slot during the run.
    pub fn cold_started_in_run(&self) -> bool {
        self.cold_started_in_run
    }

    /// Begins provisioning a Retired slot at `step`: it will reach
    /// Warming after the provision steps and Active after the warm
    /// steps. Returns the transition event, or `None` if the slot is not
    /// Retired (the engine never asks, but the machine still refuses).
    pub fn begin_provision(
        &mut self,
        step: u64,
        step_seconds_hint: f64,
        deployment: u32,
    ) -> Option<LifecycleEvent> {
        if self.state != LifecycleState::Retired {
            return None;
        }
        self.state = LifecycleState::Provisioning;
        self.warm_at = step + self.cold_start.provision_steps(step_seconds_hint);
        self.active_at = self.warm_at + self.cold_start.warm_steps(step_seconds_hint);
        self.cold_started_in_run = true;
        Some(LifecycleEvent { step, deployment, to: LifecycleState::Provisioning })
    }

    /// Advances any transit in progress to `step`: Provisioning flips to
    /// Warming at its threshold, Warming to Active at its. Returns the
    /// transitions that fired (both, if a long idle jump crossed both
    /// thresholds at once).
    pub fn tick(&mut self, step: u64, deployment: u32) -> Vec<LifecycleEvent> {
        let mut events = Vec::new();
        if self.state == LifecycleState::Provisioning && step >= self.warm_at {
            self.state = LifecycleState::Warming;
            events.push(LifecycleEvent { step, deployment, to: LifecycleState::Warming });
        }
        if self.state == LifecycleState::Warming && step >= self.active_at {
            self.state = LifecycleState::Active;
            events.push(LifecycleEvent { step, deployment, to: LifecycleState::Active });
        }
        events
    }

    /// Begins draining an Active slot at `step`. Returns the event, or
    /// `None` if the slot is not Active.
    pub fn begin_drain(&mut self, step: u64, deployment: u32) -> Option<LifecycleEvent> {
        if self.state != LifecycleState::Active {
            return None;
        }
        self.state = LifecycleState::Draining;
        Some(LifecycleEvent { step, deployment, to: LifecycleState::Draining })
    }

    /// Retires a slot at `step` — legal from Draining (the planned
    /// path, once evacuation is complete) and from
    /// Provisioning/Warming (a cancelled cold start after the trace
    /// ends). Returns the event, or `None` from Active/Retired.
    pub fn retire(&mut self, step: u64, deployment: u32) -> Option<LifecycleEvent> {
        match self.state {
            LifecycleState::Draining | LifecycleState::Provisioning | LifecycleState::Warming => {
                self.state = LifecycleState::Retired;
                Some(LifecycleEvent { step, deployment, to: LifecycleState::Retired })
            }
            LifecycleState::Active | LifecycleState::Retired => None,
        }
    }

    /// The next step at which a transit in progress changes state
    /// (`None` when no transit is pending) — the idle-jump wake-up so a
    /// sleeping cluster still finishes its cold starts.
    pub fn next_transition_step(&self) -> Option<u64> {
        match self.state {
            LifecycleState::Provisioning => Some(self.warm_at),
            LifecycleState::Warming => Some(self.active_at),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ColdStartModel {
        ColdStartModel { provision_s: 10.0, weight_load_s: 30.0 }
    }

    #[test]
    fn cold_start_arithmetic() {
        let m = model();
        assert_eq!(m.total_s(), 40.0);
        assert_eq!(m.provision_steps(1.0), 10);
        assert_eq!(m.warm_steps(1.0), 30);
        assert_eq!(m.total_steps(1.0), 40);
        // Sub-step costs round up to a full step.
        assert_eq!(m.provision_steps(100.0), 1);
        assert_eq!(m.total_steps(0.5), 80);
    }

    #[test]
    fn forward_arc_provision_warm_active_drain_retire() {
        let mut lc = DeploymentLifecycle::retired(model());
        assert_eq!(lc.state(), LifecycleState::Retired);
        let ev = lc.begin_provision(100, 1.0, 3).expect("retired slots provision");
        assert_eq!(ev.to, LifecycleState::Provisioning);
        assert_eq!(lc.next_transition_step(), Some(110));
        assert!(lc.tick(105, 3).is_empty(), "not warm yet");
        let evs = lc.tick(110, 3);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].to, LifecycleState::Warming);
        assert_eq!(lc.next_transition_step(), Some(140));
        let evs = lc.tick(140, 3);
        assert_eq!(evs[0].to, LifecycleState::Active);
        assert!(lc.cold_started_in_run());
        assert_eq!(lc.next_transition_step(), None);
        let ev = lc.begin_drain(200, 3).expect("active slots drain");
        assert_eq!(ev.to, LifecycleState::Draining);
        let ev = lc.retire(210, 3).expect("draining slots retire");
        assert_eq!(ev.to, LifecycleState::Retired);
        // And the keep-alive loop closes: it can provision again.
        assert!(lc.begin_provision(300, 1.0, 3).is_some());
    }

    #[test]
    fn one_tick_crosses_both_thresholds_after_a_long_idle_jump() {
        let mut lc = DeploymentLifecycle::retired(model());
        lc.begin_provision(0, 1.0, 0);
        let evs = lc.tick(10_000, 0);
        assert_eq!(
            evs.iter().map(|e| e.to).collect::<Vec<_>>(),
            vec![LifecycleState::Warming, LifecycleState::Active]
        );
    }

    #[test]
    fn illegal_transitions_refuse() {
        let mut lc = DeploymentLifecycle::active(model());
        assert!(lc.begin_provision(0, 1.0, 0).is_none(), "active slots don't re-provision");
        assert!(lc.retire(0, 0).is_none(), "active slots retire through a drain");
        assert!(!lc.cold_started_in_run(), "the initial fleet billed no in-run cold start");
        lc.begin_drain(5, 0).unwrap();
        assert!(lc.begin_drain(6, 0).is_none(), "draining is idempotent-refusing");
        lc.retire(7, 0).unwrap();
        assert!(lc.retire(8, 0).is_none(), "retired is terminal until re-provisioned");
    }

    #[test]
    fn cancelled_cold_start_retires_from_warming() {
        let mut lc = DeploymentLifecycle::retired(model());
        lc.begin_provision(0, 1.0, 1);
        lc.tick(10, 1);
        assert_eq!(lc.state(), LifecycleState::Warming);
        let ev = lc.retire(12, 1).expect("a cancelled cold start retires");
        assert_eq!(ev.to, LifecycleState::Retired);
    }
}
