//! The elastic cluster engine: [`ClusterEngine`](crate::cluster::ClusterEngine)'s
//! lockstep serving loop with a deployment lifecycle, an autoscaler, and
//! utilization billing wrapped around it.

use super::autoscale::{AutoscalePolicy, FleetSnapshot, ScaleDecision};
use super::lifecycle::{ColdStartModel, DeploymentLifecycle, LifecycleEvent, LifecycleState};
use crate::cluster::policy::{ClusterSnapshot, DeploymentView, RouteRequest, RoutingPolicy};
use crate::cluster::report::ClusterReport;
use crate::cluster::router::{
    clamp_route, deployment_view, install_shared_warm_start, provisioning_cost, ClusterConfig, Slot,
};
use crate::runner::CoreError;
use crate::serve::engine::{QueueEntry, StepProgress};
use crate::serve::ServeEngine;
use hilos_accel::with_fanout;
use hilos_llm::{DeploymentId, Request};
use hilos_metrics::{FleetBill, SlotBill};
use hilos_trace::{EventKind, NO_REQUEST};

/// The trace-event kind a lifecycle transition lands as in the slot's
/// event ring (the full [`LifecycleEvent`] audit trail is reported
/// separately; the ring carries the serving-interleaved view).
fn lifecycle_kind(to: LifecycleState) -> EventKind {
    match to {
        LifecycleState::Provisioning => EventKind::ScaleUp,
        LifecycleState::Warming => EventKind::Warming,
        LifecycleState::Active => EventKind::Activated,
        LifecycleState::Draining => EventKind::Drain,
        LifecycleState::Retired => EventKind::Retired,
    }
}

/// Fleet-elasticity knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticConfig {
    /// Slots provisioned (Active) before the trace starts; the rest
    /// begin Retired and wait for a scale-up.
    pub initial_active: usize,
    /// The engine never drains the fleet below this many Active slots
    /// (at least 1 — a cluster must always be able to serve).
    pub min_active: usize,
    /// Container/VM provisioning seconds of a cold start (the part that
    /// does not depend on model size or device bandwidth).
    pub provision_s: f64,
    /// Seconds one global serving step stands for when converting
    /// cold-start seconds to step thresholds.
    pub step_seconds_hint: f64,
    /// In-flight requests a draining slot evacuates per step — draining
    /// is *stepwise*: the slot keeps serving what it still holds while
    /// the cluster migrates this many requests per step.
    pub drain_batch: usize,
    /// Cluster-execution knobs (lockstep fan-out width, shared
    /// warm-start) — the same contract as the fixed engine: any
    /// `cluster_threads` value is bit-identical.
    pub cluster: ClusterConfig,
}

impl ElasticConfig {
    /// A config starting `initial_active` slots Active, with the
    /// defaults for everything else.
    pub fn new(initial_active: usize) -> Self {
        ElasticConfig { initial_active, ..ElasticConfig::default() }
    }
}

impl Default for ElasticConfig {
    /// One initial slot, floor of one, a 30-second container provision,
    /// quarter-second steps, four evacuations per drain step.
    fn default() -> Self {
        ElasticConfig {
            initial_active: 1,
            min_active: 1,
            provision_s: 30.0,
            step_seconds_hint: 0.25,
            drain_batch: 4,
            cluster: ClusterConfig::default(),
        }
    }
}

/// A cluster whose fleet size is a runtime variable.
///
/// Each deployment slot is a complete [`ServeEngine`] plus a
/// [`DeploymentLifecycle`]. Slot `0..initial_active` start Active; the
/// rest start Retired and cost nothing until an [`AutoscalePolicy`]
/// provisions them — paying a [`ColdStartModel`] priced off the slot's
/// own device bandwidth and model size. A scale-down *drains* a slot
/// live: queued requests re-route immediately, in-flight requests are
/// evacuated a batch per step with generated progress retained (the
/// cross-deployment migration machinery), parked demoted KV is dropped
/// at the source, and the slot retires only once empty.
///
/// Routing sees lifecycle state: every shipped [`RoutingPolicy`] places
/// only on Active slots, and the engine enforces it even against a
/// misbehaving policy. With every slot Active (a [`PinnedFleet`]
/// single-slot run) the engine reduces *bit-identically* to
/// [`ClusterEngine`](crate::cluster::ClusterEngine) — pinned by a golden
/// test.
///
/// Billing is by utilization: a slot bills its busy seconds plus any
/// cold starts it paid, not the run's wall clock — the
/// [`ElasticReport`] compares that against what a statically-provisioned
/// fleet would have billed.
///
/// [`PinnedFleet`]: super::PinnedFleet
#[derive(Debug)]
pub struct ElasticClusterEngine {
    engines: Vec<ServeEngine>,
    lifecycles: Vec<DeploymentLifecycle>,
    routing: Box<dyn RoutingPolicy>,
    autoscale: Box<dyn AutoscalePolicy>,
    config: ElasticConfig,
    /// Per-slot `(hourly cost USD, watts)`, for routing views.
    costs: Vec<(f64, f64)>,
    /// Per-slot purchase price, for billing.
    prices: Vec<f64>,
}

impl ElasticClusterEngine {
    /// Assembles an elastic cluster. Slots `0..initial_active` start
    /// Active, the rest Retired; each slot's cold start is priced from
    /// its own system (weight bytes over aggregate device bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `deployments` is empty, `initial_active` is not in
    /// `1..=deployments.len()`, or `min_active` is not in
    /// `1..=initial_active`.
    pub fn new(
        mut deployments: Vec<ServeEngine>,
        routing: Box<dyn RoutingPolicy>,
        autoscale: Box<dyn AutoscalePolicy>,
        config: ElasticConfig,
    ) -> Self {
        assert!(!deployments.is_empty(), "a cluster needs at least one deployment");
        assert!(
            (1..=deployments.len()).contains(&config.initial_active),
            "initial_active must be in 1..=deployment count"
        );
        assert!(
            (1..=config.initial_active).contains(&config.min_active),
            "min_active must be in 1..=initial_active"
        );
        for (i, d) in deployments.iter_mut().enumerate() {
            d.set_deployment(DeploymentId(i as u32));
        }
        if config.cluster.shared_warm_start {
            // Identical-fingerprint slots share one memo table, so a
            // scale-up warm-starts from what its Active twins already
            // computed instead of re-paying every memoization miss.
            install_shared_warm_start(&mut deployments);
        }
        let lifecycles = deployments
            .iter()
            .enumerate()
            .map(|(i, eng)| {
                let model = ColdStartModel::for_deployment(eng, config.provision_s);
                if i < config.initial_active {
                    DeploymentLifecycle::active(model)
                } else {
                    DeploymentLifecycle::retired(model)
                }
            })
            .collect();
        let costs: Vec<(f64, f64)> = deployments.iter().map(provisioning_cost).collect();
        let prices = deployments.iter().map(|e| e.system().spec().total_price_usd()).collect();
        ElasticClusterEngine {
            engines: deployments,
            lifecycles,
            routing,
            autoscale,
            config,
            costs,
            prices,
        }
    }

    /// Number of deployment slots (provisioned or not).
    pub fn deployment_count(&self) -> usize {
        self.engines.len()
    }

    /// The active routing policy's name.
    pub fn routing_name(&self) -> &'static str {
        self.routing.name()
    }

    /// The active autoscale policy's name.
    pub fn autoscale_name(&self) -> &'static str {
        self.autoscale.name()
    }

    /// Slot `d`'s current lifecycle state.
    pub fn lifecycle_state(&self, d: usize) -> LifecycleState {
        self.lifecycles[d].state()
    }

    /// Slot `d`'s cold-start price.
    pub fn cold_start(&self, d: usize) -> &ColdStartModel {
        self.lifecycles[d].cold_start()
    }

    /// The deployments, in slot order.
    pub fn deployments(&self) -> &[ServeEngine] {
        &self.engines
    }

    fn slot_views(
        lifecycles: &[DeploymentLifecycle],
        slots: &[Option<Slot>],
        dispatched: &[u64],
        costs: &[(f64, f64)],
    ) -> Vec<DeploymentView> {
        slots
            .iter()
            .zip(dispatched.iter().zip(costs))
            .zip(lifecycles)
            .map(|((slot, (&d, &cost)), lc)| {
                let (eng, st) = slot.as_ref().expect("slot checked in");
                deployment_view(eng, st, d, lc.state(), cost)
            })
            .collect()
    }

    /// Least-loaded Active slot (ties to the lower index) — the fallback
    /// target when a routing policy misbehaves. The engine never drains
    /// below `min_active >= 1`, so an Active slot always exists.
    fn least_loaded_active(lifecycles: &[DeploymentLifecycle], slots: &[Option<Slot>]) -> usize {
        (0..slots.len())
            .filter(|&d| lifecycles[d].state() == LifecycleState::Active)
            .min_by_key(|&d| {
                let st = &slots[d].as_ref().expect("slot checked in").1;
                (st.queued_len() + st.prefilling_len() + st.decoding_len(), d)
            })
            .expect("min_active >= 1 keeps at least one slot Active")
    }

    /// Routes through the policy over lifecycle-aware views, validating
    /// out-of-range answers ([`clamp_route`]), then *enforces* the
    /// lifecycle: a pick that lands on a non-Active slot is overridden
    /// to the least-loaded Active one.
    #[allow(clippy::too_many_arguments)]
    fn route_slots(
        routing: &mut dyn RoutingPolicy,
        lifecycles: &[DeploymentLifecycle],
        slots: &[Option<Slot>],
        dispatched: &[u64],
        costs: &[(f64, f64)],
        step: u64,
        request: RouteRequest,
        misrouted: &mut u64,
    ) -> usize {
        let views = Self::slot_views(lifecycles, slots, dispatched, costs);
        let snapshot = ClusterSnapshot { step, deployments: &views };
        let d = clamp_route(routing.route(&request, &snapshot), slots.len(), misrouted);
        if lifecycles[d].state() == LifecycleState::Active {
            d
        } else {
            Self::least_loaded_active(lifecycles, slots)
        }
    }

    /// Serves a trace (sorted by `arrival_step`) across the elastic
    /// fleet to completion.
    ///
    /// Each global step, in order: (1) lifecycle transits advance
    /// (Provisioning→Warming→Active as cold-start thresholds pass);
    /// (2) the autoscale policy sees a [`FleetSnapshot`] and may
    /// provision Retired slots or begin draining Active ones; (3)
    /// arrivals dispatch through the routing policy onto Active slots;
    /// (4) Draining slots evacuate — queued requests wholesale,
    /// in-flight ones `drain_batch` per step with progress retained and
    /// timestamps re-based, demoted KV dropped at the source — and
    /// retire once empty; (5) every slot with work runs one serving
    /// iteration, preemption victims re-dispatching exactly as in the
    /// fixed engine. An idle fleet jumps to the next arrival, lifecycle
    /// transition, or the autoscaler's pre-warm point, whichever comes
    /// first; once the trace is exhausted the autoscaler is retired and
    /// still-provisioning slots cancel into Retired.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, or [`CoreError::SchedulerStalled`]
    /// exactly as the fixed engine does.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival step.
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<ElasticReport, CoreError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step),
            "trace must be sorted by arrival step"
        );
        let n = self.engines.len();
        let hint = self.config.step_seconds_hint;
        let min_active = self.config.min_active;
        let cold_start_steps =
            self.lifecycles.iter().map(|lc| lc.cold_start().total_steps(hint)).max().unwrap_or(1);

        let threads = self.config.cluster.cluster_threads.min(n);
        let mut slots: Vec<Option<Slot>> = std::mem::take(&mut self.engines)
            .into_iter()
            .map(|e| {
                let st = e.new_run_state();
                Some((e, st))
            })
            .collect();
        let mut dispatched = vec![0u64; n];
        let mut redispatches = 0u64;
        let mut misrouted = 0u64;

        let mut events: Vec<LifecycleEvent> = Vec::new();
        let mut scale_ups = 0u64;
        let mut drains = 0u64;
        let mut retires = 0u64;
        let mut drained_requests = 0u64;
        let mut peak_active = self.config.initial_active;
        let mut cold_start_s = vec![0.0f64; n];

        // Phase A of the lockstep iteration (identical to the fixed
        // engine): one slot's serving iteration plus its victim drain,
        // touching only the slot it is handed.
        let advance =
            |_d: usize, slot: &mut Slot| -> (Result<StepProgress, CoreError>, Vec<QueueEntry>) {
                let (eng, st) = slot;
                match eng.advance_once(st) {
                    Ok(p) => (Ok(p), st.drain_just_preempted()),
                    Err(e) => (Err(e), Vec::new()),
                }
            };

        let run: Result<(), CoreError> = with_fanout(threads, advance, |pool| {
            let mut idx = 0usize;
            let mut gstep = 0u64;
            let mut results: Vec<Option<(Result<StepProgress, CoreError>, Vec<QueueEntry>)>> =
                (0..n).map(|_| None).collect();
            loop {
                // 1: lifecycle transits — cold starts whose thresholds have
                // passed turn Warming/Active.
                for d in 0..n {
                    for ev in self.lifecycles[d].tick(gstep, d as u32) {
                        let (_, st) = slots[d].as_mut().expect("slot checked in");
                        st.emit(DeploymentId(d as u32), NO_REQUEST, lifecycle_kind(ev.to));
                        events.push(ev);
                    }
                }
                let active_now =
                    self.lifecycles.iter().filter(|l| l.state() == LifecycleState::Active).count();
                peak_active = peak_active.max(active_now);

                // 2: autoscale — skipped once the trace is exhausted (no
                // arrival can ever justify new capacity, and a predictive
                // policy must not re-provision what the tail is retiring).
                if idx < trace.len() {
                    let arrivals_now =
                        trace[idx..].iter().take_while(|r| r.arrival_step <= gstep).count();
                    let views =
                        Self::slot_views(&self.lifecycles, &slots, &dispatched, &self.costs);
                    let snap = FleetSnapshot {
                        step: gstep,
                        arrivals_this_step: arrivals_now,
                        cold_start_steps,
                        min_active,
                        deployments: &views,
                    };
                    match self.autoscale.decide(&snap) {
                        ScaleDecision::Hold => {}
                        ScaleDecision::ScaleUp { count } => {
                            for _ in 0..count {
                                // Lowest-indexed Retired slot first.
                                let Some(d) = (0..n).find(|&d| {
                                    self.lifecycles[d].state() == LifecycleState::Retired
                                }) else {
                                    break;
                                };
                                if let Some(ev) =
                                    self.lifecycles[d].begin_provision(gstep, hint, d as u32)
                                {
                                    let (_, st) = slots[d].as_mut().expect("slot checked in");
                                    st.emit(
                                        DeploymentId(d as u32),
                                        NO_REQUEST,
                                        lifecycle_kind(ev.to),
                                    );
                                    events.push(ev);
                                    scale_ups += 1;
                                    cold_start_s[d] += self.lifecycles[d].cold_start().total_s();
                                }
                            }
                        }
                        ScaleDecision::ScaleDown { count } => {
                            for _ in 0..count {
                                let active: Vec<usize> = (0..n)
                                    .filter(|&d| {
                                        self.lifecycles[d].state() == LifecycleState::Active
                                    })
                                    .collect();
                                if active.len() <= min_active {
                                    break;
                                }
                                // Least-loaded first; ties drain the highest
                                // index (the most recently provisioned spare).
                                let d = *active
                                    .iter()
                                    .min_by_key(|&&d| {
                                        let st = &slots[d].as_ref().expect("slot checked in").1;
                                        let load = st.queued_len()
                                            + st.prefilling_len()
                                            + st.decoding_len();
                                        (load, usize::MAX - d)
                                    })
                                    .expect("non-empty active list");
                                if let Some(ev) = self.lifecycles[d].begin_drain(gstep, d as u32) {
                                    let (_, st) = slots[d].as_mut().expect("slot checked in");
                                    st.emit(
                                        DeploymentId(d as u32),
                                        NO_REQUEST,
                                        lifecycle_kind(ev.to),
                                    );
                                    events.push(ev);
                                    drains += 1;
                                }
                            }
                        }
                    }
                }

                // 3: dispatch arrivals up to the global serving step.
                while idx < trace.len() && trace[idx].arrival_step <= gstep {
                    let req = trace[idx];
                    let view = RouteRequest::of(&req, 0, false);
                    let d = Self::route_slots(
                        self.routing.as_mut(),
                        &self.lifecycles,
                        &slots,
                        &dispatched,
                        &self.costs,
                        gstep,
                        view,
                        &mut misrouted,
                    );
                    dispatched[d] += 1;
                    let (eng, st) = slots[d].as_mut().expect("slot checked in");
                    st.emit(DeploymentId(d as u32), req.id, EventKind::Routed);
                    eng.enqueue_arrival(st, req);
                    idx += 1;
                }

                // 4: live drain — Draining slots evacuate queued work
                // wholesale and in-flight work a batch per step, migrating
                // each request (progress retained, timestamps re-based onto
                // the target's clock, demoted KV dropped at the source), and
                // retire once empty.
                for d in 0..n {
                    if self.lifecycles[d].state() != LifecycleState::Draining {
                        continue;
                    }
                    let moved = {
                        let (eng, st) = slots[d].as_mut().expect("slot checked in");
                        let mut moved = eng.evacuate_queued(st);
                        moved.extend(eng.evacuate_in_flight(st, self.config.drain_batch));
                        moved
                    };
                    for mut entry in moved {
                        let view = RouteRequest::of(&entry.req, entry.emitted, true);
                        let target = Self::route_slots(
                            self.routing.as_mut(),
                            &self.lifecycles,
                            &slots,
                            &dispatched,
                            &self.costs,
                            gstep,
                            view,
                            &mut misrouted,
                        );
                        redispatches += 1;
                        drained_requests += 1;
                        {
                            let (eng, st) = slots[d].as_mut().expect("slot checked in");
                            eng.forget_demoted(st, entry.req.id);
                        }
                        let from_clock = slots[d].as_ref().expect("slot checked in").1.clock;
                        let (eng_t, st_t) = slots[target].as_mut().expect("slot checked in");
                        let shift = st_t.clock - from_clock;
                        entry.arrival_s += shift;
                        entry.first_token_s = entry.first_token_s.map(|t| t + shift);
                        entry.first_admitted_s = entry.first_admitted_s.map(|t| t + shift);
                        st_t.emit(
                            DeploymentId(target as u32),
                            entry.req.id,
                            EventKind::Migrated {
                                from: d as u32,
                                arrival_s: entry.arrival_s,
                                first_token_s: entry.first_token_s.unwrap_or(0.0),
                                emitted: entry.emitted,
                            },
                        );
                        eng_t.requeue(st_t, entry);
                    }
                    if !slots[d].as_ref().expect("slot checked in").1.has_work() {
                        if let Some(ev) = self.lifecycles[d].retire(gstep, d as u32) {
                            let (_, st) = slots[d].as_mut().expect("slot checked in");
                            st.emit(DeploymentId(d as u32), NO_REQUEST, lifecycle_kind(ev.to));
                            events.push(ev);
                            retires += 1;
                        }
                    }
                }

                // 5: fully idle everywhere — jump time or finish.
                if !slots.iter().any(|s| s.as_ref().expect("slot checked in").1.has_work()) {
                    if idx >= trace.len() {
                        let pending: Vec<usize> = (0..n)
                            .filter(|&d| {
                                matches!(
                                    self.lifecycles[d].state(),
                                    LifecycleState::Provisioning | LifecycleState::Warming
                                )
                            })
                            .collect();
                        if pending.is_empty() {
                            break;
                        }
                        // Trace exhausted with cold starts still in flight:
                        // cancel them — there is nothing left to serve (the
                        // wasted cold start stays billed; mispredictions
                        // cost money).
                        for d in pending {
                            if let Some(ev) = self.lifecycles[d].retire(gstep, d as u32) {
                                let (_, st) = slots[d].as_mut().expect("slot checked in");
                                st.emit(DeploymentId(d as u32), NO_REQUEST, lifecycle_kind(ev.to));
                                events.push(ev);
                                retires += 1;
                            }
                        }
                        break;
                    }
                    // Wake at the next arrival, the next lifecycle
                    // transition, or the autoscaler's pre-warm point,
                    // whichever comes first.
                    let mut wake = trace[idx].arrival_step;
                    for lc in &self.lifecycles {
                        if let Some(t) = lc.next_transition_step() {
                            wake = wake.min(t);
                        }
                    }
                    let views =
                        Self::slot_views(&self.lifecycles, &slots, &dispatched, &self.costs);
                    let snap = FleetSnapshot {
                        step: gstep,
                        arrivals_this_step: 0,
                        cold_start_steps,
                        min_active,
                        deployments: &views,
                    };
                    if let Some(p) = self.autoscale.prewarm_at(&snap) {
                        if p > gstep {
                            wake = wake.min(p);
                        }
                    }
                    gstep = wake.max(gstep + 1);
                    continue;
                }

                // 6: one lockstep iteration of every slot with work, in two
                // phases identical to the fixed engine. Phase A fans the
                // independent per-slot iterations out over the worker pool;
                // phase B merges progress and re-dispatches fresh victims in
                // deployment-index order (a victim preempted on a Draining
                // slot re-routes onto an Active one).
                let mut batch: Vec<(usize, Slot)> = Vec::new();
                for (d, slot) in slots.iter_mut().enumerate() {
                    let has_work = slot.as_ref().expect("slot checked in").1.has_work();
                    if !has_work {
                        continue;
                    }
                    let mut s = slot.take().expect("slot checked in");
                    s.1.step = gstep;
                    batch.push((d, s));
                }
                for (d, slot, out) in pool.run(batch) {
                    slots[d] = Some(slot);
                    results[d] = Some(out);
                }

                let mut all_stalled = true;
                for d in 0..n {
                    let Some((progress, moved)) = results[d].take() else {
                        continue;
                    };
                    let progress = progress?;
                    if progress != StepProgress::Stalled {
                        all_stalled = false;
                    }
                    for mut entry in moved {
                        let view = RouteRequest::of(&entry.req, entry.emitted, true);
                        let target = Self::route_slots(
                            self.routing.as_mut(),
                            &self.lifecycles,
                            &slots,
                            &dispatched,
                            &self.costs,
                            gstep,
                            view,
                            &mut misrouted,
                        );
                        if target != d {
                            redispatches += 1;
                            {
                                let (eng, st) = slots[d].as_mut().expect("slot checked in");
                                eng.forget_demoted(st, entry.req.id);
                            }
                            let from_clock = slots[d].as_ref().expect("slot checked in").1.clock;
                            let (_, st_t) = slots[target].as_mut().expect("slot checked in");
                            let shift = st_t.clock - from_clock;
                            entry.arrival_s += shift;
                            entry.first_token_s = entry.first_token_s.map(|t| t + shift);
                            entry.first_admitted_s = entry.first_admitted_s.map(|t| t + shift);
                            st_t.emit(
                                DeploymentId(target as u32),
                                entry.req.id,
                                EventKind::Migrated {
                                    from: d as u32,
                                    arrival_s: entry.arrival_s,
                                    first_token_s: entry.first_token_s.unwrap_or(0.0),
                                    emitted: entry.emitted,
                                },
                            );
                        }
                        let (eng_t, st_t) = slots[target].as_mut().expect("slot checked in");
                        eng_t.requeue(st_t, entry);
                    }
                }
                if all_stalled {
                    if idx >= trace.len() {
                        return Err(CoreError::SchedulerStalled {
                            queued: slots
                                .iter()
                                .map(|s| s.as_ref().expect("slot checked in").1.queued_len())
                                .sum(),
                        });
                    }
                    gstep = trace[idx].arrival_step;
                    continue;
                }
                gstep += 1;
            }
            Ok(())
        });

        let mut engines = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        for s in slots {
            let (eng, st) = s.expect("every slot checked back in");
            engines.push(eng);
            states.push(st);
        }
        self.engines = engines;
        run?;

        let deployments: Vec<_> =
            self.engines.iter().zip(states).map(|(eng, st)| eng.finish(st)).collect();
        let bills: Vec<SlotBill> = (0..n)
            .map(|d| SlotBill {
                deployment: d as u32,
                price_usd: self.prices[d],
                power_w: self.costs[d].1,
                billed_seconds: deployments[d].elapsed_s + cold_start_s[d],
            })
            .collect();
        let cold_start_s_total = cold_start_s.iter().sum();
        Ok(ElasticReport {
            cluster: ClusterReport::new(
                self.routing.name().to_string(),
                deployments,
                dispatched,
                redispatches,
                misrouted,
            ),
            autoscale: self.autoscale.name().to_string(),
            events,
            scale_ups,
            drains,
            retires,
            drained_requests,
            peak_active,
            bills,
            cold_start_s_total,
        })
    }
}

/// Everything one elastic cluster run reports: the full
/// [`ClusterReport`] plus the lifecycle audit trail and the utilization
/// bill.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticReport {
    /// The underlying cluster serving report (latencies, goodput,
    /// per-deployment detail).
    pub cluster: ClusterReport,
    /// The autoscale policy that sized the fleet.
    pub autoscale: String,
    /// Every lifecycle transition, in step order.
    pub events: Vec<LifecycleEvent>,
    /// Slots cold-started during the run.
    pub scale_ups: u64,
    /// Drains begun during the run.
    pub drains: u64,
    /// Slots retired during the run (drain completions and cancelled
    /// cold starts).
    pub retires: u64,
    /// Requests migrated off draining slots (progress retained).
    pub drained_requests: u64,
    /// Most slots simultaneously Active at any step — what a static
    /// fleet provisioned for this trace would have had to buy.
    pub peak_active: usize,
    /// Per-slot utilization bills: busy seconds plus paid cold starts.
    pub bills: Vec<SlotBill>,
    /// Total cold-start seconds billed across the run.
    pub cold_start_s_total: f64,
}

impl ElasticReport {
    /// The fleet's utilization bill.
    pub fn fleet_bill(&self) -> FleetBill {
        FleetBill { slots: self.bills.clone() }
    }

    /// USD per 1000 SLO-met tokens under utilization billing — the
    /// metric the elastic fleet is gated on against a reserved fleet.
    pub fn cost_per_1k_goodput_tokens(&self) -> f64 {
        self.fleet_bill().cost_per_1k_tokens(self.cluster.goodput_tokens())
    }

    /// Requests lost by the run: rejected as unplaceable plus shed by
    /// overload policies. The elastic gate requires zero — scaling and
    /// draining must never cost a request.
    pub fn lost(&self) -> usize {
        self.cluster.rejected_len() + self.cluster.shed_len()
    }
}
