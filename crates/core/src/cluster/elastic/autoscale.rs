//! Autoscaling policies: when to cold-start a spare slot and when to
//! drain one.
//!
//! An [`AutoscalePolicy`] is consulted once per global serving step with
//! a read-only [`FleetSnapshot`] and answers with a [`ScaleDecision`].
//! The [`ElasticClusterEngine`](super::ElasticClusterEngine) executes
//! the decision: a scale-up re-provisions the lowest-indexed Retired
//! slot (paying its cold start), a scale-down begins draining the
//! least-loaded Active slot. Policies may also name a future *pre-warm
//! step* ([`AutoscalePolicy::prewarm_at`]) so an idle-jumping cluster
//! wakes early enough to hide a cold start behind a predicted burst.
//!
//! Three policies ship:
//!
//! * [`PinnedFleet`] — never scales: the elasticity-off control whose
//!   runs stay bit-identical to a fixed [`ClusterEngine`](crate::cluster::ClusterEngine).
//! * [`TargetPressureScaler`] — reactive: scale up when fleet pressure
//!   (load per unit of admission capacity) crosses a high-water mark,
//!   down when it falls below a low-water mark. Pays full cold-start
//!   latency on every burst by construction.
//! * [`HybridHistogramKeepAlive`] — predictive: a log2-bucketed
//!   histogram of observed inter-burst gaps (the hybrid-histogram
//!   keep-alive of the serverless literature) releases capacity as soon
//!   as a burst is confirmed over and re-provisions a cold-start lead
//!   time *before* the predicted next burst, composing the reactive
//!   scaler as its fallback for unpredicted load.

use super::lifecycle::LifecycleState;
use crate::cluster::policy::DeploymentView;
use std::fmt;

/// Read-only fleet state handed to [`AutoscalePolicy::decide`] once per
/// global serving step.
#[derive(Debug, Clone)]
pub struct FleetSnapshot<'a> {
    /// The global serving step (the arrival cursor).
    pub step: u64,
    /// Requests that arrived (were dispatched) at this step.
    pub arrivals_this_step: usize,
    /// Full cold-start latency of a scale-up in steps (provision +
    /// weight load) — what a predictive policy must hide.
    pub cold_start_steps: u64,
    /// The floor below which the engine refuses to scale down.
    pub min_active: usize,
    /// Every deployment slot, in cluster index order, lifecycle state
    /// included.
    pub deployments: &'a [DeploymentView],
}

impl FleetSnapshot<'_> {
    /// Slots currently Active.
    pub fn active_count(&self) -> usize {
        self.deployments.iter().filter(|d| d.lifecycle == LifecycleState::Active).count()
    }

    /// Slots mid cold start (Provisioning or Warming) — capacity already
    /// paid for but not yet serving.
    pub fn provisioning_or_warming(&self) -> usize {
        self.deployments
            .iter()
            .filter(|d| {
                matches!(d.lifecycle, LifecycleState::Provisioning | LifecycleState::Warming)
            })
            .count()
    }

    /// Retired slots available for a scale-up.
    pub fn retired_available(&self) -> usize {
        self.deployments.iter().filter(|d| d.lifecycle == LifecycleState::Retired).count()
    }

    /// Requests queued across the fleet.
    pub fn queued(&self) -> usize {
        self.deployments.iter().map(|d| d.queued).sum()
    }

    /// Requests in flight (prefilling + decoding) across the fleet.
    pub fn in_flight(&self) -> usize {
        self.deployments.iter().map(|d| d.in_flight()).sum()
    }

    /// Aggregate admission capacity of the Active slots (sum of their
    /// batch caps).
    pub fn active_batch_capacity(&self) -> usize {
        self.deployments
            .iter()
            .filter(|d| d.lifecycle == LifecycleState::Active)
            .map(|d| d.max_batch as usize)
            .sum()
    }

    /// Fleet pressure: total load per unit of Active admission capacity.
    /// `1.0` means every admission slot is spoken for; above it, work is
    /// queueing.
    pub fn pressure(&self) -> f64 {
        let load = (self.queued() + self.in_flight()) as f64;
        load / self.active_batch_capacity().max(1) as f64
    }
}

/// What the autoscaler wants done this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change.
    Hold,
    /// Cold-start up to `count` Retired slots (lowest index first).
    ScaleUp {
        /// Slots to provision.
        count: usize,
    },
    /// Begin draining up to `count` Active slots (least-loaded first,
    /// never below the engine's `min_active` floor).
    ScaleDown {
        /// Slots to drain.
        count: usize,
    },
}

/// A fleet-sizing policy consulted once per global serving step.
pub trait AutoscalePolicy: fmt::Debug {
    /// Stable policy name, recorded in
    /// [`ElasticReport::autoscale`](super::ElasticReport::autoscale).
    fn name(&self) -> &'static str;

    /// The sizing decision for this step. The engine clamps: scale-ups
    /// are limited by Retired availability, scale-downs by `min_active`.
    fn decide(&mut self, snapshot: &FleetSnapshot<'_>) -> ScaleDecision;

    /// A future step the engine should wake at even if no work is
    /// pending — a predictive policy's pre-warm point. `None` (the
    /// default) schedules no wake-up.
    fn prewarm_at(&self, _snapshot: &FleetSnapshot<'_>) -> Option<u64> {
        None
    }
}

/// The elasticity-off control: never scales. A 1-slot pinned fleet runs
/// bit-identically to the fixed [`ClusterEngine`](crate::cluster::ClusterEngine)
/// — the elastic golden-pin test routes through this policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinnedFleet;

impl AutoscalePolicy for PinnedFleet {
    fn name(&self) -> &'static str {
        "pinned-fleet"
    }

    fn decide(&mut self, _snapshot: &FleetSnapshot<'_>) -> ScaleDecision {
        ScaleDecision::Hold
    }
}

/// Reactive target-pressure scaling: one slot up when fleet pressure
/// crosses `high`, one slot down when it falls below `low`, with a
/// cooldown between actions so a single burst edge cannot thrash the
/// fleet. The classic threshold autoscaler — and the baseline the
/// keep-alive predictor must beat, because it only reacts *after*
/// pressure builds and therefore eats the full cold start on every
/// burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetPressureScaler {
    /// Scale up above this pressure.
    pub high: f64,
    /// Scale down below this pressure.
    pub low: f64,
    /// Minimum steps between scaling actions.
    pub cooldown_steps: u64,
    last_action: Option<u64>,
}

impl TargetPressureScaler {
    /// A scaler with the given water marks and cooldown.
    pub fn new(high: f64, low: f64, cooldown_steps: u64) -> Self {
        TargetPressureScaler { high, low, cooldown_steps, last_action: None }
    }
}

impl Default for TargetPressureScaler {
    /// Scale up when load exceeds admission capacity (pressure > 1.0),
    /// down when the fleet is under a tenth full, at most once per 64
    /// steps.
    fn default() -> Self {
        TargetPressureScaler::new(1.0, 0.1, 64)
    }
}

impl AutoscalePolicy for TargetPressureScaler {
    fn name(&self) -> &'static str {
        "target-pressure"
    }

    fn decide(&mut self, snap: &FleetSnapshot<'_>) -> ScaleDecision {
        if let Some(last) = self.last_action {
            if snap.step.saturating_sub(last) < self.cooldown_steps {
                return ScaleDecision::Hold;
            }
        }
        let pressure = snap.pressure();
        if pressure > self.high
            && snap.retired_available() > 0
            && snap.provisioning_or_warming() == 0
        {
            self.last_action = Some(snap.step);
            return ScaleDecision::ScaleUp { count: 1 };
        }
        if pressure < self.low && snap.active_count() > snap.min_active {
            self.last_action = Some(snap.step);
            return ScaleDecision::ScaleDown { count: 1 };
        }
        ScaleDecision::Hold
    }
}

const HIST_BUCKETS: usize = 64;

/// Hybrid-histogram keep-alive: predictive pre-warming from the observed
/// inter-burst gap distribution.
///
/// The policy watches arrivals. A gap longer than `burst_threshold_steps`
/// between consecutive arrivals marks a burst boundary; each observed
/// inter-burst gap lands in a log2-bucketed histogram (count + sum per
/// bucket, so each bucket knows its mean). From then on:
///
/// * **Release early** — once the fleet has been idle past the burst
///   threshold (the burst is confirmed over, everything drained), scale
///   down to the floor instead of waiting for a pressure signal.
/// * **Pre-warm** — predict the next burst at `last arrival + margin ×
///   quantile-bucket mean gap` and ask the engine (via
///   [`prewarm_at`](AutoscalePolicy::prewarm_at)) to wake a cold-start
///   lead time earlier, re-provisioning to the burst-time fleet size so
///   the slots turn Active right as the burst lands.
/// * **Fall back** — an unpredicted burst is caught by the composed
///   reactive [`TargetPressureScaler`], exactly as if the histogram
///   didn't exist.
///
/// This is the "hybrid histogram" policy of Shahrad et al.'s serverless
/// keep-alive work, transplanted from function keep-alive to deployment
/// keep-alive: the cold start being hidden is a model-weight load priced
/// by [`ColdStartModel`](super::ColdStartModel), not a container fork.
#[derive(Debug, Clone)]
pub struct HybridHistogramKeepAlive {
    /// An idle gap longer than this marks a burst boundary.
    pub burst_threshold_steps: u64,
    /// Head quantile of the gap histogram used for prediction.
    pub quantile: f64,
    /// Fraction of the predicted gap to wait before pre-warming (pre-warm
    /// lead = `margin × predicted gap − cold start`).
    pub margin: f64,
    reactive: TargetPressureScaler,
    counts: [u64; HIST_BUCKETS],
    sums: [u64; HIST_BUCKETS],
    last_arrival: Option<u64>,
    burst_target: usize,
}

impl HybridHistogramKeepAlive {
    /// A keep-alive predictor with the given burst threshold, composing
    /// the default reactive scaler as fallback.
    pub fn new(burst_threshold_steps: u64) -> Self {
        HybridHistogramKeepAlive {
            burst_threshold_steps: burst_threshold_steps.max(1),
            quantile: 0.5,
            margin: 0.9,
            reactive: TargetPressureScaler::default(),
            counts: [0; HIST_BUCKETS],
            sums: [0; HIST_BUCKETS],
            last_arrival: None,
            burst_target: 0,
        }
    }

    /// Observed inter-burst gaps so far.
    pub fn observed_gaps(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn bucket(gap: u64) -> usize {
        (64 - gap.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1)
    }

    /// Mean gap of the histogram bucket at the configured head quantile,
    /// or `None` before any gap has been observed.
    pub fn predicted_gap(&self) -> Option<u64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return None;
        }
        let want = ((total as f64) * self.quantile).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in 0..HIST_BUCKETS {
            seen += self.counts[b];
            if seen >= want {
                return Some(self.sums[b] / self.counts[b].max(1));
            }
        }
        None
    }

    /// The step the next burst is predicted to land at (`None` without
    /// history).
    fn predicted_next_burst(&self) -> Option<u64> {
        let last = self.last_arrival?;
        let gap = self.predicted_gap()?;
        Some(last + (gap as f64 * self.margin).max(1.0) as u64)
    }
}

impl AutoscalePolicy for HybridHistogramKeepAlive {
    fn name(&self) -> &'static str {
        "hybrid-histogram-keep-alive"
    }

    fn decide(&mut self, snap: &FleetSnapshot<'_>) -> ScaleDecision {
        // Observe: arrivals update the gap histogram at burst boundaries
        // and the burst-time fleet-size target.
        if snap.arrivals_this_step > 0 {
            if let Some(last) = self.last_arrival {
                let gap = snap.step.saturating_sub(last);
                if gap > self.burst_threshold_steps {
                    let b = Self::bucket(gap);
                    self.counts[b] += 1;
                    self.sums[b] += gap;
                }
            }
            self.last_arrival = Some(snap.step);
        }
        // The fleet size a burst needs is whatever peak the fleet reached
        // while working it off — sampled over the whole busy period, not
        // just at arrival instants, because reactive scale-ups land
        // *after* a burst's last arrival.
        if snap.queued() + snap.in_flight() > 0 {
            self.burst_target =
                self.burst_target.max(snap.active_count() + snap.provisioning_or_warming());
        }

        // Pre-warm: inside the predicted window, bring the fleet back to
        // its burst-time size a cold start ahead of the predicted burst.
        let mut in_window = false;
        if let Some(predicted) = self.predicted_next_burst() {
            let warm_by = predicted.saturating_sub(snap.cold_start_steps);
            in_window = snap.step >= warm_by && snap.step <= predicted;
            let below_target =
                snap.active_count() + snap.provisioning_or_warming() < self.burst_target;
            if in_window && below_target && snap.retired_available() > 0 {
                let want = self
                    .burst_target
                    .saturating_sub(snap.active_count() + snap.provisioning_or_warming());
                return ScaleDecision::ScaleUp { count: want.min(snap.retired_available()) };
            }
        }

        // Release early: burst confirmed over and the fleet fully
        // drained — give back everything above the floor now, instead of
        // paying for idle capacity until a pressure signal notices. But
        // never inside the pre-warm window: releasing there would retire
        // the very slots just cold-started for the predicted burst.
        if let Some(last) = self.last_arrival {
            let idle = snap.step.saturating_sub(last);
            let quiescent = snap.queued() + snap.in_flight() == 0;
            if idle > self.burst_threshold_steps
                && quiescent
                && !in_window
                && snap.active_count() > snap.min_active
            {
                return ScaleDecision::ScaleDown { count: snap.active_count() - snap.min_active };
            }
        }

        // Fall back to the reactive scaler for unpredicted load —
        // scale-ups only: releases are this policy's own burst-over arm
        // above, so a brief intra-burst lull can never thrash a drain.
        match self.reactive.decide(snap) {
            up @ ScaleDecision::ScaleUp { .. } => up,
            _ => ScaleDecision::Hold,
        }
    }

    /// Two wake points, whichever comes first. The *release* point
    /// (`last arrival + burst threshold + 1`): simulated clocks only
    /// advance under work, so without this wake an idle fleet would
    /// sleep straight past the burst-over confirmation and still be
    /// holding peak capacity at the next wake. The *pre-warm* point
    /// (`predicted next burst − cold start`): wake early enough to hide
    /// the cold start behind the predicted burst.
    fn prewarm_at(&self, snap: &FleetSnapshot<'_>) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let mut propose = |at: u64| {
            if at > snap.step {
                wake = Some(wake.map_or(at, |w| w.min(at)));
            }
        };
        if let Some(last) = self.last_arrival {
            let quiescent = snap.queued() + snap.in_flight() == 0;
            if quiescent && snap.active_count() > snap.min_active {
                propose(last + self.burst_threshold_steps + 1);
            }
        }
        if snap.retired_available() > 0
            && snap.active_count() + snap.provisioning_or_warming() < self.burst_target
        {
            if let Some(predicted) = self.predicted_next_burst() {
                propose(predicted.saturating_sub(snap.cold_start_steps));
            }
        }
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(id: u32, queued: usize, decoding: usize, lifecycle: LifecycleState) -> DeploymentView {
        DeploymentView {
            id,
            queued,
            prefilling: 0,
            decoding,
            max_batch: 8,
            clock_s: 0.0,
            pressure: 0.0,
            device_pressure: vec![],
            placeable_free_bytes: 1 << 30,
            bandwidth_weight: 1.0,
            device_count: 4,
            dispatched: 0,
            prefill_backlog_tokens: 0,
            prefix_hit_rate: 0.0,
            lifecycle,
            hourly_cost_usd: 1.0,
            active_power_w: 100.0,
        }
    }

    fn snap<'a>(step: u64, arrivals: usize, views: &'a [DeploymentView]) -> FleetSnapshot<'a> {
        FleetSnapshot {
            step,
            arrivals_this_step: arrivals,
            cold_start_steps: 50,
            min_active: 1,
            deployments: views,
        }
    }

    #[test]
    fn fleet_snapshot_arithmetic() {
        let views = [
            slot(0, 3, 5, LifecycleState::Active),
            slot(1, 0, 0, LifecycleState::Warming),
            slot(2, 0, 0, LifecycleState::Retired),
        ];
        let s = snap(10, 0, &views);
        assert_eq!(s.active_count(), 1);
        assert_eq!(s.provisioning_or_warming(), 1);
        assert_eq!(s.retired_available(), 1);
        assert_eq!(s.queued(), 3);
        assert_eq!(s.in_flight(), 5);
        assert_eq!(s.active_batch_capacity(), 8);
        assert_eq!(s.pressure(), 1.0);
    }

    #[test]
    fn pinned_fleet_always_holds() {
        let views =
            [slot(0, 100, 8, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Retired)];
        let s = snap(0, 50, &views);
        let mut p = PinnedFleet;
        assert_eq!(p.decide(&s), ScaleDecision::Hold);
        assert_eq!(p.prewarm_at(&s), None);
        assert_eq!(p.name(), "pinned-fleet");
    }

    #[test]
    fn target_pressure_scales_up_under_load_and_down_when_idle() {
        let mut p = TargetPressureScaler::new(1.0, 0.1, 10);
        let hot = [slot(0, 20, 8, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Retired)];
        assert_eq!(p.decide(&snap(0, 5, &hot)), ScaleDecision::ScaleUp { count: 1 });
        // Cooldown: the very next step holds even though pressure is
        // unchanged.
        assert_eq!(p.decide(&snap(1, 5, &hot)), ScaleDecision::Hold);
        // After cooldown, an idle two-slot fleet sheds one.
        let idle = [slot(0, 0, 0, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Active)];
        assert_eq!(p.decide(&snap(20, 0, &idle)), ScaleDecision::ScaleDown { count: 1 });
        assert_eq!(p.name(), "target-pressure");
    }

    #[test]
    fn target_pressure_respects_floor_and_warming_guard() {
        let mut p = TargetPressureScaler::new(1.0, 0.1, 0);
        // Idle single Active slot at the floor: hold, not down.
        let at_floor = [slot(0, 0, 0, LifecycleState::Active)];
        assert_eq!(p.decide(&snap(0, 0, &at_floor)), ScaleDecision::Hold);
        // Hot fleet but a slot already warming: don't double-provision.
        let warming =
            [slot(0, 20, 8, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Warming)];
        assert_eq!(p.decide(&snap(1, 5, &warming)), ScaleDecision::Hold);
    }

    #[test]
    fn keep_alive_learns_gaps_and_prewarms_a_cold_start_early() {
        let mut p = HybridHistogramKeepAlive::new(32);
        // During bursts the fleet runs two Active slots — that is the
        // burst-time size the predictor must restore.
        let two = [slot(0, 0, 2, LifecycleState::Active), slot(1, 0, 1, LifecycleState::Active)];
        // Bursts at steps 0, 1000, 2000 (arrivals on 3 consecutive
        // steps each): two observed inter-burst gaps of 998.
        for burst_start in [0u64, 1000, 2000] {
            for s in burst_start..burst_start + 3 {
                p.decide(&snap(s, 4, &two));
            }
        }
        assert_eq!(p.observed_gaps(), 2);
        assert_eq!(p.predicted_gap(), Some(998));
        // Quiescent scaled-down fleet mid-gap: prewarm_at points a cold
        // start ahead of the predicted next burst.
        let idle = [slot(0, 0, 0, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Retired)];
        let s = snap(2100, 0, &idle);
        let predicted = 2002 + (998.0f64 * 0.9) as u64; // last arrival + margin × gap
        assert_eq!(p.prewarm_at(&s), Some(predicted - 50));
        // At the prewarm step it scales back up to the burst-time size.
        let at_warm = snap(predicted - 50, 0, &idle);
        assert_eq!(p.decide(&at_warm), ScaleDecision::ScaleUp { count: 1 });
        assert_eq!(p.name(), "hybrid-histogram-keep-alive");
    }

    #[test]
    fn keep_alive_releases_capacity_once_a_burst_is_over() {
        let mut p = HybridHistogramKeepAlive::new(32);
        let two = [slot(0, 0, 2, LifecycleState::Active), slot(1, 0, 1, LifecycleState::Active)];
        p.decide(&snap(100, 3, &two)); // arrival: burst_target = 2
                                       // 33 idle steps later, fully drained: release down to the floor.
        let idle = [slot(0, 0, 0, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Active)];
        // The engine idle-jumps between bursts, so the policy must *ask*
        // to be woken at the release point — otherwise it would still be
        // holding burst capacity at the next wake.
        assert_eq!(p.prewarm_at(&snap(110, 0, &idle)), Some(133));
        assert_eq!(p.decide(&snap(134, 0, &idle)), ScaleDecision::ScaleDown { count: 1 });
        // But not while requests are still in flight — and the squashed
        // reactive fallback cannot sneak a scale-down in either.
        let busy = [slot(0, 0, 1, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Active)];
        let mut q = HybridHistogramKeepAlive::new(32);
        q.decide(&snap(100, 3, &busy));
        assert_eq!(q.decide(&snap(134, 0, &busy)), ScaleDecision::Hold);
    }

    #[test]
    fn keep_alive_without_history_falls_back_to_reactive() {
        let mut p = HybridHistogramKeepAlive::new(32);
        assert_eq!(p.predicted_gap(), None);
        let hot = [slot(0, 20, 8, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Retired)];
        // First decide observes the arrivals AND reacts to the pressure.
        assert_eq!(p.decide(&snap(0, 5, &hot)), ScaleDecision::ScaleUp { count: 1 });
        let idle = [slot(0, 0, 0, LifecycleState::Active), slot(1, 0, 0, LifecycleState::Retired)];
        assert_eq!(p.prewarm_at(&snap(10, 0, &idle)), None, "no history, no prediction");
    }

    #[test]
    fn log2_buckets_group_by_magnitude() {
        assert_eq!(HybridHistogramKeepAlive::bucket(1), 0);
        assert_eq!(HybridHistogramKeepAlive::bucket(2), 1);
        assert_eq!(HybridHistogramKeepAlive::bucket(3), 1);
        assert_eq!(HybridHistogramKeepAlive::bucket(1000), 9);
        assert_eq!(HybridHistogramKeepAlive::bucket(1024), 10);
        assert_eq!(HybridHistogramKeepAlive::bucket(u64::MAX), 63);
    }
}
