//! Fleet elasticity: deployment lifecycle, autoscaling, live drain, and
//! utilization billing.
//!
//! The fixed [`ClusterEngine`](crate::cluster::ClusterEngine) answers
//! "how should N deployments share a trace"; this module answers "how
//! many deployments should exist at each moment of it". Three pieces:
//!
//! * [`lifecycle`](self) — [`DeploymentLifecycle`], the per-slot state
//!   machine (`Provisioning → Warming → Active → Draining → Retired`,
//!   with `Retired → Provisioning` closing the keep-alive loop), and
//!   [`ColdStartModel`], which prices the Provisioning→Active transit
//!   from the slot's own model size and device bandwidth.
//! * [`AutoscalePolicy`] — fleet sizing, consulted once per global step
//!   with a read-only [`FleetSnapshot`]. Ships [`PinnedFleet`] (never
//!   scales — the elasticity-off control), [`TargetPressureScaler`]
//!   (reactive water marks) and [`HybridHistogramKeepAlive`]
//!   (inter-burst gap histogram → early release + predictive pre-warm).
//! * [`ElasticClusterEngine`] — the serving loop that executes both,
//!   drains slots live through the cross-deployment migration machinery,
//!   and bills by utilization into an [`ElasticReport`].

mod autoscale;
mod engine;
mod lifecycle;

pub use autoscale::{
    AutoscalePolicy, FleetSnapshot, HybridHistogramKeepAlive, PinnedFleet, ScaleDecision,
    TargetPressureScaler,
};
pub use engine::{ElasticClusterEngine, ElasticConfig, ElasticReport};
pub use lifecycle::{ColdStartModel, DeploymentLifecycle, LifecycleEvent, LifecycleState};
