//! The cluster engine: N independent deployments advanced in lockstep
//! under one global arrival cursor, with dispatch through a
//! [`RoutingPolicy`].

use super::elastic::LifecycleState;
use super::policy::{ClusterSnapshot, DeploymentView, RouteRequest, RoutingPolicy};
use super::report::ClusterReport;
use crate::runner::CoreError;
use crate::serve::engine::{QueueEntry, RunState, StepProgress};
use crate::serve::ServeEngine;
use hilos_llm::{DeploymentId, Request};
use hilos_trace::EventKind;

/// Hourly provisioning price of one deployment: `(hourly cost USD,
/// full-utilization watts)`. Computed once per engine — the system spec
/// never changes mid-run — and stamped into every routing view.
pub(crate) fn provisioning_cost(eng: &ServeEngine) -> (f64, f64) {
    let spec = eng.system().spec();
    let power_w = hilos_metrics::provisioned_power_w(spec);
    (hilos_metrics::hourly_cost_usd(spec.total_price_usd(), power_w), power_w)
}

/// One deployment's routing view — the single construction point shared
/// by the fixed [`ClusterEngine`] (always
/// [`Active`](LifecycleState::Active)) and the elastic engine (which
/// passes each slot's actual lifecycle state).
pub(crate) fn deployment_view(
    eng: &ServeEngine,
    st: &RunState,
    dispatched: u64,
    lifecycle: LifecycleState,
    cost: (f64, f64),
) -> DeploymentView {
    let ledger = eng.ledger();
    DeploymentView {
        id: eng.deployment().0,
        queued: st.queued_len(),
        prefilling: st.prefilling_len(),
        decoding: st.decoding_len(),
        max_batch: eng.config().max_batch,
        clock_s: st.clock,
        pressure: ledger.pressure(),
        device_pressure: ledger.pressure_by_device(),
        placeable_free_bytes: ledger.placeable_free(),
        bandwidth_weight: ledger.total_weight(),
        device_count: ledger.device_count(),
        dispatched,
        prefill_backlog_tokens: st.prefill_backlog_tokens(),
        prefix_hit_rate: eng.prefix_hit_rate(),
        lifecycle,
        hourly_cost_usd: cost.0,
        active_power_w: cost.1,
    }
}

/// A multi-deployment cluster: one trace balanced across heterogeneous
/// HILOS deployments.
///
/// Each deployment is a complete [`ServeEngine`] — its own
/// [`HilosSystem`](crate::HilosSystem) (device count, degradations), its
/// own [`SchedulingPolicy`](crate::SchedulingPolicy) and its own
/// per-device KV shard ledgers. The cluster engine owns the *global*
/// concerns: the arrival cursor every deployment shares, dispatch of each
/// arriving request through the [`RoutingPolicy`], cross-deployment
/// re-dispatch of preempted requests, and stall detection across the
/// whole cluster.
///
/// # Time
///
/// Deployments advance in lockstep — one serving iteration each per
/// global step — but keep their own simulated clocks, which only move
/// under work (the single-deployment engine's semantics: idle time is
/// skipped, not simulated). A cluster of one deployment is therefore
/// *bit-identical* to [`ServeEngine::run_trace`] on the same system,
/// whatever the routing policy — pinned by a golden test. Because the
/// clocks are independent busy-time axes, a request migrated between
/// deployments has its timestamps re-based by the clock delta: its
/// latencies sum the busy time it spent on each deployment, and stay
/// non-negative however far the clocks have diverged.
///
/// # Examples
///
/// ```
/// use hilos_core::cluster::{ClusterEngine, LedgerPressure};
/// use hilos_core::{HilosConfig, HilosSystem, ServeConfig, ServeEngine};
/// use hilos_llm::{presets, TraceConfig};
/// use hilos_platform::SystemSpec;
///
/// # fn main() -> Result<(), hilos_core::CoreError> {
/// let deployment = |n: usize| -> Result<ServeEngine, hilos_core::CoreError> {
///     let sys = HilosSystem::new(
///         &SystemSpec::a100_smartssd(n),
///         &presets::opt_30b(),
///         &HilosConfig::new(n),
///     )?
///     .with_sim_layers(1);
///     ServeEngine::new(sys, ServeConfig::new(8))
/// };
/// let mut cluster = ClusterEngine::new(
///     vec![deployment(8)?, deployment(4)?],
///     Box::new(LedgerPressure::new()),
/// );
/// let trace = TraceConfig::azure_mix(32, 7).generate().unwrap();
/// let report = cluster.run_trace(&trace)?;
/// assert_eq!(report.completed() + report.rejected_len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClusterEngine {
    engines: Vec<ServeEngine>,
    routing: Box<dyn RoutingPolicy>,
    /// Per-deployment `(hourly cost USD, watts)`, in deployment order.
    costs: Vec<(f64, f64)>,
}

impl ClusterEngine {
    /// Assembles a cluster from fully-built deployments (each keeps the
    /// scheduling policy it was built with) and a routing policy.
    /// Deployments are assigned [`DeploymentId`]s in vector order.
    ///
    /// # Panics
    ///
    /// Panics if `deployments` is empty.
    pub fn new(mut deployments: Vec<ServeEngine>, routing: Box<dyn RoutingPolicy>) -> Self {
        assert!(!deployments.is_empty(), "a cluster needs at least one deployment");
        for (i, d) in deployments.iter_mut().enumerate() {
            d.set_deployment(DeploymentId(i as u32));
        }
        let costs = deployments.iter().map(provisioning_cost).collect();
        ClusterEngine { engines: deployments, routing, costs }
    }

    /// Number of deployments.
    pub fn deployment_count(&self) -> usize {
        self.engines.len()
    }

    /// The active routing policy's name.
    pub fn routing_name(&self) -> &'static str {
        self.routing.name()
    }

    /// The deployments, in [`DeploymentId`] order.
    pub fn deployments(&self) -> &[ServeEngine] {
        &self.engines
    }

    /// Builds the read-only per-deployment views and asks the routing
    /// policy for a target, clamping out-of-range answers.
    fn route(
        &mut self,
        states: &[RunState],
        dispatched: &[u64],
        step: u64,
        request: RouteRequest,
    ) -> usize {
        let views: Vec<DeploymentView> = self
            .engines
            .iter()
            .zip(states)
            .zip(dispatched.iter().zip(&self.costs))
            .map(|((eng, st), (&d, &cost))| {
                // A fixed fleet is permanently Active — the lifecycle
                // field only varies under the elastic engine.
                deployment_view(eng, st, d, LifecycleState::Active, cost)
            })
            .collect();
        let snapshot = ClusterSnapshot { step, deployments: &views };
        self.routing.route(&request, &snapshot).min(self.engines.len() - 1)
    }

    /// Serves a trace of requests (sorted by `arrival_step`) across the
    /// cluster to completion.
    ///
    /// Each global step: (1) arrivals whose step has come are dispatched
    /// through the routing policy to a deployment's admission queue, at
    /// that deployment's clock; (2) every deployment with work runs one
    /// serving iteration ([scheduling → join → decode →
    /// eviction](crate::serve)); (3) requests its scheduling policy
    /// preempted this step are offered back to the *router*, which may
    /// re-dispatch them — progress retained — onto a less-pressured
    /// deployment.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, or [`CoreError::SchedulerStalled`]
    /// if every deployment with queued work holds it forever with nothing
    /// in flight.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival step.
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<ClusterReport, CoreError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step),
            "trace must be sorted by arrival step"
        );
        let n = self.engines.len();
        let mut states: Vec<RunState> = self.engines.iter().map(|e| e.new_run_state()).collect();
        let mut dispatched = vec![0u64; n];
        let mut redispatches = 0u64;
        let mut idx = 0usize;
        let mut gstep = 0u64;

        loop {
            // 1: dispatch arrivals up to the global serving step.
            while idx < trace.len() && trace[idx].arrival_step <= gstep {
                let req = trace[idx];
                let view = RouteRequest::of(&req, 0, false);
                let d = self.route(&states, &dispatched, gstep, view);
                dispatched[d] += 1;
                states[d].emit(DeploymentId(d as u32), req.id, EventKind::Routed);
                self.engines[d].enqueue_arrival(&mut states[d], req);
                idx += 1;
            }
            // Fully idle everywhere with traffic still ahead: jump the
            // global cursor to the next arrival.
            if !states.iter().any(RunState::has_work) {
                if idx >= trace.len() {
                    break;
                }
                gstep = trace[idx].arrival_step;
                continue;
            }

            // 2: one lockstep iteration of every deployment with work,
            // with cross-deployment re-dispatch of fresh preemptions.
            let mut all_stalled = true;
            for d in 0..n {
                if !states[d].has_work() {
                    continue;
                }
                states[d].step = gstep;
                let progress = self.engines[d].advance_once(&mut states[d])?;
                if progress != StepProgress::Stalled {
                    all_stalled = false;
                }
                // 3: freshly preempted victims go back through the
                // router (their engine re-queued them locally; draining
                // and re-queuing on the same deployment is a no-op, so a
                // router that keeps them local preserves single-engine
                // behavior exactly).
                let moved: Vec<QueueEntry> = states[d].drain_just_preempted();
                for mut entry in moved {
                    let view = RouteRequest::of(&entry.req, entry.emitted, true);
                    let target = self.route(&states, &dispatched, gstep, view);
                    if target != d {
                        redispatches += 1;
                        // Demoted KV is parked in the *source* deployment's
                        // ladder; a migrated victim cannot recall it from
                        // another deployment — drop it there and let the
                        // target recompute (booked as wasted prefill).
                        self.engines[d].forget_demoted(&mut states[d], entry.req.id);
                        // Deployment clocks are independent busy-time
                        // axes (idle gaps are skipped, so they diverge
                        // freely); an absolute timestamp from one domain
                        // is meaningless in another. Re-base the entry's
                        // timestamps by the clock delta so the *durations*
                        // accrued so far survive the move — TTFT/e2e then
                        // sum busy time spent on each deployment, stay
                        // non-negative, and keep
                        // `first_token_s <= finished_s`.
                        let shift = states[target].clock - states[d].clock;
                        entry.arrival_s += shift;
                        entry.first_token_s = entry.first_token_s.map(|t| t + shift);
                        entry.first_admitted_s = entry.first_admitted_s.map(|t| t + shift);
                        states[target].emit(
                            DeploymentId(target as u32),
                            entry.req.id,
                            EventKind::Migrated {
                                from: d as u32,
                                arrival_s: entry.arrival_s,
                                first_token_s: entry.first_token_s.unwrap_or(0.0),
                                emitted: entry.emitted,
                            },
                        );
                    }
                    self.engines[target].requeue(&mut states[target], entry);
                }
            }
            // Every working deployment stalled (policies holding queues
            // with nothing in flight): feed the cluster the next arrival,
            // or fail loudly once the trace is exhausted.
            if all_stalled {
                if idx >= trace.len() {
                    return Err(CoreError::SchedulerStalled {
                        queued: states.iter().map(RunState::queued_len).sum(),
                    });
                }
                gstep = trace[idx].arrival_step;
                continue;
            }
            gstep += 1;
        }

        let deployments: Vec<_> =
            self.engines.iter().zip(states).map(|(eng, st)| eng.finish(st)).collect();
        Ok(ClusterReport::new(
            self.routing.name().to_string(),
            deployments,
            dispatched,
            redispatches,
        ))
    }
}
