//! The cluster engine: N independent deployments advanced in lockstep
//! under one global arrival cursor, with dispatch through a
//! [`RoutingPolicy`].
//!
//! Each lockstep iteration runs in **two phases**: phase A fans every
//! deployment-with-work's serving iteration out over a persistent
//! [`hilos_accel::Fanout`] pool (each worker mutates only the one
//! deployment it holds), then phase B merges the per-slot results — step
//! progress and freshly preempted migration offers — back **in
//! deployment-index order** on the driving thread, where all routing,
//! migration and stall decisions are made. Because phase A is
//! per-deployment-isolated and phase B is serial and ordered, the whole
//! run is bit-identical at any [`ClusterConfig::with_cluster_threads`]
//! setting.

use super::elastic::LifecycleState;
use super::policy::{ClusterSnapshot, DeploymentView, RouteRequest, RoutingPolicy};
use super::report::ClusterReport;
use crate::runner::CoreError;
use crate::serve::engine::{QueueEntry, RunState, SharedStepCache, StepProgress};
use crate::serve::ServeEngine;
use hilos_accel::with_fanout;
use hilos_llm::{DeploymentId, Request};
use hilos_trace::EventKind;
use std::collections::HashMap;
use std::sync::Arc;

/// One deployment's engine plus its live run state — the unit phase A
/// moves to a fan-out worker and back. `Option`-wrapped in the driver so
/// a slot can be checked out for its iteration and checked back in.
pub(crate) type Slot = (ServeEngine, RunState);

/// Cluster-execution knobs, shared by [`ClusterEngine`] and the elastic
/// engine (via
/// [`ElasticConfig::cluster`](super::elastic::ElasticConfig::cluster)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker threads for the phase-A lockstep fan-out. `1` (the
    /// default) advances deployments inline on the driving thread; any
    /// value produces bit-identical reports and trace streams.
    pub cluster_threads: usize,
    /// Share one step/prefill memo table among deployments with
    /// identical system fingerprints (on by default), so the fleet pays
    /// each memoization miss once instead of once per twin — and a
    /// freshly provisioned elastic slot warm-starts from its siblings.
    /// Purely a wall-clock optimization: results are bit-identical
    /// either way.
    pub shared_warm_start: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { cluster_threads: 1, shared_warm_start: true }
    }
}

impl ClusterConfig {
    /// The default configuration: single-threaded stepping, shared
    /// warm-start on.
    pub fn new() -> Self {
        ClusterConfig::default()
    }

    /// Sets the lockstep fan-out width (clamped to at least 1).
    #[must_use]
    pub fn with_cluster_threads(mut self, threads: usize) -> Self {
        self.cluster_threads = threads.max(1);
        self
    }

    /// Enables or disables the fingerprint-grouped shared memo tables.
    #[must_use]
    pub fn with_shared_warm_start(mut self, on: bool) -> Self {
        self.shared_warm_start = on;
        self
    }
}

/// Groups deployments by [`ServeEngine::system_fingerprint`] and hands
/// each group one shared step/prefill memo table.
pub(crate) fn install_shared_warm_start(deployments: &mut [ServeEngine]) {
    let mut groups: HashMap<u64, Arc<SharedStepCache>> = HashMap::new();
    for eng in deployments.iter_mut() {
        let shared = groups.entry(eng.system_fingerprint()).or_default().clone();
        eng.set_shared_cache(shared);
    }
}

/// Validates a routing policy's answer against the deployment count:
/// an out-of-range pick trips a `debug_assert!` (a buggy policy should
/// fail loudly in development), and in release builds is counted into
/// [`ClusterReport::misrouted`] and clamped to the last deployment so
/// the run can still complete.
pub(crate) fn clamp_route(pick: usize, n: usize, misrouted: &mut u64) -> usize {
    if pick < n {
        return pick;
    }
    debug_assert!(false, "routing policy picked deployment {pick} of a {n}-deployment cluster");
    *misrouted += 1;
    n - 1
}

/// Hourly provisioning price of one deployment: `(hourly cost USD,
/// full-utilization watts)`. Computed once per engine — the system spec
/// never changes mid-run — and stamped into every routing view.
pub(crate) fn provisioning_cost(eng: &ServeEngine) -> (f64, f64) {
    let spec = eng.system().spec();
    let power_w = hilos_metrics::provisioned_power_w(spec);
    (hilos_metrics::hourly_cost_usd(spec.total_price_usd(), power_w), power_w)
}

/// One deployment's routing view — the single construction point shared
/// by the fixed [`ClusterEngine`] (always
/// [`Active`](LifecycleState::Active)) and the elastic engine (which
/// passes each slot's actual lifecycle state).
pub(crate) fn deployment_view(
    eng: &ServeEngine,
    st: &RunState,
    dispatched: u64,
    lifecycle: LifecycleState,
    cost: (f64, f64),
) -> DeploymentView {
    let ledger = eng.ledger();
    DeploymentView {
        id: eng.deployment().0,
        queued: st.queued_len(),
        prefilling: st.prefilling_len(),
        decoding: st.decoding_len(),
        max_batch: eng.config().max_batch,
        clock_s: st.clock,
        pressure: ledger.pressure(),
        device_pressure: ledger.pressure_by_device(),
        placeable_free_bytes: ledger.placeable_free(),
        bandwidth_weight: ledger.total_weight(),
        device_count: ledger.device_count(),
        dispatched,
        prefill_backlog_tokens: st.prefill_backlog_tokens(),
        prefix_hit_rate: eng.prefix_hit_rate(),
        lifecycle,
        hourly_cost_usd: cost.0,
        active_power_w: cost.1,
    }
}

/// A multi-deployment cluster: one trace balanced across heterogeneous
/// HILOS deployments.
///
/// Each deployment is a complete [`ServeEngine`] — its own
/// [`HilosSystem`](crate::HilosSystem) (device count, degradations), its
/// own [`SchedulingPolicy`](crate::SchedulingPolicy) and its own
/// per-device KV shard ledgers. The cluster engine owns the *global*
/// concerns: the arrival cursor every deployment shares, dispatch of each
/// arriving request through the [`RoutingPolicy`], cross-deployment
/// re-dispatch of preempted requests, and stall detection across the
/// whole cluster.
///
/// # Time
///
/// Deployments advance in lockstep — one serving iteration each per
/// global step — but keep their own simulated clocks, which only move
/// under work (the single-deployment engine's semantics: idle time is
/// skipped, not simulated). A cluster of one deployment is therefore
/// *bit-identical* to [`ServeEngine::run_trace`] on the same system,
/// whatever the routing policy — pinned by a golden test. Because the
/// clocks are independent busy-time axes, a request migrated between
/// deployments has its timestamps re-based by the clock delta: its
/// latencies sum the busy time it spent on each deployment, and stay
/// non-negative however far the clocks have diverged.
///
/// # Determinism
///
/// One lockstep iteration is two phases: deployments with work advance
/// concurrently over the fan-out pool (phase A — each worker owns
/// exactly one deployment's engine and state), and their step progress
/// plus preemption-migration offers are merged serially in
/// deployment-index order (phase B — where every routing and migration
/// decision happens). Reports, golden FNV pins and traced event streams
/// are therefore bit-identical at any `cluster_threads`; the thread
/// count only changes wall-clock.
///
/// # Examples
///
/// ```
/// use hilos_core::cluster::{ClusterEngine, LedgerPressure};
/// use hilos_core::{HilosConfig, HilosSystem, ServeConfig, ServeEngine};
/// use hilos_llm::{presets, TraceConfig};
/// use hilos_platform::SystemSpec;
///
/// # fn main() -> Result<(), hilos_core::CoreError> {
/// let deployment = |n: usize| -> Result<ServeEngine, hilos_core::CoreError> {
///     let sys = HilosSystem::new(
///         &SystemSpec::a100_smartssd(n),
///         &presets::opt_30b(),
///         &HilosConfig::new(n),
///     )?
///     .with_sim_layers(1);
///     ServeEngine::new(sys, ServeConfig::new(8))
/// };
/// let mut cluster = ClusterEngine::new(
///     vec![deployment(8)?, deployment(4)?],
///     Box::new(LedgerPressure::new()),
/// );
/// let trace = TraceConfig::azure_mix(32, 7).generate().unwrap();
/// let report = cluster.run_trace(&trace)?;
/// assert_eq!(report.completed() + report.rejected_len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClusterEngine {
    engines: Vec<ServeEngine>,
    routing: Box<dyn RoutingPolicy>,
    config: ClusterConfig,
    /// Per-deployment `(hourly cost USD, watts)`, in deployment order.
    costs: Vec<(f64, f64)>,
}

impl ClusterEngine {
    /// Assembles a cluster from fully-built deployments (each keeps the
    /// scheduling policy it was built with) and a routing policy, with
    /// the default [`ClusterConfig`]. Deployments are assigned
    /// [`DeploymentId`]s in vector order.
    ///
    /// # Panics
    ///
    /// Panics if `deployments` is empty.
    pub fn new(deployments: Vec<ServeEngine>, routing: Box<dyn RoutingPolicy>) -> Self {
        ClusterEngine::with_config(deployments, routing, ClusterConfig::default())
    }

    /// [`ClusterEngine::new`] with explicit execution knobs.
    ///
    /// # Panics
    ///
    /// Panics if `deployments` is empty.
    pub fn with_config(
        mut deployments: Vec<ServeEngine>,
        routing: Box<dyn RoutingPolicy>,
        config: ClusterConfig,
    ) -> Self {
        assert!(!deployments.is_empty(), "a cluster needs at least one deployment");
        for (i, d) in deployments.iter_mut().enumerate() {
            d.set_deployment(DeploymentId(i as u32));
        }
        if config.shared_warm_start {
            install_shared_warm_start(&mut deployments);
        }
        let costs = deployments.iter().map(provisioning_cost).collect();
        ClusterEngine { engines: deployments, routing, config, costs }
    }

    /// Number of deployments.
    pub fn deployment_count(&self) -> usize {
        self.engines.len()
    }

    /// The cluster-execution configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The active routing policy's name.
    pub fn routing_name(&self) -> &'static str {
        self.routing.name()
    }

    /// The deployments, in [`DeploymentId`] order.
    pub fn deployments(&self) -> &[ServeEngine] {
        &self.engines
    }

    /// Builds the read-only per-deployment views and asks the routing
    /// policy for a target, validating out-of-range answers
    /// ([`clamp_route`]).
    fn route_slots(
        routing: &mut dyn RoutingPolicy,
        slots: &[Option<Slot>],
        dispatched: &[u64],
        costs: &[(f64, f64)],
        step: u64,
        request: RouteRequest,
        misrouted: &mut u64,
    ) -> usize {
        let views: Vec<DeploymentView> = slots
            .iter()
            .zip(dispatched.iter().zip(costs))
            .map(|(slot, (&d, &cost))| {
                let (eng, st) = slot.as_ref().expect("slot checked in between iterations");
                // A fixed fleet is permanently Active — the lifecycle
                // field only varies under the elastic engine.
                deployment_view(eng, st, d, LifecycleState::Active, cost)
            })
            .collect();
        let snapshot = ClusterSnapshot { step, deployments: &views };
        clamp_route(routing.route(&request, &snapshot), slots.len(), misrouted)
    }

    /// Serves a trace of requests (sorted by `arrival_step`) across the
    /// cluster to completion.
    ///
    /// Each global step: (1) arrivals whose step has come are dispatched
    /// through the routing policy to a deployment's admission queue, at
    /// that deployment's clock; (2) **phase A** — every deployment with
    /// work runs one serving iteration ([scheduling → join → decode →
    /// eviction](crate::serve)) concurrently over the fan-out pool, each
    /// worker mutating only the deployment it holds; (3) **phase B** —
    /// per-slot results merge back in deployment-index order: requests a
    /// scheduling policy preempted this iteration are offered back to
    /// the *router*, which may re-dispatch them — progress retained —
    /// onto a less-pressured deployment. Phase B's routing sees every
    /// deployment post-advance, so its decisions (and the whole run) are
    /// independent of the fan-out width.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, or [`CoreError::SchedulerStalled`]
    /// if every deployment with queued work holds it forever with nothing
    /// in flight.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival step.
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<ClusterReport, CoreError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step),
            "trace must be sorted by arrival step"
        );
        let n = self.engines.len();
        let threads = self.config.cluster_threads.min(n);
        let mut slots: Vec<Option<Slot>> = std::mem::take(&mut self.engines)
            .into_iter()
            .map(|e| {
                let st = e.new_run_state();
                Some((e, st))
            })
            .collect();
        let mut dispatched = vec![0u64; n];
        let mut redispatches = 0u64;
        let mut misrouted = 0u64;

        // Phase A's unit of work: one deployment's serving iteration,
        // plus the drain of its freshly preempted victims. Touches only
        // the slot it is handed — the determinism contract.
        let advance =
            |_d: usize, slot: &mut Slot| -> (Result<StepProgress, CoreError>, Vec<QueueEntry>) {
                let (eng, st) = slot;
                match eng.advance_once(st) {
                    Ok(p) => (Ok(p), st.drain_just_preempted()),
                    Err(e) => (Err(e), Vec::new()),
                }
            };

        let run: Result<(), CoreError> = with_fanout(threads, advance, |pool| {
            let mut idx = 0usize;
            let mut gstep = 0u64;
            // Per-slot phase-A results, merged in deployment order.
            let mut results: Vec<Option<(Result<StepProgress, CoreError>, Vec<QueueEntry>)>> =
                (0..n).map(|_| None).collect();
            loop {
                // 1: dispatch arrivals up to the global serving step.
                while idx < trace.len() && trace[idx].arrival_step <= gstep {
                    let req = trace[idx];
                    let view = RouteRequest::of(&req, 0, false);
                    let d = Self::route_slots(
                        self.routing.as_mut(),
                        &slots,
                        &dispatched,
                        &self.costs,
                        gstep,
                        view,
                        &mut misrouted,
                    );
                    dispatched[d] += 1;
                    let (eng, st) = slots[d].as_mut().expect("slot checked in");
                    st.emit(DeploymentId(d as u32), req.id, EventKind::Routed);
                    eng.enqueue_arrival(st, req);
                    idx += 1;
                }
                // Fully idle everywhere with traffic still ahead: jump
                // the global cursor to the next arrival.
                let any_work =
                    slots.iter().any(|s| s.as_ref().expect("slot checked in").1.has_work());
                if !any_work {
                    if idx >= trace.len() {
                        break;
                    }
                    gstep = trace[idx].arrival_step;
                    continue;
                }

                // 2 / phase A: check every deployment with work out to
                // the pool for one lockstep serving iteration.
                let batch: Vec<(usize, Slot)> = (0..n)
                    .filter_map(|d| {
                        if !slots[d].as_ref().expect("slot checked in").1.has_work() {
                            return None;
                        }
                        let mut s = slots[d].take().expect("slot checked in");
                        s.1.step = gstep;
                        Some((d, s))
                    })
                    .collect();
                for (d, s, out) in pool.run(batch) {
                    slots[d] = Some(s);
                    results[d] = Some(out);
                }

                // 3 / phase B: merge in deployment-index order — freshly
                // preempted victims go back through the router (their
                // engine re-queued them locally; draining and re-queuing
                // on the same deployment is a no-op, so a router that
                // keeps them local preserves single-engine behavior
                // exactly).
                let mut all_stalled = true;
                for d in 0..n {
                    let Some((res, moved)) = results[d].take() else {
                        continue;
                    };
                    let progress = res?;
                    if progress != StepProgress::Stalled {
                        all_stalled = false;
                    }
                    for mut entry in moved {
                        let view = RouteRequest::of(&entry.req, entry.emitted, true);
                        let target = Self::route_slots(
                            self.routing.as_mut(),
                            &slots,
                            &dispatched,
                            &self.costs,
                            gstep,
                            view,
                            &mut misrouted,
                        );
                        if target != d {
                            redispatches += 1;
                            // Demoted KV is parked in the *source*
                            // deployment's ladder; a migrated victim
                            // cannot recall it from another deployment —
                            // drop it there and let the target recompute
                            // (booked as wasted prefill).
                            {
                                let (eng, st) = slots[d].as_mut().expect("slot checked in");
                                eng.forget_demoted(st, entry.req.id);
                            }
                            // Deployment clocks are independent busy-time
                            // axes (idle gaps are skipped, so they diverge
                            // freely); an absolute timestamp from one
                            // domain is meaningless in another. Re-base
                            // the entry's timestamps by the clock delta so
                            // the *durations* accrued so far survive the
                            // move — TTFT/e2e then sum busy time spent on
                            // each deployment, stay non-negative, and keep
                            // `first_token_s <= finished_s`.
                            let from_clock = slots[d].as_ref().expect("slot checked in").1.clock;
                            let (_, st_t) = slots[target].as_mut().expect("slot checked in");
                            let shift = st_t.clock - from_clock;
                            entry.arrival_s += shift;
                            entry.first_token_s = entry.first_token_s.map(|t| t + shift);
                            entry.first_admitted_s = entry.first_admitted_s.map(|t| t + shift);
                            st_t.emit(
                                DeploymentId(target as u32),
                                entry.req.id,
                                EventKind::Migrated {
                                    from: d as u32,
                                    arrival_s: entry.arrival_s,
                                    first_token_s: entry.first_token_s.unwrap_or(0.0),
                                    emitted: entry.emitted,
                                },
                            );
                        }
                        let (eng, st) = slots[target].as_mut().expect("slot checked in");
                        eng.requeue(st, entry);
                    }
                }
                // Every working deployment stalled (policies holding
                // queues with nothing in flight): feed the cluster the
                // next arrival, or fail loudly once the trace is
                // exhausted.
                if all_stalled {
                    if idx >= trace.len() {
                        return Err(CoreError::SchedulerStalled {
                            queued: slots
                                .iter()
                                .map(|s| s.as_ref().expect("slot checked in").1.queued_len())
                                .sum(),
                        });
                    }
                    gstep = trace[idx].arrival_step;
                    continue;
                }
                gstep += 1;
            }
            Ok(())
        });

        // Check every slot back into the engine before surfacing any
        // error — a failed run must not eat the deployments.
        let mut engines = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        for s in slots {
            let (eng, st) = s.expect("every slot checked back in");
            engines.push(eng);
            states.push(st);
        }
        self.engines = engines;
        run?;

        let deployments: Vec<_> =
            self.engines.iter().zip(states).map(|(eng, st)| eng.finish(st)).collect();
        Ok(ClusterReport::new(
            self.routing.name().to_string(),
            deployments,
            dispatched,
            redispatches,
            misrouted,
        ))
    }
}
