//! Aggregated cluster-level reporting: per-deployment [`TraceReport`]s
//! plus global latency/goodput views built on the same
//! [`hilos_metrics`] primitives the single-deployment layer uses.

use crate::serve::{class_breakdown_of, RequestOutcome, TraceReport};
use hilos_metrics::{goodput, ClassReport, LatencyStats, PrefillBreakdown, PrefixCacheStats};

/// Everything one cluster trace run reports.
///
/// Per-deployment detail lives in [`ClusterReport::deployments`] (one
/// full [`TraceReport`] each, in [`DeploymentId`](hilos_llm::DeploymentId)
/// order); the methods aggregate across them. Global goodput divides by
/// [`ClusterReport::elapsed_s`] — the *slowest* deployment's busy time —
/// so a router that dumps everything on one deployment is charged for
/// the idle capacity it stranded elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The routing policy that produced the run.
    pub routing: String,
    /// Per-deployment trace reports, in deployment order.
    pub deployments: Vec<TraceReport>,
    /// Fresh arrivals dispatched to each deployment, in deployment order
    /// (cross-deployment re-dispatches are not re-counted here).
    pub dispatched: Vec<u64>,
    /// Preempted requests the router moved to a *different* deployment
    /// than the one that preempted them.
    pub redispatches: u64,
    /// Out-of-range deployment indices the routing policy answered with
    /// (each one a policy bug — `debug_assert!`ed in debug builds,
    /// counted here and clamped to the last deployment in release).
    pub misrouted: u64,
}

impl ClusterReport {
    pub(crate) fn new(
        routing: String,
        deployments: Vec<TraceReport>,
        dispatched: Vec<u64>,
        redispatches: u64,
        misrouted: u64,
    ) -> Self {
        ClusterReport { routing, deployments, dispatched, redispatches, misrouted }
    }

    /// Number of deployments.
    pub fn deployment_count(&self) -> usize {
        self.deployments.len()
    }

    /// Every completed outcome across the cluster, in deployment order
    /// then completion order (each outcome records the deployment that
    /// finished it).
    pub fn outcomes(&self) -> impl Iterator<Item = &RequestOutcome> {
        self.deployments.iter().flat_map(|d| d.outcomes.iter())
    }

    /// Completed requests across the cluster.
    pub fn completed(&self) -> usize {
        self.deployments.iter().map(|d| d.outcomes.len()).sum()
    }

    /// Requests rejected as unplaceable across the cluster.
    pub fn rejected_len(&self) -> usize {
        self.deployments.iter().map(|d| d.rejected.len()).sum()
    }

    /// Tokens generated across the cluster.
    pub fn generated_tokens(&self) -> u64 {
        self.deployments.iter().map(|d| d.generated_tokens).sum()
    }

    /// Preemptions executed across the cluster (local re-queues and
    /// cross-deployment re-dispatches both count — they were preempted
    /// either way).
    pub fn preemptions(&self) -> u64 {
        self.deployments.iter().map(|d| d.preemptions).sum()
    }

    /// Requests shed by overload-shedding policies across the cluster.
    pub fn shed_len(&self) -> usize {
        self.deployments.iter().map(|d| d.shed.len()).sum()
    }

    /// Prefill re-materialization debt left by preemptions across the
    /// cluster, in tokens.
    pub fn wasted_prefill_tokens(&self) -> u64 {
        self.deployments.iter().map(|d| d.wasted_prefill_tokens).sum()
    }

    /// Merged prefill-stall / chunk-interference breakdown across the
    /// deployments — where the cluster's step-charged time went under
    /// the token-budgeted serving step.
    pub fn prefill_breakdown(&self) -> PrefillBreakdown {
        self.deployments.iter().fold(PrefillBreakdown::default(), |acc, d| acc.merged(&d.prefill))
    }

    /// Merged prefix KV-cache accounting across the deployments: cluster
    /// hit rate, saved prefill tokens, and the residency ladders'
    /// demote/recall traffic. All-zero with the cache off everywhere.
    pub fn prefix_cache(&self) -> PrefixCacheStats {
        self.deployments.iter().fold(PrefixCacheStats::default(), |acc, d| acc.merged(&d.prefix))
    }

    /// Simulated busy seconds of the slowest deployment — the cluster's
    /// makespan, and the denominator of every global rate below.
    pub fn elapsed_s(&self) -> f64 {
        self.deployments.iter().map(|d| d.elapsed_s).fold(0.0, f64::max)
    }

    /// Global generated-token throughput.
    pub fn tokens_per_second(&self) -> f64 {
        crate::serve::throughput_of(self.generated_tokens(), self.elapsed_s())
    }

    /// Global token goodput under each request's *own* SLO deadline —
    /// the routing-comparison metric (zero for an empty run).
    pub fn slo_token_goodput(&self) -> f64 {
        goodput(self.outcomes().map(|o| (o.met_slo(), o.output_len as f64)), self.elapsed_s())
    }

    /// SLO-met tokens across the cluster — the numerator of the
    /// fleet-cost metric (USD per 1k goodput tokens).
    pub fn goodput_tokens(&self) -> u64 {
        self.outcomes().filter(|o| o.met_slo()).map(|o| o.output_len).sum()
    }

    /// Fraction of completed requests that met their own SLO deadline.
    pub fn slo_hit_rate(&self) -> f64 {
        let total = self.completed();
        if total == 0 {
            return 0.0;
        }
        self.outcomes().filter(|o| o.met_slo()).count() as f64 / total as f64
    }

    /// Global TTFT order statistics, pooled across deployments.
    pub fn ttft_stats(&self) -> LatencyStats {
        self.outcomes().map(RequestOutcome::ttft).collect()
    }

    /// Global inter-token latency order statistics (per-request means).
    pub fn itl_stats(&self) -> LatencyStats {
        self.outcomes().map(RequestOutcome::itl).collect()
    }

    /// Per-emission decode-gap order statistics pooled across every
    /// deployment's executed steps (see
    /// [`TraceReport::step_itl_stats`](crate::TraceReport::step_itl_stats)).
    pub fn step_itl_stats(&self) -> LatencyStats {
        self.deployments.iter().flat_map(|d| d.step_latency_s.iter().copied()).collect()
    }

    /// Global end-to-end latency order statistics.
    pub fn e2e_stats(&self) -> LatencyStats {
        self.outcomes().map(RequestOutcome::e2e).collect()
    }

    /// Global per-class breakdown (SLO-based), via the same
    /// [`class_breakdown_of`] the single-deployment report uses.
    pub fn class_breakdown(&self) -> Vec<ClassReport> {
        let all: Vec<RequestOutcome> = self.outcomes().copied().collect();
        class_breakdown_of(&all)
    }

    /// How unevenly fresh arrivals were spread: the largest deployment
    /// share of dispatches, `[1/n, 1]` (1.0 means one deployment took
    /// everything; `1/n` is a perfectly even spread).
    pub fn dispatch_imbalance(&self) -> f64 {
        let total: u64 = self.dispatched.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.dispatched.iter().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::{DeploymentId, RequestClass};

    fn report(dep: u32, finishes: &[(f64, u64, bool)]) -> TraceReport {
        // (finished_s, tokens, met_slo) triples become outcomes.
        let outcomes: Vec<RequestOutcome> = finishes
            .iter()
            .enumerate()
            .map(|(i, &(fin, tokens, met))| RequestOutcome {
                id: i as u64,
                class: RequestClass::Medium,
                deployment: DeploymentId(dep),
                prompt_len: 64,
                output_len: tokens,
                arrival_s: 0.0,
                admitted_s: 0.1,
                first_token_s: 0.5,
                finished_s: fin,
                slo_deadline_s: if met { 1e9 } else { 0.6 },
                preemptions: 0,
                prefill_tokens: 64,
            })
            .collect();
        TraceReport {
            policy: "fifo".into(),
            generated_tokens: outcomes.iter().map(|o| o.output_len).sum(),
            elapsed_s: outcomes.iter().map(|o| o.finished_s).fold(0.0, f64::max),
            outcomes,
            rejected: vec![],
            shed: vec![],
            steps: 4,
            peak_batch: 2,
            joins: 2,
            evictions: 2,
            preemptions: 1,
            alpha_recomputes: 1,
            mean_alpha: 0.5,
            step_cache_entries: 1,
            host_pcie_bytes: 0.0,
            internal_read_bytes: 0.0,
            prefill_payload_bytes: 0.0,
            kv_placed_bytes: vec![],
            deadline_s: 120.0,
            prefill: PrefillBreakdown {
                decode_seconds: 1.0,
                interference_seconds: 0.5,
                stall_seconds: 0.25,
                chunks: 2,
                chunk_tokens: 128,
            },
            step_latency_s: vec![],
            wasted_prefill_tokens: 3,
            prefix: PrefixCacheStats {
                lookups: 4,
                hits: 2,
                saved_prefill_tokens: 128,
                ..PrefixCacheStats::default()
            },
            events: vec![],
            events_dropped: 0,
        }
    }

    #[test]
    fn aggregates_across_deployments() {
        let r = ClusterReport::new(
            "round-robin".into(),
            vec![report(0, &[(10.0, 100, true), (20.0, 50, false)]), report(1, &[(5.0, 30, true)])],
            vec![2, 1],
            1,
            0,
        );
        assert_eq!(r.deployment_count(), 2);
        assert_eq!(r.completed(), 3);
        assert_eq!(r.rejected_len(), 0);
        assert_eq!(r.generated_tokens(), 180);
        assert_eq!(r.preemptions(), 2);
        assert_eq!(r.shed_len(), 0);
        assert_eq!(r.wasted_prefill_tokens(), 6);
        // Prefix-cache accounting merges across deployments.
        let pc = r.prefix_cache();
        assert_eq!(pc.lookups, 8);
        assert_eq!(pc.hits, 4);
        assert_eq!(pc.saved_prefill_tokens, 256);
        assert!((pc.hit_rate() - 0.5).abs() < 1e-12);
        // Prefill breakdowns merge element-wise across deployments.
        let pf = r.prefill_breakdown();
        assert_eq!(pf.chunks, 4);
        assert_eq!(pf.chunk_tokens, 256);
        assert_eq!(pf.decode_seconds, 2.0);
        assert_eq!(pf.prefill_seconds(), 1.5);
        // Makespan is the slowest deployment.
        assert_eq!(r.elapsed_s(), 20.0);
        assert!((r.tokens_per_second() - 180.0 / 20.0).abs() < 1e-12);
        // Goodput counts SLO-met tokens only, over the makespan.
        assert_eq!(r.goodput_tokens(), 130);
        assert!((r.slo_token_goodput() - 130.0 / 20.0).abs() < 1e-12);
        assert!((r.slo_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.ttft_stats().count, 3);
        assert_eq!(r.class_breakdown().len(), 1);
        assert_eq!(r.class_breakdown()[0].count, 3);
        // Dispatch imbalance: 2 of 3 went to deployment 0.
        assert!((r.dispatch_imbalance() - 2.0 / 3.0).abs() < 1e-12);
        // Outcomes carry their serving deployment.
        assert_eq!(r.outcomes().filter(|o| o.deployment == DeploymentId(1)).count(), 1);
    }

    #[test]
    fn empty_cluster_run_reports_zeros_not_nans() {
        let r = ClusterReport::new("ledger-pressure".into(), vec![report(0, &[])], vec![0], 0, 0);
        assert_eq!(r.completed(), 0);
        assert_eq!(r.elapsed_s(), 0.0);
        assert_eq!(r.tokens_per_second(), 0.0);
        assert_eq!(r.slo_token_goodput(), 0.0);
        assert!(!r.slo_token_goodput().is_nan());
        assert_eq!(r.slo_hit_rate(), 0.0);
        assert_eq!(r.dispatch_imbalance(), 0.0);
        assert!(r.class_breakdown().is_empty());
    }
}
