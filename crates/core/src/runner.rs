//! The inference controller: runs prefill + decode jobs on a built system
//! and aggregates reports.

use crate::config::{AlphaPolicy, HilosConfig};
use crate::scheduler::{weight_source, WeightSource};
use crate::step::DecodeStepExecutor;
use crate::writeback::{spill_nand_bytes_per_token, WritebackManager};
use hilos_accel::{AccelTimingModel, ResourceModel};
use hilos_llm::{BatchSpec, ModelConfig};
use hilos_platform::{BuiltSystem, SystemSpec};
use hilos_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors from HILOS runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The system spec has no near-storage accelerators.
    NoAccelerators,
    /// Fewer physical devices than the configuration asks for.
    NotEnoughDevices {
        /// Devices requested.
        requested: usize,
        /// Devices available in the spec.
        available: usize,
    },
    /// The model's `d_group` does not fit the FPGA.
    AcceleratorDoesNotFit(String),
    /// KV/X cache plus weights exceed the devices' capacity.
    DeviceCapacityExceeded {
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// The host-side writeback buffer exceeds host DRAM.
    HostOom {
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// A simulation error (graph bug).
    Sim(SimError),
    /// A platform build error.
    Platform(String),
    /// A scheduling policy held queued requests forever with nothing in
    /// flight (the serving loop could never make progress).
    SchedulerStalled {
        /// Requests stuck in the admission queue.
        queued: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoAccelerators => {
                write!(f, "system has no near-storage accelerators (HILOS requires NSP devices)")
            }
            CoreError::NotEnoughDevices { requested, available } => {
                write!(f, "configuration asks for {requested} devices, system has {available}")
            }
            CoreError::AcceleratorDoesNotFit(e) => write!(f, "accelerator does not fit: {e}"),
            CoreError::DeviceCapacityExceeded { needed, available } => {
                write!(f, "device capacity exceeded: need {needed} bytes, have {available}")
            }
            CoreError::HostOom { needed, available } => {
                write!(f, "host memory exhausted: need {needed} bytes, have {available}")
            }
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Platform(e) => write!(f, "platform error: {e}"),
            CoreError::SchedulerStalled { queued } => {
                write!(f, "scheduling policy stalled with {queued} queued requests")
            }
        }
    }
}

impl Error for CoreError {}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

/// Result of a decode run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Batch size.
    pub batch: u32,
    /// Output length used for aggregation.
    pub output_len: u64,
    /// Average seconds per decoding step (whole batch).
    pub avg_step_seconds: f64,
    /// Total decode seconds (`avg_step_seconds × output_len`).
    pub decode_seconds: f64,
    /// The α the cache scheduler chose.
    pub alpha: f64,
    /// Per-category task seconds of a representative step (for the
    /// breakdown figures).
    pub category_seconds: Vec<(String, f64)>,
    /// GPU utilization over the sampled steps, `[0, 1]`.
    pub gpu_utilization: f64,
    /// CPU utilization.
    pub cpu_utilization: f64,
    /// Host DRAM-port utilization.
    pub dram_utilization: f64,
    /// Bytes crossing the host interconnect per step (system PCIe
    /// traffic, the Fig. 4 quantity).
    pub host_pcie_bytes_per_step: f64,
    /// Bytes read over the devices' internal paths per step.
    pub internal_read_bytes_per_step: f64,
    /// Physical NAND bytes programmed per step (with write
    /// amplification), feeding the endurance model.
    pub nand_write_bytes_per_step: f64,
}

impl RunReport {
    /// Decoding throughput in tokens/second.
    pub fn tokens_per_second(&self) -> f64 {
        self.batch as f64 / self.avg_step_seconds
    }
}

/// Result of a prefill run.
#[derive(Debug, Clone, Copy)]
pub struct PrefillReport {
    /// Prefill wall-clock seconds.
    pub seconds: f64,
    /// Payload bytes written to the devices (KV + X).
    pub cache_bytes_written: f64,
}

/// Result of a full job (prefill + decode).
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The prefill phase.
    pub prefill: PrefillReport,
    /// The decode phase.
    pub decode: RunReport,
}

impl JobReport {
    /// Total seconds.
    pub fn total_seconds(&self) -> f64 {
        self.prefill.seconds + self.decode.decode_seconds
    }

    /// End-to-end generated-token throughput.
    pub fn tokens_per_second(&self) -> f64 {
        (self.decode.batch as u64 * self.decode.output_len) as f64 / self.total_seconds()
    }
}

/// A configured HILOS deployment — the paper's *Inference Controller*.
///
/// Owns the system spec, model and configuration, and runs simulated
/// prefill/decode jobs. Each run builds a fresh simulation world so runs
/// are independent and deterministic.
#[derive(Debug, Clone)]
pub struct HilosSystem {
    spec: SystemSpec,
    model: ModelConfig,
    config: HilosConfig,
    sim_layers: u32,
    degradations: Vec<(usize, f64)>,
}

impl HilosSystem {
    /// Validates and creates a deployment.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoAccelerators`] if the spec's storage has no FPGAs,
    /// * [`CoreError::NotEnoughDevices`] if `config.n_devices()` exceeds
    ///   the spec,
    /// * [`CoreError::AcceleratorDoesNotFit`] if the model's `d_group`
    ///   overflows the KU15P (e.g. hypothetical d_group > ~8).
    pub fn new(
        spec: &SystemSpec,
        model: &ModelConfig,
        config: &HilosConfig,
    ) -> Result<Self, CoreError> {
        if !spec.storage.has_accelerators() {
            return Err(CoreError::NoAccelerators);
        }
        if config.n_devices() > spec.storage.device_count() {
            return Err(CoreError::NotEnoughDevices {
                requested: config.n_devices(),
                available: spec.storage.device_count(),
            });
        }
        ResourceModel::smartssd()
            .report(model.d_group())
            .map_err(|e| CoreError::AcceleratorDoesNotFit(e.to_string()))?;
        let mut spec = spec.clone();
        // Trim the storage complex to the configured device count.
        spec.storage = match spec.storage {
            hilos_platform::StorageConfig::SmartSsdChassis { fpga_enabled, .. } => {
                hilos_platform::StorageConfig::SmartSsdChassis {
                    count: config.n_devices(),
                    fpga_enabled,
                }
            }
            hilos_platform::StorageConfig::IspCsd { .. } => {
                hilos_platform::StorageConfig::IspCsd { count: config.n_devices() }
            }
            other => other,
        };
        Ok(HilosSystem {
            spec,
            model: model.clone(),
            config: config.clone(),
            sim_layers: 8,
            degradations: Vec::new(),
        })
    }

    /// The (possibly trimmed) system spec.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The model.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &HilosConfig {
        &self.config
    }

    /// Overrides how many layers each simulated step materializes
    /// (the makespan is scaled to the model's true depth). Higher is more
    /// faithful, lower is faster. Default 8.
    pub fn with_sim_layers(mut self, layers: u32) -> Self {
        assert!(layers >= 1, "must simulate at least one layer");
        self.sim_layers = layers;
        self
    }

    /// Injects a straggler: scales device `index`'s storage bandwidth by
    /// `factor` (e.g. 0.5 halves it). HILOS partitions the KV cache
    /// statically, so a slow device gates every step — an availability
    /// sensitivity the `repro straggler` extension quantifies.
    pub fn with_degraded_device(mut self, index: usize, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "factor must be positive");
        self.degradations.push((index, factor));
        self
    }

    pub(crate) fn sim_layers(&self) -> u32 {
        self.sim_layers
    }

    pub(crate) fn build_world(&self) -> Result<BuiltSystem, CoreError> {
        self.build_world_with(hilos_sim::FlowEngineImpl::default())
    }

    pub(crate) fn build_world_with(
        &self,
        flow_impl: hilos_sim::FlowEngineImpl,
    ) -> Result<BuiltSystem, CoreError> {
        let accel = AccelTimingModel::smartssd(self.model.d_group());
        BuiltSystem::build_with_engine_impl(
            &self.spec,
            Some(&accel),
            self.model.head_dim(),
            &self.degradations,
            flow_impl,
        )
        .map_err(|e| CoreError::Platform(e.to_string()))
    }

    /// The α the cache scheduler (§4.2) selects for a given job shape.
    ///
    /// Delegates to [`crate::AlphaSelector`] — the single home of the
    /// §4.2 formula, shared with the serving layer — at this system's
    /// bandwidth operating point.
    pub fn select_alpha(&self, batch: u32, context: u64) -> Result<f64, CoreError> {
        if !self.config.cooperative_xcache() {
            return Ok(0.0);
        }
        if let AlphaPolicy::Fixed(a) = self.config.alpha_policy() {
            return Ok(a);
        }
        let sys = self.build_world()?;
        Ok(crate::step::AlphaSelector::new(&self.config, &sys).select(&self.model, batch, context))
    }

    /// Validates capacity for a job through the per-device KV shard
    /// ledger: every sequence's cache stripe plus (storage-resident)
    /// weights must place onto the actual devices — a full or degraded
    /// device rejects placement even when the aggregate has room — and
    /// the writeback buffer must fit host DRAM.
    pub fn check_capacity(&self, spec: &BatchSpec) -> Result<(), CoreError> {
        let max_ctx = spec.context_len + spec.output_len;
        let alpha = self.select_alpha(spec.batch, spec.context_len)?;
        let m = &self.model;
        let per_seq = ((1.0 - alpha) * m.kv_bytes_per_token() as f64
            + alpha * m.x_bytes_per_token() as f64) as u64
            * max_ctx;
        let cache = per_seq * spec.batch as u64;
        let sys = self.build_world()?;
        let weights_on_dev = match weight_source(&sys, m, 32 << 30) {
            WeightSource::Storage => m.weight_bytes(),
            WeightSource::HostDram => 0,
        };
        let mut ledger = sys.kv_ledger();
        let placed = ledger.reserve_evenly(weights_on_dev).is_ok()
            && (0..spec.batch as u64).all(|seq| ledger.allocate(seq, per_seq).is_ok());
        if !placed {
            // `available` is the placeable free space at the point the
            // ledger rejected placement (weights and earlier sequences
            // already placed) — the constraint that actually fired, which
            // with a full stripe member can be far below the aggregate.
            return Err(CoreError::DeviceCapacityExceeded {
                needed: cache + weights_on_dev,
                available: ledger.placeable_free(),
            });
        }
        let buffer =
            WritebackManager::new(self.config.spill_interval()).peak_buffer_bytes(m, spec.batch);
        if buffer > self.spec.host.dram_bytes {
            return Err(CoreError::HostOom {
                needed: buffer,
                available: self.spec.host.dram_bytes,
            });
        }
        Ok(())
    }

    /// Runs the decode phase of a job and reports aggregate throughput.
    ///
    /// Simulates one full writeback cycle (`c` steps, capped at
    /// `output_len`) at the *true* per-step contexts of a window centered
    /// on mid-generation ([`BatchSpec::context_at_step`]), and scales to
    /// the full output length. (Earlier revisions froze every simulated
    /// step at the midpoint context `context + output_len/2`; the centered
    /// window agrees with that approximation to within a fraction of a
    /// percent for the paper's shapes — see the `serving.rs` regression
    /// test — while letting the step executor see each step's real
    /// context.)
    ///
    /// # Errors
    ///
    /// Capacity/validation errors as in [`HilosSystem::check_capacity`],
    /// or a wrapped simulation error.
    pub fn run_decode(
        &self,
        batch: u32,
        context: u64,
        output_len: u64,
    ) -> Result<RunReport, CoreError> {
        let spec = BatchSpec::new(batch, context, output_len);
        self.check_capacity(&spec)?;
        let alpha = self.select_alpha(batch, context)?;

        let steps = if self.config.delayed_writeback() {
            (self.config.spill_interval() as u64).min(output_len).max(1)
        } else {
            1
        };
        // Center the simulated window on mid-generation so the sampled
        // steps average to the same operating point the old midpoint
        // approximation used. For output_len ≤ c the window is exact.
        let window_start = (output_len - steps) / 2;

        let mut exec = DecodeStepExecutor::new(self)?;
        let mut wb = WritebackManager::new(self.config.spill_interval());
        let mut total = 0.0;
        let mut last_categories = Vec::new();
        let mut gpu_u = 0.0;
        let mut cpu_u = 0.0;
        let mut dram_u = 0.0;
        let mut host_bytes = 0.0;
        let mut internal_bytes = 0.0;

        for i in 0..steps {
            let decision = if self.config.delayed_writeback() {
                wb.on_step()
            } else {
                crate::writeback::SpillDecision {
                    buffered_tokens: 0,
                    spill_now: false,
                    spill_tokens: 0,
                }
            };
            let ctx = spec.context_at_step(window_start + i);
            let o = exec.execute_step(batch, ctx, alpha, &decision)?;
            total += o.seconds;
            gpu_u += o.gpu_utilization;
            cpu_u += o.cpu_utilization;
            dram_u += o.dram_utilization;
            host_bytes += o.host_pcie_bytes;
            internal_bytes += o.internal_read_bytes;
            last_categories = o.category_seconds;
        }

        let avg = total / steps as f64;
        let n_steps = steps as f64;
        // Physical NAND writes per step, from the §4.3 spill model.
        let nand_per_token = if self.config.delayed_writeback() {
            spill_nand_bytes_per_token(
                &self.model,
                self.config.spill_interval(),
                self.spec.storage.ssd_spec().page_bytes(),
            )
        } else {
            spill_nand_bytes_per_token(&self.model, 1, self.spec.storage.ssd_spec().page_bytes())
        };
        let x_discount = 1.0 - alpha * (1.0 - self.model.x_to_kv_ratio());
        let nand_write_bytes_per_step = nand_per_token * batch as f64 * x_discount;

        Ok(RunReport {
            batch,
            output_len,
            avg_step_seconds: avg,
            decode_seconds: avg * output_len as f64,
            alpha,
            category_seconds: last_categories,
            gpu_utilization: gpu_u / n_steps,
            cpu_utilization: cpu_u / n_steps,
            dram_utilization: dram_u / n_steps,
            host_pcie_bytes_per_step: host_bytes / n_steps,
            internal_read_bytes_per_step: internal_bytes / n_steps,
            nand_write_bytes_per_step,
        })
    }

    /// Runs the prefill phase.
    ///
    /// # Errors
    ///
    /// Capacity/validation errors, or a wrapped simulation error.
    pub fn run_prefill(&self, batch: u32, context: u64) -> Result<PrefillReport, CoreError> {
        let alpha = self.select_alpha(batch, context)?;
        let mut exec = DecodeStepExecutor::new(self)?;
        let seconds = exec.execute_prefill(batch, context, alpha)?;
        let cache_bytes = ((1.0 - alpha) * self.model.kv_bytes_per_token() as f64
            + alpha * self.model.x_bytes_per_token() as f64)
            * batch as f64
            * context as f64;
        Ok(PrefillReport { seconds, cache_bytes_written: cache_bytes })
    }

    /// Runs a full job: prefill followed by decode.
    ///
    /// # Errors
    ///
    /// Capacity/validation errors, or a wrapped simulation error.
    pub fn run_job(&self, spec: &BatchSpec) -> Result<JobReport, CoreError> {
        let prefill = self.run_prefill(spec.batch, spec.context_len)?;
        let decode = self.run_decode(spec.batch, spec.context_len, spec.output_len)?;
        Ok(JobReport { prefill, decode })
    }

    /// Runs a sweep of independent decode jobs, fanned out over up to
    /// `threads` workers.
    ///
    /// Every job builds its own simulation world (runs are already
    /// independent and deterministic), and results are reduced in job
    /// order — element `i` of the output is exactly what
    /// `run_decode(jobs[i])` returns, bit for bit, for any thread count.
    /// This is the campaign-sweep fast path: context/batch sensitivity
    /// sweeps parallelize across host cores without giving up the
    /// reproducibility guarantee.
    pub fn run_decode_sweep(
        &self,
        jobs: &[BatchSpec],
        threads: usize,
    ) -> Vec<Result<RunReport, CoreError>> {
        hilos_accel::parallel_map(jobs, threads, |_, spec| {
            self.run_decode(spec.batch, spec.context_len, spec.output_len)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::presets;

    fn hilos(n: usize) -> HilosSystem {
        HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_66b(), &HilosConfig::new(n))
            .unwrap()
    }

    #[test]
    fn decode_runs_and_reports() {
        let sys = hilos(8).with_sim_layers(4);
        let r = sys.run_decode(16, 32 * 1024, 8).unwrap();
        assert!(r.tokens_per_second() > 0.0);
        assert!(r.avg_step_seconds > 0.0);
        assert!(r.alpha > 0.0, "MHA should engage the X-cache");
        assert!(!r.category_seconds.is_empty());
    }

    #[test]
    fn alpha_is_half_on_the_16_device_testbed() {
        // §6.4: B_SSD/B_PCI ≈ 3 on the 16-SmartSSD testbed ⇒ α = 50%.
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(16),
            &presets::opt_66b(),
            &HilosConfig::new(16),
        )
        .unwrap();
        assert_eq!(sys.select_alpha(16, 32 * 1024).unwrap(), 0.5);
    }

    #[test]
    fn validation_errors() {
        // No accelerators in a conventional-SSD system.
        let err =
            HilosSystem::new(&SystemSpec::a100_pm9a3(4), &presets::opt_66b(), &HilosConfig::new(4))
                .unwrap_err();
        assert_eq!(err, CoreError::NoAccelerators);

        // More devices than the chassis holds.
        let err = HilosSystem::new(
            &SystemSpec::a100_smartssd(4),
            &presets::opt_66b(),
            &HilosConfig::new(8),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::NotEnoughDevices { requested: 8, available: 4 }));
    }

    #[test]
    fn capacity_check_rejects_oversized_jobs() {
        let sys = hilos(4);
        // 175B on 4 devices at extreme batch x context exceeds 15.4 TB.
        let sys175 = HilosSystem::new(
            &SystemSpec::a100_smartssd(4),
            &presets::opt_175b(),
            &HilosConfig::new(4),
        )
        .unwrap();
        let err = sys175.check_capacity(&BatchSpec::new(64, 256 * 1024, 64)).unwrap_err();
        assert!(matches!(err, CoreError::DeviceCapacityExceeded { .. }));
        // A sane job passes.
        sys.check_capacity(&BatchSpec::new(16, 32 * 1024, 64)).unwrap();
    }

    #[test]
    fn gqa_model_disables_xcache() {
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::qwen25_32b(),
            &HilosConfig::new(8),
        )
        .unwrap();
        assert_eq!(sys.select_alpha(16, 32 * 1024).unwrap(), 0.0);
    }

    #[test]
    fn longer_context_slows_decoding() {
        let sys = hilos(8).with_sim_layers(4);
        let short = sys.run_decode(16, 16 * 1024, 4).unwrap();
        let long = sys.run_decode(16, 64 * 1024, 4).unwrap();
        assert!(long.avg_step_seconds > 2.0 * short.avg_step_seconds);
    }

    #[test]
    fn decode_sweep_parallel_matches_serial_bitwise() {
        let sys = hilos(8).with_sim_layers(2);
        let jobs: Vec<BatchSpec> = [8u32, 16, 32]
            .iter()
            .flat_map(|&b| [16u64, 32].map(|kc| BatchSpec::new(b, kc * 1024, 4)))
            .collect();
        let serial = sys.run_decode_sweep(&jobs, 1);
        let parallel = sys.run_decode_sweep(&jobs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.avg_step_seconds.to_bits(), b.avg_step_seconds.to_bits());
            assert_eq!(a.gpu_utilization.to_bits(), b.gpu_utilization.to_bits());
            assert_eq!(a.category_seconds, b.category_seconds);
        }
    }

    #[test]
    fn full_job_combines_phases() {
        let sys = hilos(8).with_sim_layers(4);
        let job = sys.run_job(&BatchSpec::new(8, 16 * 1024, 8)).unwrap();
        assert!(job.prefill.seconds > 0.0);
        assert!(job.total_seconds() > job.decode.decode_seconds);
        assert!(job.tokens_per_second() > 0.0);
        assert!(job.prefill.cache_bytes_written > 0.0);
    }

    #[test]
    fn host_stays_underutilized_before_xcache_fig4c() {
        // Fig 4c: with bare ANS the host resources sit under ~20-30% —
        // the observation that motivates the cooperative X-cache.
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_66b(),
            &HilosConfig::ans_only(8),
        )
        .unwrap()
        .with_sim_layers(4);
        let r = sys.run_decode(16, 32 * 1024, 4).unwrap();
        assert!(r.cpu_utilization < 0.3, "cpu {}", r.cpu_utilization);
        assert!(r.gpu_utilization < 0.3, "gpu {}", r.gpu_utilization);
    }

    #[test]
    fn xcache_raises_gpu_utilization() {
        // The cooperative schedule puts the idle GPU to work (§4.2).
        let base = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_66b(),
            &HilosConfig::ans_only(8),
        )
        .unwrap()
        .with_sim_layers(4);
        let coop = hilos(8).with_sim_layers(4);
        let u0 = base.run_decode(16, 32 * 1024, 4).unwrap().gpu_utilization;
        let u1 = coop.run_decode(16, 32 * 1024, 4).unwrap().gpu_utilization;
        assert!(u1 > u0 * 1.5, "{u1} vs {u0}");
    }

    #[test]
    fn ans_cuts_host_interconnect_traffic() {
        // The point of §4.1: interconnect traffic per step is tiny next to
        // the KV cache the devices read internally.
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_66b(),
            &HilosConfig::ans_only(8),
        )
        .unwrap()
        .with_sim_layers(4);
        let r = sys.run_decode(16, 32 * 1024, 4).unwrap();
        assert!(
            r.internal_read_bytes_per_step > 2.0 * r.host_pcie_bytes_per_step,
            "internal {} vs host {}",
            r.internal_read_bytes_per_step,
            r.host_pcie_bytes_per_step
        );
    }
}
