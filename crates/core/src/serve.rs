//! Request-level serving: continuous batching over heterogeneous requests.
//!
//! The paper evaluates HILOS on uniform offline batches (every sequence
//! shares one context length, Fig. 4a's prefill → decode pipeline runs
//! once per job). This module generalizes that pipeline to the serving
//! regime the ROADMAP's "heavy traffic" north-star implies: a stream of
//! [`Request`]s with individual prompt lengths and output budgets, served
//! by one continuously-running decode loop.
//!
//! # The step loop
//!
//! Each iteration of [`ServeEngine::run_trace`] is one decoding step of
//! the *running batch* — the serving-layer analogue of one trip around the
//! paper's Fig. 4a pipeline (weights stream in, fresh Q/K/V scatter to the
//! devices, per-device KV shards are swept by the near-storage
//! accelerators while the α-fraction X-cache re-projects on the GPU, the
//! delayed-writeback buffer ticks):
//!
//! 1. **Arrivals** — requests whose `arrival_step` has passed enter the
//!    FIFO admission queue.
//! 2. **Admission** — the queue head is admitted iff the running batch is
//!    below `max_batch` *and* the per-device KV shard ledger
//!    ([`hilos_storage::KvShardLedger`]) can place the request's full KV
//!    footprint across the striped devices. A full or weightless
//!    (offline) device rejects placement; degraded devices take
//!    proportionally less of every stripe. Admission starts the
//!    request's prefill.
//! 3. **Join** — requests whose prefill has finished join the running
//!    batch at the next step boundary (continuous batching's
//!    per-iteration join).
//! 4. **Decode** — one step of the whole batch is simulated with the same
//!    [`DecodeStepExecutor`] that powers `run_decode`, at the batch's
//!    mean context (the step graph is linear in `batch × context`, so the
//!    mean reproduces the heterogeneous batch's total KV traffic). The
//!    α split and the writeback spill schedule are recomputed whenever
//!    the batch composition changes.
//! 5. **Eviction** — requests that exhausted their output budget leave
//!    the batch and release their shard allocations, unblocking
//!    admission.
//!
//! Step times are memoized on the quantized operating point
//! `(batch, context, α, writeback phase)`, so a 10k-request trace costs a
//! few hundred graph simulations instead of tens of thousands while
//! remaining bit-deterministic for a fixed trace.

use crate::runner::{CoreError, HilosSystem};
use crate::scheduler::{weight_source, WeightSource};
use crate::step::{AlphaSelector, DecodeStepExecutor};
use crate::writeback::{SpillDecision, WritebackManager};
use hilos_llm::{Request, RequestClass};
use hilos_metrics::{goodput, LatencyStats};
use hilos_storage::KvShardLedger;
use std::collections::{HashMap, VecDeque};

/// Configuration of the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum requests decoded together (admission cap).
    pub max_batch: u32,
    /// Per-request end-to-end deadline for goodput accounting, seconds.
    pub deadline_s: f64,
    /// Context quantum of the step-time cache: batches whose mean context
    /// rounds to the same *nearest* multiple share one simulated step
    /// (the quantum shrinks automatically for short contexts so relative
    /// error stays bounded). Smaller is more faithful, larger is faster.
    pub ctx_quantum: u64,
}

impl ServeConfig {
    /// A serving configuration with the given admission cap, a 120 s
    /// deadline and a 1024-token context quantum.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: u32) -> Self {
        assert!(max_batch > 0, "need a positive batch cap");
        ServeConfig { max_batch, deadline_s: 120.0, ctx_quantum: 1024 }
    }

    /// Sets the goodput deadline.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "deadline must be positive");
        self.deadline_s = seconds;
        self
    }

    /// Sets the step-cache context quantum.
    pub fn with_ctx_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.ctx_quantum = quantum;
        self
    }
}

/// Lifecycle record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// The request's class.
    pub class: RequestClass,
    /// Prompt length in tokens.
    pub prompt_len: u64,
    /// Tokens generated.
    pub output_len: u64,
    /// When the request became visible to admission (seconds).
    pub arrival_s: f64,
    /// When it was admitted (shard allocation + prefill start).
    pub admitted_s: f64,
    /// When its first output token was produced.
    pub first_token_s: f64,
    /// When its last token was produced (eviction).
    pub finished_s: f64,
}

impl RequestOutcome {
    /// Time to first token.
    pub fn ttft(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Mean inter-token latency (zero for single-token outputs).
    pub fn itl(&self) -> f64 {
        if self.output_len > 1 {
            (self.finished_s - self.first_token_s) / (self.output_len - 1) as f64
        } else {
            0.0
        }
    }

    /// End-to-end latency (arrival to last token).
    pub fn e2e(&self) -> f64 {
        self.finished_s - self.arrival_s
    }

    /// Whether the request completed within `deadline_s` of arriving.
    pub fn met_deadline(&self, deadline_s: f64) -> bool {
        self.e2e() <= deadline_s
    }
}

/// TTFT order statistics over completed outcomes — shared by
/// [`TraceReport`] and the baselines' trace reports so the metric
/// definition cannot drift between them.
pub fn ttft_stats_of(outcomes: &[RequestOutcome]) -> LatencyStats {
    LatencyStats::from_samples(&outcomes.iter().map(RequestOutcome::ttft).collect::<Vec<_>>())
}

/// Token goodput over completed outcomes under a deadline.
pub fn token_goodput_of(outcomes: &[RequestOutcome], deadline_s: f64, elapsed_s: f64) -> f64 {
    goodput(outcomes.iter().map(|o| (o.met_deadline(deadline_s), o.output_len as f64)), elapsed_s)
}

/// Generated-token throughput (zero for an empty run).
pub fn throughput_of(generated_tokens: u64, elapsed_s: f64) -> f64 {
    if elapsed_s > 0.0 {
        generated_tokens as f64 / elapsed_s
    } else {
        0.0
    }
}

/// Everything one trace run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Completed requests in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests whose KV footprint can never be placed (larger than the
    /// placeable array) — dropped at admission.
    pub rejected: Vec<u64>,
    /// Decode steps actually executed (idle gaps between arrivals are
    /// skipped, not counted).
    pub steps: u64,
    /// Simulated wall-clock seconds.
    pub elapsed_s: f64,
    /// Total tokens generated.
    pub generated_tokens: u64,
    /// Largest running batch observed.
    pub peak_batch: u32,
    /// Prefill-finished joins into the running batch.
    pub joins: u64,
    /// Completion evictions from the running batch.
    pub evictions: u64,
    /// How often α was re-selected (batch composition changes).
    pub alpha_recomputes: u64,
    /// Step-weighted mean α.
    pub mean_alpha: f64,
    /// Distinct simulated operating points (step-cache size).
    pub step_cache_entries: usize,
    /// Total bytes that crossed the host interconnect during decode.
    pub host_pcie_bytes: f64,
    /// Total bytes read over the devices' internal paths.
    pub internal_read_bytes: f64,
    /// Payload bytes prefills wrote to the devices (KV + X).
    pub prefill_payload_bytes: f64,
    /// KV/X bytes the shard ledger placed on each device over the whole
    /// run (admitted requests' full footprints, in device index order) —
    /// the placement skew wear accounting must follow.
    pub kv_placed_bytes: Vec<f64>,
    /// The deadline the run was configured with.
    pub deadline_s: f64,
}

impl TraceReport {
    /// TTFT order statistics.
    pub fn ttft_stats(&self) -> LatencyStats {
        ttft_stats_of(&self.outcomes)
    }

    /// Inter-token latency order statistics.
    pub fn itl_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(
            &self.outcomes.iter().map(RequestOutcome::itl).collect::<Vec<_>>(),
        )
    }

    /// End-to-end latency order statistics.
    pub fn e2e_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(
            &self.outcomes.iter().map(RequestOutcome::e2e).collect::<Vec<_>>(),
        )
    }

    /// Generated-token throughput over the run.
    pub fn tokens_per_second(&self) -> f64 {
        throughput_of(self.generated_tokens, self.elapsed_s)
    }

    /// Token goodput: tokens of deadline-meeting requests per second.
    pub fn token_goodput(&self) -> f64 {
        token_goodput_of(&self.outcomes, self.deadline_s, self.elapsed_s)
    }

    /// Request goodput: deadline-meeting completions per second.
    pub fn request_goodput(&self) -> f64 {
        goodput(
            self.outcomes.iter().map(|o| (o.met_deadline(self.deadline_s), 1.0)),
            self.elapsed_s,
        )
    }

    /// Fraction of completed requests that met the deadline.
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.met_deadline(self.deadline_s)).count() as f64
            / self.outcomes.len() as f64
    }
}

/// A request in flight (admitted; prefilling or decoding).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: Request,
    arrival_s: f64,
    admitted_s: f64,
    /// When its prefill finishes and it may join the running batch.
    join_s: f64,
    first_token_s: Option<f64>,
    emitted: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StepKey {
    batch: u32,
    context: u64,
    alpha_bits: u64,
    buffered_tokens: u32,
    spill_now: bool,
    spill_tokens: u32,
}

/// The scalar slice of a [`StepOutcome`] the serving loop consumes every
/// step — `Copy`, so cache hits stay allocation-free (the full outcome's
/// per-category breakdown would clone a `Vec<String>` per step).
#[derive(Debug, Clone, Copy)]
struct CachedStep {
    seconds: f64,
    host_pcie_bytes: f64,
    internal_read_bytes: f64,
}

/// The continuous-batching serving engine over one HILOS deployment.
#[derive(Debug)]
pub struct ServeEngine {
    system: HilosSystem,
    config: ServeConfig,
    exec: DecodeStepExecutor,
    alpha_sel: AlphaSelector,
    ledger: KvShardLedger,
    /// Placeable bytes of the empty array (after weight reservations) —
    /// the bound beyond which a request can never be admitted.
    max_placeable: u64,
    step_cache: HashMap<StepKey, CachedStep>,
    prefill_cache: HashMap<(u64, u64), f64>,
}

impl ServeEngine {
    /// Builds the serving engine: one simulation world, the α selector at
    /// its bandwidth operating point, and the shard ledger (with
    /// storage-resident weights reserved evenly, as `weight_source`
    /// dictates for >100B models).
    ///
    /// # Errors
    ///
    /// Platform/capacity errors from building the world or fitting the
    /// weights.
    pub fn new(system: HilosSystem, config: ServeConfig) -> Result<Self, CoreError> {
        let exec = DecodeStepExecutor::new(&system)?;
        let alpha_sel = AlphaSelector::new(system.config(), exec.system());
        let mut ledger = exec.system().kv_ledger();
        let model = system.model();
        if weight_source(exec.system(), model, 32 << 30) == WeightSource::Storage {
            ledger.reserve_evenly(model.weight_bytes()).map_err(|_| {
                CoreError::DeviceCapacityExceeded {
                    needed: model.weight_bytes(),
                    available: ledger.placeable_free(),
                }
            })?;
        }
        let max_placeable = ledger.placeable_free();
        Ok(ServeEngine {
            system,
            config,
            exec,
            alpha_sel,
            ledger,
            max_placeable,
            step_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
        })
    }

    /// The per-device shard ledger (admission state).
    pub fn ledger(&self) -> &KvShardLedger {
        &self.ledger
    }

    /// Rounds a context to the nearest step-cache bucket. The quantum
    /// halves (down to 16 tokens) until it is at most a quarter of the
    /// context, so the rounding error is centered on zero and bounded at
    /// ~12.5% even for prompts far shorter than `ctx_quantum`.
    fn quantize(&self, ctx: u64) -> u64 {
        let ctx = ctx.max(1);
        let mut q = self.config.ctx_quantum;
        while q > 16 && q * 4 > ctx {
            q /= 2;
        }
        ((ctx + q / 2) / q).max(1) * q
    }

    /// KV/X bytes a request owns at full generation length under `alpha`.
    fn request_footprint(&self, req: &Request, alpha: f64) -> u64 {
        let m = self.system.model();
        let per_token =
            (1.0 - alpha) * m.kv_bytes_per_token() as f64 + alpha * m.x_bytes_per_token() as f64;
        (per_token * req.total_tokens() as f64) as u64
    }

    fn prefill_seconds(&mut self, prompt_len: u64, alpha: f64) -> Result<f64, CoreError> {
        let key = (self.quantize(prompt_len), alpha.to_bits());
        if let Some(&s) = self.prefill_cache.get(&key) {
            return Ok(s);
        }
        let s = self.exec.execute_prefill(1, key.0, alpha)?;
        self.prefill_cache.insert(key, s);
        Ok(s)
    }

    fn decode_step(
        &mut self,
        batch: u32,
        mean_ctx: u64,
        alpha: f64,
        decision: &SpillDecision,
    ) -> Result<CachedStep, CoreError> {
        let key = StepKey {
            batch,
            context: self.quantize(mean_ctx),
            alpha_bits: alpha.to_bits(),
            buffered_tokens: decision.buffered_tokens,
            spill_now: decision.spill_now,
            spill_tokens: decision.spill_tokens,
        };
        if let Some(&o) = self.step_cache.get(&key) {
            return Ok(o);
        }
        let o = self.exec.execute_step(batch, key.context, alpha, decision)?;
        let cached = CachedStep {
            seconds: o.seconds,
            host_pcie_bytes: o.host_pcie_bytes,
            internal_read_bytes: o.internal_read_bytes,
        };
        self.step_cache.insert(key, cached);
        Ok(cached)
    }

    /// Serves a trace of requests (sorted by `arrival_step`) to
    /// completion and reports request-level latency and throughput.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival step.
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<TraceReport, CoreError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step),
            "trace must be sorted by arrival step"
        );
        let model = self.system.model().clone();
        let wb_enabled = self.system.config().delayed_writeback();
        let mut wb = WritebackManager::new(self.system.config().spill_interval());

        let mut queue: VecDeque<(Request, f64)> = VecDeque::new();
        let mut prefilling: Vec<InFlight> = Vec::new();
        let mut running: Vec<InFlight> = Vec::new();
        let mut outcomes = Vec::new();
        let mut rejected = Vec::new();

        let mut clock = 0.0f64;
        // `step` is the arrival cursor (it jumps over idle gaps);
        // `decode_steps` counts decode iterations actually executed.
        let mut step = 0u64;
        let mut decode_steps = 0u64;
        let mut idx = 0usize;
        let mut alpha = 0.0f64;
        let mut composition_changed = true;
        let mut joins = 0u64;
        let mut evictions = 0u64;
        let mut alpha_recomputes = 0u64;
        let mut generated = 0u64;
        let mut peak_batch = 0u32;
        let mut alpha_steps_sum = 0.0f64;
        let mut host_bytes = 0.0f64;
        let mut internal_bytes = 0.0f64;
        let mut prefill_payload = 0.0f64;
        let mut kv_placed = vec![0.0f64; self.ledger.device_count()];

        while idx < trace.len()
            || !queue.is_empty()
            || !prefilling.is_empty()
            || !running.is_empty()
        {
            // 1: arrivals up to the current serving step.
            while idx < trace.len() && trace[idx].arrival_step <= step {
                queue.push_back((trace[idx], clock));
                idx += 1;
            }
            // Fully idle with traffic still ahead: jump to the next
            // arrival (simulated time does not advance while idle).
            if running.is_empty() && prefilling.is_empty() && queue.is_empty() {
                if idx >= trace.len() {
                    break;
                }
                step = trace[idx].arrival_step;
                continue;
            }

            // 2: FIFO admission, gated by the per-device shard ledger.
            while running.len() + prefilling.len() < self.config.max_batch as usize {
                let Some(&(req, arrival_s)) = queue.front() else { break };
                // α for the composition this request would join.
                let admit_alpha = self.alpha_sel.select(
                    &model,
                    (running.len() + prefilling.len() + 1) as u32,
                    req.prompt_len.max(1),
                );
                let footprint = self.request_footprint(&req, admit_alpha);
                if footprint > self.max_placeable {
                    rejected.push(req.id);
                    queue.pop_front();
                    continue;
                }
                match self.ledger.allocate(req.id, footprint) {
                    Ok(placed) => {
                        for (acc, &b) in kv_placed.iter_mut().zip(&placed) {
                            *acc += b as f64;
                        }
                    }
                    Err(_) => {
                        if self.ledger.live_requests() == 0 {
                            // Nothing live and still unplaceable (e.g. a
                            // stripe member filled by static reservations):
                            // the request can never be admitted.
                            rejected.push(req.id);
                            queue.pop_front();
                            continue;
                        }
                        // Head-of-line wait: evictions will free space.
                        break;
                    }
                }
                queue.pop_front();
                let pf = match self.prefill_seconds(req.prompt_len, admit_alpha) {
                    Ok(pf) => pf,
                    Err(e) => {
                        // Don't leak the shard allocation on a failed
                        // prefill simulation — the engine stays reusable.
                        let _ = self.ledger.release(req.id);
                        return Err(e);
                    }
                };
                prefill_payload +=
                    footprint as f64 * req.prompt_len as f64 / req.total_tokens() as f64;
                prefilling.push(InFlight {
                    req,
                    arrival_s,
                    admitted_s: clock,
                    join_s: clock + pf,
                    first_token_s: None,
                    emitted: 0,
                });
            }

            // 3: join finished prefills at this step boundary. If nothing
            // is decoding, fast-forward to the earliest join.
            if running.is_empty() && !prefilling.is_empty() {
                let earliest = prefilling.iter().map(|p| p.join_s).fold(f64::INFINITY, f64::min);
                clock = clock.max(earliest);
            }
            if !prefilling.is_empty() {
                let mut ready: Vec<InFlight> =
                    prefilling.iter().copied().filter(|p| p.join_s <= clock).collect();
                if !ready.is_empty() {
                    prefilling.retain(|p| p.join_s > clock);
                    // Deterministic join order: prefill completion, then id.
                    ready.sort_by(|a, b| {
                        a.join_s.total_cmp(&b.join_s).then(a.req.id.cmp(&b.req.id))
                    });
                    joins += ready.len() as u64;
                    running.extend(ready);
                    composition_changed = true;
                }
            }
            if running.is_empty() {
                // Prefills still in flight but none ready — can only
                // happen before the clock advance above; defensive tick.
                step += 1;
                continue;
            }

            // 4: one decode step of the running batch at its mean context.
            let batch = running.len() as u32;
            peak_batch = peak_batch.max(batch);
            let total_ctx: u64 = running.iter().map(|r| r.req.context_at(r.emitted)).sum();
            let mean_ctx = (total_ctx / batch as u64).max(1);
            if composition_changed {
                alpha = self.alpha_sel.select(&model, batch, mean_ctx);
                alpha_recomputes += 1;
                composition_changed = false;
            }
            let decision = if wb_enabled {
                wb.on_step()
            } else {
                SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 }
            };
            let outcome = self.decode_step(batch, mean_ctx, alpha, &decision)?;
            clock += outcome.seconds;
            step += 1;
            decode_steps += 1;
            generated += batch as u64;
            alpha_steps_sum += alpha;
            host_bytes += outcome.host_pcie_bytes;
            internal_bytes += outcome.internal_read_bytes;

            // Token emission + 5: eviction of completed requests.
            let mut still_running = Vec::with_capacity(running.len());
            for mut r in running {
                r.emitted += 1;
                if r.first_token_s.is_none() {
                    r.first_token_s = Some(clock);
                }
                if r.emitted >= r.req.output_budget {
                    self.ledger.release(r.req.id).expect("running request holds allocation");
                    evictions += 1;
                    outcomes.push(RequestOutcome {
                        id: r.req.id,
                        class: r.req.class,
                        prompt_len: r.req.prompt_len,
                        output_len: r.emitted,
                        arrival_s: r.arrival_s,
                        admitted_s: r.admitted_s,
                        first_token_s: r.first_token_s.unwrap(),
                        finished_s: clock,
                    });
                    composition_changed = true;
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;
        }

        Ok(TraceReport {
            outcomes,
            rejected,
            steps: decode_steps,
            elapsed_s: clock,
            generated_tokens: generated,
            peak_batch,
            joins,
            evictions,
            alpha_recomputes,
            mean_alpha: if decode_steps > 0 { alpha_steps_sum / decode_steps as f64 } else { 0.0 },
            step_cache_entries: self.step_cache.len(),
            host_pcie_bytes: host_bytes,
            internal_read_bytes: internal_bytes,
            prefill_payload_bytes: prefill_payload,
            kv_placed_bytes: kv_placed,
            deadline_s: self.config.deadline_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HilosConfig;
    use hilos_llm::{presets, TraceConfig};
    use hilos_platform::SystemSpec;

    fn system(n: usize) -> HilosSystem {
        HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
            .unwrap()
            .with_sim_layers(1)
    }

    #[test]
    fn small_trace_completes_every_request() {
        let trace = TraceConfig::azure_mix(64, 3).generate();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(16)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.outcomes.len(), 64);
        assert!(report.rejected.is_empty());
        assert!(report.peak_batch > 1, "continuous batching never batched");
        assert!(report.elapsed_s > 0.0);
        assert_eq!(
            report.generated_tokens,
            report.outcomes.iter().map(|o| o.output_len).sum::<u64>()
        );
        // Every request's lifecycle is ordered.
        for o in &report.outcomes {
            assert!(o.arrival_s <= o.admitted_s, "{o:?}");
            assert!(o.admitted_s < o.first_token_s, "{o:?}");
            assert!(o.first_token_s <= o.finished_s, "{o:?}");
        }
        // All shard space released at the end.
        assert_eq!(eng.ledger().live_requests(), 0);
    }

    #[test]
    fn trace_runs_are_deterministic() {
        let trace = TraceConfig::azure_mix(48, 11).generate();
        let run =
            || ServeEngine::new(system(8), ServeConfig::new(8)).unwrap().run_trace(&trace).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        assert_eq!(a.elapsed_s.to_bits(), b.elapsed_s.to_bits());
    }

    #[test]
    fn batch_cap_bounds_concurrency() {
        let trace =
            TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(40, 5) }.generate();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(4)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.peak_batch <= 4);
        assert_eq!(report.outcomes.len(), 40);
    }

    #[test]
    fn oversized_request_is_rejected_not_wedged() {
        let mut trace = TraceConfig::azure_mix(8, 2).generate();
        // A request whose KV footprint exceeds the whole array.
        trace[0].prompt_len = 40_000_000_000;
        trace[0].output_budget = 1;
        let mut eng = ServeEngine::new(system(4), ServeConfig::new(8)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.rejected, vec![trace[0].id]);
        assert_eq!(report.outcomes.len(), 7, "the rest of the trace still completes");
    }

    #[test]
    fn alpha_tracks_composition_changes() {
        let trace = TraceConfig::azure_mix(32, 9).generate();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(8)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.alpha_recomputes >= report.joins.min(report.evictions));
        assert!(report.mean_alpha > 0.0, "MHA model should engage the X-cache");
        assert!(report.step_cache_entries > 0);
        assert!(
            (report.step_cache_entries as u64) < report.steps,
            "step cache should be reused across steps"
        );
    }

    #[test]
    fn degraded_device_skews_serving_placement() {
        let sys = system(4).with_degraded_device(0, 0.25);
        let trace = TraceConfig::azure_mix(24, 7).generate();
        let mut eng = ServeEngine::new(sys, ServeConfig::new(8)).unwrap();
        // Snapshot occupancy mid-run is awkward; instead admit manually.
        let m = eng.ledger().device_count();
        assert_eq!(m, 4);
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.outcomes.len(), 24);
        // Verify skew directly on a fresh allocation.
        let placed = eng.ledger.allocate(999, 1 << 30).unwrap();
        assert!(placed[0] * 2 < placed[1], "degraded device should hold less: {placed:?}");
    }

    #[test]
    fn latency_metrics_are_sane() {
        let trace = TraceConfig::azure_mix(64, 13).generate();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(16)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        let ttft = report.ttft_stats();
        let itl = report.itl_stats();
        assert_eq!(ttft.count, 64);
        assert!(ttft.p50 > 0.0 && ttft.p50 <= ttft.p95 && ttft.p95 <= ttft.p99);
        assert!(itl.p50 > 0.0);
        assert!(report.tokens_per_second() > 0.0);
        assert!(report.token_goodput() <= report.tokens_per_second() + 1e-9);
        let strict = TraceReport { deadline_s: 1e-9, ..report.clone() };
        assert_eq!(strict.token_goodput(), 0.0, "nothing meets a 1ns deadline");
        assert_eq!(strict.deadline_hit_rate(), 0.0);
    }
}
