//! The cooperative X-cache scheduler (§4.2): the analytic α model and its
//! candidate selection.
//!
//! For an α fraction of the (batch × KV-head) shards the system stores the
//! pre-projection activation `X` instead of K/V and lets the GPU
//! re-project it, overlapped with the NSP attention on the remaining
//! `1-α`. With per-step sizes `S_X` (X bytes) and `S_KV` (KV bytes):
//!
//! * `T_PCI = α·S_X / B_PCI` — GPUDirect reads of the X shard,
//! * `T_SSD = (α·S_X + (1-α)·S_KV) / B_SSD` — total flash reads,
//! * `T_GPU = α·F_regen / C_GPU` — the K/V re-projection,
//!
//! and the best α balances the pipelined maximum. For the MHA case
//! (`S_X = S_KV/2`) setting `T_PCI = T_SSD` yields the paper's closed form
//! `α* = 2·B_PCI / (B_SSD + B_PCI)`; the runtime then snaps to the best of
//! the power-of-two candidates the paper sweeps in Fig. 13.

/// Candidate α values (the Fig. 13 sweep grid).
pub const ALPHA_CANDIDATES: [f64; 5] = [0.0, 0.125, 0.25, 0.5, 0.75];

/// Inputs of the α model for one decoding step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaModel {
    /// Bytes of the full X-cache touched per step (all layers, batch).
    pub x_bytes: f64,
    /// Bytes of the full KV cache touched per step.
    pub kv_bytes: f64,
    /// Aggregate internal flash read bandwidth, bytes/s (B_SSD).
    pub b_ssd: f64,
    /// Effective host-interconnect bandwidth for X reads, bytes/s (B_PCI).
    pub b_pci: f64,
    /// FLOPs to regenerate K/V from the entire X-cache (α = 1).
    pub regen_flops: f64,
    /// GPU throughput in FLOP/s (C_GPU).
    pub c_gpu: f64,
}

impl AlphaModel {
    /// The closed-form balance point of `T_PCI = T_SSD` (ignoring
    /// `T_GPU`), clamped to `[0, 1]`. Returns 0 when the X-cache is at
    /// least as large as the KV cache (aggressive GQA), where caching `X`
    /// can only add traffic.
    pub fn closed_form_alpha(&self) -> f64 {
        if self.x_bytes >= self.kv_bytes {
            return 0.0;
        }
        let denom = self.x_bytes * (self.b_ssd - self.b_pci) + self.kv_bytes * self.b_pci;
        if denom <= 0.0 {
            return 1.0;
        }
        (self.kv_bytes * self.b_pci / denom).clamp(0.0, 1.0)
    }

    /// The pipelined step time under a given α: `max(T_GPU, T_SSD, T_PCI)`
    /// (§4.2, "assuming the regeneration computation and data transfers
    /// are well-pipelined").
    pub fn effective_seconds(&self, alpha: f64) -> f64 {
        let alpha = alpha.clamp(0.0, 1.0);
        let t_pci = alpha * self.x_bytes / self.b_pci;
        let t_ssd = (alpha * self.x_bytes + (1.0 - alpha) * self.kv_bytes) / self.b_ssd;
        let t_gpu = alpha * self.regen_flops / self.c_gpu;
        t_pci.max(t_ssd).max(t_gpu)
    }

    /// Selects the best candidate α: the [`ALPHA_CANDIDATES`] entry with
    /// the smallest modeled step time (ties go to the smaller α, which
    /// also writes less to flash — the §6.6 endurance bonus).
    pub fn select_alpha(&self) -> f64 {
        let mut best = 0.0;
        let mut best_t = self.effective_seconds(0.0);
        for &a in &ALPHA_CANDIDATES[1..] {
            let t = self.effective_seconds(a);
            if t < best_t * (1.0 - 1e-9) {
                best = a;
                best_t = t;
            }
        }
        best
    }
}

/// The paper's simplified MHA closed form: `α* = 2·B_PCI/(B_SSD + B_PCI)`.
pub fn paper_alpha_mha(b_ssd: f64, b_pci: f64) -> f64 {
    (2.0 * b_pci / (b_ssd + b_pci)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mha_model(b_ssd: f64, b_pci: f64) -> AlphaModel {
        AlphaModel {
            x_bytes: 1.0e12,
            kv_bytes: 2.0e12,
            b_ssd,
            b_pci,
            regen_flops: 1.0e12, // negligible vs. transfers
            c_gpu: 250e12,
        }
    }

    #[test]
    fn closed_form_matches_paper_equation() {
        // For S_X = S_KV/2 the general solution reduces to the paper's
        // 2·B_PCI/(B_SSD+B_PCI).
        for (b_ssd, b_pci) in [(51.2e9, 17.0e9), (12.8e9, 8.7e9), (30e9, 10e9)] {
            let m = mha_model(b_ssd, b_pci);
            let ours = m.closed_form_alpha();
            let paper = paper_alpha_mha(b_ssd, b_pci);
            assert!((ours - paper).abs() < 1e-12, "{ours} vs {paper}");
        }
    }

    #[test]
    fn bandwidth_ratio_three_gives_half() {
        // §6.4: B_SSD/B_PCI ≈ 3 ⇒ α* ≈ 50%, and the candidate search
        // picks 0.5.
        let m = mha_model(51.0e9, 17.0e9);
        assert!((m.closed_form_alpha() - 0.5).abs() < 0.01);
        assert_eq!(m.select_alpha(), 0.5);
    }

    #[test]
    fn xcache_disabled_for_aggressive_gqa() {
        // When X is no smaller than KV (e.g. Qwen2.5's d_group = 5),
        // X-caching only adds flash traffic: α must be 0.
        let m = AlphaModel {
            x_bytes: 2.5e12,
            kv_bytes: 1.0e12,
            b_ssd: 51.2e9,
            b_pci: 17.0e9,
            regen_flops: 1e12,
            c_gpu: 250e12,
        };
        assert_eq!(m.closed_form_alpha(), 0.0);
        assert_eq!(m.select_alpha(), 0.0);
    }

    #[test]
    fn selected_alpha_never_worse_than_zero() {
        for b_pci in [5e9, 10e9, 20e9, 40e9] {
            let m = mha_model(51.2e9, b_pci);
            let a = m.select_alpha();
            assert!(m.effective_seconds(a) <= m.effective_seconds(0.0) + 1e-12);
        }
    }

    #[test]
    fn gpu_bound_regime_reduces_alpha() {
        // A weak GPU makes T_GPU dominate: the selector should back off
        // from the transfer-balanced α.
        let weak = AlphaModel { c_gpu: 1e12, regen_flops: 100e12, ..mha_model(51e9, 17e9) };
        let strong = AlphaModel { c_gpu: 1e15, ..weak };
        assert!(weak.select_alpha() <= strong.select_alpha());
    }

    #[test]
    fn effective_time_is_max_of_terms() {
        let m = mha_model(51e9, 17e9);
        // α = 0: pure SSD time.
        assert!((m.effective_seconds(0.0) - m.kv_bytes / m.b_ssd).abs() < 1e-9);
        // α = 1 with tiny regen: max(PCI, SSD-with-X-only).
        let t1 = m.effective_seconds(1.0);
        let expect = (m.x_bytes / m.b_pci).max(m.x_bytes / m.b_ssd);
        assert!((t1 - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn paper_alpha_clamped() {
        assert_eq!(paper_alpha_mha(1e9, 10e9), 1.0);
        assert!((paper_alpha_mha(3e9, 1e9) - 0.5).abs() < 1e-12);
    }
}
