//! Task-graph builders for the HILOS decode and prefill pipelines.
//!
//! One decoding step (Fig. 4a / Fig. 5b) becomes a [`TaskGraph`] over the
//! built system's resources. Per layer:
//!
//! 1. attention weights stream to the GPU (from host DRAM, or from the
//!    devices via GPUDirect for >100B models),
//! 2. the GPU projects Q/K/V and scatters the fresh vectors to the NSP
//!    devices,
//! 3. each device reads its KV shard over its *internal* P2P path while
//!    its accelerator computes attention (pipelined: the slower gates),
//! 4. in parallel, the α-fraction X-cache shards stream to the GPU via
//!    GPUDirect Storage, are re-projected, and attended on the GPU,
//! 5. with delayed writeback the CPU pre-computes partial `QKᵀ` for the
//!    buffered tail; spills are background tasks that contend for
//!    bandwidth without gating the step,
//! 6. MLP weights stream and the GPU runs the feed-forward block.
//!
//! Weight loads chain layer-to-layer (prefetch depth 1), so transfer and
//! compute overlap exactly as FlexGen-style runtimes schedule them.

use crate::config::HilosConfig;
use hilos_llm::ModelConfig;
use hilos_platform::BuiltSystem;
use hilos_sim::{TaskGraph, TaskId};

/// Calibrated efficiency of GPUDirect Storage reads relative to raw link
/// bandwidth. The paper's profiled `B_SSD/B_PCI ≈ 3` (§6.4) on a testbed
/// whose raw ratio is ≈1.6 implies GDS sustains roughly half the link
/// rate; 0.55 reproduces the measured ratio.
pub const GDS_EFFICIENCY: f64 = 0.55;

/// Firmware cost of one *sub-page* flash write on the naive write-through
/// path: a read-modify-write of a 4 KiB page for a 256 B KV entry (§4.3) —
/// a NAND page read (~60 µs) plus a program (~400 µs), partially pipelined
/// across planes.
pub const SUB_PAGE_WRITE_PENALTY_S: f64 = 250e-6;

/// Where the model weights live (§6.1: >100B models spill to storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightSource {
    /// Weights fit in host DRAM.
    HostDram,
    /// Weights striped across the storage devices.
    Storage,
}

/// Decides where weights live: host DRAM if they fit beside a working-set
/// reserve, otherwise storage. Following §6.1, models above 100 B
/// parameters (200 GB at FP16) are always placed on storage — DRAM must
/// keep room for the writeback buffers and pinned I/O staging.
pub fn weight_source(sys: &BuiltSystem, model: &ModelConfig, reserve_bytes: u64) -> WeightSource {
    const HUNDRED_B_PARAMS_BYTES: u64 = 200_000_000_000;
    if model.weight_bytes() > HUNDRED_B_PARAMS_BYTES
        || model.weight_bytes() + reserve_bytes > sys.spec.host.dram_bytes
    {
        WeightSource::Storage
    } else {
        WeightSource::HostDram
    }
}

/// Appends a weight transfer of `bytes` to the GPU and returns the task
/// that gates dependent compute. Chained on `prev` to model a depth-1
/// prefetch stream.
pub fn load_weights(
    graph: &mut TaskGraph,
    sys: &BuiltSystem,
    source: WeightSource,
    label: &str,
    bytes: f64,
    prev: Option<TaskId>,
) -> TaskId {
    let deps: Vec<TaskId> = prev.into_iter().collect();
    match source {
        WeightSource::HostDram => {
            let mut route = vec![sys.host_dram];
            route.extend(sys.host_to_gpu_route());
            graph.transfer(label, bytes, route, &deps)
        }
        WeightSource::Storage => {
            let n = sys.devices.len();
            let per = bytes / n as f64;
            let mut parts = Vec::with_capacity(n);
            for d in 0..n {
                let mut route = vec![sys.devices[d].ssd.read_resource()];
                route.extend(sys.device_to_gpu_route(d));
                parts.push(graph.transfer(format!("{label}.d{d}"), per, route, &deps));
            }
            graph.milestone(format!("{label}.done"), &parts)
        }
    }
}

/// Parameters of one simulated decoding step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeStepSpec {
    /// Batch size.
    pub batch: u32,
    /// Context length at this step.
    pub context: u64,
    /// X-cache fraction in `[0, 1]`.
    pub alpha: f64,
    /// Tokens per sequence buffered in host memory (delayed writeback).
    pub buffered_tokens: u32,
    /// Whether the buffer spills this step.
    pub spill_now: bool,
    /// Tokens spilled if spilling.
    pub spill_tokens: u32,
    /// Number of transformer layers to materialize (the runner scales the
    /// makespan to the model's full depth).
    pub sim_layers: u32,
}

/// Builds the task graph of one HILOS decoding step.
///
/// # Panics
///
/// Panics if the system has no accelerator-equipped devices (callers
/// validate with [`crate::HilosSystem::new`]).
pub fn build_hilos_decode_step(
    sys: &BuiltSystem,
    model: &ModelConfig,
    config: &HilosConfig,
    step: &DecodeStepSpec,
) -> TaskGraph {
    build_hilos_decode_step_sharded(sys, model, config, step, 1)
}

/// [`build_hilos_decode_step`] with the per-device ANS sub-graphs built
/// on up to `threads` workers.
///
/// The devices' step-3 fragments (scatter → store → load-KV → attention →
/// gather) are independent given the QKV projection, so each is assembled
/// against a local placeholder via [`hilos_accel::parallel_map`] and
/// grafted back in device order — the result is task-for-task identical
/// to the serial build for any thread count (pinned by a test), so
/// callers trade nothing for the fan-out.
pub fn build_hilos_decode_step_sharded(
    sys: &BuiltSystem,
    model: &ModelConfig,
    config: &HilosConfig,
    step: &DecodeStepSpec,
    threads: usize,
) -> TaskGraph {
    let mut g = TaskGraph::new();
    let n = sys.devices.len();
    let bs = step.batch as f64;
    let s = step.context as f64;
    let h = model.hidden() as f64;
    let kv_dim = model.kv_dim() as f64;
    let d_head = model.head_dim() as f64;
    let heads = model.heads() as f64;
    let alpha = step.alpha;
    let wb = config.delayed_writeback();
    let source = weight_source(sys, model, 32 << 30);

    // Per-layer byte/FLOP quantities.
    let s_stored = (s - step.buffered_tokens as f64).max(0.0);
    let kv_layer_bytes = bs * 2.0 * s_stored * kv_dim * 2.0;
    let x_layer_bytes = bs * s * h * 2.0;
    let qkv_flops = bs * model.qkv_flops_per_token_layer();
    let atn_flops_layer = bs * heads * 4.0 * s * d_head;
    let regen_flops_layer = 4.0 * alpha * bs * s * h * kv_dim;
    let scatter_bytes = (1.0 - alpha) * bs * (h + 2.0 * kv_dim) * 2.0;
    let gather_bytes = (1.0 - alpha) * bs * h * 2.0;
    let page = sys.spec.storage.ssd_spec().page_bytes() as f64;

    let mut prev_w: Option<TaskId> = None;
    let mut prev_layer: Option<TaskId> = None;

    for l in 0..step.sim_layers {
        // -- 1: attention weights --
        let w_attn = load_weights(
            &mut g,
            sys,
            source,
            &format!("loadw:attn{l}"),
            model.attn_weight_bytes_per_layer() as f64,
            prev_w,
        );
        // -- 2: QKV projection --
        let mut qkv_deps = vec![w_attn];
        qkv_deps.extend(prev_layer);
        let qkv = g.compute(format!("qkv:l{l}"), qkv_flops, sys.gpu, &qkv_deps);

        let mut atn_parts: Vec<TaskId> = Vec::new();

        // -- 3: ANS portion on the devices --
        if alpha < 1.0 {
            // Each device's fragment depends only on `qkv`, so it is
            // built against a local placeholder (possibly on another
            // worker) and grafted back in device order — task for task
            // the graph the old serial loop appended.
            let build_device = |d: usize, dev: &hilos_platform::DeviceResources| -> TaskGraph {
                let mut sub = TaskGraph::new();
                let qkv = sub.milestone("ext:qkv", &[]);
                let scatter = sub.transfer(
                    format!("scatter:qkv{l}.d{d}"),
                    scatter_bytes / n as f64,
                    sys.gpu_to_device_route(d),
                    &[qkv],
                );
                // Naive write-through: sub-page KV writes gate the read,
                // each entry paying a page read-modify-write in firmware.
                let mut read_deps = vec![scatter];
                if !wb {
                    let entries = ((1.0 - alpha) * bs * model.kv_heads() as f64 / n as f64).ceil();
                    let write = dev.ssd.write_task(
                        &mut sub,
                        &format!("storekv:l{l}.d{d}"),
                        entries * page, // each 256 B entry programs a page
                        &sys.gpu_to_device_route(d),
                        &[qkv],
                    );
                    let rmw = sub.delay(
                        format!("storekv:rmw{l}.d{d}"),
                        hilos_sim::SimTime::from_secs_f64(entries * SUB_PAGE_WRITE_PENALTY_S),
                        &[write],
                    );
                    read_deps.push(rmw);
                }
                let mut internal_route = Vec::new();
                if let Some(p2p) = dev.internal_path {
                    internal_route.push(p2p);
                }
                if let Some(dram) = dev.fpga_dram {
                    internal_route.push(dram);
                }
                let read = dev.ssd.read_task(
                    &mut sub,
                    &format!("loadkv:l{l}.d{d}"),
                    (1.0 - alpha) * kv_layer_bytes / n as f64,
                    &internal_route,
                    &read_deps,
                );
                let accel = dev.accel.expect("HILOS requires accelerator-equipped devices");
                let atn = sub.compute(
                    format!("atn:l{l}.d{d}"),
                    (1.0 - alpha) * atn_flops_layer / n as f64,
                    accel,
                    &[scatter],
                );
                sub.transfer(
                    format!("gather:out{l}.d{d}"),
                    gather_bytes / n as f64,
                    sys.device_to_host_route(d),
                    &[read, atn],
                );
                sub
            };
            let subs = hilos_accel::parallel_map(&sys.devices, threads, build_device);
            for sub in subs {
                let ids = g.graft(sub, &[qkv]);
                // The gather is each fragment's last task.
                atn_parts.push(*ids.last().expect("device fragment is never empty"));
            }
        }

        // -- 5: host partial QK^T for the buffered tail, plus the tail's
        // V rows and score scalars shipped to the devices --
        if wb && step.buffered_tokens > 0 {
            let flops = 2.0 * bs * heads * d_head * step.buffered_tokens as f64 * (1.0 - alpha);
            let partial = g.compute(format!("partial:l{l}"), flops, sys.cpu, &[qkv]);
            let tail_bytes = step.buffered_tokens as f64
                * bs
                * (1.0 - alpha)
                * (kv_dim * 2.0 + heads * 4.0 / kv_dim.max(1.0))
                / n as f64;
            for d in 0..n {
                let mut route = vec![sys.host_dram];
                route.extend(sys.host_to_device_route(d));
                atn_parts.push(g.transfer(
                    format!("tailv:l{l}.d{d}"),
                    tail_bytes,
                    route,
                    &[partial],
                ));
            }
            atn_parts.push(partial);
        }

        // -- 4: cooperative X-cache portion on the GPU --
        if alpha > 0.0 {
            let dev_link_bw = sys.effective_pci_bw() / n as f64;
            for (d, dev) in sys.devices.iter().enumerate() {
                let mut route = vec![dev.ssd.read_resource()];
                route.extend(sys.device_to_gpu_route(d));
                let lx = g.transfer_capped(
                    format!("loadx:l{l}.d{d}"),
                    alpha * x_layer_bytes / n as f64,
                    route,
                    GDS_EFFICIENCY * dev_link_bw,
                    &[qkv],
                );
                atn_parts.push(lx);
            }
            let regen = g.compute(format!("regen:l{l}"), regen_flops_layer, sys.gpu, &[qkv]);
            let atnx = g.compute(format!("atnx:l{l}"), alpha * atn_flops_layer, sys.gpu, &[qkv]);
            let atnx_mem = g.transfer(
                format!("atnxmem:l{l}"),
                alpha * bs * 3.0 * s * h * 2.0,
                vec![sys.gpu_hbm],
                &[qkv],
            );
            atn_parts.push(regen);
            atn_parts.push(atnx);
            atn_parts.push(atnx_mem);
        }

        let atn_done = g.milestone(format!("sync:atn{l}"), &atn_parts);

        // -- 6: MLP --
        let w_mlp = load_weights(
            &mut g,
            sys,
            source,
            &format!("loadw:mlp{l}"),
            (model.decode_weight_traffic_bytes(step.batch) / model.layers() as u64
                - model.attn_weight_bytes_per_layer()) as f64,
            Some(w_attn),
        );
        let mlp = g.compute(
            format!("mlp:l{l}"),
            bs * model.mlp_flops_per_token_layer(l),
            sys.gpu,
            &[w_mlp, atn_done],
        );

        // -- background spill of the buffered tail: per-head chunks, so
        // sub-page intervals (c < 16 on 4 KiB pages) amplify the write --
        if wb && step.spill_now {
            let kv_chunk = (step.spill_tokens as f64 * 2.0 * d_head * 2.0).max(1.0);
            let kv_waf = (kv_chunk / page).ceil() * page / kv_chunk;
            let spill_payload = step.spill_tokens as f64
                * bs
                * ((1.0 - alpha) * 2.0 * kv_dim * kv_waf + alpha * h)
                * 2.0
                / n as f64;
            let pages = (spill_payload / page).ceil();
            for (d, dev) in sys.devices.iter().enumerate() {
                let spill = dev.ssd.write_task(
                    &mut g,
                    &format!("spill:l{l}.d{d}"),
                    pages * page,
                    &sys.host_to_device_route(d),
                    &[qkv],
                );
                g.set_background(spill);
            }
        }

        prev_layer = Some(mlp);
        prev_w = Some(w_mlp);
    }
    g
}

/// Builds the task graph of the prefill phase: chunked FlashAttention on
/// the GPU with streamed weights, then page-aligned KV/X writes to the
/// devices (the row-wise layout of §4.3).
pub fn build_hilos_prefill(
    sys: &BuiltSystem,
    model: &ModelConfig,
    batch: u32,
    context: u64,
    alpha: f64,
    sim_layers: u32,
) -> TaskGraph {
    let mut g = TaskGraph::new();
    let n = sys.devices.len();
    let bs = batch as f64;
    let s = context as f64;
    let source = weight_source(sys, model, 32 << 30);
    let per_layer_flops = bs * model.prefill_flops(context) / model.layers() as f64;
    let kv_layer_bytes = bs * 2.0 * s * model.kv_dim() as f64 * 2.0;
    let x_layer_bytes = bs * s * model.hidden() as f64 * 2.0;
    let write_bytes = ((1.0 - alpha) * kv_layer_bytes + alpha * x_layer_bytes) / n as f64;

    let mut prev_w: Option<TaskId> = None;
    let mut prev_layer: Option<TaskId> = None;
    for l in 0..sim_layers {
        let w = load_weights(
            &mut g,
            sys,
            source,
            &format!("loadw:pf{l}"),
            (model.attn_weight_bytes_per_layer()
                + model.decode_weight_traffic_bytes(batch) / model.layers() as u64)
                as f64,
            prev_w,
        );
        let mut deps = vec![w];
        deps.extend(prev_layer);
        let compute = g.compute(format!("prefill:l{l}"), per_layer_flops, sys.gpu, &deps);
        // Row-wise KV/X writes: large and page-aligned, so they run at
        // full sequential bandwidth.
        let mut writes = Vec::with_capacity(n);
        for (d, dev) in sys.devices.iter().enumerate() {
            writes.push(dev.ssd.write_task(
                &mut g,
                &format!("writekv:pf{l}.d{d}"),
                write_bytes,
                &sys.gpu_to_device_route(d),
                &[compute],
            ));
        }
        let done = g.milestone(format!("sync:pf{l}"), &writes);
        prev_layer = Some(done);
        prev_w = Some(w);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_accel::AccelTimingModel;
    use hilos_llm::presets;
    use hilos_platform::SystemSpec;
    use hilos_sim::execute;

    fn built(n: usize, d_group: u32) -> BuiltSystem {
        BuiltSystem::build(
            &SystemSpec::a100_smartssd(n),
            Some(&AccelTimingModel::smartssd(d_group)),
            128,
        )
        .unwrap()
    }

    fn default_step(batch: u32, context: u64, alpha: f64) -> DecodeStepSpec {
        DecodeStepSpec {
            batch,
            context,
            alpha,
            buffered_tokens: 8,
            spill_now: false,
            spill_tokens: 0,
            sim_layers: 4,
        }
    }

    #[test]
    fn decode_graph_executes() {
        let model = presets::opt_66b();
        let mut sys = built(8, 1);
        let cfg = HilosConfig::new(8);
        let g = build_hilos_decode_step(&sys, &model, &cfg, &default_step(16, 32 * 1024, 0.5));
        let tl = execute(&mut sys.engine, &g).unwrap();
        assert!(tl.makespan().as_secs_f64() > 0.0);
    }

    #[test]
    fn xcache_reduces_step_time_for_mha() {
        let model = presets::opt_66b();
        let cfg = HilosConfig::new(8);
        let run = |alpha: f64| {
            let mut sys = built(8, 1);
            let g =
                build_hilos_decode_step(&sys, &model, &cfg, &default_step(16, 32 * 1024, alpha));
            execute(&mut sys.engine, &g).unwrap().makespan().as_secs_f64()
        };
        let plain = run(0.0);
        let xcached = run(0.5);
        assert!(xcached < plain * 0.85, "X-cache should cut the step: {xcached} vs {plain}");
    }

    #[test]
    fn writeback_beats_naive_write_through() {
        let model = presets::opt_66b();
        let run = |wb: bool| {
            let mut sys = built(8, 1);
            let cfg = HilosConfig::new(8).with_writeback(wb).with_xcache(false);
            let mut step = default_step(16, 16 * 1024, 0.0);
            if !wb {
                step.buffered_tokens = 0;
            }
            let g = build_hilos_decode_step(&sys, &model, &cfg, &step);
            execute(&mut sys.engine, &g).unwrap().makespan().as_secs_f64()
        };
        let naive = run(false);
        let delayed = run(true);
        assert!(delayed < naive, "WB should win: {delayed} vs {naive}");
    }

    #[test]
    fn more_devices_scale_ans_throughput() {
        let model = presets::opt_66b();
        let run = |n: usize| {
            let mut sys = built(n, 1);
            let cfg = HilosConfig::new(n);
            let g = build_hilos_decode_step(&sys, &model, &cfg, &default_step(16, 64 * 1024, 0.0));
            execute(&mut sys.engine, &g).unwrap().makespan().as_secs_f64()
        };
        let t4 = run(4);
        let t16 = run(16);
        assert!(t16 < t4 / 2.0, "16 devices should be >2x faster: {t16} vs {t4}");
    }

    #[test]
    fn spills_do_not_gate_the_step() {
        let model = presets::opt_66b();
        let cfg = HilosConfig::new(8);
        let run = |spill: bool| {
            let mut sys = built(8, 1);
            let mut step = default_step(16, 32 * 1024, 0.5);
            step.spill_now = spill;
            step.spill_tokens = 16;
            let g = build_hilos_decode_step(&sys, &model, &cfg, &step);
            execute(&mut sys.engine, &g).unwrap().makespan().as_secs_f64()
        };
        let quiet = run(false);
        let spilling = run(true);
        // Spills contend a little but must not serialize into the step.
        assert!(spilling < quiet * 1.25, "spill stalled the step: {spilling} vs {quiet}");
    }

    #[test]
    fn sharded_step_build_is_identical_for_any_thread_count() {
        let model = presets::opt_66b();
        let sys = built(8, 1);
        // Cover both the write-through (rmw sub-tasks) and writeback
        // device fragments, with and without the X-cache sections.
        for (wb, alpha) in [(false, 0.0), (true, 0.5), (false, 0.5)] {
            let cfg = HilosConfig::new(8).with_writeback(wb);
            let mut step = default_step(16, 32 * 1024, alpha);
            if !wb {
                step.buffered_tokens = 0;
            }
            let serial = build_hilos_decode_step_sharded(&sys, &model, &cfg, &step, 1);
            for threads in [2, 8] {
                let sharded = build_hilos_decode_step_sharded(&sys, &model, &cfg, &step, threads);
                assert_eq!(serial, sharded, "graph diverged at threads={threads} wb={wb}");
            }
        }
    }

    #[test]
    fn weight_source_selection() {
        let sys = built(8, 1);
        assert_eq!(weight_source(&sys, &presets::opt_66b(), 32 << 30), WeightSource::HostDram);
        assert_eq!(weight_source(&sys, &presets::opt_175b(), 32 << 30), WeightSource::Storage);
    }

    #[test]
    fn prefill_graph_executes_and_scales_with_context() {
        let model = presets::opt_30b();
        let run = |s: u64| {
            let mut sys = built(8, 1);
            let g = build_hilos_prefill(&sys, &model, 4, s, 0.5, 4);
            execute(&mut sys.engine, &g).unwrap().makespan().as_secs_f64()
        };
        let t16 = run(16 * 1024);
        let t32 = run(32 * 1024);
        assert!(t32 > 1.5 * t16, "prefill should grow superlinearly-ish: {t32} vs {t16}");
    }
}
