//! The paper's middleware components (Fig. 8), as a façade over the
//! schedulers: *Inference Controller*, *Cache Scheduler*, *Writeback
//! Manager* and *Weights Prefetcher*.
//!
//! [`HilosSystem`](crate::HilosSystem) is the Inference Controller;
//! [`WritebackManager`](crate::WritebackManager) matches its paper name
//! already. This module adds the remaining two under their paper names so
//! the public API reads like the system diagram.

use crate::scheduler::{weight_source, WeightSource, GDS_EFFICIENCY};
use crate::xcache::AlphaModel;
use hilos_llm::ModelConfig;
use hilos_platform::BuiltSystem;

/// The *Cache Scheduler* (Fig. 8): decides the X-cache ratio and the
/// KV/X partition for a job on a built system (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheScheduler;

impl CacheScheduler {
    /// Creates a scheduler.
    pub fn new() -> Self {
        CacheScheduler
    }

    /// Builds the §4.2 α model for a job on a system.
    pub fn alpha_model(
        &self,
        sys: &BuiltSystem,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> AlphaModel {
        let bs = batch as f64;
        let s = context as f64;
        let layers = model.layers() as f64;
        AlphaModel {
            x_bytes: bs * s * model.hidden() as f64 * 2.0 * layers,
            kv_bytes: bs * 2.0 * s * model.kv_dim() as f64 * 2.0 * layers,
            b_ssd: sys.aggregate_internal_read_bw(),
            b_pci: sys.effective_pci_bw() * GDS_EFFICIENCY,
            regen_flops: 4.0 * bs * s * model.hidden() as f64 * model.kv_dim() as f64 * layers,
            c_gpu: sys.spec.gpu.fp16_flops,
        }
    }

    /// Selects α for the job (the ratio the prefill partition uses).
    pub fn select_alpha(
        &self,
        sys: &BuiltSystem,
        model: &ModelConfig,
        batch: u32,
        context: u64,
    ) -> f64 {
        self.alpha_model(sys, model, batch, context).select_alpha()
    }
}

/// The *Weights Prefetcher* (Fig. 8): placement decision and per-step
/// weight traffic for a model on a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightsPrefetcher;

impl WeightsPrefetcher {
    /// Creates a prefetcher.
    pub fn new() -> Self {
        WeightsPrefetcher
    }

    /// Where the weights live (host DRAM vs storage, §6.1's >100B rule).
    pub fn placement(&self, sys: &BuiltSystem, model: &ModelConfig) -> WeightSource {
        weight_source(sys, model, 32 << 30)
    }

    /// Weight bytes staged to the GPU per decoding step for a batch.
    pub fn bytes_per_step(&self, model: &ModelConfig, batch: u32) -> u64 {
        model.decode_weight_traffic_bytes(batch)
    }

    /// Seconds the weight stream needs per step at the placement's
    /// bandwidth — the floor the KV-side optimizations cannot beat.
    pub fn stream_seconds_per_step(
        &self,
        sys: &BuiltSystem,
        model: &ModelConfig,
        batch: u32,
    ) -> f64 {
        let bytes = self.bytes_per_step(model, batch) as f64;
        let bw = match self.placement(sys, model) {
            WeightSource::HostDram => sys.spec.gpu.link.bandwidth(),
            WeightSource::Storage => {
                sys.aggregate_internal_read_bw().min(sys.spec.gpu.link.bandwidth())
            }
        };
        bytes / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_accel::AccelTimingModel;
    use hilos_llm::presets;
    use hilos_platform::SystemSpec;

    fn sys(n: usize) -> BuiltSystem {
        BuiltSystem::build(&SystemSpec::a100_smartssd(n), Some(&AccelTimingModel::smartssd(1)), 128)
            .unwrap()
    }

    #[test]
    fn cache_scheduler_matches_runner_alpha() {
        let sys = sys(16);
        let alpha = CacheScheduler::new().select_alpha(&sys, &presets::opt_66b(), 16, 32 * 1024);
        assert_eq!(alpha, 0.5, "the 16-device testbed selects 50%");
    }

    #[test]
    fn cache_scheduler_disables_xcache_for_gqa() {
        let sys = sys(16);
        let alpha = CacheScheduler::new().select_alpha(&sys, &presets::qwen25_32b(), 16, 32 * 1024);
        assert_eq!(alpha, 0.0);
    }

    #[test]
    fn prefetcher_places_large_models_on_storage() {
        let sys = sys(8);
        let p = WeightsPrefetcher::new();
        assert_eq!(p.placement(&sys, &presets::opt_66b()), WeightSource::HostDram);
        assert_eq!(p.placement(&sys, &presets::opt_175b()), WeightSource::Storage);
    }

    #[test]
    fn weight_stream_floor_is_sane() {
        let sys = sys(8);
        let p = WeightsPrefetcher::new();
        // 66B FP16 ~132 GB over a Gen4 x16 link: ~4.2 s per step.
        let t = p.stream_seconds_per_step(&sys, &presets::opt_66b(), 16);
        assert!((3.0..6.0).contains(&t), "t={t}");
        // Storage-resident 175B streams slower.
        let t175 = p.stream_seconds_per_step(&sys, &presets::opt_175b(), 16);
        assert!(t175 > t);
    }
}
