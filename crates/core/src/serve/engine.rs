//! The policy-generic serving engine: executes [`SchedDecision`]s under
//! the ledger/batch invariants and runs the continuous-batching decode
//! loop (see the [module docs](super) for the step anatomy).

use super::policy::{Fifo, SchedDecision, SchedulingPolicy};
use super::snapshot::{InFlightView, QueuedView, SchedSnapshot};
use super::{RequestOutcome, TraceReport};
use crate::runner::{CoreError, HilosSystem};
use crate::scheduler::{weight_source, WeightSource};
use crate::step::{AlphaSelector, DecodeStepExecutor};
use crate::writeback::{SpillDecision, WritebackManager};
use hilos_llm::Request;
use hilos_storage::KvShardLedger;
use std::collections::{HashMap, VecDeque};

/// Configuration of the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum requests decoded together (admission cap).
    pub max_batch: u32,
    /// Per-request end-to-end deadline for goodput accounting, seconds.
    pub deadline_s: f64,
    /// Context quantum of the step-time cache: batches whose mean context
    /// rounds to the same *nearest* multiple share one simulated step
    /// (the quantum shrinks automatically for short contexts so relative
    /// error stays bounded). Smaller is more faithful, larger is faster.
    pub ctx_quantum: u64,
}

impl ServeConfig {
    /// A serving configuration with the given admission cap, a 120 s
    /// deadline and a 1024-token context quantum.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: u32) -> Self {
        assert!(max_batch > 0, "need a positive batch cap");
        ServeConfig { max_batch, deadline_s: 120.0, ctx_quantum: 1024 }
    }

    /// Sets the goodput deadline.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "deadline must be positive");
        self.deadline_s = seconds;
        self
    }

    /// Sets the step-cache context quantum.
    pub fn with_ctx_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.ctx_quantum = quantum;
        self
    }
}

/// A queued request: never admitted, or preempted and awaiting
/// re-admission with retained progress.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    req: Request,
    arrival_s: f64,
    /// Tokens generated before a preemption (zero on first admission).
    emitted: u64,
    first_token_s: Option<f64>,
    /// The first admission time, kept across preemptions.
    first_admitted_s: Option<f64>,
    preemptions: u32,
}

/// A request in flight (admitted; prefilling or decoding).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: Request,
    arrival_s: f64,
    admitted_s: f64,
    /// When its prefill finishes and it may join the running batch.
    join_s: f64,
    first_token_s: Option<f64>,
    emitted: u64,
    preemptions: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StepKey {
    batch: u32,
    context: u64,
    alpha_bits: u64,
    buffered_tokens: u32,
    spill_now: bool,
    spill_tokens: u32,
}

/// The scalar slice of a [`StepOutcome`](crate::StepOutcome) the serving
/// loop consumes every step — `Copy`, so cache hits stay allocation-free
/// (the full outcome's per-category breakdown would clone a
/// `Vec<String>` per step).
#[derive(Debug, Clone, Copy)]
struct CachedStep {
    seconds: f64,
    host_pcie_bytes: f64,
    internal_read_bytes: f64,
}

/// The continuous-batching serving engine over one HILOS deployment.
#[derive(Debug)]
pub struct ServeEngine {
    system: HilosSystem,
    config: ServeConfig,
    exec: DecodeStepExecutor,
    alpha_sel: AlphaSelector,
    ledger: KvShardLedger,
    policy: Box<dyn SchedulingPolicy>,
    /// Placeable bytes of the empty array (after weight reservations) —
    /// the bound beyond which a request can never be admitted.
    max_placeable: u64,
    step_cache: HashMap<StepKey, CachedStep>,
    prefill_cache: HashMap<(u64, u64), f64>,
}

impl ServeEngine {
    /// Builds the serving engine with the default [`Fifo`] policy.
    ///
    /// # Errors
    ///
    /// Platform/capacity errors from building the world or fitting the
    /// weights.
    pub fn new(system: HilosSystem, config: ServeConfig) -> Result<Self, CoreError> {
        ServeEngine::with_policy(system, config, Box::new(Fifo))
    }

    /// Builds the serving engine around the given scheduling policy: one
    /// simulation world, the α selector at its bandwidth operating point,
    /// and the shard ledger (with storage-resident weights reserved
    /// evenly, as `weight_source` dictates for >100B models).
    ///
    /// # Errors
    ///
    /// Platform/capacity errors from building the world or fitting the
    /// weights.
    pub fn with_policy(
        system: HilosSystem,
        config: ServeConfig,
        policy: Box<dyn SchedulingPolicy>,
    ) -> Result<Self, CoreError> {
        let exec = DecodeStepExecutor::new(&system)?;
        let alpha_sel = AlphaSelector::new(system.config(), exec.system());
        let mut ledger = exec.system().kv_ledger();
        let model = system.model();
        if weight_source(exec.system(), model, 32 << 30) == WeightSource::Storage {
            ledger.reserve_evenly(model.weight_bytes()).map_err(|_| {
                CoreError::DeviceCapacityExceeded {
                    needed: model.weight_bytes(),
                    available: ledger.placeable_free(),
                }
            })?;
        }
        let max_placeable = ledger.placeable_free();
        Ok(ServeEngine {
            system,
            config,
            exec,
            alpha_sel,
            ledger,
            policy,
            max_placeable,
            step_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
        })
    }

    /// The per-device shard ledger (admission state).
    pub fn ledger(&self) -> &KvShardLedger {
        &self.ledger
    }

    /// The active scheduling policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Rounds a context to the nearest step-cache bucket. The quantum
    /// halves (down to 16 tokens) until it is at most a quarter of the
    /// context, so the rounding error is centered on zero and bounded at
    /// ~12.5% even for prompts far shorter than `ctx_quantum`.
    fn quantize(&self, ctx: u64) -> u64 {
        let ctx = ctx.max(1);
        let mut q = self.config.ctx_quantum;
        while q > 16 && q * 4 > ctx {
            q /= 2;
        }
        ((ctx + q / 2) / q).max(1) * q
    }

    /// KV/X bytes a request owns at full generation length under `alpha`.
    fn request_footprint(&self, req: &Request, alpha: f64) -> u64 {
        let m = self.system.model();
        let per_token =
            (1.0 - alpha) * m.kv_bytes_per_token() as f64 + alpha * m.x_bytes_per_token() as f64;
        (per_token * req.total_tokens() as f64) as u64
    }

    fn prefill_seconds(&mut self, prompt_len: u64, alpha: f64) -> Result<f64, CoreError> {
        let key = (self.quantize(prompt_len), alpha.to_bits());
        if let Some(&s) = self.prefill_cache.get(&key) {
            return Ok(s);
        }
        let s = self.exec.execute_prefill(1, key.0, alpha)?;
        self.prefill_cache.insert(key, s);
        Ok(s)
    }

    fn decode_step(
        &mut self,
        batch: u32,
        mean_ctx: u64,
        alpha: f64,
        decision: &SpillDecision,
    ) -> Result<CachedStep, CoreError> {
        let key = StepKey {
            batch,
            context: self.quantize(mean_ctx),
            alpha_bits: alpha.to_bits(),
            buffered_tokens: decision.buffered_tokens,
            spill_now: decision.spill_now,
            spill_tokens: decision.spill_tokens,
        };
        if let Some(&o) = self.step_cache.get(&key) {
            return Ok(o);
        }
        let o = self.exec.execute_step(batch, key.context, alpha, decision)?;
        let cached = CachedStep {
            seconds: o.seconds,
            host_pcie_bytes: o.host_pcie_bytes,
            internal_read_bytes: o.internal_read_bytes,
        };
        self.step_cache.insert(key, cached);
        Ok(cached)
    }

    /// Serves a trace of requests (sorted by `arrival_step`) to
    /// completion and reports request-level latency and throughput.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, or [`CoreError::SchedulerStalled`]
    /// if the policy holds queued requests forever with nothing in
    /// flight.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival step.
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<TraceReport, CoreError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step),
            "trace must be sorted by arrival step"
        );
        let model = self.system.model().clone();
        let wb_enabled = self.system.config().delayed_writeback();
        let mut wb = WritebackManager::new(self.system.config().spill_interval());

        let mut queue: VecDeque<QueueEntry> = VecDeque::new();
        let mut prefilling: Vec<InFlight> = Vec::new();
        let mut running: Vec<InFlight> = Vec::new();
        let mut outcomes = Vec::new();
        let mut rejected = Vec::new();

        let mut clock = 0.0f64;
        // `step` is the arrival cursor (it jumps over idle gaps);
        // `decode_steps` counts decode iterations actually executed.
        let mut step = 0u64;
        let mut decode_steps = 0u64;
        let mut idx = 0usize;
        let mut alpha = 0.0f64;
        let mut composition_changed = true;
        let mut joins = 0u64;
        let mut evictions = 0u64;
        let mut preemptions = 0u64;
        let mut alpha_recomputes = 0u64;
        let mut generated = 0u64;
        let mut peak_batch = 0u32;
        let mut alpha_steps_sum = 0.0f64;
        let mut host_bytes = 0.0f64;
        let mut internal_bytes = 0.0f64;
        let mut prefill_payload = 0.0f64;
        let mut kv_placed = vec![0.0f64; self.ledger.device_count()];
        // Memoized snapshot footprint estimates (see the snapshot build).
        let mut footprint_estimates: HashMap<u64, u64> = HashMap::new();

        while idx < trace.len()
            || !queue.is_empty()
            || !prefilling.is_empty()
            || !running.is_empty()
        {
            // 1: arrivals up to the current serving step.
            while idx < trace.len() && trace[idx].arrival_step <= step {
                queue.push_back(QueueEntry {
                    req: trace[idx],
                    arrival_s: clock,
                    emitted: 0,
                    first_token_s: None,
                    first_admitted_s: None,
                    preemptions: 0,
                });
                idx += 1;
            }
            // Fully idle with traffic still ahead: jump to the next
            // arrival (simulated time does not advance while idle).
            if running.is_empty() && prefilling.is_empty() && queue.is_empty() {
                if idx >= trace.len() {
                    break;
                }
                step = trace[idx].arrival_step;
                continue;
            }

            // 2: admission & preemption — the policy decides, the engine
            // executes under the batch-cap and shard-ledger invariants.
            // An admission-only policy ([`SchedulingPolicy::may_preempt`]
            // == false) provably has nothing to say when there is nothing
            // to admit (empty queue) or no room (full batch), so those
            // steps skip the snapshot build entirely — it is O(queue),
            // the dominant cost on a backlogged trace. Policies that may
            // preempt are consulted every step.
            let batch_full = running.len() + prefilling.len() >= self.config.max_batch as usize;
            let skip_policy = !self.policy.may_preempt() && (queue.is_empty() || batch_full);
            let decisions = if skip_policy {
                Vec::new()
            } else {
                let in_flight_len = (running.len() + prefilling.len()) as u32;
                let held = |id: u64| self.ledger.held_bytes(id).unwrap_or(0);
                let view_of = |r: &InFlight, decoding: bool| InFlightView {
                    id: r.req.id,
                    class: r.req.class,
                    priority: r.req.slo.priority,
                    arrival_s: r.arrival_s,
                    deadline_s: r.arrival_s + r.req.slo.deadline_s(),
                    emitted: r.emitted,
                    output_budget: r.req.output_budget,
                    decoding,
                    held_bytes: held(r.req.id),
                    preemptions: r.preemptions,
                };
                let mut queue_views: Vec<QueuedView> = Vec::with_capacity(queue.len());
                for q in &queue {
                    // The snapshot's footprint is an *estimate* (the
                    // engine re-derives the exact value at admission), so
                    // it is memoized per request rather than re-derived
                    // for the whole backlog on every step — α drifts with
                    // batch composition, the stored estimate does not.
                    let footprint_bytes = match footprint_estimates.get(&q.req.id) {
                        Some(&f) => f,
                        None => {
                            let admit_alpha = self.alpha_sel.select(
                                &model,
                                in_flight_len + 1,
                                q.req.prompt_len.max(1),
                            );
                            let f = self.request_footprint(&q.req, admit_alpha);
                            footprint_estimates.insert(q.req.id, f);
                            f
                        }
                    };
                    queue_views.push(QueuedView {
                        id: q.req.id,
                        class: q.req.class,
                        priority: q.req.slo.priority,
                        arrival_s: q.arrival_s,
                        deadline_s: q.arrival_s + q.req.slo.deadline_s(),
                        prompt_len: q.req.prompt_len,
                        output_budget: q.req.output_budget,
                        emitted: q.emitted,
                        preemptions: q.preemptions,
                        footprint_bytes,
                    });
                }
                let flight_views: Vec<InFlightView> = running
                    .iter()
                    .map(|r| view_of(r, true))
                    .chain(prefilling.iter().map(|p| view_of(p, false)))
                    .collect();
                let device_free = self.ledger.free_by_device();
                let snapshot = SchedSnapshot {
                    clock_s: clock,
                    step,
                    max_batch: self.config.max_batch,
                    queue: &queue_views,
                    in_flight: &flight_views,
                    device_free_bytes: &device_free,
                    placeable_free: self.ledger.placeable_free(),
                };
                self.policy.schedule(&snapshot)
            };
            let mut admissions_executed = 0usize;
            'decisions: for d in decisions {
                match d {
                    SchedDecision::Preempt { victim } => {
                        // Only decoding requests are preemptable; stale or
                        // invalid ids are ignored.
                        let Some(pos) = running.iter().position(|r| r.req.id == victim) else {
                            continue;
                        };
                        let r = running.remove(pos);
                        self.ledger.release(r.req.id).expect("running request holds allocation");
                        preemptions += 1;
                        composition_changed = true;
                        queue.push_back(QueueEntry {
                            req: r.req,
                            arrival_s: r.arrival_s,
                            emitted: r.emitted,
                            first_token_s: r.first_token_s,
                            first_admitted_s: Some(r.admitted_s),
                            preemptions: r.preemptions + 1,
                        });
                    }
                    SchedDecision::Admit { request } => {
                        if running.len() + prefilling.len() >= self.config.max_batch as usize {
                            break 'decisions;
                        }
                        let Some(pos) = queue.iter().position(|q| q.req.id == request) else {
                            continue;
                        };
                        let entry = queue[pos];
                        // α for the composition this request would join.
                        let admit_alpha = self.alpha_sel.select(
                            &model,
                            (running.len() + prefilling.len() + 1) as u32,
                            entry.req.prompt_len.max(1),
                        );
                        let footprint = self.request_footprint(&entry.req, admit_alpha);
                        // A request that can never be placed is dropped —
                        // but a preempted victim carries generated tokens,
                        // so it completes with its retained progress
                        // instead of vanishing into `rejected` (the
                        // generated-token accounting must keep summing
                        // over outcomes).
                        let drop_unplaceable =
                            |entry: QueueEntry,
                             outcomes: &mut Vec<RequestOutcome>,
                             rejected: &mut Vec<u64>,
                             clock: f64| {
                                if entry.emitted > 0 {
                                    outcomes.push(RequestOutcome {
                                        id: entry.req.id,
                                        class: entry.req.class,
                                        prompt_len: entry.req.prompt_len,
                                        output_len: entry.emitted,
                                        arrival_s: entry.arrival_s,
                                        admitted_s: entry
                                            .first_admitted_s
                                            .expect("preempted request was admitted"),
                                        first_token_s: entry
                                            .first_token_s
                                            .expect("preempted request emitted tokens"),
                                        finished_s: clock,
                                        slo_deadline_s: entry.req.slo.deadline_s(),
                                        preemptions: entry.preemptions,
                                    });
                                } else {
                                    rejected.push(entry.req.id);
                                }
                            };
                        if footprint > self.max_placeable {
                            drop_unplaceable(entry, &mut outcomes, &mut rejected, clock);
                            queue.remove(pos);
                            continue;
                        }
                        match self.ledger.allocate(entry.req.id, footprint) {
                            Ok(placed) => {
                                for (acc, &b) in kv_placed.iter_mut().zip(&placed) {
                                    *acc += b as f64;
                                }
                            }
                            Err(_) => {
                                if self.ledger.live_requests() == 0 {
                                    // Nothing live and still unplaceable
                                    // (e.g. a stripe member filled by
                                    // static reservations): the request
                                    // can never be admitted.
                                    drop_unplaceable(entry, &mut outcomes, &mut rejected, clock);
                                    queue.remove(pos);
                                    continue;
                                }
                                // Head-of-line wait: abandon the rest of
                                // this step's decisions; evictions will
                                // free space.
                                break 'decisions;
                            }
                        }
                        queue.remove(pos);
                        // A re-admitted preemption victim re-materializes
                        // the KV of its generated progress too.
                        let pf_ctx = entry.req.prompt_len + entry.emitted;
                        let pf = match self.prefill_seconds(pf_ctx, admit_alpha) {
                            Ok(pf) => pf,
                            Err(e) => {
                                // Don't leak the shard allocation on a
                                // failed prefill simulation — the engine
                                // stays reusable.
                                let _ = self.ledger.release(entry.req.id);
                                return Err(e);
                            }
                        };
                        prefill_payload +=
                            footprint as f64 * pf_ctx as f64 / entry.req.total_tokens() as f64;
                        admissions_executed += 1;
                        prefilling.push(InFlight {
                            req: entry.req,
                            arrival_s: entry.arrival_s,
                            admitted_s: entry.first_admitted_s.unwrap_or(clock),
                            join_s: clock + pf,
                            first_token_s: entry.first_token_s,
                            emitted: entry.emitted,
                            preemptions: entry.preemptions,
                        });
                    }
                }
            }
            // A policy that holds everything while nothing is in flight
            // would spin the arrival cursor forever: feed it the next
            // arrival, or fail loudly once the trace is exhausted.
            if running.is_empty()
                && prefilling.is_empty()
                && !queue.is_empty()
                && admissions_executed == 0
            {
                if idx >= trace.len() {
                    return Err(CoreError::SchedulerStalled { queued: queue.len() });
                }
                step = trace[idx].arrival_step;
                continue;
            }

            // 3: join finished prefills at this step boundary. If nothing
            // is decoding, fast-forward to the earliest join.
            if running.is_empty() && !prefilling.is_empty() {
                let earliest = prefilling.iter().map(|p| p.join_s).fold(f64::INFINITY, f64::min);
                clock = clock.max(earliest);
            }
            if !prefilling.is_empty() {
                let mut ready: Vec<InFlight> =
                    prefilling.iter().copied().filter(|p| p.join_s <= clock).collect();
                if !ready.is_empty() {
                    prefilling.retain(|p| p.join_s > clock);
                    // Deterministic join order: prefill completion, then id.
                    ready.sort_by(|a, b| {
                        a.join_s.total_cmp(&b.join_s).then(a.req.id.cmp(&b.req.id))
                    });
                    joins += ready.len() as u64;
                    running.extend(ready);
                    composition_changed = true;
                }
            }
            if running.is_empty() {
                // Prefills still in flight but none ready — can only
                // happen before the clock advance above; defensive tick.
                step += 1;
                continue;
            }

            // 4: one decode step of the running batch at its mean context.
            let batch = running.len() as u32;
            peak_batch = peak_batch.max(batch);
            let total_ctx: u64 = running.iter().map(|r| r.req.context_at(r.emitted)).sum();
            let mean_ctx = (total_ctx / batch as u64).max(1);
            if composition_changed {
                alpha = self.alpha_sel.select(&model, batch, mean_ctx);
                alpha_recomputes += 1;
                composition_changed = false;
            }
            let decision = if wb_enabled {
                wb.on_step()
            } else {
                SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 }
            };
            let outcome = self.decode_step(batch, mean_ctx, alpha, &decision)?;
            clock += outcome.seconds;
            step += 1;
            decode_steps += 1;
            generated += batch as u64;
            alpha_steps_sum += alpha;
            host_bytes += outcome.host_pcie_bytes;
            internal_bytes += outcome.internal_read_bytes;

            // Token emission + 5: eviction of completed requests.
            let mut still_running = Vec::with_capacity(running.len());
            for mut r in running {
                r.emitted += 1;
                if r.first_token_s.is_none() {
                    r.first_token_s = Some(clock);
                }
                if r.emitted >= r.req.output_budget {
                    self.ledger.release(r.req.id).expect("running request holds allocation");
                    evictions += 1;
                    outcomes.push(RequestOutcome {
                        id: r.req.id,
                        class: r.req.class,
                        prompt_len: r.req.prompt_len,
                        output_len: r.emitted,
                        arrival_s: r.arrival_s,
                        admitted_s: r.admitted_s,
                        first_token_s: r.first_token_s.unwrap(),
                        finished_s: clock,
                        slo_deadline_s: r.req.slo.deadline_s(),
                        preemptions: r.preemptions,
                    });
                    composition_changed = true;
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;
        }

        Ok(TraceReport {
            policy: self.policy.name().to_string(),
            outcomes,
            rejected,
            steps: decode_steps,
            elapsed_s: clock,
            generated_tokens: generated,
            peak_batch,
            joins,
            evictions,
            preemptions,
            alpha_recomputes,
            mean_alpha: if decode_steps > 0 { alpha_steps_sum / decode_steps as f64 } else { 0.0 },
            step_cache_entries: self.step_cache.len(),
            host_pcie_bytes: host_bytes,
            internal_read_bytes: internal_bytes,
            prefill_payload_bytes: prefill_payload,
            kv_placed_bytes: kv_placed,
            deadline_s: self.config.deadline_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy::{DeadlineEdf, PriorityPreempt};
    use super::*;
    use crate::config::HilosConfig;
    use hilos_llm::{presets, TraceConfig};
    use hilos_platform::SystemSpec;

    fn system(n: usize) -> HilosSystem {
        HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
            .unwrap()
            .with_sim_layers(1)
    }

    #[test]
    fn small_trace_completes_every_request() {
        let trace = TraceConfig::azure_mix(64, 3).generate().unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(16)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.outcomes.len(), 64);
        assert_eq!(report.policy, "fifo");
        assert!(report.rejected.is_empty());
        assert_eq!(report.preemptions, 0, "FIFO never preempts");
        assert!(report.peak_batch > 1, "continuous batching never batched");
        assert!(report.elapsed_s > 0.0);
        assert_eq!(
            report.generated_tokens,
            report.outcomes.iter().map(|o| o.output_len).sum::<u64>()
        );
        // Every request's lifecycle is ordered.
        for o in &report.outcomes {
            assert!(o.arrival_s <= o.admitted_s, "{o:?}");
            assert!(o.admitted_s < o.first_token_s, "{o:?}");
            assert!(o.first_token_s <= o.finished_s, "{o:?}");
        }
        // All shard space released at the end.
        assert_eq!(eng.ledger().live_requests(), 0);
    }

    #[test]
    fn trace_runs_are_deterministic() {
        let trace = TraceConfig::azure_mix(48, 11).generate().unwrap();
        let run =
            || ServeEngine::new(system(8), ServeConfig::new(8)).unwrap().run_trace(&trace).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        assert_eq!(a.elapsed_s.to_bits(), b.elapsed_s.to_bits());
    }

    #[test]
    fn batch_cap_bounds_concurrency() {
        let trace = TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(40, 5) }
            .generate()
            .unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(4)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.peak_batch <= 4);
        assert_eq!(report.outcomes.len(), 40);
    }

    #[test]
    fn oversized_request_is_rejected_not_wedged() {
        let mut trace = TraceConfig::azure_mix(8, 2).generate().unwrap();
        // A request whose KV footprint exceeds the whole array.
        trace[0].prompt_len = 40_000_000_000;
        trace[0].output_budget = 1;
        let mut eng = ServeEngine::new(system(4), ServeConfig::new(8)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.rejected, vec![trace[0].id]);
        assert_eq!(report.outcomes.len(), 7, "the rest of the trace still completes");
    }

    #[test]
    fn alpha_tracks_composition_changes() {
        let trace = TraceConfig::azure_mix(32, 9).generate().unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(8)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.alpha_recomputes >= report.joins.min(report.evictions));
        assert!(report.mean_alpha > 0.0, "MHA model should engage the X-cache");
        assert!(report.step_cache_entries > 0);
        assert!(
            (report.step_cache_entries as u64) < report.steps,
            "step cache should be reused across steps"
        );
    }

    #[test]
    fn degraded_device_skews_serving_placement() {
        let sys = system(4).with_degraded_device(0, 0.25);
        let trace = TraceConfig::azure_mix(24, 7).generate().unwrap();
        let mut eng = ServeEngine::new(sys, ServeConfig::new(8)).unwrap();
        // Snapshot occupancy mid-run is awkward; instead admit manually.
        let m = eng.ledger().device_count();
        assert_eq!(m, 4);
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.outcomes.len(), 24);
        // Verify skew directly on a fresh allocation.
        let placed = eng.ledger.allocate(999, 1 << 30).unwrap();
        assert!(placed[0] * 2 < placed[1], "degraded device should hold less: {placed:?}");
    }

    #[test]
    fn latency_metrics_are_sane() {
        let trace = TraceConfig::azure_mix(64, 13).generate().unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(16)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        let ttft = report.ttft_stats();
        let itl = report.itl_stats();
        assert_eq!(ttft.count, 64);
        assert!(ttft.p50 > 0.0 && ttft.p50 <= ttft.p95 && ttft.p95 <= ttft.p99);
        assert!(itl.p50 > 0.0);
        assert!(report.tokens_per_second() > 0.0);
        assert!(report.token_goodput() <= report.tokens_per_second() + 1e-9);
        let strict = TraceReport { deadline_s: 1e-9, ..report.clone() };
        assert_eq!(strict.token_goodput(), 0.0, "nothing meets a 1ns deadline");
        assert_eq!(strict.deadline_hit_rate(), 0.0);
    }

    #[test]
    fn edf_and_priority_policies_complete_the_same_workload() {
        let trace = TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(48, 21) }
            .generate()
            .unwrap();
        for policy in
            [Box::new(DeadlineEdf) as Box<dyn SchedulingPolicy>, Box::new(PriorityPreempt::new())]
        {
            let name = policy.name();
            let mut eng = ServeEngine::with_policy(system(8), ServeConfig::new(4), policy).unwrap();
            assert_eq!(eng.policy_name(), name);
            let report = eng.run_trace(&trace).unwrap();
            assert_eq!(report.policy, name);
            assert_eq!(report.outcomes.len() + report.rejected.len(), 48, "{name}");
            assert_eq!(
                report.generated_tokens,
                report.outcomes.iter().map(|o| o.output_len).sum::<u64>(),
                "{name}"
            );
            assert_eq!(eng.ledger().live_requests(), 0, "{name} leaked shard allocations");
            for o in &report.outcomes {
                assert!(o.first_token_s <= o.finished_s, "{name}: {o:?}");
            }
        }
    }

    #[test]
    fn preemption_fires_and_preserves_every_request() {
        // Balanced load on a tiny batch cap: low-priority longs get
        // admitted in quiet gaps, then arriving high-priority shorts find
        // the batch full and evict them. (Under total overload highs
        // monopolize admission instead and no preemption is ever needed.)
        let trace = TraceConfig { mean_interarrival_steps: 40, ..TraceConfig::azure_mix(96, 33) }
            .generate()
            .unwrap();
        let mut eng = ServeEngine::with_policy(
            system(8),
            ServeConfig::new(4),
            Box::new(PriorityPreempt::new()),
        )
        .unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.preemptions > 0, "contended trace should preempt");
        assert_eq!(report.outcomes.len(), 96, "preempted requests must still complete");
        assert_eq!(eng.ledger().live_requests(), 0);
        let preempted: Vec<_> = report.outcomes.iter().filter(|o| o.preemptions > 0).collect();
        assert!(!preempted.is_empty());
        for o in &preempted {
            // Retained progress: the outcome still reports the full
            // output budget, not a restart from zero.
            assert!(o.output_len > 0);
            assert!(o.first_token_s <= o.finished_s);
        }
        // Deterministic under preemption too.
        let mut eng2 = ServeEngine::with_policy(
            system(8),
            ServeConfig::new(4),
            Box::new(PriorityPreempt::new()),
        )
        .unwrap();
        assert_eq!(report, eng2.run_trace(&trace).unwrap());
    }

    #[test]
    fn refusing_policy_stalls_loudly_not_silently() {
        #[derive(Debug)]
        struct Refusenik;
        impl SchedulingPolicy for Refusenik {
            fn name(&self) -> &'static str {
                "refusenik"
            }
            fn schedule(&mut self, _: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
                Vec::new()
            }
        }
        let trace = TraceConfig::azure_mix(4, 1).generate().unwrap();
        let mut eng =
            ServeEngine::with_policy(system(4), ServeConfig::new(4), Box::new(Refusenik)).unwrap();
        match eng.run_trace(&trace) {
            Err(CoreError::SchedulerStalled { queued }) => assert_eq!(queued, 4),
            other => panic!("expected SchedulerStalled, got {other:?}"),
        }
    }
}
