//! The policy-generic serving engine: executes [`SchedDecision`]s under
//! the ledger/batch invariants and runs the continuous-batching decode
//! loop (see the [module docs](super) for the step anatomy).
//!
//! Internally the loop is split into a *stepwise core*
//! ([`ServeEngine::advance_once`] over a [`RunState`]) and a thin driver
//! ([`ServeEngine::run_trace`]). The split exists for the cluster layer
//! ([`crate::cluster`]): a [`ClusterEngine`](crate::cluster::ClusterEngine)
//! drives N engines' run states in lockstep under one global arrival
//! cursor, dispatching each arrival through a routing policy instead of
//! a fixed trace. The single-deployment driver performs *exactly* the
//! iteration sequence the pre-split loop did — the FIFO golden test pins
//! it bit for bit.

use super::policy::{Fifo, SchedDecision, SchedulingPolicy};
use super::snapshot::{InFlightView, QueuedView, SchedSnapshot};
use super::{RequestOutcome, ShedOutcome, TraceReport};
use crate::runner::{CoreError, HilosSystem};
use crate::scheduler::{weight_source, WeightSource};
use crate::step::{AlphaSelector, DecodeStepExecutor};
use crate::writeback::{SpillDecision, WritebackManager};
use hilos_llm::{DeploymentId, ModelConfig, Request};
use hilos_metrics::{PrefillBreakdown, PrefixCacheStats};
use hilos_sim::FlowEngineImpl;
use hilos_storage::{KvShardLedger, KvTier, KvTierLadder, PrefixCacheIndex, SsdSpec, TierTraffic};
use hilos_trace::{Event, EventKind, EventRing, NullSink, TraceSink};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, RwLock};

/// Context quantum of the chunk-path prefill memoization. Chunk cursors
/// are rounded to this *fixed* grid — unlike the adaptive
/// [`ServeConfig::ctx_quantum`] rounding, a fixed grid keeps per-chunk
/// times telescoping to the same whole-prompt total whatever the chunk
/// size (the conservation property the proptests pin: chunked and lump
/// ingestion of the same prompt cost the same total seconds).
const PREFILL_CHUNK_QUANTUM: u64 = 64;

/// How prompt ingestion shares the serving step with decoding.
///
/// The paper's pipeline runs prefill and decode as separate phases of
/// one uniform job; under *serving*, prompt ingestion of newly admitted
/// requests competes with the running batch's token generation for the
/// same device bandwidth. `ChunkMode` selects how the engine models that
/// contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkMode {
    /// Legacy side-prefill: an admitted request's whole-prompt prefill
    /// is simulated once and runs fully overlapped with decoding,
    /// joining the batch when its completion time passes. Optimistic —
    /// prompt ingestion is never charged to the step — and bit-identical
    /// to the pre-chunking engine (golden-pinned). The default.
    Off,
    /// Inline whole-prompt prefill: an admitted prompt is ingested in
    /// one piece *inside* the serving step, monopolizing the devices
    /// until it completes (a vLLM-style prefill iteration). The
    /// interference baseline chunked prefill is measured against: every
    /// running decode's inter-token latency absorbs the full prompt.
    Lump,
    /// Token-budgeted chunked prefill: each step the running decode
    /// batch reserves one budget token per sequence, and the remaining
    /// budget ingests up to `chunk_tokens` of each pending prompt (in
    /// admission order), so long prompts interleave with decoding
    /// instead of stalling it — bounded inter-token inflation per step.
    Chunked {
        /// Most prompt tokens one request ingests per step.
        chunk_tokens: u64,
        /// Per-step token budget shared by decode and prefill chunks.
        step_budget_tokens: u64,
    },
}

impl ChunkMode {
    /// The default chunked operating point: 256-token chunks under a
    /// 2048-token step budget.
    pub fn chunked() -> Self {
        ChunkMode::Chunked { chunk_tokens: 256, step_budget_tokens: 2048 }
    }

    /// Whether prefill executes inside the serving step (any mode but
    /// [`ChunkMode::Off`]).
    pub fn is_inline(&self) -> bool {
        !matches!(self, ChunkMode::Off)
    }

    /// The `(chunk, budget)` knobs of the inline modes ([`ChunkMode::Lump`]
    /// is unbounded on both axes).
    fn knobs(&self) -> (u64, u64) {
        match *self {
            ChunkMode::Off | ChunkMode::Lump => (u64::MAX, u64::MAX),
            ChunkMode::Chunked { chunk_tokens, step_budget_tokens } => {
                (chunk_tokens, step_budget_tokens)
            }
        }
    }
}

/// Sizing of the prefix KV cache and its HBM→DRAM→SSD residency ladder.
///
/// The SSD rung's capacity comes from the deployment's own device array
/// (one [`SsdSpec::smartssd_nvme`] per shard-ledger device); only the two
/// hot rungs are sized here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// HBM rung capacity reserved for cached prefix KV, bytes.
    pub hbm_bytes: u64,
    /// Host-DRAM staging rung capacity, bytes.
    pub dram_bytes: u64,
    /// Prefix block granularity in tokens: probes hit whole blocks only,
    /// and published prefixes round down to the block grid.
    pub block_tokens: u64,
}

impl Default for PrefixCacheConfig {
    /// 4 GiB of HBM and 32 GiB of DRAM over 64-token blocks.
    fn default() -> Self {
        PrefixCacheConfig { hbm_bytes: 4 << 30, dram_bytes: 32 << 30, block_tokens: 64 }
    }
}

/// Configuration of the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum requests decoded together (admission cap).
    pub max_batch: u32,
    /// Per-request end-to-end deadline for goodput accounting, seconds.
    pub deadline_s: f64,
    /// Context quantum of the step-time cache: batches whose mean context
    /// rounds to the same *nearest* multiple share one simulated step
    /// (the quantum shrinks automatically for short contexts so relative
    /// error stays bounded). Smaller is more faithful, larger is faster.
    pub ctx_quantum: u64,
    /// How prompt ingestion shares the step with decoding (defaults to
    /// the legacy side-prefill [`ChunkMode::Off`]).
    pub chunk_mode: ChunkMode,
    /// Which rate-sharing implementation the underlying flow engine uses.
    /// The default [`FlowEngineImpl::ProgressiveFilling`] is the oracle
    /// every golden pin is taken under; [`FlowEngineImpl::VirtualTime`]
    /// is the O(log n) fast path for very large traces.
    pub flow_impl: FlowEngineImpl,
    /// Workers building the per-device sub-graphs of each simulated step
    /// (intra-step sharding). Outcomes are identical for any value —
    /// pinned by a determinism test — so this is purely a wall-clock
    /// knob. Defaults to 1 (serial).
    pub step_threads: usize,
    /// Prefix KV-cache reuse over a tiered residency ladder: admissions
    /// probe for cached shared prefixes and skip that much prefill, and
    /// preemption victims demote their KV down the ladder instead of
    /// discarding it. `None` (the default) disables the cache entirely —
    /// the engine is then bit-identical to the pre-cache loop
    /// (golden-pinned).
    pub prefix_cache: Option<PrefixCacheConfig>,
    /// Lifecycle-event tracing: `Some(capacity)` records every admission,
    /// chunk, emission, preemption and completion into an
    /// [`hilos_trace::EventRing`] of that capacity, surfaced on
    /// [`TraceReport::events`]. `None` (the default) wires the
    /// [`hilos_trace::NullSink`] — one dead branch per would-be event, so
    /// every golden pin (and the 1M-request wall-clock budget) is
    /// untouched. Emission is observational either way: tracing never
    /// moves a clock or a counter.
    pub trace_events: Option<usize>,
}

impl ServeConfig {
    /// A serving configuration with the given admission cap, a 120 s
    /// deadline and a 1024-token context quantum.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: u32) -> Self {
        assert!(max_batch > 0, "need a positive batch cap");
        ServeConfig {
            max_batch,
            deadline_s: 120.0,
            ctx_quantum: 1024,
            chunk_mode: ChunkMode::Off,
            flow_impl: FlowEngineImpl::default(),
            step_threads: 1,
            prefix_cache: None,
            trace_events: None,
        }
    }

    /// Sets the goodput deadline.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "deadline must be positive");
        self.deadline_s = seconds;
        self
    }

    /// Sets the step-cache context quantum.
    pub fn with_ctx_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.ctx_quantum = quantum;
        self
    }

    /// Sets the prefill chunking mode.
    ///
    /// # Panics
    ///
    /// Panics if a [`ChunkMode::Chunked`] knob is zero (a zero chunk or
    /// budget could never make prefill progress).
    pub fn with_chunk_mode(mut self, mode: ChunkMode) -> Self {
        if let ChunkMode::Chunked { chunk_tokens, step_budget_tokens } = mode {
            assert!(chunk_tokens > 0, "chunk size must be positive");
            assert!(step_budget_tokens > 0, "step budget must be positive");
        }
        self.chunk_mode = mode;
        self
    }

    /// Selects the flow-engine implementation the serving world runs on.
    pub fn with_flow_impl(mut self, flow_impl: FlowEngineImpl) -> Self {
        self.flow_impl = flow_impl;
        self
    }

    /// Sets how many workers build each step's per-device sub-graphs.
    pub fn with_step_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        self.step_threads = threads;
        self
    }

    /// Enables prefix KV-cache reuse with the given ladder sizing.
    ///
    /// # Panics
    ///
    /// Panics if the block granularity is zero.
    pub fn with_prefix_cache(mut self, cache: PrefixCacheConfig) -> Self {
        assert!(cache.block_tokens > 0, "prefix blocks must be positive");
        self.prefix_cache = Some(cache);
        self
    }

    /// Enables lifecycle-event tracing into a ring retaining up to
    /// `capacity` events (see [`ServeConfig::trace_events`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "the event ring needs a positive capacity");
        self.trace_events = Some(capacity);
        self
    }
}

/// A queued request: never admitted, or preempted and awaiting
/// re-admission with retained progress.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueEntry {
    pub(crate) req: Request,
    pub(crate) arrival_s: f64,
    /// Tokens generated before a preemption (zero on first admission).
    pub(crate) emitted: u64,
    pub(crate) first_token_s: Option<f64>,
    /// The first admission time, kept across preemptions.
    pub(crate) first_admitted_s: Option<f64>,
    pub(crate) preemptions: u32,
    /// Prefill tokens executed for this request so far, across every
    /// (re-)admission — including chunks a preemption later discarded.
    pub(crate) prefill_tokens: u64,
}

/// A request in flight (admitted; prefilling or decoding).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: Request,
    arrival_s: f64,
    admitted_s: f64,
    /// When its prefill finishes and it may join the running batch
    /// (side-prefill [`ChunkMode::Off`] only; infinite under the inline
    /// modes, where the chunk cursor below drives joining).
    join_s: f64,
    first_token_s: Option<f64>,
    emitted: u64,
    preemptions: u32,
    /// Prompt tokens ingested so far this admission (the chunk cursor;
    /// stays zero in [`ChunkMode::Off`], where the prefill is simulated
    /// as one lump on the side).
    prefill_done: u64,
    /// Tokens this admission must ingest before joining: the prompt plus
    /// any generated progress retained across a preemption.
    prefill_total: u64,
    /// The α selected at admission — chunk times use it so one request's
    /// chunks telescope consistently to its whole-prompt prefill.
    admit_alpha: f64,
    /// Lifetime prefill tokens executed (carried across preemptions;
    /// reported on the outcome).
    prefill_charged: u64,
}

/// A preemption victim's ingested KV parked in the residency ladder,
/// awaiting recall on re-admission.
#[derive(Debug, Clone, Copy)]
struct DemotedKv {
    /// Prefill tokens the parked KV re-materializes.
    tokens: u64,
    /// Ladder bytes the parked KV occupies.
    bytes: u64,
    /// Which rung holds it.
    tier: KvTier,
}

/// Live prefix-cache state of one deployment, present only when
/// [`ServeConfig::prefix_cache`] is set. Persists across runs (like the
/// step caches); per-run reporting subtracts the [`CacheBaseline`]
/// captured at run start.
#[derive(Debug)]
struct PrefixCacheState {
    index: PrefixCacheIndex,
    ladder: KvTierLadder,
    /// Request id → the prefix key it acquired at admission; released on
    /// eviction or preemption (exactly once, the index enforces it).
    held: HashMap<u64, u64>,
    /// Request id → preempted-victim KV parked in the ladder.
    demoted: HashMap<u64, DemotedKv>,
    /// KV footprint per cached token, from the model.
    bytes_per_token: u64,
}

/// Index/ladder counter values at run start — the cache outlives a run,
/// the [`TraceReport`] wants this run's deltas.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CacheBaseline {
    lookups: u64,
    hits: u64,
    saved_tokens: u64,
    traffic: [TierTraffic; 3],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StepKey {
    batch: u32,
    context: u64,
    alpha_bits: u64,
    buffered_tokens: u32,
    spill_now: bool,
    spill_tokens: u32,
}

/// The scalar slice of a [`StepOutcome`](crate::StepOutcome) the serving
/// loop consumes every step — `Copy`, so cache hits stay allocation-free
/// (the full outcome's per-category breakdown would clone a
/// `Vec<String>` per step).
#[derive(Debug, Clone, Copy)]
struct CachedStep {
    seconds: f64,
    host_pcie_bytes: f64,
    internal_read_bytes: f64,
}

/// Step/prefill memoization tables shared by every deployment of one
/// identical system fingerprint in a cluster — a freshly provisioned
/// elastic slot (or the 31 siblings of a homogeneous fleet) warm-starts
/// from what any twin already computed instead of re-paying the misses.
///
/// Read-mostly: lookups take the read lock, only misses take the write
/// lock. A cached value is a *pure function* of its key given the shared
/// fingerprint, so concurrent double-computes insert the same bits and
/// the simulation outcome is independent of which deployment (or thread)
/// filled an entry first — the cache changes wall-clock, never results.
#[derive(Debug, Default)]
pub(crate) struct SharedStepCache {
    steps: RwLock<HashMap<StepKey, CachedStep>>,
    prefills: RwLock<HashMap<(u64, u64), f64>>,
}

/// What one call to [`ServeEngine::advance_once`] accomplished — the
/// driver (single-deployment or cluster) decides how the arrival cursor
/// moves in response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepProgress {
    /// One decode step of the running batch was executed.
    Decoded,
    /// No decode ran this call (prefills still in flight, or everything
    /// drained mid-step) — the defensive tick.
    NoDecode,
    /// The policy held queued requests with nothing in flight and no
    /// admission executed: the loop cannot make progress on its own.
    Stalled,
}

/// The mutable state of one serving run, separated from the engine so a
/// cluster driver can hold N of them and advance them in lockstep. All
/// per-run counters live here; the engine keeps only the cross-run
/// caches (step/prefill memoization) and the immutable configuration.
#[derive(Debug)]
pub(crate) struct RunState {
    pub(crate) queue: VecDeque<QueueEntry>,
    prefilling: Vec<InFlight>,
    running: Vec<InFlight>,
    outcomes: Vec<RequestOutcome>,
    rejected: Vec<u64>,
    shed: Vec<ShedOutcome>,
    pub(crate) clock: f64,
    /// The arrival cursor (jumps over idle gaps). Owned by the driver;
    /// the body only reads it into the scheduling snapshot.
    pub(crate) step: u64,
    decode_steps: u64,
    alpha: f64,
    composition_changed: bool,
    joins: u64,
    evictions: u64,
    preemptions: u64,
    alpha_recomputes: u64,
    generated: u64,
    peak_batch: u32,
    alpha_steps_sum: f64,
    host_bytes: f64,
    internal_bytes: f64,
    prefill_payload: f64,
    /// Sum of executed decode-step seconds (the denominator of the
    /// chunk-interference ratio).
    decode_seconds: f64,
    /// Prefill-chunk seconds charged to steps that also decoded.
    prefill_interference_s: f64,
    /// Prefill-chunk seconds charged to steps with nothing decoding.
    prefill_stall_s: f64,
    prefill_chunks: u64,
    prefill_chunk_tokens: u64,
    /// Per-decode-step emission gap (chunk seconds charged to the step
    /// plus the decode time): the inter-token latency every running
    /// request experienced that step.
    step_latency: Vec<f64>,
    /// Prefill re-materialization debt left by preemptions: the victim's
    /// already-ingested tokens (context held by a decode victim, executed
    /// chunks of a prefilling victim).
    wasted_prefill_tokens: u64,
    /// Event-sourced prefix-cache accounting (victim demotions/recalls,
    /// recall seconds charged to the clock); the index/ladder deltas are
    /// folded in at [`ServeEngine::finish`]. All-zero with the cache off.
    prefix: PrefixCacheStats,
    /// Cache counter values at run start (the cache outlives runs).
    cache_base: CacheBaseline,
    kv_placed: Vec<f64>,
    /// Memoized snapshot footprint estimates (see the snapshot build).
    footprint_estimates: HashMap<u64, u64>,
    wb: WritebackManager,
    /// Ids preempted by the most recent [`ServeEngine::advance_once`]
    /// call, in preemption order. Victims are re-queued locally (tail of
    /// `queue`) exactly as before the cluster layer existed; a cluster
    /// driver *may* drain them by id and re-dispatch across deployments.
    pub(crate) just_preempted: Vec<u64>,
    /// Where lifecycle events go: an [`EventRing`] when the run was
    /// configured with [`ServeConfig::with_tracing`], the [`NullSink`]
    /// otherwise.
    trace: Box<dyn TraceSink>,
    /// `trace.enabled()`, cached so the off path is one branch with no
    /// virtual call.
    trace_on: bool,
}

impl RunState {
    /// Records one lifecycle event at the deployment's current clock.
    /// Observational only — never touches clocks or accounting, so the
    /// tracing-off run is bit-identical to the uninstrumented engine.
    #[inline]
    pub(crate) fn emit(&mut self, deployment: DeploymentId, request: u64, kind: EventKind) {
        if self.trace_on {
            self.trace.record(Event { t_s: self.clock, deployment: deployment.0, request, kind });
        }
    }

    /// Whether the run still has anything to serve.
    pub(crate) fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.prefilling.is_empty() || !self.running.is_empty()
    }

    /// Requests waiting in the admission queue.
    pub(crate) fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// In-flight requests whose prefill is still running.
    pub(crate) fn prefilling_len(&self) -> usize {
        self.prefilling.len()
    }

    /// In-flight requests currently decoding.
    pub(crate) fn decoding_len(&self) -> usize {
        self.running.len()
    }

    /// Prompt tokens the in-flight prefills still have to ingest — the
    /// deployment's prefill backlog, a routing signal for size-aware
    /// placement. Zero under [`ChunkMode::Off`]'s lump side-prefill once
    /// nothing is pending (legacy prefills report their whole context as
    /// debt until they join).
    pub(crate) fn prefill_backlog_tokens(&self) -> u64 {
        self.prefilling.iter().map(|p| p.prefill_total - p.prefill_done).sum()
    }

    /// Re-queues a preemption victim with its retained progress and
    /// marks it for potential cross-deployment re-dispatch — the single
    /// construction point of a victim's `QueueEntry`, shared by the
    /// decoding- and prefilling-victim preempt arms so their retained
    /// state cannot diverge. The caller releases the ledger and books
    /// the wasted work.
    fn requeue_victim(&mut self, r: InFlight) {
        self.queue.push_back(QueueEntry {
            req: r.req,
            arrival_s: r.arrival_s,
            emitted: r.emitted,
            first_token_s: r.first_token_s,
            first_admitted_s: Some(r.admitted_s),
            preemptions: r.preemptions + 1,
            prefill_tokens: r.prefill_charged,
        });
        self.just_preempted.push(r.req.id);
    }

    /// Removes the entries named by `just_preempted` from the queue (they
    /// are its tail, in order) and returns them for cross-deployment
    /// re-dispatch. Clears the marker list.
    pub(crate) fn drain_just_preempted(&mut self) -> Vec<QueueEntry> {
        let mut moved = Vec::with_capacity(self.just_preempted.len());
        for id in std::mem::take(&mut self.just_preempted) {
            if let Some(pos) = self.queue.iter().position(|q| q.req.id == id) {
                moved.push(self.queue.remove(pos).expect("position came from a live scan"));
            }
        }
        moved
    }
}

/// The continuous-batching serving engine over one HILOS deployment.
#[derive(Debug)]
pub struct ServeEngine {
    system: HilosSystem,
    config: ServeConfig,
    exec: DecodeStepExecutor,
    alpha_sel: AlphaSelector,
    ledger: KvShardLedger,
    policy: Box<dyn SchedulingPolicy>,
    /// The model, cloned out of the system once so the hot loop can hold
    /// `&model` across `&mut self` memoization calls.
    model: ModelConfig,
    /// Which deployment this engine is, stamped onto every outcome.
    deployment: DeploymentId,
    /// Placeable bytes of the empty array (after weight reservations) —
    /// the bound beyond which a request can never be admitted.
    max_placeable: u64,
    step_cache: HashMap<StepKey, CachedStep>,
    prefill_cache: HashMap<(u64, u64), f64>,
    /// Fingerprint-group shared memo tables (`None` outside a cluster or
    /// with warm-start sharing off): when set, it is authoritative and
    /// the local maps above stay empty.
    shared_cache: Option<Arc<SharedStepCache>>,
    /// Prefix KV cache over the tiered residency ladder (`None` = off).
    cache: Option<PrefixCacheState>,
}

impl ServeEngine {
    /// Builds the serving engine with the default [`Fifo`] policy.
    ///
    /// # Errors
    ///
    /// Platform/capacity errors from building the world or fitting the
    /// weights.
    pub fn new(system: HilosSystem, config: ServeConfig) -> Result<Self, CoreError> {
        ServeEngine::with_policy(system, config, Box::new(Fifo))
    }

    /// Builds the serving engine around the given scheduling policy: one
    /// simulation world, the α selector at its bandwidth operating point,
    /// and the shard ledger (with storage-resident weights reserved
    /// evenly, as `weight_source` dictates for >100B models).
    ///
    /// # Errors
    ///
    /// Platform/capacity errors from building the world or fitting the
    /// weights.
    pub fn with_policy(
        system: HilosSystem,
        config: ServeConfig,
        policy: Box<dyn SchedulingPolicy>,
    ) -> Result<Self, CoreError> {
        let mut exec = DecodeStepExecutor::with_flow_impl(&system, config.flow_impl)?;
        exec.set_step_threads(config.step_threads);
        let alpha_sel = AlphaSelector::new(system.config(), exec.system());
        let mut ledger = exec.system().kv_ledger();
        let model = system.model().clone();
        if weight_source(exec.system(), &model, 32 << 30) == WeightSource::Storage {
            ledger.reserve_evenly(model.weight_bytes()).map_err(|_| {
                CoreError::DeviceCapacityExceeded {
                    needed: model.weight_bytes(),
                    available: ledger.placeable_free(),
                }
            })?;
        }
        let max_placeable = ledger.placeable_free();
        let cache = config.prefix_cache.map(|pc| {
            let bytes_per_token = model.kv_bytes_per_token().max(1);
            PrefixCacheState {
                index: PrefixCacheIndex::new(pc.block_tokens, bytes_per_token),
                ladder: KvTierLadder::new(
                    pc.hbm_bytes,
                    pc.dram_bytes,
                    SsdSpec::smartssd_nvme(),
                    ledger.device_count(),
                ),
                held: HashMap::new(),
                demoted: HashMap::new(),
                bytes_per_token,
            }
        });
        Ok(ServeEngine {
            system,
            config,
            exec,
            alpha_sel,
            ledger,
            policy,
            model,
            deployment: DeploymentId::default(),
            max_placeable,
            step_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
            shared_cache: None,
            cache,
        })
    }

    /// The per-device shard ledger (admission state).
    pub fn ledger(&self) -> &KvShardLedger {
        &self.ledger
    }

    /// The active scheduling policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The deployment's underlying [`HilosSystem`] (spec, model,
    /// configuration) — the cost and cold-start models read it.
    pub fn system(&self) -> &HilosSystem {
        &self.system
    }

    /// Preemption victims whose ingested KV is currently parked in the
    /// residency ladder awaiting recall (always 0 with the prefix cache
    /// off). A drained deployment must report zero — parked KV cannot
    /// follow a request to another deployment.
    pub fn parked_victim_kv(&self) -> usize {
        self.cache.as_ref().map_or(0, |cs| cs.demoted.len())
    }

    /// Which deployment this engine is ([`DeploymentId`] `0` outside a
    /// cluster). Stamped onto every [`RequestOutcome`].
    pub fn deployment(&self) -> DeploymentId {
        self.deployment
    }

    /// Assigns the engine its cluster slot (outcomes record it).
    pub(crate) fn set_deployment(&mut self, id: DeploymentId) {
        self.deployment = id;
    }

    /// FNV-1a over everything the step/prefill memo values depend on:
    /// the full system (spec, degradations, model, config, sim layers)
    /// and the flow-engine implementation. Two deployments with equal
    /// fingerprints compute bit-identical values for every memo key, so
    /// they may share one [`SharedStepCache`].
    pub(crate) fn system_fingerprint(&self) -> u64 {
        let desc = format!("{:?}|{:?}", self.system, self.config.flow_impl);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in desc.into_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Installs the fingerprint-group shared memo tables, seeding them
    /// with anything this engine already computed locally. Only a
    /// cluster constructor calls this, and only across deployments whose
    /// [`ServeEngine::system_fingerprint`] match.
    pub(crate) fn set_shared_cache(&mut self, shared: Arc<SharedStepCache>) {
        {
            let mut steps = shared.steps.write().expect("shared step cache poisoned");
            for (k, v) in self.step_cache.drain() {
                steps.entry(k).or_insert(v);
            }
        }
        {
            let mut prefills = shared.prefills.write().expect("shared prefill cache poisoned");
            for (k, v) in self.prefill_cache.drain() {
                prefills.entry(k).or_insert(v);
            }
        }
        self.shared_cache = Some(shared);
    }

    /// The prefix cache's lifetime hit rate on this deployment (`0.0`
    /// with the cache off or before any probe) — a routing signal: a
    /// deployment that keeps hitting shares more prefixes with the
    /// traffic already routed to it.
    pub fn prefix_hit_rate(&self) -> f64 {
        match &self.cache {
            Some(cs) if cs.index.lookups() > 0 => {
                cs.index.hits() as f64 / cs.index.lookups() as f64
            }
            _ => 0.0,
        }
    }

    /// Drops the ref the request's admission pinned on its prefix entry.
    fn release_prefix_hold(&mut self, id: u64) {
        if let Some(cs) = self.cache.as_mut() {
            if let Some(key) = cs.held.remove(&id) {
                let _ = cs.index.release(key);
            }
        }
    }

    /// Parks a preemption victim's ingested KV (`tokens` worth) in the
    /// residency ladder — DRAM if it fits, else the SSD rung — instead of
    /// discarding it, and drops the victim's prefix pin. Returns whether
    /// the ladder took the bytes; `false` (always, with the cache off)
    /// means the caller books the tokens as wasted re-materialization
    /// debt exactly as the pre-cache engine did.
    fn demote_victim(&mut self, st: &mut RunState, id: u64, tokens: u64) -> bool {
        let dep = self.deployment;
        let Some(cs) = self.cache.as_mut() else {
            return false;
        };
        if let Some(key) = cs.held.remove(&id) {
            let _ = cs.index.release(key);
        }
        if tokens == 0 {
            return false;
        }
        let bytes = tokens * cs.bytes_per_token;
        for tier in [KvTier::Dram, KvTier::Ssd] {
            if cs.ladder.place(tier, bytes).is_ok() {
                // The ladder's own traffic counters only track index
                // moves; victim KV enters from the serving shards, so
                // its demote I/O is booked here.
                let seconds = cs.ladder.demote_seconds(tier, bytes);
                let t = &mut st.prefix.tiers[tier.index()];
                t.demoted_bytes += bytes;
                t.demote_seconds += seconds;
                st.prefix.victim_demotions += 1;
                cs.demoted.insert(id, DemotedKv { tokens, bytes, tier });
                st.emit(dep, id, EventKind::Demoted { tokens, bytes, tier: tier.index() as u8 });
                return true;
            }
        }
        false
    }

    /// Drops the parked KV of a victim that will never be re-admitted on
    /// this deployment (shed, unplaceable, or re-dispatched to another
    /// deployment): the ladder bytes are freed and the tokens become the
    /// wasted re-materialization debt they would have been without the
    /// cache.
    pub(crate) fn forget_demoted(&mut self, st: &mut RunState, id: u64) {
        if let Some(cs) = self.cache.as_mut() {
            if let Some(d) = cs.demoted.remove(&id) {
                let _ = cs.ladder.evict(d.tier, d.bytes);
                st.wasted_prefill_tokens += d.tokens;
            }
        }
    }

    /// Reuses cached KV for an admission: a preempted victim's demoted
    /// ladder bytes recall in full, else a shared-prefix probe against
    /// the index skips the cached blocks (pinning the entry for the
    /// request's lifetime). Returns `(reused_tokens, recall_seconds)` —
    /// `(0, 0.0)` with the cache off or on a miss.
    fn reuse_cached_kv(
        &mut self,
        st: &mut RunState,
        entry: &QueueEntry,
        pf_ctx: u64,
    ) -> (u64, f64) {
        let dep = self.deployment;
        let Some(cs) = self.cache.as_mut() else {
            return (0, 0.0);
        };
        if let Some(d) = cs.demoted.remove(&entry.req.id) {
            let seconds = cs.ladder.recall(d.tier, d.bytes).expect("demoted bytes are resident");
            let tokens = d.tokens.min(pf_ctx);
            st.prefix.victim_recalls += 1;
            st.prefix.recalled_prefill_tokens += tokens;
            st.emit(dep, entry.req.id, EventKind::Recall { bytes: d.bytes, seconds });
            return (tokens, seconds);
        }
        if entry.req.prefix_key == 0 {
            return (0, 0.0);
        }
        let Some((hit, _tier)) = cs.index.probe(entry.req.prefix_key, entry.req.prefix_tokens)
        else {
            return (0, 0.0);
        };
        let seconds = cs.index.recall(entry.req.prefix_key, hit, &mut cs.ladder);
        cs.index.acquire(entry.req.prefix_key).expect("probe just hit this key");
        cs.held.insert(entry.req.id, entry.req.prefix_key);
        let reused = hit.min(pf_ctx);
        st.emit(dep, entry.req.id, EventKind::PrefixHit { reused_tokens: reused });
        if seconds > 0.0 {
            st.emit(
                dep,
                entry.req.id,
                EventKind::Recall { bytes: reused * cs.bytes_per_token, seconds },
            );
        }
        (reused, seconds)
    }

    /// On eviction, drops the request's prefix pin and publishes its
    /// context into the index: the class/system prefix under
    /// `prefix_key`, and the whole finished conversation under
    /// `publish_key` (the entry the session's next turn will hit). No-op
    /// with the cache off.
    fn publish_finished(&mut self, r: &InFlight) {
        let Some(cs) = self.cache.as_mut() else {
            return;
        };
        if let Some(key) = cs.held.remove(&r.req.id) {
            let _ = cs.index.release(key);
        }
        if r.req.publish_key != 0 {
            // The session's full served context — for a follow-up turn
            // this *extends* the entry the next turn will probe.
            cs.index.publish(r.req.publish_key, r.req.prompt_len + r.emitted, &mut cs.ladder);
        }
        if r.req.prefix_key != 0 && r.req.prefix_key != r.req.publish_key {
            // The class/system prefix this request consumed (fresh
            // conversations share it with every sibling session).
            cs.index.publish(r.req.prefix_key, r.req.prefix_tokens, &mut cs.ladder);
        }
    }

    /// Rounds a context to the nearest step-cache bucket. The quantum
    /// halves (down to 16 tokens) until it is at most a quarter of the
    /// context, so the rounding error is centered on zero and bounded at
    /// ~12.5% even for prompts far shorter than `ctx_quantum`.
    fn quantize(&self, ctx: u64) -> u64 {
        let ctx = ctx.max(1);
        let mut q = self.config.ctx_quantum;
        while q > 16 && q * 4 > ctx {
            q /= 2;
        }
        ((ctx + q / 2) / q).max(1) * q
    }

    /// KV/X bytes a request owns at full generation length under `alpha`.
    fn request_footprint(&self, req: &Request, alpha: f64) -> u64 {
        let m = &self.model;
        let per_token =
            (1.0 - alpha) * m.kv_bytes_per_token() as f64 + alpha * m.x_bytes_per_token() as f64;
        (per_token * req.total_tokens() as f64) as u64
    }

    /// Memoized `execute_prefill(1, ctx, α)` at an already-rounded
    /// context — the single miss path behind both rounding grids, so the
    /// cached value's meaning cannot drift between them.
    fn prefill_seconds_rounded(&mut self, ctx: u64, alpha: f64) -> Result<f64, CoreError> {
        let key = (ctx, alpha.to_bits());
        if let Some(shared) = &self.shared_cache {
            if let Some(&s) =
                shared.prefills.read().expect("shared prefill cache poisoned").get(&key)
            {
                return Ok(s);
            }
        } else if let Some(&s) = self.prefill_cache.get(&key) {
            return Ok(s);
        }
        let s = self.exec.execute_prefill(1, ctx, alpha)?;
        match &self.shared_cache {
            Some(shared) => {
                shared.prefills.write().expect("shared prefill cache poisoned").insert(key, s);
            }
            None => {
                self.prefill_cache.insert(key, s);
            }
        }
        Ok(s)
    }

    fn prefill_seconds(&mut self, prompt_len: u64, alpha: f64) -> Result<f64, CoreError> {
        let ctx = self.quantize(prompt_len);
        self.prefill_seconds_rounded(ctx, alpha)
    }

    /// Whole-prompt prefill seconds at a chunk-cursor context, memoized
    /// on the fixed [`PREFILL_CHUNK_QUANTUM`] grid (shared cache with
    /// [`ServeEngine::prefill_seconds`] — both store the same
    /// `execute_prefill(1, ctx, α)` value, only the rounding differs).
    fn prefill_seconds_at(&mut self, ctx: u64, alpha: f64) -> Result<f64, CoreError> {
        let q = PREFILL_CHUNK_QUANTUM;
        self.prefill_seconds_rounded(((ctx + q / 2) / q).max(1) * q, alpha)
    }

    /// Seconds to ingest prompt tokens `[start, start + len)` — the
    /// difference of the whole-prompt prefill times at the chunk's two
    /// cursors, so attention's growing cost lands on the later chunks
    /// and a request's chunks telescope to exactly its lump prefill.
    fn prefill_chunk_seconds(
        &mut self,
        start: u64,
        len: u64,
        alpha: f64,
    ) -> Result<f64, CoreError> {
        let end = self.prefill_seconds_at(start + len, alpha)?;
        if start == 0 {
            return Ok(end);
        }
        let begin = self.prefill_seconds_at(start, alpha)?;
        // Rounding to the chunk grid can land both cursors in one
        // bucket; clamp so a chunk is never negative time.
        Ok((end - begin).max(0.0))
    }

    fn decode_step(
        &mut self,
        batch: u32,
        mean_ctx: u64,
        alpha: f64,
        decision: &SpillDecision,
    ) -> Result<CachedStep, CoreError> {
        let key = StepKey {
            batch,
            context: self.quantize(mean_ctx),
            alpha_bits: alpha.to_bits(),
            buffered_tokens: decision.buffered_tokens,
            spill_now: decision.spill_now,
            spill_tokens: decision.spill_tokens,
        };
        if let Some(shared) = &self.shared_cache {
            if let Some(&o) = shared.steps.read().expect("shared step cache poisoned").get(&key) {
                return Ok(o);
            }
        } else if let Some(&o) = self.step_cache.get(&key) {
            return Ok(o);
        }
        let o = self.exec.execute_step(batch, key.context, alpha, decision)?;
        let cached = CachedStep {
            seconds: o.seconds,
            host_pcie_bytes: o.host_pcie_bytes,
            internal_read_bytes: o.internal_read_bytes,
        };
        match &self.shared_cache {
            Some(shared) => {
                shared.steps.write().expect("shared step cache poisoned").insert(key, cached);
            }
            None => {
                self.step_cache.insert(key, cached);
            }
        }
        Ok(cached)
    }

    /// A fresh run state sized for this deployment.
    pub(crate) fn new_run_state(&self) -> RunState {
        let cache_base = match &self.cache {
            Some(cs) => CacheBaseline {
                lookups: cs.index.lookups(),
                hits: cs.index.hits(),
                saved_tokens: cs.index.saved_tokens(),
                traffic: KvTier::ALL.map(|t| cs.ladder.traffic(t)),
            },
            None => CacheBaseline::default(),
        };
        RunState {
            queue: VecDeque::new(),
            prefilling: Vec::new(),
            running: Vec::new(),
            outcomes: Vec::new(),
            rejected: Vec::new(),
            shed: Vec::new(),
            clock: 0.0,
            step: 0,
            decode_steps: 0,
            alpha: 0.0,
            composition_changed: true,
            joins: 0,
            evictions: 0,
            preemptions: 0,
            alpha_recomputes: 0,
            generated: 0,
            peak_batch: 0,
            alpha_steps_sum: 0.0,
            host_bytes: 0.0,
            internal_bytes: 0.0,
            prefill_payload: 0.0,
            decode_seconds: 0.0,
            prefill_interference_s: 0.0,
            prefill_stall_s: 0.0,
            prefill_chunks: 0,
            prefill_chunk_tokens: 0,
            step_latency: Vec::new(),
            wasted_prefill_tokens: 0,
            prefix: PrefixCacheStats::default(),
            cache_base,
            kv_placed: vec![0.0; self.ledger.device_count()],
            footprint_estimates: HashMap::new(),
            wb: WritebackManager::new(self.system.config().spill_interval()),
            just_preempted: Vec::new(),
            trace: match self.config.trace_events {
                Some(capacity) => Box::new(EventRing::new(capacity)),
                None => Box::new(NullSink),
            },
            trace_on: self.config.trace_events.is_some(),
        }
    }

    /// Enqueues an arriving request at the deployment's current clock.
    pub(crate) fn enqueue_arrival(&self, st: &mut RunState, req: Request) {
        st.emit(self.deployment, req.id, EventKind::Arrived { prompt_tokens: req.prompt_len });
        st.queue.push_back(QueueEntry {
            req,
            arrival_s: st.clock,
            emitted: 0,
            first_token_s: None,
            first_admitted_s: None,
            preemptions: 0,
            prefill_tokens: 0,
        });
    }

    /// Re-queues a preempted entry (possibly from another deployment)
    /// with its retained progress and timestamps. Cross-deployment
    /// callers must first re-base the entry's timestamps into *this*
    /// deployment's clock domain (the cluster router does) — deployment
    /// clocks are independent busy-time axes.
    pub(crate) fn requeue(&self, st: &mut RunState, entry: QueueEntry) {
        st.queue.push_back(entry);
    }

    /// Drain hook (queue half): removes *every* queued request for
    /// re-dispatch to another deployment. Parked demoted KV of the
    /// evacuees stays behind by construction — it is dropped at the
    /// source (and booked as wasted re-materialization debt) exactly as
    /// the cross-deployment preemption path does.
    pub(crate) fn evacuate_queued(&mut self, st: &mut RunState) -> Vec<QueueEntry> {
        let drained: Vec<QueueEntry> = st.queue.drain(..).collect();
        for e in &drained {
            self.forget_demoted(st, e.req.id);
        }
        drained
    }

    /// Drain hook (pause/evacuate half): removes up to `max` in-flight
    /// requests — prefilling first (only ingested chunks are lost), then
    /// decoding, oldest first — and returns them as [`QueueEntry`]s with
    /// their generated progress retained, for re-dispatch to another
    /// deployment. Each evacuation releases the victim's shard-ledger
    /// allocation and prefix pin and counts as a preemption; its
    /// already-ingested KV cannot follow it off the deployment, so the
    /// tokens are booked as wasted re-materialization debt (the target
    /// re-runs prefill over `prompt + progress`, exactly like a
    /// cross-deployment preemption re-dispatch).
    ///
    /// The cap makes draining *stepwise*: a draining deployment keeps
    /// serving what it still holds while the cluster moves `max` requests
    /// per step, rather than dumping its whole batch at once.
    pub(crate) fn evacuate_in_flight(&mut self, st: &mut RunState, max: usize) -> Vec<QueueEntry> {
        let inline = self.config.chunk_mode.is_inline();
        let mut out = Vec::new();
        while out.len() < max && !st.prefilling.is_empty() {
            let p = st.prefilling.remove(0);
            self.ledger.release(p.req.id).expect("prefilling request holds allocation");
            self.release_prefix_hold(p.req.id);
            st.preemptions += 1;
            st.emit(self.deployment, p.req.id, EventKind::Preempted { emitted: p.emitted });
            // An inline (chunked) prefill has ingested `prefill_done`
            // tokens; a side-prefill charged its whole context at
            // admission — either way the work is lost with the shards.
            st.wasted_prefill_tokens += if inline { p.prefill_done } else { p.prefill_total };
            out.push(QueueEntry {
                req: p.req,
                arrival_s: p.arrival_s,
                emitted: p.emitted,
                first_token_s: p.first_token_s,
                first_admitted_s: Some(p.admitted_s),
                preemptions: p.preemptions + 1,
                prefill_tokens: p.prefill_charged,
            });
        }
        while out.len() < max && !st.running.is_empty() {
            let r = st.running.remove(0);
            self.ledger.release(r.req.id).expect("running request holds allocation");
            self.release_prefix_hold(r.req.id);
            st.preemptions += 1;
            st.emit(self.deployment, r.req.id, EventKind::Preempted { emitted: r.emitted });
            st.wasted_prefill_tokens += r.req.prompt_len + r.emitted;
            st.composition_changed = true;
            out.push(QueueEntry {
                req: r.req,
                arrival_s: r.arrival_s,
                emitted: r.emitted,
                first_token_s: r.first_token_s,
                first_admitted_s: Some(r.admitted_s),
                preemptions: r.preemptions + 1,
                prefill_tokens: r.prefill_charged,
            });
        }
        out
    }

    /// Runs one serving iteration over `st`: scheduling, prefill joins,
    /// one decode step of the running batch, token emission and eviction
    /// — everything the pre-split loop body did between two visits of the
    /// arrival cursor. Advancing the cursor (and feeding arrivals) is the
    /// driver's job.
    pub(crate) fn advance_once(&mut self, st: &mut RunState) -> Result<StepProgress, CoreError> {
        st.just_preempted.clear();
        let wb_enabled = self.system.config().delayed_writeback();
        let inline = self.config.chunk_mode.is_inline();

        // 2: admission & preemption — the policy decides, the engine
        // executes under the batch-cap and shard-ledger invariants.
        // An admission-only policy ([`SchedulingPolicy::may_preempt`]
        // == false) provably has nothing to say when there is nothing
        // to admit (empty queue) or no room (full batch), so those
        // steps skip the snapshot build entirely — it is O(queue), the
        // dominant cost on a backlogged trace. Policies that may
        // preempt are consulted every step, and shedding policies
        // ([`SchedulingPolicy::may_shed`]) whenever the queue is
        // non-empty — a full batch is exactly when shedding matters.
        let batch_full = st.running.len() + st.prefilling.len() >= self.config.max_batch as usize;
        let skip_policy = !self.policy.may_preempt()
            && (st.queue.is_empty() || (batch_full && !self.policy.may_shed()));
        let decisions = if skip_policy {
            Vec::new()
        } else {
            let in_flight_len = (st.running.len() + st.prefilling.len()) as u32;
            // The policy may bound how much of the backlog its snapshot
            // needs ([`SchedulingPolicy::queue_horizon`]); the view build
            // is O(horizon) instead of O(queue).
            let free_slots =
                (self.config.max_batch as usize).saturating_sub(in_flight_len as usize);
            let horizon =
                self.policy.queue_horizon(free_slots).unwrap_or(usize::MAX).min(st.queue.len());
            let held = |id: u64| self.ledger.held_bytes(id).unwrap_or(0);
            let view_of = |r: &InFlight, decoding: bool| InFlightView {
                id: r.req.id,
                class: r.req.class,
                priority: r.req.slo.priority,
                arrival_s: r.arrival_s,
                deadline_s: r.arrival_s + r.req.slo.deadline_s(),
                emitted: r.emitted,
                output_budget: r.req.output_budget,
                decoding,
                held_bytes: held(r.req.id),
                preemptions: r.preemptions,
                // A decoding request's prefill is complete whatever the
                // chunk mode; a side-prefill (ChunkMode::Off) in flight
                // reports its whole context as pending.
                prefill_done: if decoding { r.prefill_total } else { r.prefill_done },
                prefill_total: r.prefill_total,
            };
            let mut queue_views: Vec<QueuedView> = Vec::with_capacity(horizon);
            let footprint_estimates = &mut st.footprint_estimates;
            for q in st.queue.iter().take(horizon) {
                // The snapshot's footprint is an *estimate* (the engine
                // re-derives the exact value at admission), so it is
                // memoized per request rather than re-derived for the
                // whole backlog on every step — α drifts with batch
                // composition, the stored estimate does not.
                let footprint_bytes = match footprint_estimates.get(&q.req.id) {
                    Some(&f) => f,
                    None => {
                        let admit_alpha = self.alpha_sel.select(
                            &self.model,
                            in_flight_len + 1,
                            q.req.prompt_len.max(1),
                        );
                        let f = self.request_footprint(&q.req, admit_alpha);
                        footprint_estimates.insert(q.req.id, f);
                        f
                    }
                };
                // Surface parked (demoted) KV so a policy can weigh
                // recall-vs-recompute when ordering re-admissions.
                let (demoted_tokens, recall_cost_s) = match &self.cache {
                    Some(cs) => match cs.demoted.get(&q.req.id) {
                        Some(d) => (d.tokens, cs.ladder.recall_seconds(d.tier, d.bytes)),
                        None => (0, 0.0),
                    },
                    None => (0, 0.0),
                };
                queue_views.push(QueuedView {
                    id: q.req.id,
                    class: q.req.class,
                    priority: q.req.slo.priority,
                    arrival_s: q.arrival_s,
                    deadline_s: q.arrival_s + q.req.slo.deadline_s(),
                    prompt_len: q.req.prompt_len,
                    output_budget: q.req.output_budget,
                    emitted: q.emitted,
                    preemptions: q.preemptions,
                    footprint_bytes,
                    demoted_tokens,
                    recall_cost_s,
                });
            }
            let flight_views: Vec<InFlightView> = st
                .running
                .iter()
                .map(|r| view_of(r, true))
                .chain(st.prefilling.iter().map(|p| view_of(p, false)))
                .collect();
            let device_free = self.ledger.free_by_device();
            let snapshot = SchedSnapshot {
                clock_s: st.clock,
                step: st.step,
                max_batch: self.config.max_batch,
                queue: &queue_views,
                in_flight: &flight_views,
                device_free_bytes: &device_free,
                placeable_free: self.ledger.placeable_free(),
                prefill_backlog_tokens: st.prefill_backlog_tokens(),
            };
            self.policy.schedule(&snapshot)
        };
        let mut admissions_executed = 0usize;
        let mut sheds_executed = 0usize;
        'decisions: for d in decisions {
            match d {
                SchedDecision::Preempt { victim } => {
                    // Decoding requests are always preemptable; under the
                    // inline chunk modes a *prefilling* victim is too —
                    // and cheap: only its executed chunks are discarded,
                    // no decode progress is lost. Stale or invalid ids
                    // are ignored.
                    if let Some(pos) = st.running.iter().position(|r| r.req.id == victim) {
                        let r = st.running.remove(pos);
                        self.ledger.release(r.req.id).expect("running request holds allocation");
                        st.preemptions += 1;
                        st.emit(
                            self.deployment,
                            r.req.id,
                            EventKind::Preempted { emitted: r.emitted },
                        );
                        // Demote the victim's ingested KV down the
                        // residency ladder; only what the ladder cannot
                        // hold becomes re-materialization debt (all of
                        // it, with the cache off).
                        if !self.demote_victim(st, r.req.id, r.req.prompt_len + r.emitted) {
                            st.wasted_prefill_tokens += r.req.prompt_len + r.emitted;
                        }
                        st.composition_changed = true;
                        st.requeue_victim(r);
                    } else if inline {
                        let Some(pos) = st.prefilling.iter().position(|p| p.req.id == victim)
                        else {
                            continue;
                        };
                        let p = st.prefilling.remove(pos);
                        self.ledger.release(p.req.id).expect("prefilling request holds allocation");
                        st.preemptions += 1;
                        st.emit(
                            self.deployment,
                            p.req.id,
                            EventKind::Preempted { emitted: p.emitted },
                        );
                        if !self.demote_victim(st, p.req.id, p.prefill_done) {
                            st.wasted_prefill_tokens += p.prefill_done;
                        }
                        st.requeue_victim(p);
                    }
                }
                SchedDecision::Shed { request } => {
                    let Some(pos) = st.queue.iter().position(|q| q.req.id == request) else {
                        continue;
                    };
                    // Only provably-hopeless, progress-free requests may
                    // be dropped: the deadline must already have passed
                    // on this deployment's clock, and a preempted victim
                    // carrying generated tokens completes through the
                    // admission path instead (its progress must not
                    // vanish). Anything else is ignored — a policy
                    // cannot shed viable work.
                    let q = &st.queue[pos];
                    if q.emitted > 0 || q.arrival_s + q.req.slo.deadline_s() > st.clock {
                        continue;
                    }
                    let entry = st.queue.remove(pos).expect("position came from a live scan");
                    self.forget_demoted(st, entry.req.id);
                    st.shed.push(ShedOutcome {
                        id: entry.req.id,
                        class: entry.req.class,
                        arrival_s: entry.arrival_s,
                        shed_s: st.clock,
                        slo_deadline_s: entry.req.slo.deadline_s(),
                    });
                    sheds_executed += 1;
                    st.emit(self.deployment, entry.req.id, EventKind::Shed);
                }
                SchedDecision::Admit { request } => {
                    if st.running.len() + st.prefilling.len() >= self.config.max_batch as usize {
                        break 'decisions;
                    }
                    let Some(pos) = st.queue.iter().position(|q| q.req.id == request) else {
                        continue;
                    };
                    let entry = st.queue[pos];
                    // α for the composition this request would join.
                    let admit_alpha = self.alpha_sel.select(
                        &self.model,
                        (st.running.len() + st.prefilling.len() + 1) as u32,
                        entry.req.prompt_len.max(1),
                    );
                    let footprint = self.request_footprint(&entry.req, admit_alpha);
                    // A request that can never be placed is dropped — but
                    // a preempted victim carries generated tokens, so it
                    // completes with its retained progress instead of
                    // vanishing into `rejected` (the generated-token
                    // accounting must keep summing over outcomes).
                    let deployment = self.deployment;
                    let drop_unplaceable = |entry: QueueEntry,
                                            outcomes: &mut Vec<RequestOutcome>,
                                            rejected: &mut Vec<u64>,
                                            clock: f64| {
                        if entry.emitted > 0 {
                            outcomes.push(RequestOutcome {
                                id: entry.req.id,
                                class: entry.req.class,
                                deployment,
                                prompt_len: entry.req.prompt_len,
                                output_len: entry.emitted,
                                arrival_s: entry.arrival_s,
                                admitted_s: entry
                                    .first_admitted_s
                                    .expect("preempted request was admitted"),
                                first_token_s: entry
                                    .first_token_s
                                    .expect("preempted request emitted tokens"),
                                finished_s: clock,
                                slo_deadline_s: entry.req.slo.deadline_s(),
                                preemptions: entry.preemptions,
                                prefill_tokens: entry.prefill_tokens,
                            });
                        } else {
                            rejected.push(entry.req.id);
                        }
                    };
                    if footprint > self.max_placeable {
                        self.forget_demoted(st, entry.req.id);
                        drop_unplaceable(entry, &mut st.outcomes, &mut st.rejected, st.clock);
                        st.queue.remove(pos);
                        if entry.emitted > 0 {
                            st.emit(
                                deployment,
                                entry.req.id,
                                EventKind::Completed { output_tokens: entry.emitted },
                            );
                        } else {
                            st.emit(deployment, entry.req.id, EventKind::Rejected);
                        }
                        continue;
                    }
                    match self.ledger.allocate(entry.req.id, footprint) {
                        Ok(placed) => {
                            for (acc, &b) in st.kv_placed.iter_mut().zip(&placed) {
                                *acc += b as f64;
                            }
                        }
                        Err(_) => {
                            if self.ledger.live_requests() == 0 {
                                // Nothing live and still unplaceable
                                // (e.g. a stripe member filled by static
                                // reservations): the request can never be
                                // admitted.
                                self.forget_demoted(st, entry.req.id);
                                drop_unplaceable(
                                    entry,
                                    &mut st.outcomes,
                                    &mut st.rejected,
                                    st.clock,
                                );
                                st.queue.remove(pos);
                                if entry.emitted > 0 {
                                    st.emit(
                                        deployment,
                                        entry.req.id,
                                        EventKind::Completed { output_tokens: entry.emitted },
                                    );
                                } else {
                                    st.emit(deployment, entry.req.id, EventKind::Rejected);
                                }
                                continue;
                            }
                            // Head-of-line wait: abandon the rest of this
                            // step's decisions; evictions will free space.
                            break 'decisions;
                        }
                    }
                    st.queue.remove(pos);
                    // A re-admitted preemption victim re-materializes the
                    // KV of its generated progress too.
                    let pf_ctx = entry.req.prompt_len + entry.emitted;
                    // Prefix-cache probe: recall a demoted victim's parked
                    // KV, or a published prefix hit, and start the chunk
                    // cursor past the reused tokens. Both legs are inert
                    // with the cache off (`reused == 0`, `recall_s == 0`),
                    // keeping the golden-pinned path untouched.
                    let (reused, recall_s) = self.reuse_cached_kv(st, &entry, pf_ctx);
                    // Stamped before the recall charge lands on the clock:
                    // the admission instant is when the decision was made,
                    // the recall I/O is accounted by its own event above.
                    st.emit(
                        deployment,
                        entry.req.id,
                        EventKind::Admitted { reused_tokens: reused },
                    );
                    if recall_s > 0.0 {
                        // Recall I/O is critical-path: it delays this
                        // step's clock (and thus the hit's TTFT) just as
                        // the paper's recovery reads do.
                        st.clock += recall_s;
                        st.prefix.recall_seconds += recall_s;
                    }
                    // Side-prefill (ChunkMode::Off) simulates the whole
                    // prefill now and joins on the clock; the inline
                    // modes leave joining to the chunk cursor.
                    let join_s = if inline {
                        f64::INFINITY
                    } else {
                        // A cache hit pays only the un-cached suffix; the
                        // miss path keeps the adaptive-quantum rounding of
                        // `prefill_seconds` bit-identical to the pins.
                        let pf = if reused == 0 {
                            self.prefill_seconds(pf_ctx, admit_alpha)
                        } else {
                            self.prefill_chunk_seconds(reused, pf_ctx - reused, admit_alpha)
                        };
                        match pf {
                            Ok(pf) => st.clock + pf,
                            Err(e) => {
                                // Don't leak the shard allocation (or the
                                // prefix pin) on a failed prefill
                                // simulation — the engine stays reusable.
                                let _ = self.ledger.release(entry.req.id);
                                self.release_prefix_hold(entry.req.id);
                                return Err(e);
                            }
                        }
                    };
                    st.prefill_payload += footprint as f64 * (pf_ctx - reused) as f64
                        / entry.req.total_tokens() as f64;
                    admissions_executed += 1;
                    st.prefilling.push(InFlight {
                        req: entry.req,
                        arrival_s: entry.arrival_s,
                        admitted_s: entry.first_admitted_s.unwrap_or(st.clock),
                        join_s,
                        first_token_s: entry.first_token_s,
                        emitted: entry.emitted,
                        preemptions: entry.preemptions,
                        prefill_done: reused,
                        prefill_total: pf_ctx,
                        admit_alpha,
                        // The lump side-prefill executes in full right
                        // here; chunks charge as they run — reused tokens
                        // are charged to neither (that is the saving).
                        prefill_charged: entry.prefill_tokens
                            + if inline { 0 } else { pf_ctx - reused },
                    });
                }
            }
        }
        // A policy that holds everything while nothing is in flight can
        // never make progress by itself — hand the stall to the driver
        // (which feeds the next arrival, or fails loudly once the trace
        // is exhausted). Executed sheds count as progress: the queue
        // shrank, so the loop is not stuck.
        if st.running.is_empty() && st.prefilling.is_empty() {
            if !st.queue.is_empty() && admissions_executed == 0 && sheds_executed == 0 {
                return Ok(StepProgress::Stalled);
            }
            if st.queue.is_empty() {
                // Everything drained mid-step (e.g. the whole queue was
                // rejected as unplaceable): nothing left to decode.
                return Ok(StepProgress::NoDecode);
            }
        }

        // 3a (inline chunk modes): ingest prompt chunks under the step
        // token budget. The running batch reserves one budget token per
        // sequence (decode keeps its cadence — that is the whole point
        // of chunking); the remainder is spent front-to-back over the
        // pending prefills, up to one chunk each, and the time is
        // charged to this step's clock.
        let mut chunk_seconds = 0.0f64;
        // Whether a decode stream was live *while* the chunks executed —
        // decides below whether their time was interference (inflating
        // running requests' emission gaps) or a stall (the joiner's own
        // TTFT, with nothing decoding to disturb).
        let mut chunks_overlapped_decode = false;
        if inline && !st.prefilling.is_empty() {
            chunks_overlapped_decode = !st.running.is_empty();
            let (chunk_len, step_budget) = self.config.chunk_mode.knobs();
            let mut budget = step_budget.saturating_sub(st.running.len() as u64);
            for i in 0..st.prefilling.len() {
                if budget == 0 {
                    break;
                }
                let (id, done, total, alpha) = {
                    let p = &st.prefilling[i];
                    (p.req.id, p.prefill_done, p.prefill_total, p.admit_alpha)
                };
                let remaining = total - done;
                if remaining == 0 {
                    continue;
                }
                let take = chunk_len.min(remaining).min(budget);
                let seconds = self.prefill_chunk_seconds(done, take, alpha)?;
                chunk_seconds += seconds;
                st.emit(
                    self.deployment,
                    id,
                    EventKind::PrefillChunk {
                        start: done,
                        tokens: take,
                        seconds,
                        interference: chunks_overlapped_decode,
                    },
                );
                let p = &mut st.prefilling[i];
                p.prefill_done += take;
                p.prefill_charged += take;
                budget -= take;
                st.prefill_chunks += 1;
                st.prefill_chunk_tokens += take;
            }
            st.clock += chunk_seconds;
            if chunk_seconds > 0.0 {
                if chunks_overlapped_decode {
                    st.prefill_interference_s += chunk_seconds;
                } else {
                    st.prefill_stall_s += chunk_seconds;
                }
            }
        }

        // 3: join finished prefills at this step boundary.
        if inline {
            // The chunk cursor decides: fully-ingested prompts join in
            // admission order (the order their last chunks executed).
            if st.prefilling.iter().any(|p| p.prefill_done >= p.prefill_total) {
                let (ready, pending): (Vec<InFlight>, Vec<InFlight>) =
                    st.prefilling.drain(..).partition(|p| p.prefill_done >= p.prefill_total);
                st.prefilling = pending;
                st.joins += ready.len() as u64;
                for p in &ready {
                    st.emit(self.deployment, p.req.id, EventKind::Joined);
                }
                st.running.extend(ready);
                st.composition_changed = true;
            }
        } else {
            // Side-prefill: the simulated completion clock decides. If
            // nothing is decoding, fast-forward to the earliest join.
            if st.running.is_empty() && !st.prefilling.is_empty() {
                let earliest = st.prefilling.iter().map(|p| p.join_s).fold(f64::INFINITY, f64::min);
                st.clock = st.clock.max(earliest);
            }
            if !st.prefilling.is_empty() {
                let mut ready: Vec<InFlight> =
                    st.prefilling.iter().copied().filter(|p| p.join_s <= st.clock).collect();
                if !ready.is_empty() {
                    let clock = st.clock;
                    st.prefilling.retain(|p| p.join_s > clock);
                    // Deterministic join order: prefill completion, then
                    // id.
                    ready.sort_by(|a, b| {
                        a.join_s.total_cmp(&b.join_s).then(a.req.id.cmp(&b.req.id))
                    });
                    st.joins += ready.len() as u64;
                    for p in &ready {
                        st.emit(self.deployment, p.req.id, EventKind::Joined);
                    }
                    st.running.extend(ready);
                    st.composition_changed = true;
                }
            }
        }
        if st.running.is_empty() {
            // Prefills still in flight but none ready — chunk modes keep
            // ingesting next call; the side-prefill path can only get
            // here before the clock advance above. Defensive tick.
            return Ok(StepProgress::NoDecode);
        }

        // 4: one decode step of the running batch at its mean context.
        let batch = st.running.len() as u32;
        st.peak_batch = st.peak_batch.max(batch);
        let total_ctx: u64 = st.running.iter().map(|r| r.req.context_at(r.emitted)).sum();
        let mean_ctx = (total_ctx / batch as u64).max(1);
        if st.composition_changed {
            st.alpha = self.alpha_sel.select(&self.model, batch, mean_ctx);
            st.alpha_recomputes += 1;
            st.composition_changed = false;
        }
        let decision = if wb_enabled {
            st.wb.on_step()
        } else {
            SpillDecision { buffered_tokens: 0, spill_now: false, spill_tokens: 0 }
        };
        let outcome = self.decode_step(batch, mean_ctx, st.alpha, &decision)?;
        st.clock += outcome.seconds;
        st.decode_seconds += outcome.seconds;
        // The gap between this emission and the previous one includes
        // the prefill chunks the step absorbed — but only when a stream
        // was already decoding while they ran; chunks that executed with
        // the pipeline empty delayed nobody's next token (they are the
        // joiner's own TTFT, booked as stall above).
        let interference = if chunks_overlapped_decode { chunk_seconds } else { 0.0 };
        st.step_latency.push(interference + outcome.seconds);
        st.decode_steps += 1;
        st.generated += batch as u64;
        st.alpha_steps_sum += st.alpha;
        st.host_bytes += outcome.host_pcie_bytes;
        st.internal_bytes += outcome.internal_read_bytes;

        // Token emission + 5: eviction of completed requests.
        let mut still_running = Vec::with_capacity(st.running.len());
        for mut r in std::mem::take(&mut st.running) {
            r.emitted += 1;
            if r.first_token_s.is_none() {
                r.first_token_s = Some(st.clock);
            }
            st.emit(
                self.deployment,
                r.req.id,
                EventKind::Emit { index: r.emitted - 1, interference_s: interference },
            );
            if r.emitted >= r.req.output_budget {
                self.ledger.release(r.req.id).expect("running request holds allocation");
                // A finished request's prefix KV is worth keeping:
                // release its read pin and publish the prefix (and the
                // session's full context, if keyed) into the ladder for
                // later arrivals to reuse.
                self.publish_finished(&r);
                st.evictions += 1;
                st.outcomes.push(RequestOutcome {
                    id: r.req.id,
                    class: r.req.class,
                    deployment: self.deployment,
                    prompt_len: r.req.prompt_len,
                    output_len: r.emitted,
                    arrival_s: r.arrival_s,
                    admitted_s: r.admitted_s,
                    first_token_s: r.first_token_s.unwrap(),
                    finished_s: st.clock,
                    slo_deadline_s: r.req.slo.deadline_s(),
                    preemptions: r.preemptions,
                    prefill_tokens: r.prefill_charged,
                });
                st.emit(
                    self.deployment,
                    r.req.id,
                    EventKind::Completed { output_tokens: r.emitted },
                );
                st.composition_changed = true;
            } else {
                still_running.push(r);
            }
        }
        st.running = still_running;
        Ok(StepProgress::Decoded)
    }

    /// Seals a finished run state into its [`TraceReport`].
    pub(crate) fn finish(&self, st: RunState) -> TraceReport {
        // The index and ladder persist across runs (that is the point of
        // a cache) — report this run's activity as the delta against the
        // baseline captured when the run state was created. The victim
        // demote/recall fields were event-sourced live into `st.prefix`.
        let mut prefix = st.prefix;
        if let Some(cs) = &self.cache {
            let base = &st.cache_base;
            prefix.lookups += cs.index.lookups() - base.lookups;
            prefix.hits += cs.index.hits() - base.hits;
            prefix.saved_prefill_tokens += cs.index.saved_tokens() - base.saved_tokens;
            for (tier, slot) in KvTier::ALL.iter().zip(prefix.tiers.iter_mut()) {
                let now = cs.ladder.traffic(*tier);
                let was = &base.traffic[tier.index()];
                slot.demoted_bytes += now.demoted_bytes - was.demoted_bytes;
                slot.recalled_bytes += now.recalled_bytes - was.recalled_bytes;
                slot.demote_seconds += now.demote_seconds - was.demote_seconds;
                slot.recall_seconds += now.recall_seconds - was.recall_seconds;
            }
        }
        TraceReport {
            policy: self.policy.name().to_string(),
            outcomes: st.outcomes,
            rejected: st.rejected,
            shed: st.shed,
            steps: st.decode_steps,
            elapsed_s: st.clock,
            generated_tokens: st.generated,
            peak_batch: st.peak_batch,
            joins: st.joins,
            evictions: st.evictions,
            preemptions: st.preemptions,
            alpha_recomputes: st.alpha_recomputes,
            mean_alpha: if st.decode_steps > 0 {
                st.alpha_steps_sum / st.decode_steps as f64
            } else {
                0.0
            },
            step_cache_entries: match &self.shared_cache {
                // The shared table is the deterministic union of every
                // group member's (identical-per-deployment) key set —
                // the same number at any thread count, and equal to the
                // local count for a group of one.
                Some(shared) => shared.steps.read().expect("shared step cache poisoned").len(),
                None => self.step_cache.len(),
            },
            host_pcie_bytes: st.host_bytes,
            internal_read_bytes: st.internal_bytes,
            prefill_payload_bytes: st.prefill_payload,
            kv_placed_bytes: st.kv_placed,
            deadline_s: self.config.deadline_s,
            prefill: PrefillBreakdown {
                decode_seconds: st.decode_seconds,
                interference_seconds: st.prefill_interference_s,
                stall_seconds: st.prefill_stall_s,
                chunks: st.prefill_chunks,
                chunk_tokens: st.prefill_chunk_tokens,
            },
            step_latency_s: st.step_latency,
            wasted_prefill_tokens: st.wasted_prefill_tokens,
            prefix,
            events: st.trace.snapshot(),
            events_dropped: st.trace.dropped(),
        }
    }

    /// Serves a trace of requests (sorted by `arrival_step`) to
    /// completion and reports request-level latency and throughput.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors, or [`CoreError::SchedulerStalled`]
    /// if the policy holds queued requests forever with nothing in
    /// flight.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival step.
    pub fn run_trace(&mut self, trace: &[Request]) -> Result<TraceReport, CoreError> {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step),
            "trace must be sorted by arrival step"
        );
        let mut st = self.new_run_state();
        let mut idx = 0usize;

        while idx < trace.len() || st.has_work() {
            // 1: arrivals up to the current serving step.
            while idx < trace.len() && trace[idx].arrival_step <= st.step {
                self.enqueue_arrival(&mut st, trace[idx]);
                idx += 1;
            }
            // Fully idle with traffic still ahead: jump to the next
            // arrival (simulated time does not advance while idle).
            if !st.has_work() {
                if idx >= trace.len() {
                    break;
                }
                st.step = trace[idx].arrival_step;
                continue;
            }
            match self.advance_once(&mut st)? {
                StepProgress::Stalled => {
                    // Feed the stalled policy the next arrival, or fail
                    // loudly once the trace is exhausted.
                    if idx >= trace.len() {
                        return Err(CoreError::SchedulerStalled { queued: st.queue.len() });
                    }
                    st.step = trace[idx].arrival_step;
                }
                StepProgress::Decoded | StepProgress::NoDecode => st.step += 1,
            }
        }

        Ok(self.finish(st))
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy::{DeadlineEdf, PriorityPreempt};
    use super::*;
    use crate::config::HilosConfig;
    use hilos_llm::{presets, TraceConfig};
    use hilos_platform::SystemSpec;

    fn system(n: usize) -> HilosSystem {
        HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
            .unwrap()
            .with_sim_layers(1)
    }

    #[test]
    fn small_trace_completes_every_request() {
        let trace = TraceConfig::azure_mix(64, 3).generate().unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(16)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.outcomes.len(), 64);
        assert_eq!(report.policy, "fifo");
        assert!(report.rejected.is_empty());
        assert_eq!(report.preemptions, 0, "FIFO never preempts");
        assert!(report.peak_batch > 1, "continuous batching never batched");
        assert!(report.elapsed_s > 0.0);
        assert_eq!(
            report.generated_tokens,
            report.outcomes.iter().map(|o| o.output_len).sum::<u64>()
        );
        // Every request's lifecycle is ordered, on the default deployment.
        for o in &report.outcomes {
            assert!(o.arrival_s <= o.admitted_s, "{o:?}");
            assert!(o.admitted_s < o.first_token_s, "{o:?}");
            assert!(o.first_token_s <= o.finished_s, "{o:?}");
            assert_eq!(o.deployment, DeploymentId::default(), "{o:?}");
        }
        // All shard space released at the end.
        assert_eq!(eng.ledger().live_requests(), 0);
    }

    #[test]
    fn trace_runs_are_deterministic() {
        let trace = TraceConfig::azure_mix(48, 11).generate().unwrap();
        let run =
            || ServeEngine::new(system(8), ServeConfig::new(8)).unwrap().run_trace(&trace).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        assert_eq!(a.elapsed_s.to_bits(), b.elapsed_s.to_bits());
    }

    #[test]
    fn batch_cap_bounds_concurrency() {
        let trace = TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(40, 5) }
            .generate()
            .unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(4)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.peak_batch <= 4);
        assert_eq!(report.outcomes.len(), 40);
    }

    #[test]
    fn oversized_request_is_rejected_not_wedged() {
        let mut trace = TraceConfig::azure_mix(8, 2).generate().unwrap();
        // A request whose KV footprint exceeds the whole array.
        trace[0].prompt_len = 40_000_000_000;
        trace[0].output_budget = 1;
        let mut eng = ServeEngine::new(system(4), ServeConfig::new(8)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.rejected, vec![trace[0].id]);
        assert_eq!(report.outcomes.len(), 7, "the rest of the trace still completes");
    }

    #[test]
    fn alpha_tracks_composition_changes() {
        let trace = TraceConfig::azure_mix(32, 9).generate().unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(8)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.alpha_recomputes >= report.joins.min(report.evictions));
        assert!(report.mean_alpha > 0.0, "MHA model should engage the X-cache");
        assert!(report.step_cache_entries > 0);
        assert!(
            (report.step_cache_entries as u64) < report.steps,
            "step cache should be reused across steps"
        );
    }

    #[test]
    fn degraded_device_skews_serving_placement() {
        let sys = system(4).with_degraded_device(0, 0.25);
        let trace = TraceConfig::azure_mix(24, 7).generate().unwrap();
        let mut eng = ServeEngine::new(sys, ServeConfig::new(8)).unwrap();
        // Snapshot occupancy mid-run is awkward; instead admit manually.
        let m = eng.ledger().device_count();
        assert_eq!(m, 4);
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.outcomes.len(), 24);
        // Verify skew directly on a fresh allocation.
        let placed = eng.ledger.allocate(999, 1 << 30).unwrap();
        assert!(placed[0] * 2 < placed[1], "degraded device should hold less: {placed:?}");
    }

    #[test]
    fn latency_metrics_are_sane() {
        let trace = TraceConfig::azure_mix(64, 13).generate().unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(16)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        let ttft = report.ttft_stats();
        let itl = report.itl_stats();
        assert_eq!(ttft.count, 64);
        assert!(ttft.p50 > 0.0 && ttft.p50 <= ttft.p95 && ttft.p95 <= ttft.p99);
        assert!(itl.p50 > 0.0);
        assert!(report.tokens_per_second() > 0.0);
        assert!(report.token_goodput() <= report.tokens_per_second() + 1e-9);
        let strict = TraceReport { deadline_s: 1e-9, ..report.clone() };
        assert_eq!(strict.token_goodput(), 0.0, "nothing meets a 1ns deadline");
        assert_eq!(strict.deadline_hit_rate(), 0.0);
    }

    #[test]
    fn edf_and_priority_policies_complete_the_same_workload() {
        let trace = TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(48, 21) }
            .generate()
            .unwrap();
        for policy in [
            Box::new(DeadlineEdf::new()) as Box<dyn SchedulingPolicy>,
            Box::new(PriorityPreempt::new()),
        ] {
            let name = policy.name();
            let mut eng = ServeEngine::with_policy(system(8), ServeConfig::new(4), policy).unwrap();
            assert_eq!(eng.policy_name(), name);
            let report = eng.run_trace(&trace).unwrap();
            assert_eq!(report.policy, name);
            assert_eq!(report.outcomes.len() + report.rejected.len(), 48, "{name}");
            assert_eq!(
                report.generated_tokens,
                report.outcomes.iter().map(|o| o.output_len).sum::<u64>(),
                "{name}"
            );
            assert_eq!(eng.ledger().live_requests(), 0, "{name} leaked shard allocations");
            for o in &report.outcomes {
                assert!(o.first_token_s <= o.finished_s, "{name}: {o:?}");
            }
        }
    }

    #[test]
    fn preemption_fires_and_preserves_every_request() {
        // Balanced load on a tiny batch cap: low-priority longs get
        // admitted in quiet gaps, then arriving high-priority shorts find
        // the batch full and evict them. (Under total overload highs
        // monopolize admission instead and no preemption is ever needed.)
        let trace = TraceConfig { mean_interarrival_steps: 40, ..TraceConfig::azure_mix(96, 33) }
            .generate()
            .unwrap();
        let mut eng = ServeEngine::with_policy(
            system(8),
            ServeConfig::new(4),
            Box::new(PriorityPreempt::new()),
        )
        .unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.preemptions > 0, "contended trace should preempt");
        assert_eq!(report.outcomes.len(), 96, "preempted requests must still complete");
        assert_eq!(eng.ledger().live_requests(), 0);
        let preempted: Vec<_> = report.outcomes.iter().filter(|o| o.preemptions > 0).collect();
        assert!(!preempted.is_empty());
        for o in &preempted {
            // Retained progress: the outcome still reports the full
            // output budget, not a restart from zero.
            assert!(o.output_len > 0);
            assert!(o.first_token_s <= o.finished_s);
        }
        // Deterministic under preemption too.
        let mut eng2 = ServeEngine::with_policy(
            system(8),
            ServeConfig::new(4),
            Box::new(PriorityPreempt::new()),
        )
        .unwrap();
        assert_eq!(report, eng2.run_trace(&trace).unwrap());
    }

    fn long_heavy_trace() -> Vec<Request> {
        // Long-prompt heavy mix: prefill work dominates, so the chunk
        // modes differ visibly.
        let mut cfg = TraceConfig::long_context(48, 42, 4).with_mean_interarrival(40);
        cfg.class_weights = [1, 3, 6];
        cfg.generate().unwrap()
    }

    #[test]
    fn chunked_prefill_conserves_tokens_and_ledger() {
        let trace = long_heavy_trace();
        for mode in [ChunkMode::Lump, ChunkMode::chunked()] {
            let mut eng =
                ServeEngine::new(system(8), ServeConfig::new(8).with_chunk_mode(mode)).unwrap();
            let free_before = eng.ledger().free_by_device();
            let report = eng.run_trace(&trace).unwrap();
            assert_eq!(report.outcomes.len(), 48, "{mode:?}");
            // Chunk conservation: FIFO never preempts, so every request
            // ingests exactly its prompt — chunked or not.
            for o in &report.outcomes {
                assert_eq!(o.prefill_tokens, o.prompt_len, "{mode:?}: {o:?}");
            }
            assert_eq!(
                report.prefill.chunk_tokens,
                report.outcomes.iter().map(|o| o.prompt_len).sum::<u64>(),
                "{mode:?}: executed chunks must sum to the whole prompts"
            );
            assert!(report.prefill.chunks >= 48, "{mode:?}");
            assert!(report.prefill.prefill_seconds() > 0.0, "{mode:?}");
            assert_eq!(eng.ledger().free_by_device(), free_before, "{mode:?}");
        }
    }

    #[test]
    fn chunked_and_lump_prefill_cost_the_same_total_seconds() {
        // The budget only moves prefill work around in time; the total
        // charged seconds telescope to the same whole-prompt prefills.
        // α is pinned because the auto-α admission choice depends on the
        // live batch size, which can evolve differently per mode.
        let trace = long_heavy_trace();
        let fixed = HilosConfig::new(8).with_alpha(crate::config::AlphaPolicy::Fixed(0.5));
        let run = |mode| {
            let sys = HilosSystem::new(&SystemSpec::a100_smartssd(8), &presets::opt_30b(), &fixed)
                .unwrap()
                .with_sim_layers(1);
            ServeEngine::new(sys, ServeConfig::new(8).with_chunk_mode(mode))
                .unwrap()
                .run_trace(&trace)
                .unwrap()
        };
        let lump = run(ChunkMode::Lump);
        let chunked = run(ChunkMode::chunked());
        let (a, b) = (lump.prefill.prefill_seconds(), chunked.prefill.prefill_seconds());
        assert!((a - b).abs() / a < 1e-9, "prefill totals diverged: {a} vs {b}");
        assert_eq!(lump.prefill.chunk_tokens, chunked.prefill.chunk_tokens);
        assert!(chunked.prefill.chunks > lump.prefill.chunks);
    }

    #[test]
    fn chunking_bounds_the_decode_gap_tail() {
        let trace = long_heavy_trace();
        let run = |mode| {
            ServeEngine::new(system(8), ServeConfig::new(8).with_chunk_mode(mode))
                .unwrap()
                .run_trace(&trace)
                .unwrap()
        };
        let lump = run(ChunkMode::Lump);
        let chunked = run(ChunkMode::chunked());
        // A lump prefill lands whole inside one step; chunking bounds the
        // per-step interference, so the worst emission gap collapses.
        assert!(
            chunked.step_itl_stats().max < lump.step_itl_stats().max,
            "chunking must bound the worst decode gap: {} vs {}",
            chunked.step_itl_stats().max,
            lump.step_itl_stats().max
        );
        // Off charges prefill nowhere (free parallel ingestion) — both
        // inline modes sit above it, which is the whole point of
        // modeling the contention.
        let off = run(ChunkMode::Off);
        assert_eq!(off.prefill.chunks, 0);
        assert_eq!(off.prefill.prefill_seconds(), 0.0);
        assert!(lump.elapsed_s > off.elapsed_s);
    }

    #[test]
    fn chunk_mode_runs_are_deterministic() {
        let trace = long_heavy_trace();
        let run = || {
            ServeEngine::new(system(8), ServeConfig::new(8).with_chunk_mode(ChunkMode::chunked()))
                .unwrap()
                .run_trace(&trace)
                .unwrap()
        };
        assert_eq!(run(), run(), "chunked serving must stay bit-deterministic");
    }

    #[test]
    fn prefilling_victims_are_cheap_to_preempt_under_chunking() {
        // A policy that preempts whatever is prefilling the moment
        // anything queues: exercises the mid-prefill preemption path.
        #[derive(Debug)]
        struct EvictPrefills;
        impl SchedulingPolicy for EvictPrefills {
            fn name(&self) -> &'static str {
                "evict-prefills"
            }
            fn schedule(&mut self, snap: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
                let mut d = Vec::new();
                if !snap.queue.is_empty() {
                    // At most one preemption per victim, or the loop
                    // would thrash forever re-ingesting the same prompt.
                    d.extend(
                        snap.in_flight
                            .iter()
                            .filter(|v| {
                                !v.decoding && v.prefill_remaining() > 0 && v.preemptions == 0
                            })
                            .take(1)
                            .map(|v| SchedDecision::Preempt { victim: v.id }),
                    );
                }
                d.extend(snap.queue.iter().map(|q| SchedDecision::Admit { request: q.id }));
                d
            }
        }
        let trace = TraceConfig::azure_mix(32, 7).with_mean_interarrival(4).generate().unwrap();
        let mut eng = ServeEngine::with_policy(
            system(8),
            ServeConfig::new(4).with_chunk_mode(ChunkMode::chunked()),
            Box::new(EvictPrefills),
        )
        .unwrap();
        let free_before = eng.ledger().free_by_device();
        let report = eng.run_trace(&trace).unwrap();
        assert!(report.preemptions > 0, "prefilling victims must have been preempted");
        assert_eq!(report.outcomes.len(), 32, "preempted prefills still complete");
        // The discarded chunks are charged as wasted work and re-ingested.
        assert!(report.wasted_prefill_tokens > 0);
        let prompts: u64 = report.outcomes.iter().map(|o| o.prompt_len).sum();
        assert!(report.prefill.chunk_tokens > prompts, "re-ingestion must cost extra chunks");
        assert_eq!(eng.ledger().free_by_device(), free_before);
        // Under the legacy side-prefill mode the same policy's preempt
        // decisions are ignored (prefilling is untouchable there).
        let mut off =
            ServeEngine::with_policy(system(8), ServeConfig::new(4), Box::new(EvictPrefills))
                .unwrap();
        let off_report = off.run_trace(&trace).unwrap();
        assert_eq!(off_report.preemptions, 0);
        assert_eq!(off_report.outcomes.len(), 32);
    }

    #[test]
    fn engine_refuses_to_shed_viable_requests() {
        // A policy that tries to shed everything: the engine must ignore
        // the sheds (every deadline is still live) and stall instead,
        // because the policy never admits.
        #[derive(Debug)]
        struct ShedEverything;
        impl SchedulingPolicy for ShedEverything {
            fn name(&self) -> &'static str {
                "shed-everything"
            }
            fn may_shed(&self) -> bool {
                true
            }
            fn schedule(&mut self, snap: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
                snap.queue.iter().map(|q| SchedDecision::Shed { request: q.id }).collect()
            }
        }
        let trace = TraceConfig::azure_mix(4, 1).generate().unwrap();
        let mut eng =
            ServeEngine::with_policy(system(4), ServeConfig::new(4), Box::new(ShedEverything))
                .unwrap();
        match eng.run_trace(&trace) {
            Err(CoreError::SchedulerStalled { queued }) => assert_eq!(queued, 4),
            other => panic!("viable requests must not be shed: {other:?}"),
        }
    }

    #[test]
    fn edf_shedding_drops_hopeless_requests_under_overload() {
        let trace = TraceConfig::azure_mix(192, 42).with_mean_interarrival(5).generate().unwrap();
        let run = |policy: Box<dyn SchedulingPolicy>| {
            ServeEngine::with_policy(system(8), ServeConfig::new(8), policy)
                .unwrap()
                .run_trace(&trace)
                .unwrap()
        };
        let plain = run(Box::new(DeadlineEdf::new()));
        let shedding = run(Box::new(DeadlineEdf::with_shedding()));
        assert!(plain.shed.is_empty());
        assert_eq!(plain.outcomes.len(), 192);
        assert!(!shedding.shed.is_empty(), "the overloaded trace must shed");
        // outcomes + rejected + shed partition the trace.
        assert_eq!(shedding.outcomes.len() + shedding.rejected.len() + shedding.shed.len(), 192);
        // Every shed was provably hopeless, after its deadline.
        for s in &shedding.shed {
            assert!(s.overdue_s() >= 0.0, "{s:?}");
            assert!(s.shed_s >= s.arrival_s + s.slo_deadline_s, "{s:?}");
        }
        // Shed ids never appear as outcomes.
        for s in &shedding.shed {
            assert!(shedding.outcomes.iter().all(|o| o.id != s.id), "{s:?} also completed");
        }
    }

    #[test]
    fn refusing_policy_stalls_loudly_not_silently() {
        #[derive(Debug)]
        struct Refusenik;
        impl SchedulingPolicy for Refusenik {
            fn name(&self) -> &'static str {
                "refusenik"
            }
            fn schedule(&mut self, _: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
                Vec::new()
            }
        }
        let trace = TraceConfig::azure_mix(4, 1).generate().unwrap();
        let mut eng =
            ServeEngine::with_policy(system(4), ServeConfig::new(4), Box::new(Refusenik)).unwrap();
        match eng.run_trace(&trace) {
            Err(CoreError::SchedulerStalled { queued }) => assert_eq!(queued, 4),
            other => panic!("expected SchedulerStalled, got {other:?}"),
        }
    }

    #[test]
    fn cache_off_reports_idle_prefix_stats() {
        // A shared-prefix trace through a cache-less engine: the prefix
        // keys are ignored, and the report's cache section is all-zero.
        let trace = TraceConfig::shared_prefix_mix(48, 9).generate().unwrap();
        let mut eng = ServeEngine::new(system(8), ServeConfig::new(8)).unwrap();
        let report = eng.run_trace(&trace).unwrap();
        assert_eq!(report.outcomes.len(), 48);
        assert_eq!(report.prefix, PrefixCacheStats::default());
        assert_eq!(eng.prefix_hit_rate(), 0.0);
    }

    #[test]
    fn prefix_hits_skip_prefill_and_conserve_outputs() {
        let trace = TraceConfig::shared_prefix_mix(96, 9).generate().unwrap();
        let run = |cache: Option<PrefixCacheConfig>| {
            let mut cfg = ServeConfig::new(8);
            if let Some(pc) = cache {
                cfg = cfg.with_prefix_cache(pc);
            }
            ServeEngine::new(system(8), cfg).unwrap().run_trace(&trace).unwrap()
        };
        let off = run(None);
        let on = run(Some(PrefixCacheConfig::default()));
        // Reuse does not change *what* is served, only how fast: the
        // same requests complete with the same token counts.
        assert_eq!(on.outcomes.len(), off.outcomes.len());
        assert_eq!(on.generated_tokens, off.generated_tokens);
        // Completion *order* may change (hits finish sooner); the served
        // set and per-request token counts may not.
        let served = |r: &TraceReport| {
            let mut v: Vec<(u64, u64)> = r.outcomes.iter().map(|o| (o.id, o.output_len)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(served(&on), served(&off));
        // The trace shares prefixes aggressively; the cache must hit.
        assert!(on.prefix.lookups > 0, "every keyed admission probes");
        assert!(on.prefix.hits > 0, "shared-prefix trace never hit");
        assert!(on.prefix.saved_prefill_tokens > 0);
        assert!(on.prefix.hit_rate() > 0.0 && on.prefix.hit_rate() <= 1.0);
        // Hits charge their recall I/O but skip whole prefill chunks:
        // prefill-side work must strictly drop.
        let charged_on: u64 = on.outcomes.iter().map(|o| o.prefill_tokens).sum();
        let charged_off: u64 = off.outcomes.iter().map(|o| o.prefill_tokens).sum();
        assert_eq!(
            charged_off - charged_on,
            on.prefix.saved_prefill_tokens,
            "every saved token is a prefill token never charged"
        );
        assert_eq!(off.prefix, PrefixCacheStats::default());
        // Deterministic with the cache on, too.
        assert_eq!(on, run(Some(PrefixCacheConfig::default())));
    }

    #[test]
    fn preemption_demotes_and_recalls_instead_of_discarding() {
        // Same contended setup as preemption_fires_and_preserves_every_request,
        // with the residency ladder catching the victims.
        let trace = TraceConfig { mean_interarrival_steps: 40, ..TraceConfig::azure_mix(96, 33) }
            .generate()
            .unwrap();
        let run = |cache: Option<PrefixCacheConfig>| {
            let mut cfg = ServeConfig::new(4);
            if let Some(pc) = cache {
                cfg = cfg.with_prefix_cache(pc);
            }
            ServeEngine::with_policy(system(8), cfg, Box::new(PriorityPreempt::new()))
                .unwrap()
                .run_trace(&trace)
                .unwrap()
        };
        let off = run(None);
        let on = run(Some(PrefixCacheConfig::default()));
        assert!(off.preemptions > 0, "contended trace should preempt");
        assert_eq!(on.outcomes.len(), off.outcomes.len());
        assert!(on.prefix.victim_demotions > 0, "victims must park in the ladder");
        assert!(on.prefix.victim_recalls > 0, "re-admissions must recall, not recompute");
        assert!(on.prefix.recalled_prefill_tokens > 0);
        assert!(on.prefix.demoted_bytes() > 0);
        assert!(
            on.wasted_prefill_tokens < off.wasted_prefill_tokens,
            "demote-instead-of-discard must cut re-materialization debt: \
             {} !< {}",
            on.wasted_prefill_tokens,
            off.wasted_prefill_tokens
        );
    }
}
