//! The read-only scheduling state the engine publishes to policies.
//!
//! A [`SchedSnapshot`] is built by [`ServeEngine`](super::ServeEngine)
//! once per step, after arrivals and before the decode. It is the *whole*
//! interface a [`SchedulingPolicy`](super::SchedulingPolicy) sees: plain
//! `Copy` views of the queue and the in-flight batch plus the shard
//! ledger's headroom — no handle back into the engine, so a policy cannot
//! bypass the ledger gating or mutate serving state behind the engine's
//! back.

use hilos_llm::{Priority, RequestClass};

/// A queued request (never admitted, or preempted and re-queued) as the
/// policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedView {
    /// Request id (the handle decisions refer to).
    pub id: u64,
    /// Workload class.
    pub class: RequestClass,
    /// Scheduling priority from the request's SLO.
    pub priority: Priority,
    /// When the request became visible to admission (seconds).
    pub arrival_s: f64,
    /// Absolute SLO deadline: arrival plus the per-request allowance.
    pub deadline_s: f64,
    /// Prompt length in tokens.
    pub prompt_len: u64,
    /// Output budget in tokens.
    pub output_budget: u64,
    /// Tokens already generated before a preemption (zero on first
    /// admission). Admission re-materializes their KV via a prefill over
    /// `prompt_len + emitted`.
    pub emitted: u64,
    /// How many times the request has been preempted.
    pub preemptions: u32,
    /// Estimated KV/X footprint bytes if admitted now (at the α the
    /// admission would select). The engine re-derives the exact value at
    /// execution time; policies use this to judge headroom.
    pub footprint_bytes: u64,
    /// Tokens of this request's preempted KV parked in the residency
    /// ladder (zero with the prefix cache off, or for requests that were
    /// never preempted-and-demoted) — admission recalls them instead of
    /// recomputing.
    pub demoted_tokens: u64,
    /// Priced critical-path seconds of recalling that parked KV — the
    /// recall-vs-recompute signal for re-admission ordering.
    pub recall_cost_s: f64,
}

/// An in-flight (prefilling or decoding) request as the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlightView {
    /// Request id (the handle decisions refer to).
    pub id: u64,
    /// Workload class.
    pub class: RequestClass,
    /// Scheduling priority from the request's SLO.
    pub priority: Priority,
    /// When the request became visible to admission (seconds).
    pub arrival_s: f64,
    /// Absolute SLO deadline: arrival plus the per-request allowance.
    pub deadline_s: f64,
    /// Tokens generated so far.
    pub emitted: u64,
    /// Output budget in tokens.
    pub output_budget: u64,
    /// Whether decoding has started. `false` while the prefill is still
    /// running. Under the legacy side-prefill
    /// ([`ChunkMode::Off`](super::ChunkMode::Off)) prefilling requests
    /// are not preemptable (a preemption decision naming one is ignored
    /// by the engine); under the inline chunk modes they are — and
    /// cheaply, since only their executed chunks are discarded.
    pub decoding: bool,
    /// Bytes of KV/X the request holds across the shard ledger — what a
    /// preemption would free.
    pub held_bytes: u64,
    /// How many times the request has been preempted.
    pub preemptions: u32,
    /// Prompt tokens ingested so far (the chunk cursor; equals
    /// `prefill_total` once decoding, stays zero for an in-flight legacy
    /// side-prefill).
    pub prefill_done: u64,
    /// Tokens this admission must ingest before joining: the prompt plus
    /// any progress retained across a preemption.
    pub prefill_total: u64,
}

impl InFlightView {
    /// Tokens still to generate.
    pub fn remaining_output(&self) -> u64 {
        self.output_budget.saturating_sub(self.emitted)
    }

    /// Prompt tokens still to ingest before this request can decode —
    /// the per-request chunk debt a policy can shape the prefill/decode
    /// split with (zero once decoding).
    pub fn prefill_remaining(&self) -> u64 {
        self.prefill_total.saturating_sub(self.prefill_done)
    }
}

/// Read-only snapshot of the serving state, handed to
/// [`SchedulingPolicy::schedule`](super::SchedulingPolicy::schedule) once
/// per step.
#[derive(Debug, Clone, Copy)]
pub struct SchedSnapshot<'a> {
    /// Simulated wall-clock seconds.
    pub clock_s: f64,
    /// The serving-step arrival cursor.
    pub step: u64,
    /// The admission cap (prefilling + decoding requests).
    pub max_batch: u32,
    /// The admission queue in FIFO order.
    pub queue: &'a [QueuedView],
    /// In-flight requests: decoding first, then prefilling.
    pub in_flight: &'a [InFlightView],
    /// Free bytes per shard-ledger device, in device index order.
    pub device_free_bytes: &'a [u64],
    /// Free bytes across placement-eligible devices.
    pub placeable_free: u64,
    /// Prompt tokens the in-flight prefills still have to ingest — the
    /// deployment's remaining chunk debt, which every new admission adds
    /// to and every executed chunk drains.
    pub prefill_backlog_tokens: u64,
}

impl SchedSnapshot<'_> {
    /// Batch slots currently free (`max_batch` minus in-flight).
    pub fn free_slots(&self) -> u32 {
        self.max_batch.saturating_sub(self.in_flight.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::Priority;

    #[test]
    fn views_expose_derived_quantities() {
        let v = InFlightView {
            id: 1,
            class: RequestClass::Long,
            priority: Priority::Low,
            arrival_s: 0.0,
            deadline_s: 600.0,
            emitted: 40,
            output_budget: 350,
            decoding: true,
            held_bytes: 1 << 20,
            preemptions: 0,
            prefill_done: 4096,
            prefill_total: 4096,
        };
        assert_eq!(v.remaining_output(), 310);
        assert_eq!(v.prefill_remaining(), 0, "decoding requests carry no chunk debt");
        let mid = InFlightView { decoding: false, prefill_done: 1024, ..v };
        assert_eq!(mid.prefill_remaining(), 3072);
        let snap = SchedSnapshot {
            clock_s: 1.0,
            step: 3,
            max_batch: 4,
            queue: &[],
            in_flight: &[v, v, v],
            device_free_bytes: &[10, 20],
            placeable_free: 30,
            prefill_backlog_tokens: 0,
        };
        assert_eq!(snap.free_slots(), 1);
        let full = SchedSnapshot { in_flight: &[v, v, v, v, v], ..snap };
        assert_eq!(full.free_slots(), 0, "over-full batch saturates at zero");
    }
}
