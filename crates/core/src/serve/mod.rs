//! Request-level serving: continuous batching over heterogeneous requests
//! behind a pluggable scheduling-policy API.
//!
//! The paper evaluates HILOS on uniform offline batches (every sequence
//! shares one context length, Fig. 4a's prefill → decode pipeline runs
//! once per job). This module generalizes that pipeline to the serving
//! regime the ROADMAP's "heavy traffic" north-star implies: a stream of
//! [`hilos_llm::Request`]s with individual prompt lengths, output budgets
//! and [SLOs](hilos_llm::Slo), served by one continuously-running decode
//! loop.
//!
//! # Architecture
//!
//! Admission and preemption are *not* hard-wired into the engine. Each
//! step, [`ServeEngine`] publishes a read-only [`SchedSnapshot`] (the
//! admission queue, the in-flight batch, per-device KV shard headroom,
//! the clock) to a [`SchedulingPolicy`], which answers with an ordered
//! list of [`SchedDecision`]s — admit this request, preempt that victim.
//! The engine *executes* the decisions: it owns the per-device
//! [`hilos_storage::KvShardLedger`] gating, the α/spill re-selection on
//! composition change, and the recompute-style preemption path (release
//! the victim's shard allocation, re-queue it with its generated-token
//! progress retained, re-materialize its KV via a prefill over
//! `prompt + progress` on re-admission).
//!
//! Three policies ship in [`policy`]: [`Fifo`] (bit-identical to the
//! pre-policy engine, pinned by a golden test), [`DeadlineEdf`]
//! (earliest-deadline-first admission over per-request SLOs) and
//! [`PriorityPreempt`] (strict priority classes; long-output low-priority
//! victims are preempted for short high-priority arrivals). See the
//! [`policy`] module docs for a worked "implement your own policy"
//! example.
//!
//! # The token-budgeted step loop
//!
//! Each iteration of [`ServeEngine::run_trace`] is one serving step — the
//! serving-layer analogue of one trip around the paper's Fig. 4a pipeline
//! (weights stream in, fresh Q/K/V scatter to the devices, per-device KV
//! shards are swept by the near-storage accelerators while the α-fraction
//! X-cache re-projects on the GPU, the delayed-writeback buffer ticks):
//!
//! 1. **Arrivals** — requests whose `arrival_step` has passed enter the
//!    admission queue.
//! 2. **Scheduling** — the policy reads the [`SchedSnapshot`] (which now
//!    carries per-request prefill progress and the deployment's total
//!    prefill backlog) and issues [`SchedDecision`]s; the engine executes
//!    them. An admission is gated by the per-device KV shard ledger
//!    ([`hilos_storage::KvShardLedger`]): a full or weightless (offline)
//!    device rejects placement, degraded devices take proportionally
//!    less of every stripe, and a capacity miss with live requests
//!    abandons the rest of the step's decisions (head-of-line wait).
//!    Admission starts the request's prefill. A preemption releases the
//!    victim's shard allocation and re-queues it with retained progress —
//!    and under the inline chunk modes a *prefilling* victim is cheap
//!    (only its executed chunks are discarded, no decode progress is
//!    lost). A shedding policy ([`SchedulingPolicy::may_shed`]) may drop
//!    provably-hopeless queued requests as typed [`ShedOutcome`]s.
//! 3. **Chunked prefill** — under [`ChunkMode::Lump`] /
//!    [`ChunkMode::Chunked`], pending prompts are ingested *inside* the
//!    step under a shared token budget: the running batch reserves one
//!    budget token per sequence, and the remainder ingests up to one
//!    chunk of each pending prefill (admission order). The chunk time is
//!    charged to the step's clock, so prompt ingestion visibly inflates
//!    decode inter-token latency (interference) or runs with the pipeline
//!    empty (stall) — split out in [`hilos_metrics::PrefillBreakdown`].
//!    Under the legacy [`ChunkMode::Off`], prefill instead runs fully
//!    overlapped on the side, for free (bit-identical to the pre-chunking
//!    engine, golden-pinned).
//! 4. **Join** — requests whose prefill has finished (chunk cursor
//!    complete, or side-prefill clock passed) join the running batch at
//!    the step boundary (continuous batching's per-iteration join).
//! 5. **Decode** — one step of the whole batch is simulated with the same
//!    [`DecodeStepExecutor`](crate::DecodeStepExecutor) that powers
//!    `run_decode`, at the batch's mean context (the step graph is linear
//!    in `batch × context`, so the mean reproduces the heterogeneous
//!    batch's total KV traffic). The α split and the writeback spill
//!    schedule are recomputed whenever the batch composition changes.
//! 6. **Eviction** — requests that exhausted their output budget leave
//!    the batch and release their shard allocations, unblocking
//!    admission.
//!
//! Step times are memoized on the quantized operating point
//! `(batch, context, α, writeback phase)` — and chunk times on a fixed
//! fine context grid, so one request's chunks telescope to exactly its
//! whole-prompt prefill (the conservation property the proptests pin) —
//! so a 10k-request trace costs a few hundred graph simulations instead
//! of tens of thousands while remaining bit-deterministic for a fixed
//! trace and policy.

pub(crate) mod engine;
pub mod policy;
mod snapshot;

pub use engine::{ChunkMode, PrefixCacheConfig, ServeConfig, ServeEngine};
pub use policy::{DeadlineEdf, Fifo, PriorityPreempt, SchedDecision, SchedulingPolicy};
pub use snapshot::{InFlightView, QueuedView, SchedSnapshot};

use hilos_llm::{DeploymentId, RequestClass};
use hilos_metrics::{
    class_breakdown, goodput, ClassReport, ClassSample, LatencyStats, PrefillBreakdown,
    PrefixCacheStats,
};

/// Lifecycle record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// The request's class.
    pub class: RequestClass,
    /// The deployment that served the request to completion
    /// ([`DeploymentId`] `0` outside a cluster). A preempted request that
    /// was re-dispatched across deployments records where it *finished*.
    pub deployment: DeploymentId,
    /// Prompt length in tokens.
    pub prompt_len: u64,
    /// Tokens generated.
    pub output_len: u64,
    /// When the request became visible to admission (seconds).
    pub arrival_s: f64,
    /// When it was first admitted (shard allocation + prefill start).
    pub admitted_s: f64,
    /// When its first output token was produced.
    pub first_token_s: f64,
    /// When its last token was produced (eviction).
    pub finished_s: f64,
    /// The request's own SLO deadline (seconds from arrival).
    pub slo_deadline_s: f64,
    /// How many times the request was preempted and re-admitted.
    pub preemptions: u32,
    /// Prefill tokens executed for this request across every
    /// (re-)admission, including work a preemption later discarded.
    /// Equals `prompt_len` for a never-preempted request — the chunk
    /// conservation the property tests pin.
    pub prefill_tokens: u64,
}

impl RequestOutcome {
    /// Time to first token.
    pub fn ttft(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Mean inter-token latency (zero for single-token outputs).
    pub fn itl(&self) -> f64 {
        if self.output_len > 1 {
            (self.finished_s - self.first_token_s) / (self.output_len - 1) as f64
        } else {
            0.0
        }
    }

    /// End-to-end latency (arrival to last token).
    pub fn e2e(&self) -> f64 {
        self.finished_s - self.arrival_s
    }

    /// Whether the request completed within `deadline_s` of arriving.
    pub fn met_deadline(&self, deadline_s: f64) -> bool {
        self.e2e() <= deadline_s
    }

    /// Whether the request met its *own* SLO deadline — what
    /// deadline-aware policies optimize.
    pub fn met_slo(&self) -> bool {
        self.met_deadline(self.slo_deadline_s)
    }
}

/// Lifecycle record of a request dropped by an overload-shedding policy
/// — it never generated anything, and its deadline had provably passed
/// while it queued (the engine refuses any other shed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedOutcome {
    /// Request id.
    pub id: u64,
    /// The request's class.
    pub class: RequestClass,
    /// When the request became visible to admission (seconds).
    pub arrival_s: f64,
    /// When it was dropped.
    pub shed_s: f64,
    /// The SLO deadline (seconds from arrival) that had already expired.
    pub slo_deadline_s: f64,
}

impl ShedOutcome {
    /// How long past its deadline the request had rotted when shed.
    pub fn overdue_s(&self) -> f64 {
        self.shed_s - (self.arrival_s + self.slo_deadline_s)
    }
}

/// FNV-1a over each outcome's identity, lengths and f64-bit-exact
/// lifecycle timestamps — the golden-pin recipe shared by
/// `tests/serving.rs`, `tests/cluster.rs` and the `bench_serving` CI
/// smoke, so the pinned field set cannot drift between them. Any change
/// to the fields hashed here invalidates every pinned constant at once,
/// loudly.
pub fn outcome_lifecycle_fnv(outcomes: &[RequestOutcome]) -> u64 {
    fn fnv1a(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        }
    }
    let mut h = 0xcbf29ce484222325u64;
    for o in outcomes {
        fnv1a(&mut h, &o.id.to_le_bytes());
        fnv1a(&mut h, &o.prompt_len.to_le_bytes());
        fnv1a(&mut h, &o.output_len.to_le_bytes());
        fnv1a(&mut h, &o.arrival_s.to_bits().to_le_bytes());
        fnv1a(&mut h, &o.admitted_s.to_bits().to_le_bytes());
        fnv1a(&mut h, &o.first_token_s.to_bits().to_le_bytes());
        fnv1a(&mut h, &o.finished_s.to_bits().to_le_bytes());
    }
    h
}

/// TTFT order statistics over completed outcomes — shared by
/// [`TraceReport`] and the baselines' trace reports so the metric
/// definition cannot drift between them.
pub fn ttft_stats_of(outcomes: &[RequestOutcome]) -> LatencyStats {
    outcomes.iter().map(RequestOutcome::ttft).collect()
}

/// Token goodput over completed outcomes under a deadline. Zero — not
/// NaN — for an empty run: `elapsed_s <= 0.0` is guarded inside
/// [`goodput`], mirroring [`throughput_of`] (pinned by the tests below).
pub fn token_goodput_of(outcomes: &[RequestOutcome], deadline_s: f64, elapsed_s: f64) -> f64 {
    goodput(outcomes.iter().map(|o| (o.met_deadline(deadline_s), o.output_len as f64)), elapsed_s)
}

/// Generated-token throughput (zero for an empty run).
pub fn throughput_of(generated_tokens: u64, elapsed_s: f64) -> f64 {
    if elapsed_s > 0.0 {
        generated_tokens as f64 / elapsed_s
    } else {
        0.0
    }
}

/// Per-class latency/goodput breakdown (SLO-based) over completed
/// outcomes, in [`RequestClass::all`] order for the classes present —
/// shared by [`TraceReport`] and the cluster-level
/// [`ClusterReport`](crate::cluster::ClusterReport) so the class
/// aggregation cannot drift between the two layers.
pub fn class_breakdown_of(outcomes: &[RequestOutcome]) -> Vec<ClassReport> {
    let mut samples: Vec<(RequestClass, ClassSample)> = outcomes
        .iter()
        .map(|o| {
            (
                o.class,
                ClassSample {
                    label: o.class.label(),
                    ttft_s: o.ttft(),
                    e2e_s: o.e2e(),
                    met_slo: o.met_slo(),
                    tokens: o.output_len,
                },
            )
        })
        .collect();
    let class_rank = |c: RequestClass| RequestClass::all().iter().position(|&x| x == c);
    samples.sort_by_key(|(c, _)| class_rank(*c));
    class_breakdown(samples.into_iter().map(|(_, s)| s))
}

/// Everything one trace run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// The scheduling policy that produced the run.
    pub policy: String,
    /// Completed requests in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests whose KV footprint can never be placed (larger than the
    /// placeable array) — dropped at admission before generating
    /// anything. (A preempted request that becomes unplaceable on
    /// re-admission instead completes into `outcomes` with its retained
    /// progress, so `generated_tokens` always sums over `outcomes`.)
    pub rejected: Vec<u64>,
    /// Requests an overload-shedding policy dropped (deadline already
    /// expired in the queue, nothing generated). Empty under the shipped
    /// non-shedding policies. `outcomes + rejected + shed` partition the
    /// trace.
    pub shed: Vec<ShedOutcome>,
    /// Decode steps actually executed (idle gaps between arrivals are
    /// skipped, not counted).
    pub steps: u64,
    /// Simulated wall-clock seconds.
    pub elapsed_s: f64,
    /// Total tokens generated.
    pub generated_tokens: u64,
    /// Largest running batch observed.
    pub peak_batch: u32,
    /// Prefill-finished joins into the running batch.
    pub joins: u64,
    /// Completion evictions from the running batch.
    pub evictions: u64,
    /// Preemptions executed (victim released and re-queued).
    pub preemptions: u64,
    /// How often α was re-selected (batch composition changes).
    pub alpha_recomputes: u64,
    /// Step-weighted mean α.
    pub mean_alpha: f64,
    /// Distinct simulated operating points (step-cache size).
    pub step_cache_entries: usize,
    /// Total bytes that crossed the host interconnect during decode.
    pub host_pcie_bytes: f64,
    /// Total bytes read over the devices' internal paths.
    pub internal_read_bytes: f64,
    /// Payload bytes prefills wrote to the devices (KV + X), including
    /// re-materialization prefills after preemptions.
    pub prefill_payload_bytes: f64,
    /// KV/X bytes the shard ledger placed on each device over the whole
    /// run (admitted requests' full footprints, in device index order) —
    /// the placement skew wear accounting must follow.
    pub kv_placed_bytes: Vec<f64>,
    /// The deadline the run was configured with.
    pub deadline_s: f64,
    /// Where the step-charged time went once prefill runs inside the
    /// serving step: decode, chunk interference with the running batch,
    /// or prefill stall (all-zero chunk fields under the legacy
    /// side-prefill [`ChunkMode::Off`]).
    pub prefill: PrefillBreakdown,
    /// Per-decode-step emission gap, in execution order: the decode time
    /// plus whatever prefill-chunk seconds the step absorbed — the
    /// inter-token latency every running request felt at that step.
    /// [`TraceReport::itl_stats`] averages within each request and hides
    /// interference spikes; these samples expose them.
    pub step_latency_s: Vec<f64>,
    /// Prefill re-materialization debt left by preemptions: tokens whose
    /// ingested KV was discarded (a decode victim's whole context, a
    /// prefilling victim's executed chunks) — the groundwork for
    /// cost-aware victim selection. With the prefix cache on, demoted
    /// victims do not count here (their KV survives in the ladder).
    pub wasted_prefill_tokens: u64,
    /// Prefix KV-cache activity of this run: probe hit rate, prefill
    /// tokens reuse skipped, and the ladder's demote/recall traffic.
    /// All-zero with the cache off (the default).
    pub prefix: PrefixCacheStats,
    /// The retained lifecycle event stream, oldest first — empty unless
    /// the run was configured with [`ServeConfig::with_tracing`]. The
    /// stream is deterministic for a fixed trace and policy and is
    /// FNV-pinned in CI via [`hilos_trace::events_fnv`].
    pub events: Vec<hilos_trace::Event>,
    /// Events evicted past the configured ring capacity (zero when
    /// `events` holds the whole stream).
    pub events_dropped: u64,
}

impl TraceReport {
    /// TTFT order statistics.
    pub fn ttft_stats(&self) -> LatencyStats {
        ttft_stats_of(&self.outcomes)
    }

    /// Inter-token latency order statistics (per-request *means* — how a
    /// request's whole stream averaged out).
    pub fn itl_stats(&self) -> LatencyStats {
        self.outcomes.iter().map(RequestOutcome::itl).collect()
    }

    /// Per-emission decode-gap order statistics over every executed step
    /// — the tail a live token stream actually feels. Under
    /// [`ChunkMode::Lump`] a whole-prompt prefill lands in one step and
    /// shows up here as a spike; [`ChunkMode::Chunked`] bounds the
    /// per-step interference, which is exactly what this distribution's
    /// tail measures (the chunked-vs-lump CI gate).
    pub fn step_itl_stats(&self) -> LatencyStats {
        self.step_latency_s.iter().copied().collect()
    }

    /// End-to-end latency order statistics.
    pub fn e2e_stats(&self) -> LatencyStats {
        self.outcomes.iter().map(RequestOutcome::e2e).collect()
    }

    /// Generated-token throughput over the run.
    pub fn tokens_per_second(&self) -> f64 {
        throughput_of(self.generated_tokens, self.elapsed_s)
    }

    /// Token goodput: tokens of deadline-meeting requests per second
    /// (under the run's single configured deadline).
    pub fn token_goodput(&self) -> f64 {
        token_goodput_of(&self.outcomes, self.deadline_s, self.elapsed_s)
    }

    /// Token goodput under each request's *own* SLO deadline — the
    /// scheduler-comparison metric (zero for an empty run, guarded
    /// inside [`goodput`]).
    pub fn slo_token_goodput(&self) -> f64 {
        goodput(self.outcomes.iter().map(|o| (o.met_slo(), o.output_len as f64)), self.elapsed_s)
    }

    /// Fraction of completed requests that met their own SLO deadline.
    pub fn slo_hit_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.met_slo()).count() as f64 / self.outcomes.len() as f64
    }

    /// Request goodput: deadline-meeting completions per second.
    pub fn request_goodput(&self) -> f64 {
        goodput(
            self.outcomes.iter().map(|o| (o.met_deadline(self.deadline_s), 1.0)),
            self.elapsed_s,
        )
    }

    /// Fraction of completed requests that met the deadline.
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.met_deadline(self.deadline_s)).count() as f64
            / self.outcomes.len() as f64
    }

    /// Per-class latency/goodput breakdown (SLO-based), in
    /// [`RequestClass::all`] order for the classes that completed
    /// requests — who pays the tails under a given policy.
    pub fn class_breakdown(&self) -> Vec<ClassReport> {
        class_breakdown_of(&self.outcomes)
    }

    /// The [`ClassReport`] of one class, if it completed any requests.
    pub fn class_report(&self, class: RequestClass) -> Option<ClassReport> {
        self.class_breakdown().into_iter().find(|r| r.label == class.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(class: RequestClass, arrival_s: f64, finished_s: f64, slo: f64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            class,
            deployment: DeploymentId::default(),
            prompt_len: 64,
            output_len: 10,
            arrival_s,
            admitted_s: arrival_s,
            first_token_s: arrival_s + 0.5,
            finished_s,
            slo_deadline_s: slo,
            preemptions: 0,
            prefill_tokens: 64,
        }
    }

    #[test]
    fn goodput_guards_empty_runs_with_zero_elapsed() {
        // An empty trace has elapsed_s == 0.0; every goodput flavour must
        // report 0.0, not NaN.
        assert_eq!(token_goodput_of(&[], 10.0, 0.0), 0.0);
        assert_eq!(throughput_of(0, 0.0), 0.0);
        let empty = TraceReport {
            policy: "fifo".into(),
            outcomes: vec![],
            rejected: vec![],
            shed: vec![],
            steps: 0,
            elapsed_s: 0.0,
            generated_tokens: 0,
            peak_batch: 0,
            joins: 0,
            evictions: 0,
            preemptions: 0,
            alpha_recomputes: 0,
            mean_alpha: 0.0,
            step_cache_entries: 0,
            host_pcie_bytes: 0.0,
            internal_read_bytes: 0.0,
            prefill_payload_bytes: 0.0,
            kv_placed_bytes: vec![],
            deadline_s: 120.0,
            prefill: PrefillBreakdown::default(),
            step_latency_s: vec![],
            wasted_prefill_tokens: 0,
            prefix: PrefixCacheStats::default(),
            events: vec![],
            events_dropped: 0,
        };
        assert_eq!(empty.token_goodput(), 0.0);
        assert!(!empty.token_goodput().is_nan());
        assert_eq!(empty.slo_token_goodput(), 0.0);
        assert_eq!(empty.request_goodput(), 0.0);
        assert_eq!(empty.tokens_per_second(), 0.0);
        assert_eq!(empty.slo_hit_rate(), 0.0);
        assert!(empty.class_breakdown().is_empty());
    }

    #[test]
    fn slo_metrics_use_per_request_deadlines() {
        let fast = outcome(RequestClass::Short, 0.0, 5.0, 10.0);
        let late = outcome(RequestClass::Long, 0.0, 50.0, 10.0);
        assert!(fast.met_slo());
        assert!(!late.met_slo());
        let report = TraceReport {
            policy: "test".into(),
            outcomes: vec![fast, late],
            rejected: vec![],
            shed: vec![],
            steps: 2,
            elapsed_s: 50.0,
            generated_tokens: 20,
            peak_batch: 2,
            joins: 2,
            evictions: 2,
            preemptions: 0,
            alpha_recomputes: 1,
            mean_alpha: 0.0,
            step_cache_entries: 1,
            host_pcie_bytes: 0.0,
            internal_read_bytes: 0.0,
            prefill_payload_bytes: 0.0,
            kv_placed_bytes: vec![],
            deadline_s: 1000.0,
            prefill: PrefillBreakdown::default(),
            step_latency_s: vec![],
            wasted_prefill_tokens: 0,
            prefix: PrefixCacheStats::default(),
            events: vec![],
            events_dropped: 0,
        };
        assert_eq!(report.slo_hit_rate(), 0.5);
        assert!((report.slo_token_goodput() - 10.0 / 50.0).abs() < 1e-12);
        // Global-deadline goodput still counts both.
        assert_eq!(report.deadline_hit_rate(), 1.0);
        let classes = report.class_breakdown();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].label, "Short");
        assert_eq!(classes[0].slo_met, 1);
        assert_eq!(classes[1].label, "Long");
        assert_eq!(classes[1].slo_met, 0);
        assert!(report.class_report(RequestClass::Medium).is_none());
        assert_eq!(report.class_report(RequestClass::Short).unwrap().count, 1);
    }
}
