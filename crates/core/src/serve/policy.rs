//! Pluggable scheduling policies: who gets the scarce KV capacity.
//!
//! Related near-storage and KV-offloading systems show that *which*
//! request holds KV capacity — not just how fast kernels run — dominates
//! end-to-end cost, so scheduling is a first-class, swappable API here.
//! A [`SchedulingPolicy`] is consulted once per serving step with a
//! read-only [`SchedSnapshot`] and answers with an ordered list of
//! [`SchedDecision`]s. The engine executes them under its own invariants
//! (batch cap, per-device shard-ledger gating, head-of-line wait), so a
//! policy cannot corrupt serving state — at worst its decisions are
//! ignored.
//!
//! # Decision semantics
//!
//! The engine walks the decision list in order:
//!
//! * [`SchedDecision::Preempt`] — if the victim is currently *decoding*,
//!   it is removed from the batch, its shard allocation is released, and
//!   it is re-queued with its generated-token progress retained (its KV is
//!   re-materialized by a prefill over `prompt + progress` on
//!   re-admission). Under the inline chunk modes
//!   ([`ChunkMode`](super::ChunkMode)) a *prefilling* victim may be named
//!   too — a cheap preemption that discards only its executed chunks.
//!   Naming a queued or unknown id (or a prefilling one under the legacy
//!   side-prefill mode) is ignored.
//! * [`SchedDecision::Shed`] — if the named *queued* request's deadline
//!   has provably passed on the deployment clock and it carries no
//!   generated progress, it is dropped with a typed
//!   [`ShedOutcome`](super::ShedOutcome) instead of rotting in (and
//!   clogging) the queue. Anything else is ignored — a policy cannot
//!   shed viable work or erase retained progress.
//! * [`SchedDecision::Admit`] — if the batch is at `max_batch` the rest
//!   of the list is abandoned (the step is full). Otherwise the engine
//!   computes the request's footprint at the admission α and asks the
//!   ledger to place it: an unplaceable-ever request is rejected outright;
//!   a capacity miss while other requests are live abandons the rest of
//!   the list (head-of-line wait — evictions will free space). Ids not in
//!   the queue are ignored.
//!
//! Returning an empty list holds every queued request for the step.
//!
//! # Implementing your own policy
//!
//! A policy is a plain struct. Here is a complete shortest-job-first
//! scheduler — admit the request with the fewest total tokens first:
//!
//! ```
//! use hilos_core::serve::policy::{SchedDecision, SchedulingPolicy};
//! use hilos_core::serve::{QueuedView, SchedSnapshot};
//!
//! #[derive(Debug, Default)]
//! struct ShortestJobFirst;
//!
//! impl SchedulingPolicy for ShortestJobFirst {
//!     fn name(&self) -> &'static str {
//!         "shortest-job-first"
//!     }
//!
//!     fn schedule(&mut self, snap: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
//!         let mut order: Vec<&QueuedView> = snap.queue.iter().collect();
//!         // Total work, ties broken by id for determinism.
//!         order.sort_by_key(|q| (q.prompt_len + q.output_budget, q.id));
//!         // Emit every candidate: the engine stops at the batch cap and
//!         // on capacity misses, so over-asking is safe.
//!         order.into_iter().map(|q| SchedDecision::Admit { request: q.id }).collect()
//!     }
//! }
//!
//! // Drive it exactly like the built-in policies:
//! // ServeEngine::with_policy(system, config, Box::new(ShortestJobFirst))
//! # let _ = ShortestJobFirst;
//! ```
//!
//! Policies may keep state across steps (`schedule` takes `&mut self`) —
//! e.g. an admission-rate limiter or a learned model — but determinism of
//! a serving run requires the policy itself to be deterministic.

use super::snapshot::{InFlightView, QueuedView, SchedSnapshot};
use std::fmt;

/// One typed scheduling decision, executed (and validated) by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedDecision {
    /// Try to admit the queued request with this id.
    Admit {
        /// The queued request's id.
        request: u64,
    },
    /// Preempt the in-flight request with this id: release its KV shard
    /// allocation and re-queue it with retained progress.
    Preempt {
        /// The victim's id.
        victim: u64,
    },
    /// Drop the queued request with this id as provably hopeless (its
    /// deadline already passed while it queued) — overload shedding.
    Shed {
        /// The hopeless queued request's id.
        request: u64,
    },
}

/// An admission/preemption policy consulted once per serving step.
///
/// `Send` is a supertrait so a deployment (engine + policy) can be
/// handed to a cluster fan-out worker for its lockstep iteration; every
/// shipped policy is plain owned data.
pub trait SchedulingPolicy: fmt::Debug + Send {
    /// Stable policy name, recorded in
    /// [`TraceReport::policy`](super::TraceReport::policy).
    fn name(&self) -> &'static str;

    /// Whether the policy ever emits [`SchedDecision::Preempt`].
    ///
    /// Policies that may preempt are consulted on *every* serving step
    /// (even with an empty queue — e.g. to shed a deadline-hopeless
    /// decoding request). An admission-only policy has nothing useful to
    /// say when the queue is empty or the batch is at `max_batch`, so on
    /// those steps the engine skips building the snapshot and consulting
    /// it entirely — on a backlogged trace that is most steps, and the
    /// O(queue) view construction is the serving loop's dominant cost.
    /// Defaults to `true` (always consulted); override to `false` for
    /// admission-only policies.
    fn may_preempt(&self) -> bool {
        true
    }

    /// Whether the policy ever emits [`SchedDecision::Shed`].
    ///
    /// Admission-only policies are normally skipped on full-batch steps
    /// (nothing to admit), but a *shedding* policy must still see those
    /// steps — a saturated batch over a deep queue is exactly when
    /// deadlines expire. Defaults to `false`.
    fn may_shed(&self) -> bool {
        false
    }

    /// How many queued requests — from the head, in arrival order — the
    /// policy needs in its snapshot this step, given `free_slots` open
    /// batch slots. `None` (the default) means the whole queue.
    ///
    /// The snapshot's queue views are the serving loop's dominant cost on
    /// a backlogged trace: O(queue) per step. A policy that admits
    /// strictly from the head of the queue only ever acts on one
    /// candidate per free slot, so it can bound the horizon and turn the
    /// build into O(batch) — the difference between a 2k-request and a
    /// 1M-request trace. Order-sensitive policies (deadline, priority)
    /// must keep the default: they need the whole backlog to sort it.
    fn queue_horizon(&self, free_slots: usize) -> Option<usize> {
        let _ = free_slots;
        None
    }

    /// Reads the snapshot and returns the step's decisions, in execution
    /// order (preemptions intended to make room must precede the
    /// admission that needs it).
    fn schedule(&mut self, snapshot: &SchedSnapshot<'_>) -> Vec<SchedDecision>;
}

/// First-in-first-out admission, no preemption — bit-identical to the
/// engine behavior before the policy API existed (pinned by a golden
/// test on the seeded Azure-mix trace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl SchedulingPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn may_preempt(&self) -> bool {
        false
    }

    fn queue_horizon(&self, free_slots: usize) -> Option<usize> {
        // FIFO admits strictly head-first and the engine stops at the
        // batch cap (or the first capacity miss, which is head-of-line
        // blocking either way), so candidates beyond the free slots can
        // never be acted on this step.
        Some(free_slots)
    }

    fn schedule(&mut self, snapshot: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
        // Emit the whole visible queue in arrival order; the engine
        // enforces the batch cap and the head-of-line wait, reproducing
        // the original hard-wired loop exactly.
        snapshot.queue.iter().map(|q| SchedDecision::Admit { request: q.id }).collect()
    }
}

/// Earliest-deadline-first admission over per-request SLOs
/// ([`hilos_llm::Slo`]), no preemption — with opt-in overload shedding.
///
/// Under contention, FIFO lets tight-deadline requests rot behind
/// loose-deadline long jobs that arrived earlier; EDF admits by absolute
/// deadline (`arrival + allowance`), which is optimal for deadline
/// feasibility on a single resource and measurably lifts SLO goodput on
/// mixed traces.
///
/// Under *overload*, plain EDF suffers the classic domino effect: it
/// keeps admitting the earliest deadline even once that deadline is
/// already dead, burning capacity on requests that can no longer count
/// toward goodput and dragging every later deadline down with them.
/// [`DeadlineEdf::with_shedding`] drops provably-hopeless queued
/// requests (deadline already expired on the deployment clock) as typed
/// [`ShedOutcome`](super::ShedOutcome)s instead, so the remaining
/// capacity goes to requests that can still meet their SLOs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineEdf {
    /// Whether provably-hopeless queued requests are shed (off by
    /// default — plain EDF, bit-identical to the pre-shedding policy).
    pub shed_hopeless: bool,
}

impl DeadlineEdf {
    /// Plain EDF: admit by absolute deadline, never drop anything.
    pub fn new() -> Self {
        DeadlineEdf { shed_hopeless: false }
    }

    /// EDF with overload shedding: queued requests whose deadline has
    /// already passed are dropped instead of admitted.
    pub fn with_shedding() -> Self {
        DeadlineEdf { shed_hopeless: true }
    }
}

impl SchedulingPolicy for DeadlineEdf {
    fn name(&self) -> &'static str {
        if self.shed_hopeless {
            "deadline-edf-shed"
        } else {
            "deadline-edf"
        }
    }

    fn may_preempt(&self) -> bool {
        false
    }

    fn may_shed(&self) -> bool {
        self.shed_hopeless
    }

    fn schedule(&mut self, snapshot: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
        let mut order: Vec<&QueuedView> = snapshot.queue.iter().collect();
        order.sort_by(|a, b| {
            a.deadline_s
                .total_cmp(&b.deadline_s)
                .then(a.arrival_s.total_cmp(&b.arrival_s))
                .then(a.id.cmp(&b.id))
        });
        order
            .into_iter()
            .map(|q| {
                // A request whose deadline has already passed can never
                // meet its SLO however it is scheduled; a preemption
                // victim with progress still completes (the engine would
                // refuse to shed it anyway).
                if self.shed_hopeless && q.emitted == 0 && q.deadline_s <= snapshot.clock_s {
                    SchedDecision::Shed { request: q.id }
                } else {
                    SchedDecision::Admit { request: q.id }
                }
            })
            .collect()
    }
}

/// Strict priority classes with preemption: queued high-priority
/// requests may evict decoding lower-priority victims.
///
/// Admission is ordered by (priority, arrival). When the single best
/// queued candidate cannot start — no free batch slot, or the shard
/// ledger lacks headroom for its footprint — the policy preempts
/// strictly-lower-priority *decoding* victims, preferring the ones with
/// the most output still to generate (they hold capacity longest), until
/// the candidate fits or the per-step preemption budget is exhausted. If
/// preemption cannot make enough room, nobody is preempted (no thrash
/// for nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityPreempt {
    /// Most victims preempted per scheduling step (thrash guard).
    pub max_preemptions_per_step: usize,
}

impl PriorityPreempt {
    /// The default configuration: at most 2 victims per step.
    pub fn new() -> Self {
        PriorityPreempt { max_preemptions_per_step: 2 }
    }
}

impl Default for PriorityPreempt {
    fn default() -> Self {
        PriorityPreempt::new()
    }
}

impl SchedulingPolicy for PriorityPreempt {
    fn name(&self) -> &'static str {
        "priority-preempt"
    }

    fn schedule(&mut self, snapshot: &SchedSnapshot<'_>) -> Vec<SchedDecision> {
        let mut order: Vec<&QueuedView> = snapshot.queue.iter().collect();
        order.sort_by(|a, b| {
            b.priority
                .cmp(&a.priority)
                .then(a.arrival_s.total_cmp(&b.arrival_s))
                .then(a.id.cmp(&b.id))
        });
        let mut decisions = Vec::with_capacity(order.len());
        if let Some(head) = order.first() {
            let mut slots = snapshot.free_slots() as usize;
            let mut free = snapshot.placeable_free;
            if slots == 0 || free < head.footprint_bytes {
                let mut victims: Vec<&InFlightView> = snapshot
                    .in_flight
                    .iter()
                    .filter(|v| v.decoding && v.priority < head.priority)
                    .collect();
                // Lowest class first; within a class, the longest
                // remaining output (ties to the younger id, which under
                // FIFO-ish arrival got capacity last).
                victims.sort_by(|a, b| {
                    a.priority
                        .cmp(&b.priority)
                        .then(b.remaining_output().cmp(&a.remaining_output()))
                        .then(b.id.cmp(&a.id))
                });
                let mut chosen = Vec::new();
                for v in victims {
                    if chosen.len() >= self.max_preemptions_per_step
                        || (slots >= 1 && free >= head.footprint_bytes)
                    {
                        break;
                    }
                    chosen.push(v.id);
                    slots += 1;
                    free += v.held_bytes;
                }
                if slots >= 1 && free >= head.footprint_bytes {
                    decisions
                        .extend(chosen.into_iter().map(|victim| SchedDecision::Preempt { victim }));
                }
            }
        }
        decisions.extend(order.into_iter().map(|q| SchedDecision::Admit { request: q.id }));
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_llm::{Priority, RequestClass};

    fn queued(id: u64, arrival_s: f64, deadline_s: f64, priority: Priority) -> QueuedView {
        QueuedView {
            id,
            class: RequestClass::Medium,
            priority,
            arrival_s,
            deadline_s,
            prompt_len: 1024,
            output_budget: 350,
            emitted: 0,
            preemptions: 0,
            footprint_bytes: 1000,
            demoted_tokens: 0,
            recall_cost_s: 0.0,
        }
    }

    fn flying(id: u64, priority: Priority, remaining: u64, decoding: bool) -> InFlightView {
        InFlightView {
            id,
            class: RequestClass::Long,
            priority,
            arrival_s: 0.0,
            deadline_s: 1e9,
            emitted: 0,
            output_budget: remaining,
            decoding,
            held_bytes: 600,
            preemptions: 0,
            prefill_done: if decoding { 1024 } else { 0 },
            prefill_total: 1024,
        }
    }

    fn snap<'a>(
        queue: &'a [QueuedView],
        in_flight: &'a [InFlightView],
        max_batch: u32,
        placeable_free: u64,
    ) -> SchedSnapshot<'a> {
        SchedSnapshot {
            clock_s: 0.0,
            step: 0,
            max_batch,
            queue,
            in_flight,
            device_free_bytes: &[],
            placeable_free,
            prefill_backlog_tokens: 0,
        }
    }

    #[test]
    fn fifo_emits_queue_order() {
        let q = [
            queued(5, 0.0, 10.0, Priority::Low),
            queued(2, 1.0, 2.0, Priority::High),
            queued(9, 2.0, 5.0, Priority::Normal),
        ];
        let d = Fifo.schedule(&snap(&q, &[], 4, 1 << 30));
        assert_eq!(
            d,
            vec![
                SchedDecision::Admit { request: 5 },
                SchedDecision::Admit { request: 2 },
                SchedDecision::Admit { request: 9 },
            ]
        );
    }

    #[test]
    fn edf_sorts_by_absolute_deadline() {
        let q = [
            queued(5, 0.0, 10.0, Priority::Low),
            queued(2, 1.0, 2.0, Priority::High),
            queued(9, 2.0, 5.0, Priority::Normal),
            queued(1, 3.0, 5.0, Priority::Normal),
        ];
        let d = DeadlineEdf::new().schedule(&snap(&q, &[], 4, 1 << 30));
        let ids: Vec<u64> = d
            .iter()
            .map(|d| match d {
                SchedDecision::Admit { request } => *request,
                _ => unreachable!("EDF never preempts"),
            })
            .collect();
        // Deadline 2 < 5 (arrival 2.0 before 3.0) < 10.
        assert_eq!(ids, vec![2, 9, 1, 5]);
    }

    #[test]
    fn edf_shedding_drops_only_expired_deadlines() {
        let q = [
            queued(5, 0.0, 10.0, Priority::Low),
            queued(2, 1.0, 2.0, Priority::High),
            queued(9, 2.0, 5.0, Priority::Normal),
        ];
        // Clock at 4.0: request 2's deadline (2.0) has passed, 9's (5.0)
        // and 5's (10.0) have not.
        let snapshot = SchedSnapshot { clock_s: 4.0, ..snap(&q, &[], 4, 1 << 30) };
        let d = DeadlineEdf::with_shedding().schedule(&snapshot);
        assert_eq!(
            d,
            vec![
                SchedDecision::Shed { request: 2 },
                SchedDecision::Admit { request: 9 },
                SchedDecision::Admit { request: 5 },
            ]
        );
        // Plain EDF admits the dead request anyway (the domino effect).
        let plain = DeadlineEdf::new().schedule(&snapshot);
        assert_eq!(plain[0], SchedDecision::Admit { request: 2 });
        // A preemption victim with retained progress is never shed.
        let victims = [QueuedView { emitted: 17, ..queued(2, 1.0, 2.0, Priority::High) }];
        let snapshot = SchedSnapshot { clock_s: 4.0, ..snap(&victims, &[], 4, 1 << 30) };
        assert_eq!(
            DeadlineEdf::with_shedding().schedule(&snapshot),
            vec![SchedDecision::Admit { request: 2 }]
        );
        assert!(DeadlineEdf::with_shedding().may_shed());
        assert!(!DeadlineEdf::new().may_shed());
        assert_eq!(DeadlineEdf::with_shedding().name(), "deadline-edf-shed");
    }

    #[test]
    fn priority_orders_admissions_by_class_then_arrival() {
        let q = [
            queued(5, 0.0, 10.0, Priority::Low),
            queued(2, 1.0, 2.0, Priority::High),
            queued(9, 0.5, 5.0, Priority::High),
        ];
        let d = PriorityPreempt::new().schedule(&snap(&q, &[], 8, 1 << 30));
        assert_eq!(
            d,
            vec![
                SchedDecision::Admit { request: 9 },
                SchedDecision::Admit { request: 2 },
                SchedDecision::Admit { request: 5 },
            ]
        );
    }

    #[test]
    fn priority_preempts_longest_remaining_low_victim_when_full() {
        let q = [queued(7, 0.0, 2.0, Priority::High)];
        let fly = [
            flying(1, Priority::Low, 50, true),
            flying(2, Priority::Low, 300, true),
            flying(3, Priority::Normal, 500, true),
            flying(4, Priority::Low, 400, false), // prefilling: untouchable
        ];
        // Batch full (4 of 4): one preemption makes a slot and frees
        // enough bytes.
        let d = PriorityPreempt::new().schedule(&snap(&q, &fly, 4, 1 << 30));
        assert_eq!(d[0], SchedDecision::Preempt { victim: 2 }, "longest-remaining Low decoding");
        assert_eq!(d[1], SchedDecision::Admit { request: 7 });
    }

    #[test]
    fn priority_does_not_preempt_without_enough_gain() {
        // Head needs 1000 free bytes; the only victim frees 600 and the
        // array has 0: preemption cannot make room, so nobody is evicted.
        let q = [queued(7, 0.0, 2.0, Priority::High)];
        let fly = [flying(1, Priority::Low, 300, true)];
        let d = PriorityPreempt { max_preemptions_per_step: 1 }.schedule(&snap(&q, &fly, 1, 0));
        assert!(
            d.iter().all(|d| !matches!(d, SchedDecision::Preempt { .. })),
            "useless preemption emitted: {d:?}"
        );
    }

    #[test]
    fn priority_never_preempts_equal_or_higher_classes() {
        let q = [queued(7, 0.0, 2.0, Priority::Normal)];
        let fly = [flying(1, Priority::Normal, 300, true), flying(2, Priority::High, 300, true)];
        let d = PriorityPreempt::new().schedule(&snap(&q, &fly, 2, 0));
        assert!(d.iter().all(|d| !matches!(d, SchedDecision::Preempt { .. })), "{d:?}");
    }

    #[test]
    fn empty_queue_schedules_nothing() {
        assert!(Fifo.schedule(&snap(&[], &[], 4, 0)).is_empty());
        assert!(DeadlineEdf::new().schedule(&snap(&[], &[], 4, 0)).is_empty());
        assert!(PriorityPreempt::new().schedule(&snap(&[], &[], 4, 0)).is_empty());
        assert_eq!(Fifo.name(), "fifo");
        assert_eq!(DeadlineEdf::new().name(), "deadline-edf");
        assert_eq!(DeadlineEdf::default(), DeadlineEdf::new());
        assert_eq!(PriorityPreempt::default().name(), "priority-preempt");
    }
}
