//! Property tests for the α model, writeback invariants and the serving
//! layer's shard-ledger conservation.

use hilos_core::cluster::{
    ClusterConfig, ClusterEngine, CostNormalizedPressure, ElasticClusterEngine, ElasticConfig,
    JoinShortestQueue, LedgerPressure, RoundRobin, RoutingPolicy, TargetPressureScaler,
};
use hilos_core::trace::{
    check_conservation, events_fnv, prefill_chunk_totals, Event, LatencyAttribution,
};
use hilos_core::{
    paper_alpha_mha, spill_nand_bytes_per_token, AlphaModel, AlphaPolicy, ChunkMode, DeadlineEdf,
    Fifo, HilosConfig, HilosSystem, PrefixCacheConfig, PriorityPreempt, SchedulingPolicy,
    ServeConfig, ServeEngine, WritebackManager, ALPHA_CANDIDATES,
};
use hilos_llm::{presets, SharedPrefixConfig, TraceConfig};
use hilos_platform::SystemSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The selected α is the argmin over the candidate grid, for any
    /// bandwidth/size configuration.
    #[test]
    fn selected_alpha_is_candidate_argmin(
        x_frac in 0.2f64..3.0,
        b_ssd in 1.0e9..100.0e9,
        b_pci in 1.0e9..100.0e9,
        regen in 1.0e12..1.0e17,
        c_gpu in 10.0e12..1000.0e12,
    ) {
        let kv = 1.0e12;
        let m = AlphaModel {
            x_bytes: kv * x_frac,
            kv_bytes: kv,
            b_ssd,
            b_pci,
            regen_flops: regen,
            c_gpu,
        };
        let a = m.select_alpha();
        let t = m.effective_seconds(a);
        for &cand in &ALPHA_CANDIDATES {
            prop_assert!(t <= m.effective_seconds(cand) * (1.0 + 1e-9),
                "alpha {a} ({t}s) beaten by {cand} ({}s)", m.effective_seconds(cand));
        }
    }

    /// The MHA closed form solves T_PCI = T_SSD exactly when unclamped.
    #[test]
    fn closed_form_balances_transfers(
        b_ssd in 2.0e9..100.0e9,
        b_pci in 1.0e9..100.0e9,
    ) {
        let m = AlphaModel {
            x_bytes: 0.5e12,
            kv_bytes: 1.0e12,
            b_ssd,
            b_pci,
            regen_flops: 1.0,
            c_gpu: 1e15,
        };
        let a = m.closed_form_alpha();
        prop_assume!(a > 0.0 && a < 1.0);
        let t_pci = a * m.x_bytes / m.b_pci;
        let t_ssd = (a * m.x_bytes + (1.0 - a) * m.kv_bytes) / m.b_ssd;
        prop_assert!((t_pci - t_ssd).abs() / t_ssd < 1e-9);
        // And it matches the paper's published formula.
        prop_assert!((a - paper_alpha_mha(b_ssd, b_pci)).abs() < 1e-12);
    }

    /// Effective step time is monotone non-increasing in both bandwidths.
    #[test]
    fn effective_time_monotone_in_bandwidth(
        alpha_i in 0usize..5,
        b_ssd in 2.0e9..50.0e9,
        b_pci in 2.0e9..50.0e9,
        boost in 1.01f64..4.0,
    ) {
        let alpha = ALPHA_CANDIDATES[alpha_i];
        let base = AlphaModel {
            x_bytes: 0.5e12,
            kv_bytes: 1.0e12,
            b_ssd,
            b_pci,
            regen_flops: 1e15,
            c_gpu: 290e12,
        };
        let faster_ssd = AlphaModel { b_ssd: b_ssd * boost, ..base };
        let faster_pci = AlphaModel { b_pci: b_pci * boost, ..base };
        prop_assert!(faster_ssd.effective_seconds(alpha) <= base.effective_seconds(alpha));
        prop_assert!(faster_pci.effective_seconds(alpha) <= base.effective_seconds(alpha));
    }

    /// The writeback manager spills exactly floor(steps/c) times over any
    /// horizon and never buffers ≥ c tokens.
    #[test]
    fn writeback_spill_count_exact(c in 1u32..64, steps in 1u32..512) {
        let mut wb = WritebackManager::new(c);
        let mut spills = 0u32;
        for _ in 0..steps {
            let d = wb.on_step();
            prop_assert!(d.buffered_tokens < c);
            if d.spill_now {
                prop_assert_eq!(d.spill_tokens, c);
                spills += 1;
            }
        }
        prop_assert_eq!(spills, steps / c);
        prop_assert_eq!(wb.buffered_tokens(), steps % c);
        prop_assert_eq!(wb.total_spills() as u32, spills);
    }

    /// Spill write amplification is ≥ 1 and non-increasing in the spill
    /// interval, for any page size.
    #[test]
    fn spill_waf_bounds(c in 1u32..128, page_pow in 12u32..15) {
        let page = 1u64 << page_pow;
        let m = presets::opt_66b();
        let payload = m.kv_bytes_per_token() as f64;
        let waf = spill_nand_bytes_per_token(&m, c, page) / payload;
        prop_assert!(waf >= 1.0 - 1e-9, "waf {waf} < 1");
        let waf2 = spill_nand_bytes_per_token(&m, c * 2, page) / payload;
        prop_assert!(waf2 <= waf * (1.0 + 1e-9), "waf not monotone: {waf} -> {waf2}");
    }
}

fn serve_system() -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(8), &presets::opt_30b(), &HilosConfig::new(8))
        .unwrap()
        .with_sim_layers(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shard-ledger conservation: after *any* `run_trace` — any policy,
    /// any chunk mode, any load, including runs that preempt mid-prefill
    /// and re-admit — every device returns to its initial free capacity
    /// and no allocation leaks.
    #[test]
    fn ledger_conserved_across_any_run_trace(
        n in 8usize..48,
        seed in 0u64..1_000_000,
        gap in 0u64..64,
        max_batch in 2u32..8,
        policy_idx in 0usize..4,
        chunk_idx in 0usize..4,
    ) {
        let trace = TraceConfig { mean_interarrival_steps: gap, ..TraceConfig::azure_mix(n, seed) }
            .generate()
            .unwrap();
        let policy: Box<dyn SchedulingPolicy> = match policy_idx {
            0 => Box::new(Fifo),
            1 => Box::new(DeadlineEdf::new()),
            2 => Box::new(DeadlineEdf::with_shedding()),
            _ => Box::new(PriorityPreempt::new()),
        };
        let chunk_mode = match chunk_idx {
            0 => ChunkMode::Off,
            1 => ChunkMode::Lump,
            2 => ChunkMode::chunked(),
            _ => ChunkMode::Chunked { chunk_tokens: 64, step_budget_tokens: 512 },
        };
        let name = policy.name();
        let config = ServeConfig::new(max_batch).with_chunk_mode(chunk_mode);
        let mut eng = ServeEngine::with_policy(serve_system(), config, policy).unwrap();
        let free_before = eng.ledger().free_by_device();
        let occupied_before = eng.ledger().total_occupied();
        let report = eng.run_trace(&trace).unwrap();
        prop_assert_eq!(
            report.outcomes.len() + report.rejected.len() + report.shed.len(), n,
            "{} lost requests", name);
        prop_assert_eq!(eng.ledger().live_requests(), 0, "{} leaked allocations", name);
        prop_assert_eq!(eng.ledger().total_occupied(), occupied_before, "{} occupancy", name);
        prop_assert_eq!(eng.ledger().free_by_device(), free_before, "{} per-device free", name);
        // A shed request never generated or completed.
        for s in &report.shed {
            prop_assert!(report.outcomes.iter().all(|o| o.id != s.id), "{:?} completed too", s);
            prop_assert!(s.overdue_s() >= 0.0, "viable request shed: {:?}", s);
        }
    }

    /// Chunk conservation: whatever the chunk size and step budget, the
    /// executed prefill chunks of every completed request sum to exactly
    /// its whole-prompt prefill — in tokens exactly, in seconds to f64
    /// accumulation accuracy (chunk times are telescoping differences of
    /// the same memoized whole-prompt curve, only their summation order
    /// differs between runs). α is pinned: under auto-α the admission α
    /// depends on the live batch size, which can evolve differently
    /// between the two runs and legitimately shift their totals.
    #[test]
    fn chunked_prefill_conserves_whole_prompt_work(
        n in 8usize..24,
        seed in 0u64..1_000_000,
        gap in 0u64..48,
        chunk_pow in 5u32..10,
        budget_mult in 1u64..8,
    ) {
        let chunk = 1u64 << chunk_pow;
        let chunked = ChunkMode::Chunked {
            chunk_tokens: chunk,
            step_budget_tokens: chunk * budget_mult,
        };
        let trace = TraceConfig { mean_interarrival_steps: gap, ..TraceConfig::azure_mix(n, seed) }
            .generate()
            .unwrap();
        let fixed_alpha_system = || {
            HilosSystem::new(
                &SystemSpec::a100_smartssd(8),
                &presets::opt_30b(),
                &HilosConfig::new(8).with_alpha(AlphaPolicy::Fixed(0.5)),
            )
            .unwrap()
            .with_sim_layers(1)
        };
        let run = |mode| {
            ServeEngine::new(fixed_alpha_system(), ServeConfig::new(4).with_chunk_mode(mode))
                .unwrap()
                .run_trace(&trace)
                .unwrap()
        };
        let lump = run(ChunkMode::Lump);
        let fine = run(chunked);
        prop_assert_eq!(lump.outcomes.len(), n);
        prop_assert_eq!(fine.outcomes.len(), n);
        // FIFO never preempts: every request ingests exactly its prompt.
        for o in fine.outcomes.iter().chain(lump.outcomes.iter()) {
            prop_assert_eq!(o.prefill_tokens, o.prompt_len, "{:?}", o);
        }
        prop_assert_eq!(lump.prefill.chunk_tokens, fine.prefill.chunk_tokens);
        let (a, b) = (lump.prefill.prefill_seconds(), fine.prefill.prefill_seconds());
        prop_assert!(
            (a - b).abs() <= 1e-9 * a.max(1.0),
            "chunked prefill total {b}s diverged from lump {a}s (chunk {chunk})"
        );
    }

    /// Prefix-cache serving conservation: with the cache on — any chunk
    /// mode, any load, any shared-prefix shape, a deliberately tiny HBM
    /// rung forcing constant demotion cascades — every request still
    /// finishes exactly once, the shard ledger returns to its initial
    /// state, and the cache's books balance: hits never exceed lookups,
    /// victims recall at most what was demoted, and under FIFO (no
    /// preemptions) the prefill tokens actually charged equal the
    /// prompts minus exactly the saved tokens.
    #[test]
    fn prefix_cache_serving_conserves_requests_and_work(
        n in 8usize..32,
        seed in 0u64..1_000_000,
        gap in 0u64..64,
        chunk_idx in 0usize..3,
        policy_idx in 0usize..2,
        sys_pow in 7u32..12,
        fu_pct in 0u32..95,
    ) {
        let shared = SharedPrefixConfig {
            system_prompt_tokens: 1 << sys_pow,
            follow_up_fraction: fu_pct as f64 / 100.0,
            follow_up_tokens: 96,
            max_turns: 6,
        };
        let trace = TraceConfig { mean_interarrival_steps: gap, ..TraceConfig::azure_mix(n, seed) }
            .with_shared_prefix(shared)
            .generate()
            .unwrap();
        let chunk_mode = match chunk_idx {
            0 => ChunkMode::Off,
            1 => ChunkMode::Lump,
            _ => ChunkMode::chunked(),
        };
        let policy: Box<dyn SchedulingPolicy> = if policy_idx == 0 {
            Box::new(Fifo)
        } else {
            Box::new(PriorityPreempt::new())
        };
        let cache = PrefixCacheConfig {
            hbm_bytes: 64 << 20, // tiny on purpose: publish must cascade
            dram_bytes: 1 << 30,
            block_tokens: 64,
        };
        let config = ServeConfig::new(4).with_chunk_mode(chunk_mode).with_prefix_cache(cache);
        let mut eng = ServeEngine::with_policy(serve_system(), config, policy).unwrap();
        let free_before = eng.ledger().free_by_device();
        let report = eng.run_trace(&trace).unwrap();

        // Exactly-once and shard-ledger conservation, cache on.
        prop_assert_eq!(report.outcomes.len() + report.rejected.len(), n);
        prop_assert_eq!(eng.ledger().live_requests(), 0, "leaked shard allocations");
        prop_assert_eq!(eng.ledger().free_by_device(), free_before, "per-device free drifted");

        // The cache's books balance.
        let pc = &report.prefix;
        prop_assert!(pc.hits <= pc.lookups, "{} hits > {} lookups", pc.hits, pc.lookups);
        prop_assert!(pc.hit_rate() <= 1.0);
        prop_assert!(pc.victim_recalls <= pc.victim_demotions, "recalled more than parked");
        if policy_idx == 0 {
            // FIFO never preempts: charged prefill = prompts - saved.
            prop_assert_eq!(report.preemptions, 0);
            prop_assert_eq!(pc.victim_demotions, 0);
            let charged: u64 = report.outcomes.iter().map(|o| o.prefill_tokens).sum();
            let prompts: u64 = report.outcomes.iter().map(|o| o.prompt_len).sum();
            prop_assert_eq!(
                charged + pc.saved_prefill_tokens, prompts,
                "saved tokens must be exactly the prefill never charged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cluster conservation: for any routing policy, scheduling policy
    /// mix, load and cluster shape, every trace request finishes exactly
    /// once across the whole cluster — no loss, no duplication — and
    /// every deployment's shard ledger returns to its initial per-device
    /// free state, even when preempted requests are re-dispatched across
    /// deployments.
    #[test]
    fn cluster_routing_conserves_requests_and_ledgers(
        n in 12usize..48,
        seed in 0u64..1_000_000,
        gap in 0u64..48,
        max_batch in 2u32..6,
        routing_idx in 0usize..3,
        sched_idx in 0usize..2,
        dep_count in 1usize..4,
    ) {
        let trace = TraceConfig { mean_interarrival_steps: gap, ..TraceConfig::azure_mix(n, seed) }
            .generate()
            .unwrap();
        let routing: Box<dyn RoutingPolicy> = match routing_idx {
            0 => Box::new(RoundRobin::new()),
            1 => Box::new(JoinShortestQueue),
            _ => Box::new(LedgerPressure::new()),
        };
        // Heterogeneous shapes: 8 healthy / 6 half-degraded / 4 degraded.
        let serve_cfg = ServeConfig::new(max_batch).with_tracing(1 << 18);
        let deployments: Vec<ServeEngine> = (0..dep_count)
            .map(|d| {
                let sys = match d {
                    0 => serve_system(),
                    1 => HilosSystem::new(
                        &SystemSpec::a100_smartssd(6),
                        &presets::opt_30b(),
                        &HilosConfig::new(6),
                    )
                    .unwrap()
                    .with_sim_layers(1)
                    .with_degraded_device(1, 0.5),
                    _ => HilosSystem::new(
                        &SystemSpec::a100_smartssd(4),
                        &presets::opt_30b(),
                        &HilosConfig::new(4),
                    )
                    .unwrap()
                    .with_sim_layers(1)
                    .with_degraded_device(0, 0.25),
                };
                let policy: Box<dyn SchedulingPolicy> = if sched_idx == 0 {
                    Box::new(Fifo)
                } else {
                    Box::new(PriorityPreempt::new())
                };
                ServeEngine::with_policy(sys, serve_cfg.clone(), policy).unwrap()
            })
            .collect();
        let frees_before: Vec<Vec<u64>> =
            deployments.iter().map(|e| e.ledger().free_by_device()).collect();
        let mut cluster = ClusterEngine::new(deployments, routing);
        let report = cluster.run_trace(&trace).unwrap();

        // Exactly-once across the cluster: outcomes + rejections
        // partition the trace ids.
        let mut seen: Vec<u64> = report.outcomes().map(|o| o.id).collect();
        seen.extend(report.deployments.iter().flat_map(|d| d.rejected.iter().copied()));
        seen.sort_unstable();
        let mut expect: Vec<u64> = trace.iter().map(|r| r.id).collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect, "requests lost or duplicated across deployments");

        // Dispatch accounting covers the whole trace.
        prop_assert_eq!(report.dispatched.iter().sum::<u64>(), n as u64);

        // Ledger conservation per deployment.
        for (eng, before) in cluster.deployments().iter().zip(&frees_before) {
            prop_assert_eq!(eng.ledger().live_requests(), 0, "leaked allocations");
            prop_assert_eq!(&eng.ledger().free_by_device(), before, "per-device free drifted");
        }

        // Event-stream conservation *across* the rings: a request that
        // arrived on one deployment may terminate on another (migration),
        // but every arrival terminates exactly once cluster-wide.
        let rings: Vec<&[Event]> =
            report.deployments.iter().map(|d| d.events.as_slice()).collect();
        for d in &report.deployments {
            prop_assert_eq!(d.events_dropped, 0, "ring too small for the run");
        }
        let cons = check_conservation(&rings);
        prop_assert!(cons.holds(), "event conservation violated: {:?}", cons);
        prop_assert_eq!(cons.arrived, n);
        prop_assert_eq!(cons.completed + cons.rejected, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Parallel lockstep stepping is outcome-transparent: for any seeded
    /// trace, routing policy, chunk mode and cluster shape, the fixed
    /// cluster produces a bit-identical [`ClusterReport`] — and
    /// bit-identical traced event streams, compared by FNV — at 1, 2 and
    /// 4 worker threads.
    #[test]
    fn parallel_cluster_stepping_is_bit_identical(
        n in 12usize..40,
        seed in 0u64..1_000_000,
        gap in 4u64..32,
        routing_idx in 0usize..4,
        chunk_idx in 0usize..2,
        dep_count in 2usize..4,
    ) {
        let trace = TraceConfig { mean_interarrival_steps: gap, ..TraceConfig::azure_mix(n, seed) }
            .generate()
            .unwrap();
        let run_at = |threads: usize| {
            let routing: Box<dyn RoutingPolicy> = match routing_idx {
                0 => Box::new(RoundRobin::new()),
                1 => Box::new(JoinShortestQueue),
                2 => Box::new(LedgerPressure::new()),
                _ => Box::new(CostNormalizedPressure),
            };
            let mut serve_cfg = ServeConfig::new(4).with_tracing(1 << 18);
            if chunk_idx == 1 {
                serve_cfg = serve_cfg.with_chunk_mode(ChunkMode::chunked());
            }
            let deployments: Vec<ServeEngine> = (0..dep_count)
                .map(|d| {
                    let devices = [8, 6, 4][d];
                    let sys = HilosSystem::new(
                        &SystemSpec::a100_smartssd(devices),
                        &presets::opt_30b(),
                        &HilosConfig::new(devices),
                    )
                    .unwrap()
                    .with_sim_layers(1);
                    ServeEngine::with_policy(
                        sys,
                        serve_cfg.clone(),
                        Box::new(PriorityPreempt::new()),
                    )
                    .unwrap()
                })
                .collect();
            let mut cluster = ClusterEngine::with_config(
                deployments,
                routing,
                ClusterConfig::new().with_cluster_threads(threads),
            );
            cluster.run_trace(&trace).unwrap()
        };
        let serial = run_at(1);
        for threads in [2usize, 4] {
            let parallel = run_at(threads);
            for (d, (a, b)) in serial.deployments.iter().zip(&parallel.deployments).enumerate() {
                prop_assert_eq!(
                    events_fnv(&a.events), events_fnv(&b.events),
                    "deployment {} event stream drifted at {} threads", d, threads
                );
            }
            prop_assert_eq!(&serial, &parallel, "{} threads drifted from serial", threads);
        }
    }

    /// The same transparency through the elastic engine, with the fleet
    /// scaling both ways mid-run: a pressure-driven autoscaler over a
    /// bursty seeded trace drains and migrates in-flight work, and the
    /// whole [`ElasticReport`] — lifecycle events, bills, migrations —
    /// is bit-identical at 1, 2 and 4 worker threads.
    #[test]
    fn parallel_elastic_stepping_is_bit_identical(
        n in 24usize..64,
        seed in 0u64..1_000_000,
        bursts in 2u32..5,
        routing_idx in 0usize..2,
    ) {
        let trace = TraceConfig::flash_crowd_mix(n, seed, bursts, 1200).generate().unwrap();
        let run_at = |threads: usize| {
            let routing: Box<dyn RoutingPolicy> = if routing_idx == 0 {
                Box::new(LedgerPressure::new())
            } else {
                Box::new(CostNormalizedPressure)
            };
            let deployments: Vec<ServeEngine> = [8usize, 6, 4]
                .iter()
                .map(|&devices| {
                    let sys = HilosSystem::new(
                        &SystemSpec::a100_smartssd(devices),
                        &presets::opt_30b(),
                        &HilosConfig::new(devices),
                    )
                    .unwrap()
                    .with_sim_layers(1);
                    ServeEngine::new(sys, ServeConfig::new(4).with_tracing(1 << 18)).unwrap()
                })
                .collect();
            let mut elastic = ElasticClusterEngine::new(
                deployments,
                routing,
                Box::new(TargetPressureScaler::new(0.75, 0.1, 24)),
                ElasticConfig {
                    cluster: ClusterConfig::new().with_cluster_threads(threads),
                    ..ElasticConfig::new(1)
                },
            );
            elastic.run_trace(&trace).unwrap()
        };
        let serial = run_at(1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&serial, &run_at(threads), "{} threads drifted from serial", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Event-stream conservation and additive latency attribution: for
    /// any scheduling policy — including preempting and shedding ones —
    /// any chunk mode and any load, a traced run pairs every `Arrived`
    /// with exactly one terminal event, agrees with the report's own
    /// outcome/rejection/shed counts, reconciles its chunk events
    /// against [`TraceReport::prefill`], and decomposes every completed
    /// request's end-to-end latency into phase components that sum back
    /// to it bit-exactly.
    #[test]
    fn event_stream_conserves_and_attribution_sums_to_e2e(
        n in 8usize..40,
        seed in 0u64..1_000_000,
        gap in 0u64..48,
        chunk_idx in 0usize..3,
        policy_idx in 0usize..4,
    ) {
        let trace = TraceConfig { mean_interarrival_steps: gap, ..TraceConfig::azure_mix(n, seed) }
            .generate()
            .unwrap();
        let chunk_mode = match chunk_idx {
            0 => ChunkMode::Off,
            1 => ChunkMode::Lump,
            _ => ChunkMode::chunked(),
        };
        let policy: Box<dyn SchedulingPolicy> = match policy_idx {
            0 => Box::new(Fifo),
            1 => Box::new(DeadlineEdf::new()),
            2 => Box::new(DeadlineEdf::with_shedding()),
            _ => Box::new(PriorityPreempt::new()),
        };
        let config = ServeConfig::new(4).with_chunk_mode(chunk_mode).with_tracing(1 << 20);
        let mut eng = ServeEngine::with_policy(serve_system(), config, policy).unwrap();
        let report = eng.run_trace(&trace).unwrap();

        prop_assert_eq!(report.events_dropped, 0, "ring too small for the run");
        let cons = check_conservation(&[&report.events]);
        prop_assert!(cons.holds(), "event conservation violated: {:?}", cons);
        prop_assert_eq!(cons.arrived, n);
        prop_assert_eq!(cons.completed, report.outcomes.len());
        prop_assert_eq!(cons.rejected, report.rejected.len());
        prop_assert_eq!(cons.shed, report.shed.len());

        // Attribution: one row per completed request, every component
        // non-negative (to float tolerance) and summing back exactly.
        let attr = LatencyAttribution::analyze(&[&report.events]);
        prop_assert_eq!(attr.rows.len(), report.outcomes.len());
        for row in &attr.rows {
            prop_assert_eq!(
                row.components_sum(), row.e2e_s,
                "request {} leaks time: {:?}", row.id, row
            );
            for c in [
                row.queue_s, row.recall_s, row.prefill_s, row.interference_s,
                row.preemption_lost_s, row.migration_s, row.decode_s,
            ] {
                prop_assert!(c >= -1e-9, "negative component on {}: {:?}", row.id, row);
            }
        }

        // Chunk events reconcile against the engine's own breakdown.
        let totals = prefill_chunk_totals(&report.events);
        prop_assert_eq!(totals.chunks, report.prefill.chunks);
        prop_assert_eq!(totals.tokens, report.prefill.chunk_tokens);
        prop_assert!(
            (totals.seconds() - report.prefill.prefill_seconds()).abs()
                <= 1e-9 * totals.seconds().max(1.0),
            "chunk seconds diverged from the report"
        );
    }
}

/// Directed conservation check on a run that *provably* preempts: the
/// balanced-load priority trace fires dozens of preempt/re-admit cycles,
/// and the ledger still returns to its initial state.
#[test]
fn ledger_conserved_under_forced_preemptions() {
    let trace = TraceConfig { mean_interarrival_steps: 40, ..TraceConfig::azure_mix(96, 33) }
        .generate()
        .unwrap();
    let mut eng = ServeEngine::with_policy(
        serve_system(),
        ServeConfig::new(4),
        Box::new(PriorityPreempt::new()),
    )
    .unwrap();
    let free_before = eng.ledger().free_by_device();
    let report = eng.run_trace(&trace).unwrap();
    assert!(report.preemptions > 0, "trace must exercise the preempt/re-admit path");
    assert_eq!(eng.ledger().live_requests(), 0);
    assert_eq!(eng.ledger().free_by_device(), free_before);
}
