//! Offline stand-in for the slice of the `criterion` API this workspace's
//! benches use.
//!
//! The build environment cannot fetch crates.io, so `cargo bench` targets
//! link against this shim instead. It keeps criterion's source-level API
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`) and reports mean / best / worst
//! wall-clock per iteration on stdout. It performs no statistical
//! analysis and writes no HTML reports; swap the path dependency for the
//! real crate when network access is available — no source changes
//! needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(600);
/// Target wall-clock spent warming up each benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(150);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// Timing loop handle passed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the iteration count so short
    /// routines are batched.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: run once to estimate, then pick a batch size that
        // keeps each sample around 1/10 of the measurement budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = TARGET_MEASURE / 10;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < TARGET_WARMUP {
            black_box(routine());
        }

        // Measure.
        let measure_start = Instant::now();
        while measure_start.elapsed() < TARGET_MEASURE || self.samples.len() < 3 {
            let s = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(s.elapsed() / batch as u32);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new() };
    f(&mut b);
    let n = b.samples.len().max(1) as u32;
    let total: Duration = b.samples.iter().sum();
    let mean = total / n;
    let best = b.samples.iter().min().copied().unwrap_or_default();
    let worst = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(best),
        fmt_duration(mean),
        fmt_duration(worst)
    );
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group; benchmarks inside it print as
    /// `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim's sampling is
    /// time-budgeted instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("shim_smoke", |b| b.iter(|| std::hint::black_box(2 + 2)));
    }

    #[test]
    fn groups_print_prefixed() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("f", |b| b.iter(|| std::hint::black_box(1)));
        g.finish();
    }
}
