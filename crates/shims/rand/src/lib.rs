//! Offline stand-in for the tiny slice of the `rand` crate API this
//! workspace uses (`StdRng::seed_from_u64`, `random::<f32>()`,
//! `random_range(lo..hi)`).
//!
//! The build environment has no access to crates.io, so this workspace
//! ships its own deterministic generator behind the same names. The
//! generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and (crucially for the reproduction) bit-deterministic across
//! platforms and runs. The streams differ from the real `rand` crate's
//! `StdRng`; everything in this workspace that consumes randomness is
//! calibrated against *this* generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Range-like arguments accepted by [`RngExt::random_range`], mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience sampling methods, mirroring the `rand::Rng`/`RngExt`
/// extension-trait shape.
pub trait RngExt: RngCore {
    /// A uniform sample of `T` (full range for integers, `[0,1)` for
    /// floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (public domain reference algorithm).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f32>() as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
