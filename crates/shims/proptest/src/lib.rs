//! Offline stand-in for the slice of the `proptest` API this workspace's
//! property tests use.
//!
//! The build environment cannot fetch crates.io, so the `properties.rs`
//! test suites link against this shim. It keeps proptest's source-level
//! surface — the `proptest!` macro with `arg in strategy` bindings,
//! numeric-range / `any::<T>()` / tuple / `prop::collection::vec`
//! strategies, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `ProptestConfig::with_cases` — over a deterministic per-test
//! generator. There is no shrinking: a failing case panics with its
//! inputs' case number, and re-running reproduces it exactly (the
//! generator is seeded from the test name).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Number-of-cases configuration, mirroring `proptest::test_runner`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

/// Deterministic generator driving the strategies (xorshift64*; seeded
/// from the test name so every test has a stable, independent stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with a stream derived from `name`.
    pub fn from_name(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng { state: h.finish() | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` (without
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i64, i32, i16, i8, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

/// Full-range strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy: uniform over `T`'s whole range.
pub fn any<T>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_any {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let raw = rng.next_u64();
                #[allow(clippy::redundant_closure_call)]
                ($conv)(raw)
            }
        }
    )*};
}

impl_any! {
    bool => |r: u64| r & 1 == 1,
    u8 => |r: u64| r as u8,
    u16 => |r: u64| r as u16,
    u32 => |r: u64| r as u32,
    u64 => |r: u64| r,
    usize => |r: u64| r as usize,
    i32 => |r: u64| r as i32,
    i64 => |r: u64| r as i64,
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A vector strategy: `len` drawn from `len_range`, elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len_range: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len_range: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len_range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len_range.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop` (as used by
/// `prop::collection::vec`).
pub mod prop {
    pub use super::collection;
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{:?} != {:?}: {}", a, b, format!($($fmt)*)
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f32..4.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&y), "y={y}");
        }

        #[test]
        fn vec_strategy_obeys_len(xs in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for v in &xs {
                prop_assert!(*v < 10);
            }
        }

        #[test]
        fn tuples_and_any(pair in (any::<bool>(), 0u32..100)) {
            let (_b, n) = pair;
            prop_assert!(n < 100);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a != 3);
            prop_assert!(a != 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
