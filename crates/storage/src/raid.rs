//! RAID-0 striping across devices, as the paper's baselines configure with
//! `mdadm` (§6.1).

use std::error::Error;
use std::fmt;

/// One device's share of a striped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeExtent {
    /// Index of the device inside the array.
    pub device: usize,
    /// Bytes this device serves.
    pub bytes: u64,
}

/// Errors from RAID planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RaidError {
    /// The array was constructed with zero devices.
    NoDevices,
}

impl fmt::Display for RaidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaidError::NoDevices => write!(f, "RAID-0 array needs at least one device"),
        }
    }
}

impl Error for RaidError {}

/// An mdadm-style RAID-0 array: fixed-size chunks round-robin across
/// devices.
///
/// # Examples
///
/// ```
/// use hilos_storage::Raid0;
///
/// let raid = Raid0::new(4, 512 * 1024)?;
/// let plan = raid.plan(0, 4 * 512 * 1024);
/// assert_eq!(plan.len(), 4);
/// assert!(plan.iter().all(|e| e.bytes == 512 * 1024));
/// # Ok::<(), hilos_storage::RaidError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Raid0 {
    devices: usize,
    chunk_bytes: u64,
}

impl Raid0 {
    /// Creates an array of `devices` drives with the given chunk size
    /// (mdadm's default is 512 KiB).
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::NoDevices`] if `devices` is zero.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn new(devices: usize, chunk_bytes: u64) -> Result<Self, RaidError> {
        if devices == 0 {
            return Err(RaidError::NoDevices);
        }
        assert!(chunk_bytes > 0, "chunk size must be positive");
        Ok(Raid0 { devices, chunk_bytes })
    }

    /// Number of devices in the array.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Stripe chunk size in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Splits the byte range `[offset, offset+len)` into per-device byte
    /// counts. Devices with zero bytes are omitted; extents are returned in
    /// device order.
    pub fn plan(&self, offset: u64, len: u64) -> Vec<StripeExtent> {
        let mut per_device = vec![0u64; self.devices];
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk_index = pos / self.chunk_bytes;
            let device = (chunk_index % self.devices as u64) as usize;
            let chunk_end = (chunk_index + 1) * self.chunk_bytes;
            let take = chunk_end.min(end) - pos;
            per_device[device] += take;
            pos += take;
        }
        per_device
            .into_iter()
            .enumerate()
            .filter(|(_, b)| *b > 0)
            .map(|(device, bytes)| StripeExtent { device, bytes })
            .collect()
    }

    /// Splits a bulk transfer as evenly as possible across all devices —
    /// the steady-state behaviour for large sequential KV-cache I/O.
    pub fn split_even(&self, bytes: u64) -> Vec<StripeExtent> {
        let base = bytes / self.devices as u64;
        let rem = bytes % self.devices as u64;
        (0..self.devices)
            .map(|device| StripeExtent {
                device,
                bytes: base + if (device as u64) < rem { 1 } else { 0 },
            })
            .filter(|e| e.bytes > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_devices_rejected() {
        assert_eq!(Raid0::new(0, 512).unwrap_err(), RaidError::NoDevices);
    }

    #[test]
    fn plan_round_robins_chunks() {
        let raid = Raid0::new(4, 1024).unwrap();
        // 6 KiB from offset 0: chunks 0..6 -> devices 0,1,2,3,0,1.
        let plan = raid.plan(0, 6 * 1024);
        assert_eq!(
            plan,
            vec![
                StripeExtent { device: 0, bytes: 2048 },
                StripeExtent { device: 1, bytes: 2048 },
                StripeExtent { device: 2, bytes: 1024 },
                StripeExtent { device: 3, bytes: 1024 },
            ]
        );
    }

    #[test]
    fn plan_handles_unaligned_offsets() {
        let raid = Raid0::new(2, 1024).unwrap();
        // 1.5 KiB starting mid-chunk at 512: 512 on dev0, 1024 on dev1.
        let plan = raid.plan(512, 1536);
        assert_eq!(
            plan,
            vec![StripeExtent { device: 0, bytes: 512 }, StripeExtent { device: 1, bytes: 1024 },]
        );
    }

    #[test]
    fn plan_conserves_bytes() {
        let raid = Raid0::new(3, 4096).unwrap();
        for (off, len) in [(0u64, 100_000u64), (123, 77_777), (8191, 1)] {
            let total: u64 = raid.plan(off, len).iter().map(|e| e.bytes).sum();
            assert_eq!(total, len);
        }
    }

    #[test]
    fn split_even_balances() {
        let raid = Raid0::new(4, 512).unwrap();
        let plan = raid.split_even(10);
        let bytes: Vec<u64> = plan.iter().map(|e| e.bytes).collect();
        assert_eq!(bytes, vec![3, 3, 2, 2]);
        assert_eq!(bytes.iter().sum::<u64>(), 10);
    }

    #[test]
    fn split_even_drops_empty_devices() {
        let raid = Raid0::new(8, 512).unwrap();
        let plan = raid.split_even(3);
        assert_eq!(plan.len(), 3);
    }
}
