//! Content-keyed prefix KV cache index over the tiered residency ladder.
//!
//! Shared system prompts and multi-turn conversations re-prefill the same
//! token prefix on every request. The [`PrefixCacheIndex`] keeps hashed,
//! block-granular prefix entries — refcounted while any live request
//! reads them, LRU-ordered within each tier — whose bytes are resident on
//! a [`KvTierLadder`]. A probe answers "how many prefill tokens can this
//! request skip, and from which tier must the KV be recalled"; publishing
//! a finished request's context extends the entry for its key, demoting
//! least-recently-used *unreferenced* entries down the ladder (and off
//! its bottom rung) to make room. All structures iterate in key order, so
//! every decision is deterministic.

use crate::tier::{KvTier, KvTierLadder};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from prefix-index refcounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrefixError {
    /// The key has no cached entry.
    UnknownPrefix(u64),
    /// Release without a matching acquire.
    NotAcquired(u64),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::UnknownPrefix(k) => write!(f, "prefix key {k:#x} has no cached entry"),
            PrefixError::NotAcquired(k) => {
                write!(f, "prefix key {k:#x} released without a matching acquire")
            }
        }
    }
}

impl Error for PrefixError {}

#[derive(Debug, Clone, Copy)]
struct PrefixEntry {
    tokens: u64,
    tier: KvTier,
    refs: u32,
    last_touch: u64,
}

/// Content-keyed, block-granular prefix KV cache index.
///
/// # Examples
///
/// ```
/// use hilos_storage::{KvTier, KvTierLadder, PrefixCacheIndex, SsdSpec};
///
/// let mut ladder = KvTierLadder::new(1 << 30, 8 << 30, SsdSpec::smartssd_nvme(), 8);
/// let mut index = PrefixCacheIndex::new(64, 1024);
/// assert!(index.publish(0xfeed, 512, &mut ladder));
/// let (hit, tier) = index.probe(0xfeed, 700).expect("prefix cached");
/// assert_eq!(hit, 512);
/// assert_eq!(tier, KvTier::Hbm);
/// assert_eq!(index.probe(0xbeef, 700), None);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixCacheIndex {
    block_tokens: u64,
    bytes_per_token: u64,
    // BTreeMap keeps victim selection and any derived accounting
    // deterministic across runs.
    entries: BTreeMap<u64, PrefixEntry>,
    clock: u64,
    lookups: u64,
    hits: u64,
    saved_tokens: u64,
}

impl PrefixCacheIndex {
    /// Creates an empty index caching prefixes in `block_tokens` units,
    /// with each token's KV footprint costed at `bytes_per_token`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(block_tokens: u64, bytes_per_token: u64) -> Self {
        assert!(block_tokens > 0, "block granularity must be positive");
        assert!(bytes_per_token > 0, "KV bytes per token must be positive");
        PrefixCacheIndex {
            block_tokens,
            bytes_per_token,
            entries: BTreeMap::new(),
            clock: 0,
            lookups: 0,
            hits: 0,
            saved_tokens: 0,
        }
    }

    /// Prefix block granularity in tokens.
    pub fn block_tokens(&self) -> u64 {
        self.block_tokens
    }

    /// KV footprint per cached token in bytes.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Number of cached prefix entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probes issued so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Probes that returned a non-empty hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total prefill tokens skipped by hits.
    pub fn saved_tokens(&self) -> u64 {
        self.saved_tokens
    }

    /// Total ladder bytes owned by cached entries.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.tokens * self.bytes_per_token).sum()
    }

    /// A cached entry's `(tokens, tier, refs)`, if present.
    pub fn entry(&self, key: u64) -> Option<(u64, KvTier, u32)> {
        self.entries.get(&key).map(|e| (e.tokens, e.tier, e.refs))
    }

    fn block_round(&self, tokens: u64) -> u64 {
        tokens / self.block_tokens * self.block_tokens
    }

    /// Looks up the longest cached block-prefix for `key` usable by a
    /// prompt that shares at most `limit_tokens` with it. Counts the
    /// lookup, and on a hit refreshes the entry's LRU position and
    /// returns `(hit_tokens, resident_tier)`.
    pub fn probe(&mut self, key: u64, limit_tokens: u64) -> Option<(u64, KvTier)> {
        self.lookups += 1;
        let limit = self.block_round(limit_tokens);
        let e = self.entries.get_mut(&key)?;
        let hit = e.tokens.min(limit);
        if hit == 0 {
            return None;
        }
        self.clock += 1;
        e.last_touch = self.clock;
        self.hits += 1;
        self.saved_tokens += hit;
        Some((hit, e.tier))
    }

    /// Pins `key` against demotion/eviction while a live request reads it.
    ///
    /// # Errors
    ///
    /// [`PrefixError::UnknownPrefix`] if the key has no entry.
    pub fn acquire(&mut self, key: u64) -> Result<(), PrefixError> {
        let e = self.entries.get_mut(&key).ok_or(PrefixError::UnknownPrefix(key))?;
        e.refs += 1;
        Ok(())
    }

    /// Drops a pin taken by [`PrefixCacheIndex::acquire`] — exactly once
    /// per acquire.
    ///
    /// # Errors
    ///
    /// * [`PrefixError::UnknownPrefix`] if the key has no entry.
    /// * [`PrefixError::NotAcquired`] if the refcount is already zero.
    pub fn release(&mut self, key: u64) -> Result<(), PrefixError> {
        let e = self.entries.get_mut(&key).ok_or(PrefixError::UnknownPrefix(key))?;
        if e.refs == 0 {
            return Err(PrefixError::NotAcquired(key));
        }
        e.refs -= 1;
        Ok(())
    }

    /// The least-recently-used unreferenced entry resident on `tier`
    /// (ties broken by key), if any.
    fn lru_unreferenced(&self, tier: KvTier) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(_, e)| e.tier == tier && e.refs == 0)
            .min_by_key(|(k, e)| (e.last_touch, **k))
            .map(|(k, _)| *k)
    }

    /// Frees at least `need` bytes on `tier` by demoting LRU unreferenced
    /// entries one rung down (cascading; bottom-rung victims are evicted
    /// outright). Returns whether the room was made; on failure some
    /// demotions may already have happened — they are valid residency
    /// moves either way.
    fn make_room(&mut self, tier: KvTier, need: u64, ladder: &mut KvTierLadder) -> bool {
        if need > ladder.capacity(tier) {
            return false;
        }
        while ladder.free(tier) < need {
            let Some(victim) = self.lru_unreferenced(tier) else {
                return false;
            };
            let vbytes = self.entries[&victim].tokens * self.bytes_per_token;
            match tier.below() {
                Some(below) => {
                    if !self.make_room(below, vbytes, ladder) {
                        return false;
                    }
                    ladder.demote(tier, vbytes).expect("room below was just made");
                    self.entries.get_mut(&victim).expect("victim is cached").tier = below;
                }
                None => {
                    ladder.evict(tier, vbytes).expect("entry bytes are resident");
                    self.entries.remove(&victim);
                }
            }
        }
        true
    }

    /// Publishes a finished request's context under `key`: inserts the
    /// entry (hottest tier with room, demoting LRU unreferenced entries
    /// to make it) or extends an existing entry in place to the
    /// block-rounded `tokens`. Returns whether the prefix is cached
    /// afterwards; an index under reference pressure may decline.
    pub fn publish(&mut self, key: u64, tokens: u64, ladder: &mut KvTierLadder) -> bool {
        let tokens = self.block_round(tokens);
        if tokens == 0 {
            return false;
        }
        self.clock += 1;
        if self.entries.contains_key(&key) {
            let (held, tier) = {
                let e = self.entries.get_mut(&key).expect("entry is cached");
                e.last_touch = self.clock;
                (e.tokens, e.tier)
            };
            if held >= tokens {
                return true;
            }
            let delta = (tokens - held) * self.bytes_per_token;
            // Pin the entry so it cannot be selected as its own victim.
            self.entries.get_mut(&key).expect("entry is cached").refs += 1;
            let ok = self.make_room(tier, delta, ladder);
            let e = self.entries.get_mut(&key).expect("entry is cached");
            e.refs -= 1;
            if ok {
                ladder.place(tier, delta).expect("room was just made");
                e.tokens = tokens;
            }
            ok
        } else {
            let bytes = tokens * self.bytes_per_token;
            for tier in KvTier::ALL {
                if self.make_room(tier, bytes, ladder) {
                    ladder.place(tier, bytes).expect("room was just made");
                    self.entries
                        .insert(key, PrefixEntry { tokens, tier, refs: 0, last_touch: self.clock });
                    return true;
                }
            }
            false
        }
    }

    /// Recalls the entry for `key` toward the hot end ahead of reuse:
    /// promotes the whole entry to HBM when room can be made (demoting
    /// LRU unreferenced HBM entries), otherwise reads the hit through
    /// from its current tier without moving it. Returns the priced
    /// critical-path seconds of recalling `hit_tokens` worth of KV; `0.0`
    /// if the key is not cached.
    pub fn recall(&mut self, key: u64, hit_tokens: u64, ladder: &mut KvTierLadder) -> f64 {
        let Some(&PrefixEntry { tokens, tier, .. }) = self.entries.get(&key) else {
            return 0.0;
        };
        let hit_bytes = hit_tokens.min(tokens) * self.bytes_per_token;
        if tier == KvTier::Hbm {
            return ladder.read_out(KvTier::Hbm, hit_bytes);
        }
        let entry_bytes = tokens * self.bytes_per_token;
        // Pin the entry: the HBM room-making cascade demotes *into* its
        // tier and must not pick the entry itself as a victim.
        self.entries.get_mut(&key).expect("entry is cached").refs += 1;
        let ok = self.make_room(KvTier::Hbm, entry_bytes, ladder);
        self.entries.get_mut(&key).expect("entry is cached").refs -= 1;
        if ok {
            let seconds = ladder.promote_to_hbm(tier, entry_bytes).expect("room was just made");
            self.entries.get_mut(&key).expect("entry is cached").tier = KvTier::Hbm;
            seconds
        } else {
            ladder.read_out(tier, hit_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdSpec;

    fn small_ladder() -> KvTierLadder {
        // 4 KiB HBM, 16 KiB DRAM over a 4-SSD rung.
        KvTierLadder::new(4096, 16384, SsdSpec::smartssd_nvme(), 4)
    }

    #[test]
    fn probe_is_block_granular_and_limit_capped() {
        let mut ladder = small_ladder();
        let mut idx = PrefixCacheIndex::new(64, 1);
        assert!(idx.publish(1, 300, &mut ladder));
        // 300 rounds down to 4 blocks = 256 cached tokens.
        assert_eq!(idx.entry(1), Some((256, KvTier::Hbm, 0)));
        assert_eq!(idx.probe(1, 1000), Some((256, KvTier::Hbm)));
        // A prompt sharing only 130 tokens hits 2 whole blocks.
        assert_eq!(idx.probe(1, 130), Some((128, KvTier::Hbm)));
        // Sub-block overlap is a miss, as is an unknown key.
        assert_eq!(idx.probe(1, 63), None);
        assert_eq!(idx.probe(9, 1000), None);
        assert_eq!((idx.lookups(), idx.hits(), idx.saved_tokens()), (4, 2, 384));
    }

    #[test]
    fn publish_extends_in_place_and_caches_ladder_bytes() {
        let mut ladder = small_ladder();
        let mut idx = PrefixCacheIndex::new(64, 4);
        assert!(idx.publish(5, 128, &mut ladder));
        assert_eq!(ladder.occupied(KvTier::Hbm), 512);
        assert!(idx.publish(5, 256, &mut ladder));
        assert_eq!(idx.entry(5), Some((256, KvTier::Hbm, 0)));
        assert_eq!(ladder.occupied(KvTier::Hbm), 1024);
        assert_eq!(idx.resident_bytes(), ladder.total_occupied());
        // Shrinking publishes keep the longer cached prefix.
        assert!(idx.publish(5, 64, &mut ladder));
        assert_eq!(idx.entry(5), Some((256, KvTier::Hbm, 0)));
        // Sub-block publishes cache nothing.
        assert!(!idx.publish(6, 63, &mut ladder));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn capacity_pressure_demotes_lru_down_the_ladder() {
        let mut ladder = small_ladder();
        let mut idx = PrefixCacheIndex::new(64, 16); // one 64-token block = 1 KiB
                                                     // Four 1 KiB entries fill HBM.
        for key in 0..4 {
            assert!(idx.publish(key, 64, &mut ladder));
        }
        assert_eq!(ladder.free(KvTier::Hbm), 0);
        // Touch 0..3 except key 0, then publish a fifth: key 0 is LRU and
        // demotes to DRAM.
        for key in 1..4 {
            idx.probe(key, 64).expect("cached");
        }
        assert!(idx.publish(4, 64, &mut ladder));
        assert_eq!(idx.entry(0), Some((64, KvTier::Dram, 0)));
        assert_eq!(idx.entry(4), Some((64, KvTier::Hbm, 0)));
        assert_eq!(ladder.occupied(KvTier::Dram), 1024);
        assert_eq!(idx.resident_bytes(), ladder.total_occupied());
        assert_eq!(ladder.traffic(KvTier::Dram).demoted_bytes, 1024);
    }

    #[test]
    fn referenced_entries_are_never_demoted() {
        let mut ladder = small_ladder();
        let mut idx = PrefixCacheIndex::new(64, 16);
        for key in 0..4 {
            assert!(idx.publish(key, 64, &mut ladder));
            idx.acquire(key).unwrap();
        }
        // Every HBM entry is pinned: the new entry lands in DRAM instead.
        assert!(idx.publish(9, 64, &mut ladder));
        assert_eq!(idx.entry(9), Some((64, KvTier::Dram, 0)));
        for key in 0..4 {
            assert_eq!(idx.entry(key), Some((64, KvTier::Hbm, 1)));
            idx.release(key).unwrap();
        }
        // Release is exactly-once.
        assert_eq!(idx.release(0), Err(PrefixError::NotAcquired(0)));
        assert_eq!(idx.acquire(77), Err(PrefixError::UnknownPrefix(77)));
        assert_eq!(idx.release(77), Err(PrefixError::UnknownPrefix(77)));
    }

    #[test]
    fn recall_promotes_cold_entries_and_prices_the_source_tier() {
        let mut ladder = small_ladder();
        let mut idx = PrefixCacheIndex::new(64, 16);
        for key in 0..4 {
            assert!(idx.publish(key, 64, &mut ladder));
        }
        assert!(idx.publish(4, 64, &mut ladder)); // demotes key 0 to DRAM
        assert_eq!(idx.entry(0).map(|e| e.1), Some(KvTier::Dram));
        // Hot hits pay only the HBM read-out.
        let hot = idx.recall(1, 64, &mut ladder);
        // Recalling the DRAM entry promotes it back to HBM (demoting the
        // LRU hot entry to make room) and costs more than the hot hit.
        let cold = idx.recall(0, 64, &mut ladder);
        assert!(cold > hot, "cold recall must cost more: {cold} vs {hot}");
        assert_eq!(idx.entry(0).map(|e| e.1), Some(KvTier::Hbm));
        assert_eq!(ladder.occupied(KvTier::Hbm), 4096);
        assert_eq!(idx.resident_bytes(), ladder.total_occupied());
        assert_eq!(idx.recall(99, 64, &mut ladder), 0.0);
    }

    #[test]
    fn overflow_cascades_to_the_ssd_rung_and_evicts_off_the_bottom() {
        // Tiny DRAM so the cascade reaches the SSD rung quickly.
        let mut ladder = KvTierLadder::new(1024, 1024, SsdSpec::smartssd_nvme(), 2);
        let mut idx = PrefixCacheIndex::new(64, 16);
        for key in 0..8 {
            assert!(idx.publish(key, 64, &mut ladder));
        }
        assert_eq!(idx.len(), 8);
        assert_eq!(ladder.occupied(KvTier::Hbm), 1024);
        assert_eq!(ladder.occupied(KvTier::Dram), 1024);
        assert_eq!(ladder.occupied(KvTier::Ssd), 6 * 1024);
        assert_eq!(idx.resident_bytes(), ladder.total_occupied());
        assert!(ladder.traffic(KvTier::Ssd).demote_seconds > 0.0);
    }
}
