//! NAND-flash-level timing model: channels, dies, sensing and program
//! latencies.
//!
//! The device-level [`SsdSpec`](crate::SsdSpec) bandwidths are datasheet
//! aggregates; this module derives them from first principles — page
//! sensing overlapped across dies, page transfers serialized per channel —
//! and is used to cross-check the datasheet numbers and to model the §7.1
//! ISP-CSD's eight 2,000 MT/s channels.

use hilos_sim::SimTime;

/// Geometry and timing of a NAND array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandGeometry {
    /// Independent channels.
    pub channels: u32,
    /// Dies per channel (interleaving depth).
    pub dies_per_channel: u32,
    /// Physical page size in bytes (TLC pages are 16 KiB).
    pub page_bytes: u32,
    /// Page sense (read) latency.
    pub t_read: SimTime,
    /// Page program latency.
    pub t_program: SimTime,
    /// Block erase latency.
    pub t_erase: SimTime,
    /// Channel transfer rate in bytes/s (MT/s × bus width).
    pub channel_bytes_per_sec: f64,
}

impl NandGeometry {
    /// The SmartSSD's NAND complex: 8 channels of 64-layer V-NAND, 16 KiB
    /// pages, ~533 MT/s channels — aggregating to the ~3.2 GB/s internal
    /// read bandwidth the paper measures.
    pub fn smartssd() -> Self {
        NandGeometry {
            channels: 8,
            dies_per_channel: 4,
            page_bytes: 16 * 1024,
            t_read: SimTime::from_micros(60),
            t_program: SimTime::from_micros(660),
            t_erase: SimTime::from_millis(4),
            channel_bytes_per_sec: 533e6,
        }
    }

    /// The §7.1 envisioned ISP-CSD: eight 2,000 MT/s channels (16 GB/s).
    pub fn isp_csd() -> Self {
        NandGeometry {
            channels: 8,
            dies_per_channel: 8,
            page_bytes: 16 * 1024,
            t_read: SimTime::from_micros(50),
            t_program: SimTime::from_micros(600),
            t_erase: SimTime::from_millis(3),
            channel_bytes_per_sec: 2000e6,
        }
    }

    /// Aggregate channel transfer bandwidth in bytes/s.
    pub fn aggregate_channel_bw(&self) -> f64 {
        self.channels as f64 * self.channel_bytes_per_sec
    }

    /// Sustained sequential read bandwidth: per channel, the steady state
    /// interleaves page senses across dies with page transfers on the bus;
    /// throughput is bus-bound once `dies × transfer ≥ sense`.
    pub fn sustained_read_bw(&self) -> f64 {
        let transfer_s = self.page_bytes as f64 / self.channel_bytes_per_sec;
        let sense_s = self.t_read.as_secs_f64();
        let per_channel = if self.dies_per_channel as f64 * transfer_s >= sense_s {
            // Bus saturated.
            self.channel_bytes_per_sec
        } else {
            // Sense-bound: dies can't feed the bus.
            self.dies_per_channel as f64 * self.page_bytes as f64 / sense_s
        };
        per_channel * self.channels as f64
    }

    /// Sustained sequential program bandwidth (same pipeline, program
    /// latency instead of sense).
    pub fn sustained_program_bw(&self) -> f64 {
        let transfer_s = self.page_bytes as f64 / self.channel_bytes_per_sec;
        let prog_s = self.t_program.as_secs_f64();
        let per_channel = if self.dies_per_channel as f64 * transfer_s >= prog_s {
            self.channel_bytes_per_sec
        } else {
            self.dies_per_channel as f64 * self.page_bytes as f64 / prog_s
        };
        per_channel * self.channels as f64
    }

    /// Latency of one random page read: sense + one bus transfer.
    pub fn single_read_latency(&self) -> SimTime {
        self.t_read + SimTime::from_secs_f64(self.page_bytes as f64 / self.channel_bytes_per_sec)
    }

    /// Time to read `bytes` sequentially (steady-state bandwidth plus one
    /// pipeline fill).
    pub fn sequential_read_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.t_read + SimTime::from_secs_f64(bytes as f64 / self.sustained_read_bw())
    }

    /// Time to program `bytes` sequentially.
    pub fn sequential_program_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.t_program + SimTime::from_secs_f64(bytes as f64 / self.sustained_program_bw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SsdSpec;

    #[test]
    fn smartssd_nand_matches_device_datasheet() {
        // The NAND-level model must reproduce the device-level read
        // bandwidth the paper measures for P2P reads (~3.2 GB/s) within
        // controller overheads.
        let nand = NandGeometry::smartssd();
        let device = SsdSpec::smartssd_nvme();
        let ratio = device.seq_read_bw() / nand.sustained_read_bw();
        assert!((0.6..1.0).contains(&ratio), "device/NAND ratio {ratio}");
    }

    #[test]
    fn isp_channels_hit_16_gbps() {
        // §7.1: eight 2,000 MT/s channels = 16 GB/s aggregate.
        let isp = NandGeometry::isp_csd();
        assert!((isp.aggregate_channel_bw() - 16e9).abs() < 1e6);
        assert!(isp.sustained_read_bw() > 12e9);
    }

    #[test]
    fn reads_are_bus_bound_with_enough_dies() {
        let nand = NandGeometry::smartssd();
        // 4 dies x 30us transfer > 60us sense: bus saturated.
        assert!((nand.sustained_read_bw() - nand.aggregate_channel_bw()).abs() < 1.0);
    }

    #[test]
    fn programs_are_slower_than_reads() {
        let nand = NandGeometry::smartssd();
        assert!(nand.sustained_program_bw() < nand.sustained_read_bw());
        assert!(nand.sequential_program_time(1 << 20) > nand.sequential_read_time(1 << 20));
    }

    #[test]
    fn program_bound_by_cell_latency() {
        // 660us program vs 4 dies x 30us transfer: program-bound.
        let nand = NandGeometry::smartssd();
        let expect = nand.dies_per_channel as f64 * nand.page_bytes as f64
            / nand.t_program.as_secs_f64()
            * nand.channels as f64;
        assert!((nand.sustained_program_bw() - expect).abs() < 1.0);
    }

    #[test]
    fn single_page_latency() {
        let nand = NandGeometry::smartssd();
        let lat = nand.single_read_latency();
        // 60us sense + ~30us transfer.
        assert!(lat > SimTime::from_micros(80) && lat < SimTime::from_micros(100), "{lat}");
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let nand = NandGeometry::smartssd();
        assert_eq!(nand.sequential_read_time(0), SimTime::ZERO);
        assert_eq!(nand.sequential_program_time(0), SimTime::ZERO);
    }

    #[test]
    fn more_channels_scale_bandwidth() {
        let base = NandGeometry::smartssd();
        let double = NandGeometry { channels: 16, ..base };
        assert!((double.sustained_read_bw() / base.sustained_read_bw() - 2.0).abs() < 1e-9);
    }
}
