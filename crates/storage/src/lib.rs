//! # hilos-storage — SSD, NAND flash, and tiered KV residency
//!
//! The storage substrate of the HILOS reproduction: the device physics at
//! the bottom, request-level KV accounting in the middle, and the tiered
//! prefix-reuse layer on top.
//!
//! ## Device models
//!
//! * [`SsdSpec`] — datasheet-level device descriptions (bandwidths, page
//!   size, command latency, endurance budget) with presets for the paper's
//!   devices: the Samsung PM9A3 baseline SSD and the NVMe SSD inside a
//!   SmartSSD,
//! * [`SsdDevice`] / [`IoCounters`] — per-device accounting of host I/O and
//!   NAND programs, including the **write amplification** of sub-page
//!   writes that motivates the paper's delayed KV-cache writeback (§4.3),
//! * [`Ftl`] — a small functional log-structured flash translation layer
//!   used to validate the analytic write-amplification model,
//! * [`Raid0`] — mdadm-style striping across devices (the baselines'
//!   4-SSD array),
//! * [`SsdInstance`] — the adapter that materializes a device's read/write
//!   channels as [`hilos_sim`] resources and emits transfer tasks.
//!
//! ## KV accounting and the residency ladder
//!
//! * [`KvShardLedger`] — per-device KV shard accounting for request-level
//!   admission: `allocate`/`release` per request across the striped
//!   devices, with bandwidth-weighted placement that skews away from
//!   degraded devices. The admission probes
//!   ([`KvShardLedger::can_allocate`] /
//!   [`KvShardLedger::placeable_free`]) are O(1), served from cached
//!   aggregates so a scheduler interrogating the ledger on every decision
//!   never rescans the device array.
//! * [`KvTierLadder`] — the HBM → DRAM → near-storage SSD residency
//!   ladder for *retained* KV. Every rung has explicit capacity, and
//!   moving bytes between rungs is priced by the device models above:
//!   DRAM staging at the host-interconnect bandwidth, the SSD rung as a
//!   [`Raid0`]-striped transfer paying command latency and the NAND
//!   write amplification of its spill granularity. Demotions are
//!   side-channel I/O; recalls are critical-path seconds the serving
//!   layer charges straight into TTFT.
//! * [`PrefixCacheIndex`] — content-keyed, block-granular prefix KV
//!   entries over the ladder: refcounted while live requests read them,
//!   LRU within each tier, demoted rung by rung (and evicted off the
//!   bottom) under capacity pressure instead of being discarded. A probe
//!   answers how many prefill tokens a request can skip and what the
//!   recall of that prefix costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod ftl;
mod ledger;
mod nand;
mod prefix;
mod raid;
mod spec;
mod tier;

pub use device::{IoCounters, SsdDevice, SsdInstance, WritePattern};
pub use ftl::{Ftl, FtlConfig, FtlError, FtlStats};
pub use ledger::{KvShardLedger, LedgerError, ShardSpec};
pub use nand::NandGeometry;
pub use prefix::{PrefixCacheIndex, PrefixError};
pub use raid::{Raid0, RaidError, StripeExtent};
pub use spec::SsdSpec;
pub use tier::{KvTier, KvTierLadder, TierError, TierTraffic};
