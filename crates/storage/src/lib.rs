//! # hilos-storage — SSD and NAND flash model
//!
//! The storage substrate of the HILOS reproduction. It provides:
//!
//! * [`SsdSpec`] — datasheet-level device descriptions (bandwidths, page
//!   size, command latency, endurance budget) with presets for the paper's
//!   devices: the Samsung PM9A3 baseline SSD and the NVMe SSD inside a
//!   SmartSSD,
//! * [`SsdDevice`] / [`IoCounters`] — per-device accounting of host I/O and
//!   NAND programs, including the **write amplification** of sub-page
//!   writes that motivates the paper's delayed KV-cache writeback (§4.3),
//! * [`Ftl`] — a small functional log-structured flash translation layer
//!   used to validate the analytic write-amplification model,
//! * [`Raid0`] — mdadm-style striping across devices (the baselines'
//!   4-SSD array),
//! * [`KvShardLedger`] — per-device KV shard accounting for request-level
//!   admission: `allocate`/`release` per request across the striped
//!   devices, with bandwidth-weighted placement that skews away from
//!   degraded devices,
//! * [`SsdInstance`] — the adapter that materializes a device's read/write
//!   channels as [`hilos_sim`] resources and emits transfer tasks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod ftl;
mod ledger;
mod nand;
mod raid;
mod spec;

pub use device::{IoCounters, SsdDevice, SsdInstance, WritePattern};
pub use ftl::{Ftl, FtlConfig, FtlError, FtlStats};
pub use ledger::{KvShardLedger, LedgerError, ShardSpec};
pub use nand::NandGeometry;
pub use raid::{Raid0, RaidError, StripeExtent};
pub use spec::SsdSpec;
