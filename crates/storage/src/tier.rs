//! Tiered KV residency: the HBM → DRAM → near-storage SSD ladder.
//!
//! Retained KV (cached prefixes, preempted-victim state) does not have to
//! be discarded when the hot tier fills — it can be *demoted* one rung
//! down the ladder and *recalled* later. The ladder prices both moves
//! with the storage crate's existing device models: DRAM staging moves at
//! the host-interconnect bandwidth, and the SSD rung stripes bytes across
//! the array exactly as [`Raid0::split_even`] would, pays the device's
//! fixed command latency, and charges NAND write amplification for the
//! configured spill granularity ([`SsdSpec::write_amplification`], the
//! §4.3 sub-page pathology). Demotions run on the side channel (they are
//! not on any request's critical path); recalls are — the serving layer
//! charges recall seconds straight into TTFT.

use crate::{Raid0, SsdSpec};
use std::error::Error;
use std::fmt;

/// One rung of the KV residency ladder, hottest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KvTier {
    /// Device HBM — KV is immediately usable by the compute kernels.
    Hbm,
    /// Host DRAM staging — one interconnect hop away.
    Dram,
    /// The near-storage SSD array — striped, command latency + NAND costs.
    Ssd,
}

impl KvTier {
    /// All tiers, hottest first.
    pub const ALL: [KvTier; 3] = [KvTier::Hbm, KvTier::Dram, KvTier::Ssd];

    /// The next-colder rung, if any.
    pub fn below(self) -> Option<KvTier> {
        match self {
            KvTier::Hbm => Some(KvTier::Dram),
            KvTier::Dram => Some(KvTier::Ssd),
            KvTier::Ssd => None,
        }
    }

    /// Dense index (0 = HBM, 1 = DRAM, 2 = SSD).
    pub fn index(self) -> usize {
        match self {
            KvTier::Hbm => 0,
            KvTier::Dram => 1,
            KvTier::Ssd => 2,
        }
    }

    /// Human-readable tier name.
    pub fn label(self) -> &'static str {
        match self {
            KvTier::Hbm => "hbm",
            KvTier::Dram => "dram",
            KvTier::Ssd => "ssd",
        }
    }
}

impl fmt::Display for KvTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors from ladder operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TierError {
    /// The destination tier cannot hold the bytes.
    InsufficientCapacity {
        /// Destination tier.
        tier: KvTier,
        /// Bytes requested.
        requested: u64,
        /// Bytes free on that tier.
        free: u64,
    },
    /// The source tier does not hold that many bytes.
    InsufficientResidency {
        /// Source tier.
        tier: KvTier,
        /// Bytes requested to move/evict.
        requested: u64,
        /// Bytes actually resident on that tier.
        held: u64,
    },
    /// The move has nowhere to go (demotion below the SSD rung).
    NoLowerTier,
}

impl fmt::Display for TierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierError::InsufficientCapacity { tier, requested, free } => {
                write!(f, "{tier} tier cannot hold {requested} bytes ({free} free)")
            }
            TierError::InsufficientResidency { tier, requested, held } => {
                write!(f, "{tier} tier holds {held} bytes, cannot move {requested}")
            }
            TierError::NoLowerTier => write!(f, "no tier below the SSD rung"),
        }
    }
}

impl Error for TierError {}

/// Per-tier demote/recall traffic accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierTraffic {
    /// Bytes demoted *into* this tier from the rung above.
    pub demoted_bytes: u64,
    /// Bytes recalled *out of* this tier toward the hot end.
    pub recalled_bytes: u64,
    /// Seconds of side-channel demote I/O into this tier.
    pub demote_seconds: f64,
    /// Seconds of critical-path recall I/O out of this tier.
    pub recall_seconds: f64,
}

/// The tiered KV residency ladder: capacity accounting per rung plus the
/// priced demote/recall byte costs.
///
/// # Examples
///
/// ```
/// use hilos_storage::{KvTier, KvTierLadder, SsdSpec};
///
/// let mut ladder = KvTierLadder::new(1 << 30, 8 << 30, SsdSpec::smartssd_nvme(), 8);
/// ladder.place(KvTier::Hbm, 1 << 20)?;
/// let demote_s = ladder.demote(KvTier::Hbm, 1 << 20)?;
/// assert!(demote_s > 0.0);
/// assert_eq!(ladder.occupied(KvTier::Dram), 1 << 20);
/// let recall_s = ladder.recall(KvTier::Dram, 1 << 20)?;
/// assert!(recall_s > 0.0);
/// assert_eq!(ladder.total_occupied(), 0);
/// # Ok::<(), hilos_storage::TierError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KvTierLadder {
    capacity: [u64; 3],
    occupied: [u64; 3],
    /// Host-interconnect bandwidth for the DRAM rung, bytes/s.
    dram_bw: f64,
    /// HBM read-out bandwidth for hot-tier recalls, bytes/s.
    hbm_bw: f64,
    ssd: SsdSpec,
    raid: Raid0,
    /// Write granularity for NAND write-amplification pricing.
    spill_chunk: u64,
    traffic: [TierTraffic; 3],
}

impl KvTierLadder {
    /// Builds a ladder with the given HBM/DRAM rung capacities over an SSD
    /// rung of `devices` striped drives of `ssd`'s description. The SSD
    /// rung's capacity is the array's aggregate; the DRAM rung moves at a
    /// PCIe-class 25 GB/s and HBM reads out at 1.5 TB/s (both adjustable
    /// via [`KvTierLadder::with_bandwidths`]). Demoted bytes are written in
    /// 256 KiB spill chunks by default — page-aligned, so NAND write
    /// amplification is 1 unless [`KvTierLadder::with_spill_chunk`] selects
    /// a sub-page granularity.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(hbm_bytes: u64, dram_bytes: u64, ssd: SsdSpec, devices: usize) -> Self {
        let raid = Raid0::new(devices, 512 * 1024).expect("ladder needs at least one SSD");
        let ssd_capacity = ssd.capacity_bytes().saturating_mul(devices as u64);
        KvTierLadder {
            capacity: [hbm_bytes, dram_bytes, ssd_capacity],
            occupied: [0; 3],
            dram_bw: 25.0e9,
            hbm_bw: 1.5e12,
            ssd,
            raid,
            spill_chunk: 256 * 1024,
            traffic: [TierTraffic::default(); 3],
        }
    }

    /// Overrides the DRAM-rung and HBM read-out bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not finite and positive.
    pub fn with_bandwidths(mut self, dram_bw: f64, hbm_bw: f64) -> Self {
        assert!(dram_bw.is_finite() && dram_bw > 0.0, "DRAM bandwidth must be positive");
        assert!(hbm_bw.is_finite() && hbm_bw > 0.0, "HBM bandwidth must be positive");
        self.dram_bw = dram_bw;
        self.hbm_bw = hbm_bw;
        self
    }

    /// Overrides the spill-write granularity used for NAND
    /// write-amplification pricing on the SSD rung.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_spill_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "spill chunk must be positive");
        self.spill_chunk = chunk;
        self
    }

    /// Capacity of a tier in bytes.
    pub fn capacity(&self, tier: KvTier) -> u64 {
        self.capacity[tier.index()]
    }

    /// Bytes resident on a tier.
    pub fn occupied(&self, tier: KvTier) -> u64 {
        self.occupied[tier.index()]
    }

    /// Free bytes on a tier.
    pub fn free(&self, tier: KvTier) -> u64 {
        self.capacity[tier.index()].saturating_sub(self.occupied[tier.index()])
    }

    /// Total bytes resident across all tiers.
    pub fn total_occupied(&self) -> u64 {
        self.occupied.iter().sum()
    }

    /// Demote/recall traffic accounting for a tier.
    pub fn traffic(&self, tier: KvTier) -> TierTraffic {
        self.traffic[tier.index()]
    }

    /// Seconds to demote `bytes` one rung down *into* `to`. DRAM staging
    /// moves at the host-interconnect bandwidth; the SSD rung stripes the
    /// bytes across the array ([`Raid0::split_even`]), pays the device
    /// command latency once, and programs NAND at the write bandwidth with
    /// the spill-granularity write amplification applied.
    pub fn demote_seconds(&self, to: KvTier, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        match to {
            KvTier::Hbm => 0.0,
            KvTier::Dram => bytes as f64 / self.dram_bw,
            KvTier::Ssd => {
                let max_extent =
                    self.raid.split_even(bytes).iter().map(|e| e.bytes).max().unwrap_or(0);
                let waf = self.ssd.write_amplification(self.spill_chunk.min(bytes));
                self.ssd.cmd_latency().as_secs_f64()
                    + max_extent as f64 * waf / self.ssd.seq_write_bw()
            }
        }
    }

    /// Seconds to recall `bytes` *out of* `from` back to the hot end: the
    /// source rung's read cost plus the DRAM hop for SSD-resident bytes.
    /// HBM-resident bytes only pay the HBM read-out.
    pub fn recall_seconds(&self, from: KvTier, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        match from {
            KvTier::Hbm => bytes as f64 / self.hbm_bw,
            KvTier::Dram => bytes as f64 / self.dram_bw,
            KvTier::Ssd => {
                let max_extent =
                    self.raid.split_even(bytes).iter().map(|e| e.bytes).max().unwrap_or(0);
                self.ssd.cmd_latency().as_secs_f64()
                    + max_extent as f64 / self.ssd.seq_read_bw()
                    + bytes as f64 / self.dram_bw
            }
        }
    }

    /// Makes `bytes` resident on `tier` (new entry into the ladder).
    ///
    /// # Errors
    ///
    /// [`TierError::InsufficientCapacity`] if the tier lacks room; the
    /// ladder is unchanged on failure.
    pub fn place(&mut self, tier: KvTier, bytes: u64) -> Result<(), TierError> {
        let free = self.free(tier);
        if free < bytes {
            return Err(TierError::InsufficientCapacity { tier, requested: bytes, free });
        }
        self.occupied[tier.index()] += bytes;
        Ok(())
    }

    /// Removes `bytes` of residency from `tier` (KV leaves the ladder —
    /// evicted outright or re-materialized into the serving shards).
    ///
    /// # Errors
    ///
    /// [`TierError::InsufficientResidency`] if the tier holds fewer bytes.
    pub fn evict(&mut self, tier: KvTier, bytes: u64) -> Result<(), TierError> {
        let held = self.occupied[tier.index()];
        if held < bytes {
            return Err(TierError::InsufficientResidency { tier, requested: bytes, held });
        }
        self.occupied[tier.index()] = held - bytes;
        Ok(())
    }

    /// Moves `bytes` one rung down from `from` and returns the priced
    /// side-channel seconds of the demote I/O.
    ///
    /// # Errors
    ///
    /// * [`TierError::NoLowerTier`] if `from` is the SSD rung.
    /// * [`TierError::InsufficientResidency`] if `from` holds fewer bytes.
    /// * [`TierError::InsufficientCapacity`] if the rung below lacks room.
    ///
    /// The ladder is unchanged on failure.
    pub fn demote(&mut self, from: KvTier, bytes: u64) -> Result<f64, TierError> {
        let to = from.below().ok_or(TierError::NoLowerTier)?;
        let held = self.occupied[from.index()];
        if held < bytes {
            return Err(TierError::InsufficientResidency { tier: from, requested: bytes, held });
        }
        let free = self.free(to);
        if free < bytes {
            return Err(TierError::InsufficientCapacity { tier: to, requested: bytes, free });
        }
        self.occupied[from.index()] -= bytes;
        self.occupied[to.index()] += bytes;
        let seconds = self.demote_seconds(to, bytes);
        let t = &mut self.traffic[to.index()];
        t.demoted_bytes += bytes;
        t.demote_seconds += seconds;
        Ok(seconds)
    }

    /// Recalls `bytes` out of `from` entirely (back into the serving
    /// shards) and returns the priced critical-path seconds.
    ///
    /// # Errors
    ///
    /// [`TierError::InsufficientResidency`] if `from` holds fewer bytes.
    pub fn recall(&mut self, from: KvTier, bytes: u64) -> Result<f64, TierError> {
        self.evict(from, bytes)?;
        let seconds = self.recall_seconds(from, bytes);
        let t = &mut self.traffic[from.index()];
        t.recalled_bytes += bytes;
        t.recall_seconds += seconds;
        Ok(seconds)
    }

    /// Prices a critical-path read of `bytes` out of `from` *without*
    /// moving any residency — a read-through recall for bytes that stay
    /// where they are (e.g. a pinned-tier prefix hit). Counts toward the
    /// tier's recall traffic.
    pub fn read_out(&mut self, from: KvTier, bytes: u64) -> f64 {
        let seconds = self.recall_seconds(from, bytes);
        let t = &mut self.traffic[from.index()];
        t.recalled_bytes += bytes;
        t.recall_seconds += seconds;
        seconds
    }

    /// Moves `bytes` from `from` up to the HBM rung (a recall that stays
    /// inside the ladder — cached prefixes promote on reuse) and returns
    /// the priced critical-path seconds. A no-op (0 seconds of I/O, only
    /// the HBM read-out) when `from` is already HBM.
    ///
    /// # Errors
    ///
    /// * [`TierError::InsufficientResidency`] if `from` holds fewer bytes.
    /// * [`TierError::InsufficientCapacity`] if HBM lacks room.
    pub fn promote_to_hbm(&mut self, from: KvTier, bytes: u64) -> Result<f64, TierError> {
        if from == KvTier::Hbm {
            return Ok(self.recall_seconds(KvTier::Hbm, bytes));
        }
        let held = self.occupied[from.index()];
        if held < bytes {
            return Err(TierError::InsufficientResidency { tier: from, requested: bytes, held });
        }
        let free = self.free(KvTier::Hbm);
        if free < bytes {
            return Err(TierError::InsufficientCapacity {
                tier: KvTier::Hbm,
                requested: bytes,
                free,
            });
        }
        self.occupied[from.index()] -= bytes;
        self.occupied[KvTier::Hbm.index()] += bytes;
        let seconds = self.recall_seconds(from, bytes);
        let t = &mut self.traffic[from.index()];
        t.recalled_bytes += bytes;
        t.recall_seconds += seconds;
        Ok(seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> KvTierLadder {
        KvTierLadder::new(1 << 20, 4 << 20, SsdSpec::smartssd_nvme(), 4)
    }

    #[test]
    fn tier_order_and_labels() {
        assert_eq!(KvTier::Hbm.below(), Some(KvTier::Dram));
        assert_eq!(KvTier::Dram.below(), Some(KvTier::Ssd));
        assert_eq!(KvTier::Ssd.below(), None);
        assert_eq!(KvTier::ALL.map(KvTier::index), [0, 1, 2]);
        assert_eq!(KvTier::Ssd.to_string(), "ssd");
    }

    #[test]
    fn place_demote_recall_round_trip_conserves_bytes() {
        let mut l = ladder();
        l.place(KvTier::Hbm, 600_000).unwrap();
        assert_eq!(l.total_occupied(), 600_000);
        let d = l.demote(KvTier::Hbm, 600_000).unwrap();
        assert!(d > 0.0);
        assert_eq!(l.occupied(KvTier::Hbm), 0);
        assert_eq!(l.occupied(KvTier::Dram), 600_000);
        let d2 = l.demote(KvTier::Dram, 600_000).unwrap();
        assert!(d2 > d, "NAND demote is costlier than the DRAM hop: {d2} vs {d}");
        assert_eq!(l.occupied(KvTier::Ssd), 600_000);
        assert_eq!(l.total_occupied(), 600_000);
        let r = l.recall(KvTier::Ssd, 600_000).unwrap();
        assert!(r > 0.0);
        assert_eq!(l.total_occupied(), 0);
        let t = l.traffic(KvTier::Ssd);
        assert_eq!(t.demoted_bytes, 600_000);
        assert_eq!(t.recalled_bytes, 600_000);
    }

    #[test]
    fn capacity_and_residency_are_enforced() {
        let mut l = ladder();
        assert!(matches!(
            l.place(KvTier::Hbm, (1 << 20) + 1),
            Err(TierError::InsufficientCapacity { tier: KvTier::Hbm, .. })
        ));
        l.place(KvTier::Hbm, 1 << 20).unwrap();
        assert_eq!(l.free(KvTier::Hbm), 0);
        assert!(matches!(
            l.demote(KvTier::Hbm, (1 << 20) + 1),
            Err(TierError::InsufficientResidency { .. })
        ));
        l.place(KvTier::Ssd, 1).unwrap();
        assert!(matches!(l.demote(KvTier::Ssd, 1), Err(TierError::NoLowerTier)));
        assert!(matches!(l.evict(KvTier::Dram, 1), Err(TierError::InsufficientResidency { .. })));
    }

    #[test]
    fn ssd_demote_prices_stripe_latency_and_waf() {
        let spec = SsdSpec::smartssd_nvme();
        let l = KvTierLadder::new(1 << 30, 1 << 30, spec.clone(), 4);
        let bytes = 64 * 1024 * 1024u64;
        // Page-aligned 256 KiB spill chunks: WAF 1, so the demote is the
        // command latency plus the per-device stripe share at write bw.
        let expect = spec.cmd_latency().as_secs_f64() + (bytes as f64 / 4.0) / spec.seq_write_bw();
        assert!((l.demote_seconds(KvTier::Ssd, bytes) - expect).abs() < 1e-12);
        // Sub-page spill granularity inflates the NAND program cost 16x —
        // the §4.3 pathology carried straight into the ladder.
        let sub = l.clone().with_spill_chunk(256);
        assert!(
            sub.demote_seconds(KvTier::Ssd, bytes) > 15.0 * l.demote_seconds(KvTier::Ssd, bytes)
        );
        // Recall reads the stripe and pays the DRAM hop on top.
        let read = spec.cmd_latency().as_secs_f64()
            + (bytes as f64 / 4.0) / spec.seq_read_bw()
            + bytes as f64 / 25.0e9;
        assert!((l.recall_seconds(KvTier::Ssd, bytes) - read).abs() < 1e-12);
        // The ladder is ordered: recalls get cheaper toward the hot end.
        assert!(l.recall_seconds(KvTier::Dram, bytes) < l.recall_seconds(KvTier::Ssd, bytes));
        assert!(l.recall_seconds(KvTier::Hbm, bytes) < l.recall_seconds(KvTier::Dram, bytes));
        assert_eq!(l.recall_seconds(KvTier::Ssd, 0), 0.0);
        assert_eq!(l.demote_seconds(KvTier::Ssd, 0), 0.0);
    }

    #[test]
    fn promote_to_hbm_moves_up_and_prices_the_source() {
        let mut l = ladder();
        l.place(KvTier::Ssd, 100_000).unwrap();
        let s = l.promote_to_hbm(KvTier::Ssd, 100_000).unwrap();
        assert!(s > 0.0);
        assert_eq!(l.occupied(KvTier::Hbm), 100_000);
        assert_eq!(l.occupied(KvTier::Ssd), 0);
        // Already-hot bytes pay only the HBM read-out.
        let hot = l.promote_to_hbm(KvTier::Hbm, 100_000).unwrap();
        assert!(hot < s);
        assert_eq!(l.occupied(KvTier::Hbm), 100_000);
        // HBM room is required.
        l.place(KvTier::Dram, 1 << 20).unwrap();
        assert!(matches!(
            l.promote_to_hbm(KvTier::Dram, 1 << 20),
            Err(TierError::InsufficientCapacity { tier: KvTier::Hbm, .. })
        ));
    }
}
