//! A functional log-structured flash translation layer.
//!
//! This is a small but real FTL: page-level logical→physical mapping,
//! append-only write frontier, greedy garbage collection over an
//! overprovisioned block pool, and erase/program accounting. It exists to
//! *validate* the analytic write-amplification model used by the endurance
//! experiments (Fig. 16b): the HILOS KV-cache workload is write-once,
//! read-many and page-aligned, for which the FTL must measure WAF ≈ 1,
//! while random small overwrites at high utilization drive WAF well above
//! 1 — the regime the delayed writeback avoids.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// FTL geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtlConfig {
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Total physical blocks.
    pub blocks: u32,
    /// Blocks withheld from the logical space (overprovisioning).
    pub overprovision_blocks: u32,
    /// Run GC when the free pool drops to this many blocks (≥ 2).
    pub gc_watermark: u32,
}

impl FtlConfig {
    /// A small default geometry for tests: 64 pages/block, 64 blocks,
    /// 8 blocks of overprovisioning.
    pub fn small() -> Self {
        FtlConfig { pages_per_block: 64, blocks: 64, overprovision_blocks: 8, gc_watermark: 3 }
    }

    /// Number of logical pages exposed.
    pub fn logical_pages(&self) -> u32 {
        (self.blocks - self.overprovision_blocks) * self.pages_per_block
    }
}

/// Cumulative FTL statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlStats {
    /// Pages written by the host.
    pub host_pages_written: u64,
    /// Pages programmed into NAND (host + GC copies).
    pub nand_pages_programmed: u64,
    /// Valid pages relocated by garbage collection.
    pub gc_copies: u64,
    /// Blocks erased.
    pub erases: u64,
}

impl FtlStats {
    /// Measured write amplification factor.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            1.0
        } else {
            self.nand_pages_programmed as f64 / self.host_pages_written as f64
        }
    }
}

/// Errors from FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// The logical page number is outside the exposed logical space.
    LpnOutOfRange {
        /// The offending logical page number.
        lpn: u32,
        /// Number of logical pages exposed.
        logical_pages: u32,
    },
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn, logical_pages } => {
                write!(
                    f,
                    "logical page {lpn} out of range (logical space is {logical_pages} pages)"
                )
            }
        }
    }
}

impl Error for FtlError {}

const NO_PAGE: u32 = u32::MAX;

/// Log-structured page-mapping FTL.
///
/// # Examples
///
/// ```
/// use hilos_storage::{Ftl, FtlConfig};
///
/// let mut ftl = Ftl::new(FtlConfig::small());
/// for lpn in 0..FtlConfig::small().logical_pages() {
///     ftl.write(lpn).unwrap();
/// }
/// // Sequential one-shot fill never triggers GC copies.
/// assert_eq!(ftl.stats().write_amplification(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ftl {
    config: FtlConfig,
    /// Logical page -> physical page index (block * pages_per_block + page).
    l2p: Vec<u32>,
    /// Physical page index -> logical page (NO_PAGE if invalid/unused).
    p2l: Vec<u32>,
    /// Valid page count per block.
    valid: Vec<u32>,
    /// Sealed flag per block (fully written, candidate for GC).
    sealed: Vec<bool>,
    free_blocks: VecDeque<u32>,
    current_block: u32,
    next_page: u32,
    stats: FtlStats,
}

impl Ftl {
    /// Creates an empty FTL.
    ///
    /// # Panics
    ///
    /// Panics if the geometry leaves no overprovisioning or the watermark
    /// is below 2.
    pub fn new(config: FtlConfig) -> Self {
        assert!(config.overprovision_blocks >= 1, "need at least one spare block");
        assert!(config.blocks > config.overprovision_blocks, "no logical space");
        assert!(config.gc_watermark >= 2, "gc watermark must be >= 2");
        let phys_pages = (config.blocks * config.pages_per_block) as usize;
        let mut free_blocks: VecDeque<u32> = (1..config.blocks).collect();
        let current_block = 0;
        let _ = &mut free_blocks;
        Ftl {
            config,
            l2p: vec![NO_PAGE; config.logical_pages() as usize],
            p2l: vec![NO_PAGE; phys_pages],
            valid: vec![0; config.blocks as usize],
            sealed: vec![false; config.blocks as usize],
            free_blocks,
            current_block,
            next_page: 0,
            stats: FtlStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> FtlConfig {
        self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Number of blocks in the free pool.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len()
    }

    fn phys_index(&self, block: u32, page: u32) -> usize {
        (block * self.config.pages_per_block + page) as usize
    }

    fn append_raw(&mut self, lpn: u32) {
        if self.next_page == self.config.pages_per_block {
            self.sealed[self.current_block as usize] = true;
            self.current_block =
                self.free_blocks.pop_front().expect("free pool exhausted (GC invariant violated)");
            self.sealed[self.current_block as usize] = false;
            self.next_page = 0;
        }
        let idx = self.phys_index(self.current_block, self.next_page);
        self.p2l[idx] = lpn;
        self.l2p[lpn as usize] = idx as u32;
        self.valid[self.current_block as usize] += 1;
        self.next_page += 1;
        self.stats.nand_pages_programmed += 1;
    }

    fn invalidate(&mut self, lpn: u32) {
        let old = self.l2p[lpn as usize];
        if old != NO_PAGE {
            let block = old / self.config.pages_per_block;
            self.p2l[old as usize] = NO_PAGE;
            self.valid[block as usize] -= 1;
            self.l2p[lpn as usize] = NO_PAGE;
        }
    }

    fn gc_once(&mut self) {
        // Greedy victim: sealed block with the fewest valid pages.
        let victim = (0..self.config.blocks)
            .filter(|&b| self.sealed[b as usize] && b != self.current_block)
            .min_by_key(|&b| self.valid[b as usize]);
        let Some(victim) = victim else { return };
        for page in 0..self.config.pages_per_block {
            let idx = self.phys_index(victim, page);
            let lpn = self.p2l[idx];
            if lpn != NO_PAGE {
                self.p2l[idx] = NO_PAGE;
                self.valid[victim as usize] -= 1;
                self.append_raw(lpn);
                self.stats.gc_copies += 1;
            }
        }
        debug_assert_eq!(self.valid[victim as usize], 0);
        self.sealed[victim as usize] = false;
        self.free_blocks.push_back(victim);
        self.stats.erases += 1;
    }

    /// Writes (or overwrites) one logical page.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] if `lpn` is outside the logical
    /// space.
    pub fn write(&mut self, lpn: u32) -> Result<(), FtlError> {
        if lpn >= self.config.logical_pages() {
            return Err(FtlError::LpnOutOfRange {
                lpn,
                logical_pages: self.config.logical_pages(),
            });
        }
        while (self.free_blocks.len() as u32) < self.config.gc_watermark {
            let before = self.free_blocks.len();
            self.gc_once();
            if self.free_blocks.len() <= before {
                break; // nothing reclaimable; overprovisioning guarantees progress
            }
        }
        self.invalidate(lpn);
        self.append_raw(lpn);
        self.stats.host_pages_written += 1;
        Ok(())
    }

    /// True if the logical page is currently mapped.
    pub fn is_mapped(&self, lpn: u32) -> bool {
        (lpn as usize) < self.l2p.len() && self.l2p[lpn as usize] != NO_PAGE
    }

    /// Unmaps a logical page (TRIM), freeing its physical page for GC.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] if `lpn` is outside the logical
    /// space.
    pub fn trim(&mut self, lpn: u32) -> Result<(), FtlError> {
        if lpn >= self.config.logical_pages() {
            return Err(FtlError::LpnOutOfRange {
                lpn,
                logical_pages: self.config.logical_pages(),
            });
        }
        self.invalidate(lpn);
        Ok(())
    }

    /// Internal consistency check (used by tests): every mapped logical
    /// page round-trips through `p2l` and per-block valid counts agree.
    pub fn check_invariants(&self) -> bool {
        let mut valid_count = vec![0u32; self.config.blocks as usize];
        for (lpn, &phys) in self.l2p.iter().enumerate() {
            if phys != NO_PAGE {
                if self.p2l[phys as usize] != lpn as u32 {
                    return false;
                }
                valid_count[(phys / self.config.pages_per_block) as usize] += 1;
            }
        }
        valid_count == self.valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn sequential_fill_has_unit_waf() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        for lpn in 0..cfg.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        assert_eq!(ftl.stats().write_amplification(), 1.0);
        assert_eq!(ftl.stats().gc_copies, 0);
        assert!(ftl.check_invariants());
    }

    #[test]
    fn sequential_overwrite_keeps_waf_near_one() {
        // Circular sequential overwrite: victims are always fully invalid.
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        for round in 0..5 {
            for lpn in 0..cfg.logical_pages() {
                ftl.write(lpn).unwrap();
            }
            let _ = round;
        }
        let waf = ftl.stats().write_amplification();
        assert!(waf < 1.05, "sequential WAF should stay ~1, got {waf}");
        assert!(ftl.check_invariants());
    }

    #[test]
    fn random_overwrite_amplifies() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Fill, then hammer random pages: GC must relocate live data.
        for lpn in 0..cfg.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        for _ in 0..20_000 {
            ftl.write(rng.random_range(0..cfg.logical_pages())).unwrap();
        }
        let waf = ftl.stats().write_amplification();
        assert!(waf > 1.3, "random overwrite at high utilization should amplify, got {waf}");
        assert!(ftl.check_invariants());
    }

    #[test]
    fn trim_reduces_amplification() {
        let cfg = FtlConfig::small();
        let run = |trim: bool| {
            let mut ftl = Ftl::new(cfg);
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            for lpn in 0..cfg.logical_pages() {
                ftl.write(lpn).unwrap();
            }
            if trim {
                // Drop half the data (finished requests' KV caches).
                for lpn in 0..cfg.logical_pages() / 2 {
                    ftl.trim(lpn).unwrap();
                }
            }
            for _ in 0..10_000 {
                let lpn = rng.random_range(cfg.logical_pages() / 2..cfg.logical_pages());
                ftl.write(lpn).unwrap();
            }
            ftl.stats().write_amplification()
        };
        let with_trim = run(true);
        let without = run(false);
        assert!(with_trim < without, "trim should lower WAF: {with_trim} vs {without}");
    }

    #[test]
    fn out_of_range_rejected() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        let bad = cfg.logical_pages();
        assert!(matches!(ftl.write(bad), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(ftl.trim(bad), Err(FtlError::LpnOutOfRange { .. })));
    }

    #[test]
    fn mapping_queries() {
        let mut ftl = Ftl::new(FtlConfig::small());
        assert!(!ftl.is_mapped(3));
        ftl.write(3).unwrap();
        assert!(ftl.is_mapped(3));
        ftl.trim(3).unwrap();
        assert!(!ftl.is_mapped(3));
    }

    #[test]
    fn erases_are_counted() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        for _ in 0..3 {
            for lpn in 0..cfg.logical_pages() {
                ftl.write(lpn).unwrap();
            }
        }
        assert!(ftl.stats().erases > 0);
    }
}
