//! Per-device KV shard accounting for request-level admission.
//!
//! HILOS stripes every sequence's KV (and X) cache across the storage
//! devices. Batch-level capacity checks (`needed ≤ Σ capacity`) are wrong
//! once requests come and go independently: a single full or degraded
//! device gates placement even when the array as a whole has room. The
//! [`KvShardLedger`] tracks, per device, the bytes owned by each live
//! request; admission calls [`KvShardLedger::allocate`], completion calls
//! [`KvShardLedger::release`], and placement is skewed by a per-device
//! bandwidth weight so stragglers hold proportionally less of the stripe.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Static description of one device's shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Usable capacity in bytes (after any static reservations).
    pub capacity_bytes: u64,
    /// Relative placement weight — proportional to the device's sustained
    /// read bandwidth so degraded devices hold less of every stripe. A
    /// zero weight excludes the device from placement entirely.
    pub weight: f64,
}

#[derive(Debug, Clone)]
struct ShardState {
    spec: ShardSpec,
    occupied: u64,
}

/// Errors from ledger operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LedgerError {
    /// Not enough free space across placeable devices.
    InsufficientCapacity {
        /// Bytes requested.
        requested: u64,
        /// Bytes free across devices with a non-zero weight.
        free: u64,
    },
    /// The request already holds an allocation.
    DuplicateRequest(u64),
    /// The request holds no allocation.
    UnknownRequest(u64),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::InsufficientCapacity { requested, free } => {
                write!(f, "KV shard allocation of {requested} bytes exceeds {free} free")
            }
            LedgerError::DuplicateRequest(id) => write!(f, "request {id} already allocated"),
            LedgerError::UnknownRequest(id) => write!(f, "request {id} holds no allocation"),
        }
    }
}

impl Error for LedgerError {}

/// Per-device KV shard ledger: live allocations of every admitted request.
///
/// # Examples
///
/// ```
/// use hilos_storage::{KvShardLedger, ShardSpec};
///
/// let mut ledger = KvShardLedger::new(vec![
///     ShardSpec { capacity_bytes: 1000, weight: 1.0 },
///     ShardSpec { capacity_bytes: 1000, weight: 1.0 },
/// ]);
/// let placement = ledger.allocate(7, 600).unwrap();
/// assert_eq!(placement.iter().sum::<u64>(), 600);
/// assert_eq!(ledger.occupied_bytes(0) + ledger.occupied_bytes(1), 600);
/// ledger.release(7).unwrap();
/// assert_eq!(ledger.total_occupied(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct KvShardLedger {
    shards: Vec<ShardState>,
    // BTreeMap keeps iteration (and therefore any derived accounting)
    // deterministic across runs.
    allocations: BTreeMap<u64, Vec<u64>>,
    // Cached aggregates so the admission fast path (`placeable_free` /
    // `can_allocate`, probed on every scheduling decision) is O(1)
    // instead of an O(devices) scan: the free bytes summed over
    // weighted devices, and how many weighted devices are full.
    placeable_free_cached: u64,
    full_weighted: usize,
}

impl KvShardLedger {
    /// Creates a ledger over the given device shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or any weight is negative/non-finite.
    pub fn new(shards: Vec<ShardSpec>) -> Self {
        assert!(!shards.is_empty(), "ledger needs at least one device");
        for s in &shards {
            assert!(s.weight.is_finite() && s.weight >= 0.0, "weight must be finite and >= 0");
        }
        let placeable_free_cached =
            shards.iter().filter(|s| s.weight > 0.0).map(|s| s.capacity_bytes).sum();
        let full_weighted =
            shards.iter().filter(|s| s.weight > 0.0 && s.capacity_bytes == 0).count();
        KvShardLedger {
            shards: shards.into_iter().map(|spec| ShardState { spec, occupied: 0 }).collect(),
            allocations: BTreeMap::new(),
            placeable_free_cached,
            full_weighted,
        }
    }

    /// Applies an occupancy increase of `bytes` on device `i` to the
    /// cached admission aggregates. The caller guarantees `bytes` fits the
    /// device's slack.
    fn charge_cached(&mut self, i: usize, bytes: u64) {
        let s = &mut self.shards[i];
        s.occupied += bytes;
        if bytes > 0 && s.spec.weight > 0.0 {
            self.placeable_free_cached -= bytes;
            if s.occupied >= s.spec.capacity_bytes {
                self.full_weighted += 1;
            }
        }
    }

    /// Applies an occupancy decrease of `bytes` on device `i` to the
    /// cached admission aggregates.
    fn credit_cached(&mut self, i: usize, bytes: u64) {
        let s = &mut self.shards[i];
        if bytes > 0 && s.spec.weight > 0.0 {
            if s.occupied >= s.spec.capacity_bytes {
                self.full_weighted -= 1;
            }
            self.placeable_free_cached += bytes;
        }
        debug_assert!(s.occupied >= bytes, "release exceeds occupancy");
        s.occupied = s.occupied.saturating_sub(bytes);
    }

    /// Uniform ledger: `n` devices of `capacity_bytes` each, equal weight.
    pub fn uniform(n: usize, capacity_bytes: u64) -> Self {
        KvShardLedger::new(vec![ShardSpec { capacity_bytes, weight: 1.0 }; n])
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.shards.len()
    }

    /// Bytes occupied on device `i`.
    pub fn occupied_bytes(&self, i: usize) -> u64 {
        self.shards[i].occupied
    }

    /// Free bytes on device `i`, irrespective of its placement weight
    /// (a weightless device's free space never counts toward
    /// [`KvShardLedger::placeable_free`]).
    pub fn free_bytes(&self, i: usize) -> u64 {
        self.shards[i].spec.capacity_bytes.saturating_sub(self.shards[i].occupied)
    }

    /// Total occupied bytes across the array.
    pub fn total_occupied(&self) -> u64 {
        self.shards.iter().map(|s| s.occupied).sum()
    }

    /// Free bytes across devices that accept placement (non-zero weight).
    ///
    /// O(1): served from an aggregate maintained incrementally by
    /// allocate/release/reserve, so the admission probe issued on every
    /// scheduling decision does not rescan the device array
    /// ([`KvShardLedger::placeable_free_scan`] is the reference scan).
    pub fn placeable_free(&self) -> u64 {
        debug_assert_eq!(self.placeable_free_cached, self.placeable_free_scan());
        self.placeable_free_cached
    }

    /// The O(devices) reference computation of
    /// [`KvShardLedger::placeable_free`] — kept for the admission
    /// micro-benchmark and the cached-aggregate consistency checks.
    pub fn placeable_free_scan(&self) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.spec.weight > 0.0)
            .map(|s| s.spec.capacity_bytes.saturating_sub(s.occupied))
            .sum()
    }

    /// Number of live allocations.
    pub fn live_requests(&self) -> usize {
        self.allocations.len()
    }

    /// Occupancy pressure of device `i`: held bytes over capacity, in
    /// `[0, 1]`. A zero-capacity device reports `1.0` (it can never accept
    /// another byte). Reservations ([`KvShardLedger::reserve_evenly`])
    /// count as held — pressure measures how close the device is to
    /// rejecting placement, whatever is squeezing it.
    pub fn device_pressure(&self, i: usize) -> f64 {
        let s = &self.shards[i];
        if s.spec.capacity_bytes == 0 {
            1.0
        } else {
            s.occupied as f64 / s.spec.capacity_bytes as f64
        }
    }

    /// Per-device occupancy pressures in device index order — the routing
    /// signal a cluster-level balancer reads per deployment.
    pub fn pressure_by_device(&self) -> Vec<f64> {
        (0..self.shards.len()).map(|i| self.device_pressure(i)).collect()
    }

    /// Aggregate occupancy pressure over placement-eligible (non-zero
    /// weight) devices: total held bytes over total capacity, in `[0, 1]`.
    /// `1.0` when no device accepts placement at all — a fully degraded
    /// deployment looks saturated to a router, which is exactly right.
    pub fn pressure(&self) -> f64 {
        let (mut occ, mut cap) = (0u64, 0u64);
        for s in self.shards.iter().filter(|s| s.spec.weight > 0.0) {
            occ += s.occupied;
            cap += s.spec.capacity_bytes;
        }
        if cap == 0 {
            1.0
        } else {
            occ as f64 / cap as f64
        }
    }

    /// Sum of the devices' placement weights. Weights are proportional to
    /// sustained read bandwidth, so this is the deployment's aggregate
    /// storage bandwidth with degraded/offline devices discounted — the
    /// drain-rate half of a pressure-aware routing score.
    pub fn total_weight(&self) -> f64 {
        self.shards.iter().map(|s| s.spec.weight).sum()
    }

    /// The per-device placement of a live request, if any.
    pub fn allocation(&self, request: u64) -> Option<&[u64]> {
        self.allocations.get(&request).map(Vec::as_slice)
    }

    /// Total bytes a live request holds across the array (the sum of its
    /// per-device placement), if any — what a preemption would free.
    pub fn held_bytes(&self, request: u64) -> Option<u64> {
        self.allocations.get(&request).map(|p| p.iter().sum())
    }

    /// Free bytes per device, in device index order — the scheduling
    /// snapshot's view of admission headroom.
    pub fn free_by_device(&self) -> Vec<u64> {
        (0..self.shards.len()).map(|i| self.free_bytes(i)).collect()
    }

    /// Whether `bytes` could currently be placed (without placing them):
    /// enough placeable free space *and* no full stripe member.
    ///
    /// O(1): both conditions are served from the cached admission
    /// aggregates ([`KvShardLedger::can_allocate_scan`] is the reference
    /// scan).
    pub fn can_allocate(&self, bytes: u64) -> bool {
        debug_assert_eq!(
            self.placeable_free_cached >= bytes && (bytes == 0 || self.full_weighted == 0),
            self.can_allocate_scan(bytes)
        );
        self.placeable_free_cached >= bytes && (bytes == 0 || self.full_weighted == 0)
    }

    /// The O(devices) reference computation of
    /// [`KvShardLedger::can_allocate`] — kept for the admission
    /// micro-benchmark and the cached-aggregate consistency checks.
    pub fn can_allocate_scan(&self, bytes: u64) -> bool {
        self.placeable_free_scan() >= bytes
            && (bytes == 0
                || self
                    .shards
                    .iter()
                    .all(|s| s.spec.weight <= 0.0 || s.occupied < s.spec.capacity_bytes))
    }

    /// Reserves `total` bytes spread evenly across all devices — static
    /// footprints such as storage-resident model weights. Reservations are
    /// not tied to a request and are never released.
    ///
    /// # Errors
    ///
    /// [`LedgerError::InsufficientCapacity`] if any device cannot hold its
    /// even share; no device is modified on failure.
    pub fn reserve_evenly(&mut self, total: u64) -> Result<(), LedgerError> {
        let n = self.shards.len() as u64;
        let per = total.div_ceil(n);
        if let Some(s) = self.shards.iter().find(|s| s.spec.capacity_bytes - s.occupied < per) {
            return Err(LedgerError::InsufficientCapacity {
                requested: per,
                free: s.spec.capacity_bytes.saturating_sub(s.occupied),
            });
        }
        for i in 0..self.shards.len() {
            self.charge_cached(i, per);
        }
        Ok(())
    }

    /// Places `bytes` for `request` across the devices, skewed by weight
    /// and capped by per-device free space, and returns the per-device
    /// placement. Allocation is all-or-nothing: on error no device
    /// changes.
    ///
    /// HILOS partitions the KV cache statically, so every stripe must
    /// span every placement-eligible device: a *full* device with a
    /// positive weight rejects the allocation outright (the stripe would
    /// be missing a member and the per-device sweep could not run at
    /// full bandwidth), whereas a *weightless* (offline) device is simply
    /// excluded from the stripe.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::DuplicateRequest`] if the request is already live.
    /// * [`LedgerError::InsufficientCapacity`] if the placeable devices'
    ///   free space cannot hold `bytes`, or any eligible stripe member is
    ///   already full.
    pub fn allocate(&mut self, request: u64, bytes: u64) -> Result<Vec<u64>, LedgerError> {
        if self.allocations.contains_key(&request) {
            return Err(LedgerError::DuplicateRequest(request));
        }
        if !self.can_allocate(bytes) {
            return Err(LedgerError::InsufficientCapacity {
                requested: bytes,
                free: self.placeable_free_cached,
            });
        }
        let n = self.shards.len();
        let mut placed = vec![0u64; n];
        let mut remaining = bytes;
        // Weighted water-filling: hand every device with slack its weight
        // share of the remainder; devices that hit capacity drop out. Each
        // round places at least one byte, and the proportional shares
        // shrink the remainder geometrically, so this terminates fast.
        while remaining > 0 {
            let mut wsum = 0.0;
            for (i, s) in self.shards.iter().enumerate() {
                if s.spec.weight > 0.0
                    && s.spec.capacity_bytes.saturating_sub(s.occupied + placed[i]) > 0
                {
                    wsum += s.spec.weight;
                }
            }
            debug_assert!(wsum > 0.0, "free-space precondition violated");
            let round = remaining;
            for (s, p) in self.shards.iter().zip(placed.iter_mut()) {
                if remaining == 0 {
                    break;
                }
                let slack = s.spec.capacity_bytes.saturating_sub(s.occupied + *p);
                if s.spec.weight <= 0.0 || slack == 0 {
                    continue;
                }
                let want = ((round as f64 * s.spec.weight / wsum).ceil() as u64).max(1);
                let take = want.min(slack).min(remaining);
                *p += take;
                remaining -= take;
            }
        }
        for (i, &p) in placed.iter().enumerate() {
            self.charge_cached(i, p);
        }
        self.allocations.insert(request, placed.clone());
        Ok(placed)
    }

    /// Releases a request's allocation, returning its former placement.
    ///
    /// # Errors
    ///
    /// [`LedgerError::UnknownRequest`] if the request is not live.
    pub fn release(&mut self, request: u64) -> Result<Vec<u64>, LedgerError> {
        let placed =
            self.allocations.remove(&request).ok_or(LedgerError::UnknownRequest(request))?;
        for (i, &p) in placed.iter().enumerate() {
            self.credit_cached(i, p);
        }
        Ok(placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_stripe_evenly() {
        let mut l = KvShardLedger::uniform(4, 1 << 20);
        let p = l.allocate(1, 4096).unwrap();
        assert_eq!(p.iter().sum::<u64>(), 4096);
        for &b in &p {
            assert!((900..=1200).contains(&b), "uneven stripe: {p:?}");
        }
    }

    #[test]
    fn degraded_weight_skews_placement() {
        let mut l = KvShardLedger::new(vec![
            ShardSpec { capacity_bytes: 1 << 20, weight: 1.0 },
            ShardSpec { capacity_bytes: 1 << 20, weight: 0.25 },
        ]);
        let p = l.allocate(1, 100_000).unwrap();
        assert!(p[0] > 3 * p[1], "degraded device should hold much less: {p:?}");
        assert_eq!(p[0] + p[1], 100_000);
    }

    #[test]
    fn zero_weight_device_rejects_placement() {
        let mut l = KvShardLedger::new(vec![
            ShardSpec { capacity_bytes: 1000, weight: 1.0 },
            ShardSpec { capacity_bytes: 1000, weight: 0.0 },
        ]);
        let p = l.allocate(1, 800).unwrap();
        assert_eq!(p[1], 0, "weightless device must stay empty");
        // The weightless device's capacity does not count as placeable.
        assert!(matches!(
            l.allocate(2, 500),
            Err(LedgerError::InsufficientCapacity { requested: 500, free: 200 })
        ));
    }

    #[test]
    fn full_stripe_member_rejects_placement() {
        let mut l = KvShardLedger::new(vec![
            ShardSpec { capacity_bytes: 100, weight: 1.0 },
            ShardSpec { capacity_bytes: 10_000, weight: 1.0 },
        ]);
        // A stripe may *fill* a member (capped at its slack)...
        let p = l.allocate(1, 5000).unwrap();
        assert_eq!(p[0], 100, "small device fills");
        assert_eq!(p[1], 4900);
        assert_eq!(l.free_bytes(0), 0);
        // ...but once a weighted member is full, further placements are
        // rejected even though the aggregate has room: the static KV
        // stripe must span every eligible device.
        assert!(!l.can_allocate(1000));
        assert!(matches!(
            l.allocate(2, 1000),
            Err(LedgerError::InsufficientCapacity { requested: 1000, free: 5100 })
        ));
        // Releasing the stripe restores the member and placement resumes.
        l.release(1).unwrap();
        assert!(l.allocate(2, 1000).is_ok());
    }

    #[test]
    fn all_or_nothing_on_failure() {
        let mut l = KvShardLedger::uniform(2, 1000);
        l.allocate(1, 1500).unwrap();
        let before: Vec<u64> = (0..2).map(|i| l.occupied_bytes(i)).collect();
        assert!(l.allocate(2, 600).is_err());
        let after: Vec<u64> = (0..2).map(|i| l.occupied_bytes(i)).collect();
        assert_eq!(before, after, "failed allocation must not mutate");
        assert_eq!(l.live_requests(), 1);
    }

    #[test]
    fn release_restores_space_and_rejects_unknown() {
        let mut l = KvShardLedger::uniform(3, 1000);
        l.allocate(9, 2400).unwrap();
        assert!(!l.can_allocate(700));
        let freed = l.release(9).unwrap();
        assert_eq!(freed.iter().sum::<u64>(), 2400);
        assert_eq!(l.total_occupied(), 0);
        assert!(matches!(l.release(9), Err(LedgerError::UnknownRequest(9))));
        assert!(matches!(
            l.allocate(1, 1).and(l.allocate(1, 1)),
            Err(LedgerError::DuplicateRequest(1))
        ));
    }

    #[test]
    fn held_bytes_and_free_by_device_track_allocations() {
        let mut l = KvShardLedger::uniform(3, 1000);
        assert_eq!(l.held_bytes(4), None);
        assert_eq!(l.free_by_device(), vec![1000, 1000, 1000]);
        let placed = l.allocate(4, 900).unwrap();
        assert_eq!(l.held_bytes(4), Some(900));
        let free = l.free_by_device();
        for (i, &p) in placed.iter().enumerate() {
            assert_eq!(free[i], 1000 - p);
        }
        // Release restores the exact per-device free space — the
        // preempt/re-admit path depends on this round trip.
        l.release(4).unwrap();
        assert_eq!(l.held_bytes(4), None);
        assert_eq!(l.free_by_device(), vec![1000, 1000, 1000]);
    }

    #[test]
    fn pressure_tracks_occupancy_per_device_and_aggregate() {
        let mut l = KvShardLedger::new(vec![
            ShardSpec { capacity_bytes: 1000, weight: 2.0 },
            ShardSpec { capacity_bytes: 3000, weight: 1.0 },
        ]);
        assert_eq!(l.pressure(), 0.0);
        assert_eq!(l.pressure_by_device(), vec![0.0, 0.0]);
        assert_eq!(l.total_weight(), 3.0);
        let placed = l.allocate(1, 2000).unwrap();
        // Aggregate: 2000 held of 4000 capacity.
        assert!((l.pressure() - 0.5).abs() < 1e-12);
        for (i, &p) in placed.iter().enumerate() {
            let expect = p as f64 / [1000.0, 3000.0][i];
            assert!((l.device_pressure(i) - expect).abs() < 1e-12, "device {i}");
        }
        // Release restores zero pressure exactly.
        l.release(1).unwrap();
        assert_eq!(l.pressure(), 0.0);
        assert_eq!(l.pressure_by_device(), vec![0.0, 0.0]);
    }

    #[test]
    fn pressure_counts_reservations_and_skips_weightless_capacity() {
        let mut l = KvShardLedger::new(vec![
            ShardSpec { capacity_bytes: 1000, weight: 1.0 },
            ShardSpec { capacity_bytes: 1000, weight: 0.0 },
        ]);
        // Static weight reservations squeeze the placeable devices too.
        l.reserve_evenly(1000).unwrap();
        // Aggregate pressure is over placeable capacity only: 500/1000.
        assert!((l.pressure() - 0.5).abs() < 1e-12);
        // Per-device pressure reports every device, weightless included.
        assert_eq!(l.pressure_by_device(), vec![0.5, 0.5]);
        // A fully weightless ledger is saturated by definition.
        let dead = KvShardLedger::new(vec![ShardSpec { capacity_bytes: 1000, weight: 0.0 }]);
        assert_eq!(dead.pressure(), 1.0);
        assert_eq!(dead.total_weight(), 0.0);
        // ...as is a zero-capacity device.
        let tiny = KvShardLedger::new(vec![ShardSpec { capacity_bytes: 0, weight: 1.0 }]);
        assert_eq!(tiny.device_pressure(0), 1.0);
        assert_eq!(tiny.pressure(), 1.0);
    }

    #[test]
    fn cached_admission_aggregates_match_the_scan_under_churn() {
        let mut l = KvShardLedger::new(vec![
            ShardSpec { capacity_bytes: 10_000, weight: 1.0 },
            ShardSpec { capacity_bytes: 100, weight: 1.0 },
            ShardSpec { capacity_bytes: 5_000, weight: 0.0 },
            ShardSpec { capacity_bytes: 3_000, weight: 0.25 },
        ]);
        l.reserve_evenly(200).unwrap();
        // A deterministic mix of fills, rejections and releases; after
        // every operation the O(1) answers must match the O(devices) scan
        // for a sweep of probe sizes (including the full-member case).
        let mut live = Vec::new();
        for (i, bytes) in [600u64, 90, 4_000, 12_000, 1, 700].iter().enumerate() {
            if l.allocate(i as u64, *bytes).is_ok() {
                live.push(i as u64);
            }
            for probe in [0, 1, 50, 5_000, 50_000] {
                assert_eq!(l.can_allocate(probe), l.can_allocate_scan(probe), "probe {probe}");
            }
            assert_eq!(l.placeable_free(), l.placeable_free_scan());
        }
        for id in live {
            l.release(id).unwrap();
            assert_eq!(l.placeable_free(), l.placeable_free_scan());
            assert_eq!(l.can_allocate(1), l.can_allocate_scan(1));
        }
        assert_eq!(l.total_occupied(), 200, "only the reservation remains");
    }

    #[test]
    fn reservations_shrink_placeable_space() {
        let mut l = KvShardLedger::uniform(2, 1000);
        l.reserve_evenly(1000).unwrap();
        assert_eq!(l.placeable_free(), 1000);
        assert!(l.reserve_evenly(1200).is_err());
        // Failed reservation left occupancy untouched.
        assert_eq!(l.total_occupied(), 1000);
    }
}
