//! Runtime SSD devices: I/O accounting and simulation adapters.

use crate::spec::SsdSpec;
use hilos_sim::{ResourceId, ResourceKind, ResourceSpec, TaskGraph, TaskId};

/// How a write stream hits the flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePattern {
    /// Buffered into page-aligned chunks before programming (WAF ≈ 1).
    PageAligned,
    /// Issued in fixed `chunk`-byte units; sub-page chunks each program a
    /// whole page (read-modify-write) — the §4.3 pathology.
    Chunked {
        /// Write unit in bytes.
        chunk: u64,
    },
}

/// Cumulative I/O counters for one device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IoCounters {
    /// Bytes the host (or the NSP accelerator) read from the device.
    pub bytes_read: u64,
    /// Bytes of payload written to the device.
    pub bytes_written: u64,
    /// Bytes actually programmed into NAND (≥ `bytes_written`).
    pub nand_bytes_programmed: u64,
    /// Number of read commands issued.
    pub read_ops: u64,
    /// Number of write commands issued.
    pub write_ops: u64,
}

impl IoCounters {
    /// Observed write amplification factor (NAND bytes / host bytes), or
    /// 1.0 if nothing was written yet.
    pub fn write_amplification(&self) -> f64 {
        if self.bytes_written == 0 {
            1.0
        } else {
            self.nand_bytes_programmed as f64 / self.bytes_written as f64
        }
    }
}

/// A stateful SSD: a spec plus I/O counters and an occupancy figure.
///
/// # Examples
///
/// ```
/// use hilos_storage::{SsdDevice, SsdSpec, WritePattern};
///
/// let mut ssd = SsdDevice::new(SsdSpec::smartssd_nvme());
/// ssd.record_write(256, WritePattern::Chunked { chunk: 256 });
/// assert_eq!(ssd.counters().nand_bytes_programmed, 4096);
/// assert_eq!(ssd.counters().write_amplification(), 16.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsdDevice {
    spec: SsdSpec,
    counters: IoCounters,
    occupied_bytes: u64,
}

impl SsdDevice {
    /// Creates an empty device from a spec.
    pub fn new(spec: SsdSpec) -> Self {
        SsdDevice { spec, counters: IoCounters::default(), occupied_bytes: 0 }
    }

    /// The device's static description.
    pub fn spec(&self) -> &SsdSpec {
        &self.spec
    }

    /// Cumulative I/O counters.
    pub fn counters(&self) -> IoCounters {
        self.counters
    }

    /// Bytes currently allocated on the device.
    pub fn occupied_bytes(&self) -> u64 {
        self.occupied_bytes
    }

    /// Free capacity in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.spec.capacity_bytes().saturating_sub(self.occupied_bytes)
    }

    /// Marks `bytes` as allocated (KV-cache placement). Saturates at
    /// capacity; callers should check [`SsdDevice::free_bytes`] first.
    pub fn allocate(&mut self, bytes: u64) {
        self.occupied_bytes = (self.occupied_bytes + bytes).min(self.spec.capacity_bytes());
    }

    /// Releases `bytes` of allocation.
    pub fn release(&mut self, bytes: u64) {
        self.occupied_bytes = self.occupied_bytes.saturating_sub(bytes);
    }

    /// Records a read of `bytes`.
    pub fn record_read(&mut self, bytes: u64) {
        self.counters.bytes_read += bytes;
        self.counters.read_ops += 1;
    }

    /// Records a write of `bytes` under the given pattern, accounting NAND
    /// programs with the appropriate amplification.
    pub fn record_write(&mut self, bytes: u64, pattern: WritePattern) {
        self.counters.bytes_written += bytes;
        self.counters.write_ops += 1;
        let programmed = match pattern {
            WritePattern::PageAligned => self.spec.pages_for(bytes) * self.spec.page_bytes(),
            WritePattern::Chunked { chunk } => {
                assert!(chunk > 0, "chunk must be positive");
                let chunks = bytes.div_ceil(chunk);
                chunks * self.spec.pages_for(chunk) * self.spec.page_bytes()
            }
        };
        self.counters.nand_bytes_programmed += programmed;
    }

    /// Fraction of the endurance budget consumed, in `[0, 1]`.
    pub fn endurance_used(&self) -> f64 {
        (self.counters.nand_bytes_programmed as f64 / self.spec.endurance_bytes()).min(1.0)
    }

    /// Registers the device's read and write channels as engine resources.
    pub fn instantiate(&self, engine: &mut hilos_sim::FlowEngine) -> SsdInstance {
        let read = engine.add_resource(ResourceSpec::new(
            format!("{}:read", self.spec.name()),
            ResourceKind::StorageRead,
            self.spec.seq_read_bw(),
        ));
        let write = engine.add_resource(ResourceSpec::new(
            format!("{}:write", self.spec.name()),
            ResourceKind::StorageWrite,
            self.spec.seq_write_bw(),
        ));
        SsdInstance { read, write, cmd_latency: self.spec.cmd_latency() }
    }
}

/// A device materialized inside a [`hilos_sim::FlowEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdInstance {
    read: ResourceId,
    write: ResourceId,
    cmd_latency: hilos_sim::SimTime,
}

impl SsdInstance {
    /// The read-channel resource.
    pub fn read_resource(&self) -> ResourceId {
        self.read
    }

    /// The write-channel resource.
    pub fn write_resource(&self) -> ResourceId {
        self.write
    }

    /// Appends a read of `bytes` to `graph`: a command-latency delay
    /// followed by a transfer across the read channel and `route_tail`
    /// (e.g. PCIe links towards the consumer). Returns the transfer task.
    pub fn read_task(
        &self,
        graph: &mut TaskGraph,
        label: &str,
        bytes: f64,
        route_tail: &[ResourceId],
        deps: &[TaskId],
    ) -> TaskId {
        let cmd = graph.delay(format!("{label}.cmd"), self.cmd_latency, deps);
        let mut route = vec![self.read];
        route.extend_from_slice(route_tail);
        graph.transfer(label, bytes, route, &[cmd])
    }

    /// Appends a write of `bytes`: command latency, then a transfer across
    /// `route_head` (links from the producer) and the write channel.
    pub fn write_task(
        &self,
        graph: &mut TaskGraph,
        label: &str,
        bytes: f64,
        route_head: &[ResourceId],
        deps: &[TaskId],
    ) -> TaskId {
        let cmd = graph.delay(format!("{label}.cmd"), self.cmd_latency, deps);
        let mut route = route_head.to_vec();
        route.push(self.write);
        graph.transfer(label, bytes, route, &[cmd])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_sim::{execute, FlowEngine, SimTime};

    #[test]
    fn counters_accumulate() {
        let mut d = SsdDevice::new(SsdSpec::pm9a3());
        d.record_read(1000);
        d.record_read(500);
        d.record_write(4096, WritePattern::PageAligned);
        let c = d.counters();
        assert_eq!(c.bytes_read, 1500);
        assert_eq!(c.read_ops, 2);
        assert_eq!(c.bytes_written, 4096);
        assert_eq!(c.nand_bytes_programmed, 4096);
        assert_eq!(c.write_amplification(), 1.0);
    }

    #[test]
    fn chunked_writes_amplify() {
        let mut d = SsdDevice::new(SsdSpec::smartssd_nvme());
        // 16 KV entries of 256 B written one by one: 16 pages programmed.
        d.record_write(16 * 256, WritePattern::Chunked { chunk: 256 });
        assert_eq!(d.counters().nand_bytes_programmed, 16 * 4096);
        assert_eq!(d.counters().write_amplification(), 16.0);

        // The same payload buffered page-aligned: one page.
        let mut d2 = SsdDevice::new(SsdSpec::smartssd_nvme());
        d2.record_write(16 * 256, WritePattern::PageAligned);
        assert_eq!(d2.counters().nand_bytes_programmed, 4096);
    }

    #[test]
    fn capacity_tracking() {
        let mut d = SsdDevice::new(SsdSpec::pm9a3());
        let cap = d.spec().capacity_bytes();
        d.allocate(1_000_000);
        assert_eq!(d.occupied_bytes(), 1_000_000);
        assert_eq!(d.free_bytes(), cap - 1_000_000);
        d.release(400_000);
        assert_eq!(d.occupied_bytes(), 600_000);
        d.allocate(u64::MAX / 2);
        assert_eq!(d.occupied_bytes(), cap);
    }

    #[test]
    fn endurance_fraction() {
        let mut d = SsdDevice::new(SsdSpec::smartssd_nvme());
        // Program 7.008e15 / 2 bytes -> 50% used.
        d.record_write(3_504_000_000_000_000, WritePattern::PageAligned);
        assert!((d.endurance_used() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn read_task_includes_cmd_latency_and_bandwidth() {
        let dev = SsdDevice::new(SsdSpec::smartssd_nvme());
        let mut eng = FlowEngine::new();
        let inst = dev.instantiate(&mut eng);
        let mut g = TaskGraph::new();
        inst.read_task(&mut g, "loadkv:test", 3.2e9, &[], &[]);
        let tl = execute(&mut eng, &g).unwrap();
        // 25 us command latency + 1 s transfer at 3.2 GB/s.
        let expect = SimTime::from_micros(25) + SimTime::from_secs(1);
        assert_eq!(tl.makespan(), expect);
    }

    #[test]
    fn write_task_uses_write_channel() {
        let dev = SsdDevice::new(SsdSpec::smartssd_nvme());
        let mut eng = FlowEngine::new();
        let inst = dev.instantiate(&mut eng);
        let mut g = TaskGraph::new();
        inst.write_task(&mut g, "spill:test", 2.0e9, &[], &[]);
        let tl = execute(&mut eng, &g).unwrap();
        let expect = SimTime::from_micros(25) + SimTime::from_secs(1);
        assert_eq!(tl.makespan(), expect);
        // Reads were untouched.
        assert_eq!(tl.resource_stats(inst.read_resource()).units_served, 0.0);
    }

    #[test]
    fn reads_and_writes_do_not_contend() {
        let dev = SsdDevice::new(SsdSpec::pm9a3());
        let mut eng = FlowEngine::new();
        let inst = dev.instantiate(&mut eng);
        let mut g = TaskGraph::new();
        inst.read_task(&mut g, "r", 6.9e9, &[], &[]);
        inst.write_task(&mut g, "w", 4.1e9, &[], &[]);
        let tl = execute(&mut eng, &g).unwrap();
        // Both take 1 s + 20 us, in parallel.
        assert_eq!(tl.makespan(), SimTime::from_micros(20) + SimTime::from_secs(1));
    }
}
