//! Datasheet-level SSD descriptions.

use hilos_sim::SimTime;

/// Static description of an NVMe SSD.
///
/// Presets mirror the devices in Table 1 of the paper.
///
/// # Examples
///
/// ```
/// use hilos_storage::SsdSpec;
///
/// let pm9a3 = SsdSpec::pm9a3();
/// assert!(pm9a3.seq_read_bw() > 6.0e9);
/// assert_eq!(pm9a3.page_bytes(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsdSpec {
    name: String,
    capacity_bytes: u64,
    seq_read_bw: f64,
    seq_write_bw: f64,
    page_bytes: u64,
    cmd_latency: SimTime,
    /// Total NAND write endurance in bytes (PBW × 10^15).
    endurance_bytes: f64,
}

impl SsdSpec {
    /// Creates a custom SSD description.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth/capacity is non-positive or the page size is
    /// not a power of two.
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: u64,
        seq_read_bw: f64,
        seq_write_bw: f64,
        page_bytes: u64,
        cmd_latency: SimTime,
        endurance_bytes: f64,
    ) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        assert!(seq_read_bw > 0.0 && seq_write_bw > 0.0, "bandwidths must be positive");
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(endurance_bytes > 0.0, "endurance must be positive");
        SsdSpec {
            name: name.into(),
            capacity_bytes,
            seq_read_bw,
            seq_write_bw,
            page_bytes,
            cmd_latency,
            endurance_bytes,
        }
    }

    /// Samsung PM9A3 3.84 TB — the baselines' PCIe 4.0 data-center SSD:
    /// 6.9 GB/s sequential read, 4.1 GB/s sequential write.
    pub fn pm9a3() -> Self {
        SsdSpec::new(
            "PM9A3-3.84T",
            3_840_000_000_000,
            6.9e9,
            4.1e9,
            4096,
            SimTime::from_micros(20),
            // 1 DWPD class drive; the paper quotes 7.008 PBW for the
            // SmartSSD's SSD — the PM9A3 is similar per TB.
            7.008e15,
        )
    }

    /// The 3.84 TB NVMe SSD inside a Samsung SmartSSD. PCIe 3.0 device;
    /// internal peer-to-peer reads to the FPGA DRAM sustain ≈3.2 GB/s and
    /// writes ≈2.0 GB/s (paper Fig. 12a / §6.2). Endurance 7.008 PBW with
    /// 3-month retention (paper §6.6).
    pub fn smartssd_nvme() -> Self {
        SsdSpec::new(
            "SmartSSD-NVMe-3.84T",
            3_840_000_000_000,
            3.2e9,
            2.0e9,
            4096,
            SimTime::from_micros(25),
            7.008e15,
        )
    }

    /// The envisioned ISP-CSD of §7.1: 16 TB NAND behind eight 2,000 MT/s
    /// channels (16 GB/s internal read), write ≈ 8 GB/s.
    pub fn isp_csd() -> Self {
        SsdSpec::new(
            "ISP-CSD-16T",
            16_000_000_000_000,
            16.0e9,
            8.0e9,
            4096,
            SimTime::from_micros(20),
            4.0 * 7.008e15,
        )
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Sequential read bandwidth in bytes/s.
    pub fn seq_read_bw(&self) -> f64 {
        self.seq_read_bw
    }

    /// Sequential write bandwidth in bytes/s.
    pub fn seq_write_bw(&self) -> f64 {
        self.seq_write_bw
    }

    /// NAND page size in bytes — the minimum program granularity.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Fixed per-command latency (NVMe submission + device firmware).
    pub fn cmd_latency(&self) -> SimTime {
        self.cmd_latency
    }

    /// Total NAND write endurance in bytes.
    pub fn endurance_bytes(&self) -> f64 {
        self.endurance_bytes
    }

    /// Number of pages needed to hold `bytes` (the NAND program cost of a
    /// single buffered write of that size).
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_bytes)
    }

    /// Write amplification of issuing writes in `chunk`-byte units: the
    /// ratio of NAND bytes programmed to host bytes written. Sub-page
    /// chunks program a full page each (read-modify-write), which is the
    /// §4.3 pathology for 256-byte KV entries on 4 KiB pages (WAF = 16).
    pub fn write_amplification(&self, chunk: u64) -> f64 {
        assert!(chunk > 0, "chunk must be positive");
        let programmed = self.pages_for(chunk) * self.page_bytes;
        programmed as f64 / chunk as f64
    }

    /// Returns a copy with bandwidths scaled by `factor` — degraded-device
    /// (straggler) injection for availability experiments.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        self.seq_read_bw *= factor;
        self.seq_write_bw *= factor;
        self.name = format!("{}@{:.0}%", self.name, factor * 100.0);
        self
    }

    /// Returns a copy with a different page size (for the §7.3 16 KiB-page
    /// sensitivity analysis).
    pub fn with_page_bytes(mut self, page_bytes: u64) -> Self {
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        self.page_bytes = page_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_datasheets() {
        let pm = SsdSpec::pm9a3();
        assert_eq!(pm.capacity_bytes(), 3_840_000_000_000);
        assert!((pm.seq_read_bw() - 6.9e9).abs() < 1e6);
        assert!((pm.seq_write_bw() - 4.1e9).abs() < 1e6);

        let smart = SsdSpec::smartssd_nvme();
        assert!(smart.seq_read_bw() < pm.seq_read_bw());
        assert!((smart.endurance_bytes() - 7.008e15).abs() < 1e9);

        let isp = SsdSpec::isp_csd();
        assert!((isp.seq_read_bw() - 16e9).abs() < 1e6);
    }

    #[test]
    fn pages_for_rounds_up() {
        let s = SsdSpec::pm9a3();
        assert_eq!(s.pages_for(1), 1);
        assert_eq!(s.pages_for(4096), 1);
        assert_eq!(s.pages_for(4097), 2);
        assert_eq!(s.pages_for(0), 0);
    }

    #[test]
    fn write_amplification_of_kv_entries() {
        let s = SsdSpec::smartssd_nvme();
        // A 256-byte KV entry (one head, d=128, fp16 K+V) programs a full
        // 4 KiB page: WAF = 16, exactly the paper's default spill interval.
        assert_eq!(s.write_amplification(256), 16.0);
        assert_eq!(s.write_amplification(4096), 1.0);
        // Page-aligned multi-page writes are also WAF 1.
        assert_eq!(s.write_amplification(8192), 1.0);
        // 16 KiB pages (§7.3) quadruple sub-page amplification.
        let big = s.with_page_bytes(16384);
        assert_eq!(big.write_amplification(256), 64.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_rejected() {
        let _ = SsdSpec::pm9a3().with_page_bytes(5000);
    }
}
