//! Property tests for the FTL, RAID, KV shard ledger, and prefix-cache
//! residency-ladder invariants.

use hilos_storage::{
    Ftl, FtlConfig, KvShardLedger, KvTier, KvTierLadder, PrefixCacheIndex, Raid0, ShardSpec,
    SsdSpec,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any mix of writes and trims keeps the mapping tables consistent
    /// and the write amplification ≥ 1.
    #[test]
    fn ftl_invariants_under_arbitrary_ops(
        ops in prop::collection::vec((any::<bool>(), 0u32..3584), 1..4000),
    ) {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        for (is_write, lpn) in ops {
            let lpn = lpn % cfg.logical_pages();
            if is_write {
                ftl.write(lpn).unwrap();
            } else {
                ftl.trim(lpn).unwrap();
            }
        }
        prop_assert!(ftl.check_invariants());
        prop_assert!(ftl.stats().write_amplification() >= 1.0 - 1e-12);
        // The free pool never collapses below the GC watermark minus the
        // block being filled.
        prop_assert!(ftl.free_block_count() + 2 >= cfg.gc_watermark as usize);
    }

    /// Written pages read back as mapped; trimmed pages as unmapped.
    #[test]
    fn ftl_mapping_reflects_last_op(
        writes in prop::collection::vec(0u32..3584, 1..200),
        trims in prop::collection::vec(0u32..3584, 0..100),
    ) {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        let mut state = std::collections::HashMap::new();
        for lpn in writes {
            let lpn = lpn % cfg.logical_pages();
            ftl.write(lpn).unwrap();
            state.insert(lpn, true);
        }
        for lpn in trims {
            let lpn = lpn % cfg.logical_pages();
            ftl.trim(lpn).unwrap();
            state.insert(lpn, false);
        }
        for (lpn, mapped) in state {
            prop_assert_eq!(ftl.is_mapped(lpn), mapped, "lpn {}", lpn);
        }
    }

    /// RAID-0 planning conserves bytes and touches only valid devices for
    /// any request geometry.
    #[test]
    fn raid_plan_conserves_bytes(
        devices in 1usize..16,
        chunk_pow in 9u32..21,
        offset in 0u64..1_000_000_000,
        len in 1u64..1_000_000_000,
    ) {
        let raid = Raid0::new(devices, 1 << chunk_pow).unwrap();
        let plan = raid.plan(offset, len);
        let total: u64 = plan.iter().map(|e| e.bytes).sum();
        prop_assert_eq!(total, len);
        for e in &plan {
            prop_assert!(e.device < devices);
        }
        // Large requests spread nearly evenly.
        if len > 64 * (1 << chunk_pow) * devices as u64 {
            let max = plan.iter().map(|e| e.bytes).max().unwrap();
            let min = plan.iter().map(|e| e.bytes).min().unwrap();
            prop_assert!(max - min <= 2 * (1 << chunk_pow));
        }
    }

    /// Any interleaving of request admissions and completions leaves every
    /// device's `occupied_bytes` equal to the sum of the live requests'
    /// placements on it — including with a degraded (low-weight) device in
    /// the stripe — and placement skew follows the weights.
    #[test]
    fn ledger_occupancy_matches_live_requests(
        ops in prop::collection::vec((any::<bool>(), 0u64..40, 1u64..200_000), 1..300),
        degraded_weight_pct in 0u32..100,
    ) {
        let n = 4;
        let capacity = 1_u64 << 21; // 2 MiB per device
        let weight = degraded_weight_pct as f64 / 100.0;
        let mut shards = vec![ShardSpec { capacity_bytes: capacity, weight: 1.0 }; n];
        shards[2].weight = weight; // device 2 is degraded (possibly offline)
        let mut ledger = KvShardLedger::new(shards);

        // Model: request id -> per-device placement of live requests.
        let mut live: HashMap<u64, Vec<u64>> = HashMap::new();
        for (admit, id, bytes) in ops {
            if admit {
                match ledger.allocate(id, bytes) {
                    Ok(p) => {
                        prop_assert!(!live.contains_key(&id), "duplicate admitted");
                        prop_assert_eq!(p.iter().sum::<u64>(), bytes);
                        if weight == 0.0 {
                            prop_assert_eq!(p[2], 0, "offline device took placement");
                        }
                        live.insert(id, p);
                    }
                    Err(_) => {
                        // Rejections must leave the ledger untouched; the
                        // invariant check below verifies that.
                    }
                }
            } else if let Some(expected) = live.remove(&id) {
                let freed = ledger.release(id).unwrap();
                prop_assert_eq!(freed, expected);
            } else {
                prop_assert!(ledger.release(id).is_err());
            }
            // The invariant: per-device occupancy == sum of live placements.
            for d in 0..n {
                let sum: u64 = live.values().map(|p| p[d]).sum();
                prop_assert_eq!(ledger.occupied_bytes(d), sum, "device {}", d);
            }
            prop_assert_eq!(ledger.live_requests(), live.len());
        }
        // Aggregate skew: the degraded device never holds more than its
        // fair share would allow (weight 1.0 devices hold the bulk).
        let healthy: u64 = [0, 1, 3].iter().map(|&d| ledger.occupied_bytes(d)).sum();
        if weight == 0 as f64 {
            prop_assert_eq!(ledger.occupied_bytes(2), 0);
        } else if healthy > 0 && weight < 0.5 {
            prop_assert!(
                ledger.occupied_bytes(2) <= healthy,
                "degraded device overloaded: {} vs {}",
                ledger.occupied_bytes(2),
                healthy
            );
        }
    }

    /// Prefix-cache residency conservation: under any interleaving of
    /// publishes, probes, pins, releases and recalls, every entry's bytes
    /// are resident in exactly one tier (per-tier ladder occupancy equals
    /// the sum of that tier's entries, and never exceeds capacity), and a
    /// pinned entry survives every make-room demotion cascade. The tiny
    /// HBM/DRAM rungs force constant cascades into the SSD rung.
    #[test]
    fn prefix_ladder_conserves_residency_and_pins(
        ops in prop::collection::vec((0u8..5, 1u64..12, 1u64..6000), 1..300),
    ) {
        const BPT: u64 = 16; // bytes per token -> 1 KiB blocks of 64 tokens
        let mut ladder = KvTierLadder::new(96 << 10, 384 << 10, SsdSpec::smartssd_nvme(), 2);
        let mut index = PrefixCacheIndex::new(64, BPT);
        let mut pins: HashMap<u64, u32> = HashMap::new();
        for (op, key, tokens) in ops {
            match op {
                0 | 1 => {
                    index.publish(key, tokens, &mut ladder);
                }
                2 => {
                    // A probe can miss on a resident entry (limit below
                    // one block); pinning is keyed on residency, not hits.
                    if index.entry(key).is_some() {
                        index.probe(key, tokens);
                        index.acquire(key).unwrap();
                        *pins.entry(key).or_insert(0) += 1;
                    } else {
                        prop_assert!(index.acquire(key).is_err(), "acquired a missing entry");
                    }
                }
                3 => {
                    match pins.get_mut(&key) {
                        Some(n) if *n > 0 => {
                            index.release(key).unwrap();
                            *n -= 1;
                        }
                        _ => prop_assert!(
                            index.release(key).is_err(),
                            "released an unpinned entry"
                        ),
                    }
                }
                _ => {
                    if let Some((hit, _tier)) = index.probe(key, tokens) {
                        let s = index.recall(key, hit, &mut ladder);
                        prop_assert!(s >= 0.0 && s.is_finite());
                    }
                }
            }
            // Conservation: the ladder holds exactly the index's entries,
            // each in one tier, within capacity.
            let mut per_tier = [0u64; 3];
            for k in 0..12 {
                if let Some((toks, tier, _refs)) = index.entry(k) {
                    per_tier[tier.index()] += toks * BPT;
                }
            }
            for t in KvTier::ALL {
                prop_assert_eq!(ladder.occupied(t), per_tier[t.index()], "{} occupancy", t.label());
                prop_assert!(ladder.occupied(t) <= ladder.capacity(t), "{} overfull", t.label());
            }
            prop_assert_eq!(index.resident_bytes(), per_tier.iter().sum::<u64>());
            // Refcount safety: pinned entries are never evicted by a
            // cascade, and their refcounts match the model's.
            for (&k, &n) in &pins {
                if n > 0 {
                    let entry = index.entry(k);
                    prop_assert!(entry.is_some(), "pinned entry {} evicted", k);
                    prop_assert_eq!(entry.unwrap().2, n, "refcount drifted for {}", k);
                }
            }
            prop_assert!(index.hits() <= index.lookups());
        }
    }
}
