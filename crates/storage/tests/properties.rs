//! Property tests for the FTL and RAID invariants.

use hilos_storage::{Ftl, FtlConfig, Raid0};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any mix of writes and trims keeps the mapping tables consistent
    /// and the write amplification ≥ 1.
    #[test]
    fn ftl_invariants_under_arbitrary_ops(
        ops in prop::collection::vec((any::<bool>(), 0u32..3584), 1..4000),
    ) {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        for (is_write, lpn) in ops {
            let lpn = lpn % cfg.logical_pages();
            if is_write {
                ftl.write(lpn).unwrap();
            } else {
                ftl.trim(lpn).unwrap();
            }
        }
        prop_assert!(ftl.check_invariants());
        prop_assert!(ftl.stats().write_amplification() >= 1.0 - 1e-12);
        // The free pool never collapses below the GC watermark minus the
        // block being filled.
        prop_assert!(ftl.free_block_count() + 2 >= cfg.gc_watermark as usize);
    }

    /// Written pages read back as mapped; trimmed pages as unmapped.
    #[test]
    fn ftl_mapping_reflects_last_op(
        writes in prop::collection::vec(0u32..3584, 1..200),
        trims in prop::collection::vec(0u32..3584, 0..100),
    ) {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::new(cfg);
        let mut state = std::collections::HashMap::new();
        for lpn in writes {
            let lpn = lpn % cfg.logical_pages();
            ftl.write(lpn).unwrap();
            state.insert(lpn, true);
        }
        for lpn in trims {
            let lpn = lpn % cfg.logical_pages();
            ftl.trim(lpn).unwrap();
            state.insert(lpn, false);
        }
        for (lpn, mapped) in state {
            prop_assert_eq!(ftl.is_mapped(lpn), mapped, "lpn {}", lpn);
        }
    }

    /// RAID-0 planning conserves bytes and touches only valid devices for
    /// any request geometry.
    #[test]
    fn raid_plan_conserves_bytes(
        devices in 1usize..16,
        chunk_pow in 9u32..21,
        offset in 0u64..1_000_000_000,
        len in 1u64..1_000_000_000,
    ) {
        let raid = Raid0::new(devices, 1 << chunk_pow).unwrap();
        let plan = raid.plan(offset, len);
        let total: u64 = plan.iter().map(|e| e.bytes).sum();
        prop_assert_eq!(total, len);
        for e in &plan {
            prop_assert!(e.device < devices);
        }
        // Large requests spread nearly evenly.
        if len > 64 * (1 << chunk_pow) * devices as u64 {
            let max = plan.iter().map(|e| e.bytes).max().unwrap();
            let min = plan.iter().map(|e| e.bytes).min().unwrap();
            prop_assert!(max - min <= 2 * (1 << chunk_pow));
        }
    }
}
