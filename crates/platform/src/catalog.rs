//! Device catalog: datasheet numbers, prices and power draws for every
//! component of the paper's testbeds (Table 1 and §6.6).
//!
//! Bandwidth figures are *effective* (measured-style) rather than
//! theoretical peaks; prices come from the paper's cost analysis
//! (Fig. 16a); power figures from §6.6 / NVML / RAPL-class numbers.

use hilos_interconnect::{LinkSpec, PcieGen};

/// Idle and active power of one component, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSpec {
    /// Power when idle.
    pub idle_w: f64,
    /// Power when fully busy (linear interpolation in between).
    pub active_w: f64,
}

impl PowerSpec {
    /// Average power at a utilization in `[0, 1]`.
    pub fn at_utilization(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.idle_w + (self.active_w - self.idle_w) * u
    }
}

/// A GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Effective FP16 GEMM throughput in FLOP/s (sustained, not peak).
    pub fp16_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bw: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Host link.
    pub link: LinkSpec,
    /// Street price in USD (paper's cost analysis).
    pub price_usd: f64,
    /// Power envelope.
    pub power: PowerSpec,
}

impl GpuSpec {
    /// NVIDIA A100 40 GB (PCIe) — the paper's default GPU, $7,000.
    pub fn a100_40g() -> Self {
        GpuSpec {
            name: "A100-40G",
            // Large-GEMM tensor-core regime: ~93% of the 312 TFLOPS peak
            // (the X-cache regeneration is exactly such a GEMM, §4.2).
            fp16_flops: 290e12,
            hbm_bw: 1.555e12,
            mem_bytes: 40 << 30,
            link: LinkSpec::new(PcieGen::Gen4, 16),
            price_usd: 7_000.0,
            power: PowerSpec { idle_w: 55.0, active_w: 300.0 },
        }
    }

    /// NVIDIA H100 80 GB — the $30,000 upgrade of Fig. 16a.
    pub fn h100_80g() -> Self {
        GpuSpec {
            name: "H100-80G",
            fp16_flops: 700e12,
            hbm_bw: 3.35e12,
            mem_bytes: 80 << 30,
            link: LinkSpec::new(PcieGen::Gen5, 16),
            price_usd: 30_000.0,
            power: PowerSpec { idle_w: 70.0, active_w: 500.0 },
        }
    }

    /// NVIDIA RTX A6000 48 GB — the multi-node vLLM baseline GPU
    /// (Fig. 17b).
    pub fn a6000_48g() -> Self {
        GpuSpec {
            name: "A6000-48G",
            fp16_flops: 120e12,
            hbm_bw: 768e9,
            mem_bytes: 48 << 30,
            link: LinkSpec::new(PcieGen::Gen4, 16),
            price_usd: 4_500.0,
            power: PowerSpec { idle_w: 25.0, active_w: 280.0 },
        }
    }
}

/// The host platform: CPU, DRAM, chassis.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Description.
    pub name: &'static str,
    /// Effective CPU throughput for attention GEMV work, FLOP/s.
    pub cpu_flops: f64,
    /// Host DRAM capacity in bytes (16 × 32 GB in Table 1).
    pub dram_bytes: u64,
    /// Host DRAM bandwidth in bytes/s (16 channels DDR4-3200).
    pub dram_bw: f64,
    /// Server price (chassis + CPU + DRAM), USD.
    pub price_usd: f64,
    /// CPU package power.
    pub cpu_power: PowerSpec,
    /// DRAM power (all DIMMs).
    pub dram_power: PowerSpec,
}

impl HostSpec {
    /// The paper's host: Xeon Gold 6342 (24C/48T), 512 GB DDR4-3200,
    /// $15,000 server.
    pub fn xeon_512g() -> Self {
        HostSpec {
            name: "Xeon-6342-512G",
            cpu_flops: 1.5e12,
            dram_bytes: 512 << 30,
            dram_bw: 200e9,
            price_usd: 15_000.0,
            cpu_power: PowerSpec { idle_w: 85.0, active_w: 230.0 },
            dram_power: PowerSpec { idle_w: 25.0, active_w: 75.0 },
        }
    }

    /// The vLLM baseline node host: AMD EPYC 7302, 512 GB.
    pub fn epyc_512g() -> Self {
        HostSpec {
            name: "EPYC-7302-512G",
            cpu_flops: 1.0e12,
            dram_bytes: 512 << 30,
            dram_bw: 170e9,
            price_usd: 12_000.0,
            cpu_power: PowerSpec { idle_w: 70.0, active_w: 155.0 },
            dram_power: PowerSpec { idle_w: 25.0, active_w: 75.0 },
        }
    }
}

/// Per-SSD prices and power (Fig. 16a, §6.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoragePricePower {
    /// Unit price in USD.
    pub price_usd: f64,
    /// Power envelope of one device.
    pub power: PowerSpec,
}

/// PM9A3 PCIe 4.0 SSD: $400, 13 W active (datasheet, §6.6).
pub fn pm9a3_price_power() -> StoragePricePower {
    StoragePricePower { price_usd: 400.0, power: PowerSpec { idle_w: 5.0, active_w: 13.0 } }
}

/// SmartSSD: $2,400; SSD ~9 W plus the accelerator's 11–16 W (Table 3).
pub fn smartssd_price_power() -> StoragePricePower {
    StoragePricePower { price_usd: 2_400.0, power: PowerSpec { idle_w: 12.0, active_w: 25.0 } }
}

/// The H3 Falcon 4109 PCIe expansion chassis: $10,000 (Fig. 16a).
pub fn expansion_chassis_price_usd() -> f64 {
    10_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_interpolates() {
        let p = PowerSpec { idle_w: 10.0, active_w: 110.0 };
        assert_eq!(p.at_utilization(0.0), 10.0);
        assert_eq!(p.at_utilization(1.0), 110.0);
        assert_eq!(p.at_utilization(0.5), 60.0);
        assert_eq!(p.at_utilization(7.0), 110.0);
        assert_eq!(p.at_utilization(-1.0), 10.0);
    }

    #[test]
    fn gpu_catalog_sanity() {
        let a100 = GpuSpec::a100_40g();
        let h100 = GpuSpec::h100_80g();
        assert!(h100.fp16_flops > 2.0 * a100.fp16_flops);
        assert!(h100.hbm_bw > a100.hbm_bw);
        assert_eq!(a100.mem_bytes, 40 << 30);
        // Fig 16a: the H100 costs >4x the A100.
        assert!(h100.price_usd / a100.price_usd > 4.0);
    }

    #[test]
    fn host_catalog_sanity() {
        let h = HostSpec::xeon_512g();
        assert_eq!(h.dram_bytes, 512 << 30);
        assert!(h.dram_bw > 100e9);
        assert!(h.cpu_flops < GpuSpec::a100_40g().fp16_flops / 10.0);
    }

    #[test]
    fn smartssd_pricing_matches_paper() {
        assert_eq!(smartssd_price_power().price_usd, 2_400.0);
        assert_eq!(pm9a3_price_power().price_usd, 400.0);
        assert_eq!(expansion_chassis_price_usd(), 10_000.0);
        // Fig 16a system deltas: 16 SmartSSDs + chassis vs 4 plain SSDs.
        let hilos_extra = 16.0 * 2_400.0 + 10_000.0;
        assert_eq!(hilos_extra, 48_400.0);
    }
}
