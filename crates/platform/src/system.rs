//! System specifications and their materialization as simulation worlds.
//!
//! A [`SystemSpec`] describes a whole machine (host + GPU + storage
//! complex); [`BuiltSystem::build`] instantiates it: every link, memory
//! port, storage channel and compute engine becomes a resource in one
//! [`FlowEngine`], wired by the PCIe topology of Fig. 3.

use crate::catalog::{GpuSpec, HostSpec, StoragePricePower};
use hilos_accel::AccelTimingModel;
use hilos_interconnect::{LinkSpec, NodeId, PcieGen, Topology, TopologyInstance};
use hilos_sim::{FlowEngine, FlowEngineImpl, ResourceId, ResourceKind, ResourceSpec};
use hilos_storage::{KvShardLedger, ShardSpec, SsdDevice, SsdInstance, SsdSpec};
use std::error::Error;
use std::fmt;

/// The storage complex of a system.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageConfig {
    /// Conventional SSDs, each on a dedicated ×4 root port (Fig. 3a) and
    /// RAID-0'd together by software (mdadm, §6.1).
    ConventionalSsds {
        /// Number of drives.
        count: usize,
        /// Drive model.
        spec: SsdSpec,
        /// Per-drive link.
        link: LinkSpec,
    },
    /// SmartSSDs behind a PCIe expansion chassis: a single ×16 uplink
    /// fans out to ×8 switch ports carrying two devices each (Fig. 9a).
    SmartSsdChassis {
        /// Number of SmartSSDs (the paper uses 4/8/16).
        count: usize,
        /// Whether the FPGAs are usable (disabled for the
        /// FLEX(16 PCIe 3.0 SSDs) baseline).
        fpga_enabled: bool,
    },
    /// Envisioned ISP-CSDs (§7.1): high internal bandwidth, PCIe 4.0 ×4
    /// host links on dedicated root ports.
    IspCsd {
        /// Number of devices.
        count: usize,
    },
}

impl StorageConfig {
    /// Number of storage devices.
    pub fn device_count(&self) -> usize {
        match self {
            StorageConfig::ConventionalSsds { count, .. } => *count,
            StorageConfig::SmartSsdChassis { count, .. } => *count,
            StorageConfig::IspCsd { count } => *count,
        }
    }

    /// The per-device SSD spec.
    pub fn ssd_spec(&self) -> SsdSpec {
        match self {
            StorageConfig::ConventionalSsds { spec, .. } => spec.clone(),
            StorageConfig::SmartSsdChassis { .. } => SsdSpec::smartssd_nvme(),
            StorageConfig::IspCsd { .. } => SsdSpec::isp_csd(),
        }
    }

    /// True if near-storage accelerators are available.
    pub fn has_accelerators(&self) -> bool {
        matches!(
            self,
            StorageConfig::SmartSsdChassis { fpga_enabled: true, .. }
                | StorageConfig::IspCsd { .. }
        )
    }
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Description, used in reports.
    pub name: String,
    /// Host platform.
    pub host: HostSpec,
    /// The GPU.
    pub gpu: GpuSpec,
    /// Storage complex.
    pub storage: StorageConfig,
    /// Storage price/power entry for cost and energy models.
    pub storage_price_power: StoragePricePower,
    /// Extra platform price (expansion chassis), USD.
    pub extra_price_usd: f64,
}

impl SystemSpec {
    /// The paper's HILOS testbed: A100 + 16-slot SmartSSD chassis.
    pub fn a100_server() -> Self {
        SystemSpec {
            name: "A100 + SmartSSD chassis".to_string(),
            host: HostSpec::xeon_512g(),
            gpu: GpuSpec::a100_40g(),
            storage: StorageConfig::SmartSsdChassis { count: 16, fpga_enabled: true },
            storage_price_power: crate::catalog::smartssd_price_power(),
            extra_price_usd: crate::catalog::expansion_chassis_price_usd(),
        }
    }

    /// Same chassis with `count` SmartSSDs.
    pub fn a100_smartssd(count: usize) -> Self {
        let mut s = SystemSpec::a100_server();
        s.name = format!("A100 + {count} SmartSSDs");
        s.storage = StorageConfig::SmartSsdChassis { count, fpga_enabled: true };
        s
    }

    /// H100 variant of the HILOS testbed (Fig. 16a).
    pub fn h100_smartssd(count: usize) -> Self {
        let mut s = SystemSpec::a100_smartssd(count);
        s.name = format!("H100 + {count} SmartSSDs");
        s.gpu = GpuSpec::h100_80g();
        s
    }

    /// The FLEX(SSD) baseline: A100 + four PM9A3 on dedicated root ports.
    pub fn a100_pm9a3(count: usize) -> Self {
        SystemSpec {
            name: format!("A100 + {count} PM9A3"),
            host: HostSpec::xeon_512g(),
            gpu: GpuSpec::a100_40g(),
            storage: StorageConfig::ConventionalSsds {
                count,
                spec: SsdSpec::pm9a3(),
                link: LinkSpec::new(PcieGen::Gen4, 4),
            },
            storage_price_power: crate::catalog::pm9a3_price_power(),
            extra_price_usd: 0.0,
        }
    }

    /// H100 variant of the conventional-SSD baseline.
    pub fn h100_pm9a3(count: usize) -> Self {
        let mut s = SystemSpec::a100_pm9a3(count);
        s.name = format!("H100 + {count} PM9A3");
        s.gpu = GpuSpec::h100_80g();
        s
    }

    /// The FLEX(16 PCIe 3.0 SSDs) baseline: the SmartSSD chassis with the
    /// FPGAs disabled.
    pub fn a100_chassis_no_fpga(count: usize) -> Self {
        let mut s = SystemSpec::a100_smartssd(count);
        s.name = format!("A100 + {count} SmartSSDs (FPGA off)");
        s.storage = StorageConfig::SmartSsdChassis { count, fpga_enabled: false };
        s
    }

    /// The envisioned ISP-CSD system of §7.1.
    pub fn a100_isp(count: usize) -> Self {
        SystemSpec {
            name: format!("A100 + {count} ISP-CSD"),
            host: HostSpec::xeon_512g(),
            gpu: GpuSpec::a100_40g(),
            storage: StorageConfig::IspCsd { count },
            storage_price_power: crate::catalog::smartssd_price_power(),
            extra_price_usd: 0.0,
        }
    }

    /// Total hardware price in USD (Fig. 16a's normalization basis).
    pub fn total_price_usd(&self) -> f64 {
        self.host.price_usd
            + self.gpu.price_usd
            + self.storage.device_count() as f64 * self.storage_price_power.price_usd
            + self.extra_price_usd
    }
}

/// Errors from system building.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SystemError {
    /// The storage configuration has no devices.
    NoStorageDevices,
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::NoStorageDevices => write!(f, "system needs at least one storage device"),
        }
    }
}

impl Error for SystemError {}

/// Per-device resources of a built system.
#[derive(Debug, Clone)]
pub struct DeviceResources {
    /// Topology node of the device.
    pub node: NodeId,
    /// SSD read/write channels.
    pub ssd: SsdInstance,
    /// On-board accelerator DRAM port, if the device has an FPGA.
    pub fpga_dram: Option<ResourceId>,
    /// Accelerator compute engine, if enabled (capacity = sustained
    /// FLOP/s of the configured kernel).
    pub accel: Option<ResourceId>,
    /// Internal P2P path from flash to the FPGA (one direction), if any.
    pub internal_path: Option<ResourceId>,
}

/// A [`SystemSpec`] materialized into a [`FlowEngine`].
#[derive(Debug)]
pub struct BuiltSystem {
    /// The simulation engine owning every resource.
    pub engine: FlowEngine,
    /// The spec this world was built from.
    pub spec: SystemSpec,
    /// Host DRAM port.
    pub host_dram: ResourceId,
    /// Host CPU compute engine.
    pub cpu: ResourceId,
    /// GPU compute engine.
    pub gpu: ResourceId,
    /// GPU HBM port.
    pub gpu_hbm: ResourceId,
    /// PCIe topology instance.
    pub topo: TopologyInstance,
    /// Host root-complex node.
    pub host_node: NodeId,
    /// GPU node.
    pub gpu_node: NodeId,
    /// Storage devices in index order.
    pub devices: Vec<DeviceResources>,
    /// Mutable SSD device states (counters), index-aligned with `devices`.
    pub ssd_states: Vec<SsdDevice>,
}

impl BuiltSystem {
    /// Builds the simulation world for `spec`.
    ///
    /// `accel_model` configures the near-storage accelerators (ignored if
    /// the storage has none); `head_dim` sets their sustained-throughput
    /// operating point.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::NoStorageDevices`] for an empty storage
    /// config.
    pub fn build(
        spec: &SystemSpec,
        accel_model: Option<&AccelTimingModel>,
        head_dim: u32,
    ) -> Result<BuiltSystem, SystemError> {
        BuiltSystem::build_with_degradations(spec, accel_model, head_dim, &[])
    }

    /// Like [`BuiltSystem::build`], but with straggler injection: each
    /// `(device_index, factor)` entry scales that device's read/write
    /// bandwidth (e.g. `(3, 0.5)` halves device 3). Out-of-range indices
    /// are ignored.
    pub fn build_with_degradations(
        spec: &SystemSpec,
        accel_model: Option<&AccelTimingModel>,
        head_dim: u32,
        degradations: &[(usize, f64)],
    ) -> Result<BuiltSystem, SystemError> {
        BuiltSystem::build_with_engine_impl(
            spec,
            accel_model,
            head_dim,
            degradations,
            FlowEngineImpl::default(),
        )
    }

    /// Like [`BuiltSystem::build_with_degradations`], but selecting the
    /// rate-sharing implementation of the underlying [`FlowEngine`]
    /// (exact progressive filling — the bit-reproducible default — or the
    /// O(log n) virtual-time engine for large-scale traces).
    pub fn build_with_engine_impl(
        spec: &SystemSpec,
        accel_model: Option<&AccelTimingModel>,
        head_dim: u32,
        degradations: &[(usize, f64)],
        flow_impl: FlowEngineImpl,
    ) -> Result<BuiltSystem, SystemError> {
        if spec.storage.device_count() == 0 {
            return Err(SystemError::NoStorageDevices);
        }
        let mut engine = FlowEngine::with_impl(flow_impl);

        let host_dram = engine.add_resource(ResourceSpec::new(
            "host:dram",
            ResourceKind::Memory,
            spec.host.dram_bw,
        ));
        let cpu = engine.add_resource(ResourceSpec::new(
            "host:cpu",
            ResourceKind::Compute,
            spec.host.cpu_flops,
        ));
        let gpu = engine.add_resource(ResourceSpec::new(
            format!("gpu:{}", spec.gpu.name),
            ResourceKind::Compute,
            spec.gpu.fp16_flops,
        ));
        let gpu_hbm = engine.add_resource(ResourceSpec::new(
            "gpu:hbm",
            ResourceKind::Memory,
            spec.gpu.hbm_bw,
        ));

        // PCIe topology.
        let mut topo = Topology::new("host");
        let gpu_node = topo.add_device("gpu", topo.root(), spec.gpu.link);
        let mut device_nodes = Vec::new();
        match &spec.storage {
            StorageConfig::ConventionalSsds { count, link, .. } => {
                for i in 0..*count {
                    device_nodes.push(topo.add_device(format!("ssd{i}"), topo.root(), *link));
                }
            }
            StorageConfig::SmartSsdChassis { count, .. } => {
                // One x16 uplink -> switch; x8 ports carry two devices each.
                let chassis =
                    topo.add_switch("chassis", topo.root(), LinkSpec::new(PcieGen::Gen4, 16));
                let ports = count.div_ceil(2);
                for p in 0..ports {
                    let port = topo.add_switch(
                        format!("port{p}"),
                        chassis,
                        LinkSpec::new(PcieGen::Gen4, 8),
                    );
                    for d in 0..2 {
                        let idx = p * 2 + d;
                        if idx < *count {
                            device_nodes.push(topo.add_device(
                                format!("smartssd{idx}"),
                                port,
                                LinkSpec::new(PcieGen::Gen3, 4),
                            ));
                        }
                    }
                }
            }
            StorageConfig::IspCsd { count } => {
                for i in 0..*count {
                    device_nodes.push(topo.add_device(
                        format!("isp{i}"),
                        topo.root(),
                        LinkSpec::new(PcieGen::Gen4, 4),
                    ));
                }
            }
        }
        let topo_inst = topo.instantiate(&mut engine);
        let host_node = topo.root();

        // Storage devices and their internals.
        let ssd_spec = spec.storage.ssd_spec();
        let with_accel = spec.storage.has_accelerators();
        let mut devices = Vec::new();
        let mut ssd_states = Vec::new();
        for (i, node) in device_nodes.iter().enumerate() {
            let mut dev_spec = ssd_spec.clone();
            for (idx, factor) in degradations {
                if *idx == i {
                    dev_spec = dev_spec.scaled(*factor);
                }
            }
            let ssd_dev = SsdDevice::new(dev_spec);
            let ssd = ssd_dev.instantiate(&mut engine);
            let (fpga_dram, accel, internal_path) = if with_accel {
                let dram = engine.add_resource(ResourceSpec::new(
                    format!("accel{i}:dram"),
                    ResourceKind::Memory,
                    match spec.storage {
                        StorageConfig::IspCsd { .. } => 68e9, // LPDDR5X (§7.1)
                        _ => 19.2e9,                          // DDR4-2400
                    },
                ));
                let model = accel_model.copied().unwrap_or_else(|| AccelTimingModel::smartssd(1));
                let flops = model.sustained_gflops(head_dim) * 1e9;
                let comp = engine.add_resource(ResourceSpec::new(
                    format!("accel{i}:compute"),
                    ResourceKind::Compute,
                    flops,
                ));
                let internal = engine.add_resource(ResourceSpec::new(
                    format!("accel{i}:p2p"),
                    ResourceKind::Link,
                    match spec.storage {
                        // §7.1: eight 2,000 MT/s flash channels, 16 GB/s.
                        StorageConfig::IspCsd { .. } => 16e9,
                        // SmartSSD internal PCIe 3.0 x4.
                        _ => LinkSpec::new(PcieGen::Gen3, 4).bandwidth(),
                    },
                ));
                (Some(dram), Some(comp), Some(internal))
            } else {
                (None, None, None)
            };
            devices.push(DeviceResources { node: *node, ssd, fpga_dram, accel, internal_path });
            ssd_states.push(ssd_dev);
        }

        Ok(BuiltSystem {
            engine,
            spec: spec.clone(),
            host_dram,
            cpu,
            gpu,
            gpu_hbm,
            topo: topo_inst,
            host_node,
            gpu_node,
            devices,
            ssd_states,
        })
    }

    /// Route (directed link resources) from a storage device to the host.
    pub fn device_to_host_route(&self, device: usize) -> Vec<ResourceId> {
        self.topo.route(self.devices[device].node, self.host_node).expect("route exists")
    }

    /// Route from the host to a storage device.
    pub fn host_to_device_route(&self, device: usize) -> Vec<ResourceId> {
        self.topo.route(self.host_node, self.devices[device].node).expect("route exists")
    }

    /// Route from a device directly to the GPU (GPUDirect Storage / P2P).
    pub fn device_to_gpu_route(&self, device: usize) -> Vec<ResourceId> {
        self.topo.route(self.devices[device].node, self.gpu_node).expect("route exists")
    }

    /// Route from the host to the GPU.
    pub fn host_to_gpu_route(&self) -> Vec<ResourceId> {
        self.topo.route(self.host_node, self.gpu_node).expect("route exists")
    }

    /// Route from the GPU to a device (e.g. scattering fresh Q/K/V).
    pub fn gpu_to_device_route(&self, device: usize) -> Vec<ResourceId> {
        self.topo.route(self.gpu_node, self.devices[device].node).expect("route exists")
    }

    /// A per-device KV shard ledger over this system's devices: capacity
    /// from each device's spec, placement weight from its sustained
    /// internal read bandwidth. Degraded (straggler) devices were built
    /// with scaled-down bandwidth, so the ledger automatically skews
    /// placement away from them — the stripe stays balanced in *time*
    /// rather than in bytes.
    pub fn kv_ledger(&self) -> KvShardLedger {
        KvShardLedger::new(
            self.ssd_states
                .iter()
                .map(|d| ShardSpec {
                    capacity_bytes: d.spec().capacity_bytes(),
                    weight: d.spec().seq_read_bw(),
                })
                .collect(),
        )
    }

    /// Aggregate *internal* storage read bandwidth available to the
    /// accelerators (B_SSD of the §4.2 α model).
    pub fn aggregate_internal_read_bw(&self) -> f64 {
        let per = self.spec.storage.ssd_spec().seq_read_bw();
        per * self.devices.len() as f64
    }

    /// Effective host-interconnect bandwidth for device→GPU X-cache reads
    /// (B_PCI of the §4.2 α model): bounded by the devices' host links and
    /// any shared uplink.
    pub fn effective_pci_bw(&self) -> f64 {
        let n = self.devices.len() as f64;
        match &self.spec.storage {
            StorageConfig::ConventionalSsds { link, .. } => {
                (link.bandwidth() * n).min(self.spec.gpu.link.bandwidth())
            }
            StorageConfig::SmartSsdChassis { .. } => {
                let per_dev = LinkSpec::new(PcieGen::Gen3, 4).bandwidth() * n;
                let uplink = LinkSpec::new(PcieGen::Gen4, 16).bandwidth();
                per_dev.min(uplink).min(self.spec.gpu.link.bandwidth())
            }
            StorageConfig::IspCsd { .. } => (LinkSpec::new(PcieGen::Gen4, 4).bandwidth() * n)
                .min(self.spec.gpu.link.bandwidth()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_smartssd_chassis() {
        let spec = SystemSpec::a100_smartssd(16);
        let sys = BuiltSystem::build(&spec, Some(&AccelTimingModel::smartssd(1)), 128).unwrap();
        assert_eq!(sys.devices.len(), 16);
        assert!(sys.devices.iter().all(|d| d.accel.is_some()));
        // Each device routes to the host through port + chassis uplinks.
        let route = sys.device_to_host_route(0);
        assert_eq!(route.len(), 3);
    }

    #[test]
    fn builds_conventional_array() {
        let spec = SystemSpec::a100_pm9a3(4);
        let sys = BuiltSystem::build(&spec, None, 128).unwrap();
        assert_eq!(sys.devices.len(), 4);
        assert!(sys.devices.iter().all(|d| d.accel.is_none()));
        // Dedicated root port: single-hop route.
        assert_eq!(sys.device_to_host_route(0).len(), 1);
    }

    #[test]
    fn chassis_without_fpga_has_no_accelerators() {
        let spec = SystemSpec::a100_chassis_no_fpga(16);
        let sys = BuiltSystem::build(&spec, None, 128).unwrap();
        assert!(sys.devices.iter().all(|d| d.accel.is_none()));
        assert!(!spec.storage.has_accelerators());
    }

    #[test]
    fn empty_storage_rejected() {
        let mut spec = SystemSpec::a100_pm9a3(4);
        spec.storage = StorageConfig::ConventionalSsds {
            count: 0,
            spec: SsdSpec::pm9a3(),
            link: LinkSpec::new(PcieGen::Gen4, 4),
        };
        assert_eq!(
            BuiltSystem::build(&spec, None, 128).unwrap_err(),
            SystemError::NoStorageDevices
        );
    }

    #[test]
    fn kv_ledger_skews_away_from_degraded_devices() {
        let spec = SystemSpec::a100_smartssd(4);
        let sys = BuiltSystem::build_with_degradations(
            &spec,
            Some(&AccelTimingModel::smartssd(1)),
            128,
            &[(1, 0.25)],
        )
        .unwrap();
        let mut ledger = sys.kv_ledger();
        assert_eq!(ledger.device_count(), 4);
        let placed = ledger.allocate(0, 1 << 30).unwrap();
        assert!(
            placed[1] * 3 < placed[0],
            "degraded device 1 should hold ~1/4 the healthy share: {placed:?}"
        );
        assert_eq!(placed.iter().sum::<u64>(), 1 << 30);
    }

    #[test]
    fn price_matches_fig16a_configuration() {
        // Baseline: $15k host + $7k A100 + 4 x $400 SSD = $23.6k.
        let flex = SystemSpec::a100_pm9a3(4);
        assert_eq!(flex.total_price_usd(), 23_600.0);
        // HILOS: + $10k chassis + 16 x $2,400 = $70.4k total.
        let hilos = SystemSpec::a100_smartssd(16);
        assert_eq!(hilos.total_price_usd(), 70_400.0);
    }

    #[test]
    fn alpha_model_bandwidth_ratio_near_3() {
        // §6.4: B_SSD / B_PCI ≈ 3 on the paper's 16-device testbed
        // (51.2 GB/s internal vs ~15.8 GB/s of Gen3 host links... bounded
        // by the uplink). Our model should land in the same regime.
        let sys = BuiltSystem::build(
            &SystemSpec::a100_smartssd(16),
            Some(&AccelTimingModel::smartssd(1)),
            128,
        )
        .unwrap();
        let ratio = sys.aggregate_internal_read_bw() / sys.effective_pci_bw();
        assert!((1.0..4.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn gds_route_bypasses_host_dram() {
        let sys = BuiltSystem::build(
            &SystemSpec::a100_smartssd(4),
            Some(&AccelTimingModel::smartssd(1)),
            128,
        )
        .unwrap();
        let route = sys.device_to_gpu_route(0);
        // device -> port -> chassis -> (root) -> gpu: 4 directed links.
        assert_eq!(route.len(), 4);
        assert!(!route.contains(&sys.host_dram));
    }

    #[test]
    fn isp_matches_four_smartssds_in_bandwidth() {
        // §7.1: one ISP-CSD ≈ four SmartSSDs in internal bandwidth.
        let isp =
            BuiltSystem::build(&SystemSpec::a100_isp(1), Some(&AccelTimingModel::smartssd(1)), 128)
                .unwrap();
        let four = BuiltSystem::build(
            &SystemSpec::a100_smartssd(4),
            Some(&AccelTimingModel::smartssd(1)),
            128,
        )
        .unwrap();
        let r_isp = isp.aggregate_internal_read_bw();
        let r_four = four.aggregate_internal_read_bw();
        assert!((r_isp / r_four - 1.25).abs() < 0.3, "isp={r_isp} four={r_four}");
    }
}
