//! # hilos-platform — device catalog and system builder
//!
//! Assembles the simulated machines of the paper's evaluation (Table 1):
//! host, GPU, conventional SSD arrays, SmartSSD expansion chassis and the
//! envisioned ISP-CSDs of §7.1, with the prices and power draws used by
//! the cost (Fig. 16a) and energy (Fig. 17a) analyses.
//!
//! [`BuiltSystem::build`] turns a [`SystemSpec`] into a single
//! [`hilos_sim::FlowEngine`] world: PCIe links from the Fig. 3 topologies,
//! DRAM/HBM ports, SSD channels and (optionally) near-storage accelerator
//! engines, plus the route helpers the HILOS and baseline schedulers use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod system;

pub use catalog::{
    expansion_chassis_price_usd, pm9a3_price_power, smartssd_price_power, GpuSpec, HostSpec,
    PowerSpec, StoragePricePower,
};
pub use system::{BuiltSystem, DeviceResources, StorageConfig, SystemError, SystemSpec};
