//! Virtual-time fair sharing: the O(log n) fast path.
//!
//! Under fair sharing, every job crossing a resource receives the same
//! share `capacity / n_active`, so the *order* in which jobs finish on a
//! resource is fixed the moment they are submitted: a job demanding `w`
//! units finishes exactly when the resource has delivered `w` units *per
//! active job* since the job entered. Tracking that cumulative per-job
//! service as a **virtual clock** `V_r` (advanced by `share · dt` on every
//! time advance) turns completion prediction into a single number computed
//! once at submit — virtual finish `V_r + w` — and the completion index
//! into a per-resource min-heap keyed by virtual finish. Submits,
//! completions and cancellations each cost O(log n); advancing time costs
//! O(resources) plus O(log n) per completion. No per-job rate rescans,
//! ever. This is the dslab `fair_fast_with_cancel` construction
//! (SNIPPETS.md §1; `/root/related/` is absent in this container).
//!
//! Jobs the uniform model cannot index this way — multi-resource routes
//! and rate-capped jobs, where the rate is `min(cap, min_r share_r)` and
//! changes whenever *any* route resource's population changes — are
//! handled as **custom** jobs: each keeps `(remaining, rate, anchor)` and
//! an absolute completion prediction that is re-anchored only when a route
//! resource's membership changes. With `k` such jobs sharing a resource, a
//! membership change costs O(k · log n); the serving workloads this engine
//! exists for are dominated by single-resource uncapped flows, where k is
//! tiny.
//!
//! # Divergence from the oracle
//!
//! The uniform share `capacity / n_active` is a *lower bound* on the exact
//! max-min rate (progressive filling can only redistribute unused
//! capacity, never take a job below its bottleneck share), so predictions
//! here are never optimistic: completion times are exact when every job on
//! a resource is uncapped and single-resource, and conservative (late by a
//! bounded amount) when caps or multi-resource routes leave capacity the
//! uniform model does not redistribute. The progressive-filling
//! [`crate::oracle`] engine remains the equivalence oracle; the
//! differential proptests in `tests/differential.rs` pin both regimes.

use crate::engine::{completion_eps, Completion, JobId};
use crate::error::SimError;
use crate::resource::{ResourceId, ResourceSpec, ResourceStats};
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Virtual-finish heap key with a total order (`f64::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct VKey(f64);

impl Eq for VKey {}

impl PartialOrd for VKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Tolerance (in work units) for deciding a virtual finish has been
/// reached: mirrors `completion_eps`, scaled to the magnitude of the
/// virtual clock so that accumulated summation drift never strands a job.
fn vtol(vfinish: f64, vt: f64) -> f64 {
    1e-9 + 1e-12 * vfinish.abs().max(vt.abs())
}

#[derive(Debug, Clone)]
enum JobKind {
    /// Single-resource, uncapped: fully described by its virtual finish on
    /// the resource's clock. Never re-predicted.
    Simple { vfinish: f64 },
    /// Multi-resource route and/or rate-capped: explicit rate, re-anchored
    /// whenever a route resource's membership changes.
    Custom {
        remaining: f64,
        rate: f64,
        /// Instant at which `remaining` was last materialized; progress
        /// since then is implicit (`rate · (now − anchor)`).
        anchor: SimTime,
        /// Absolute predicted completion under the current rate.
        pred: SimTime,
    },
}

#[derive(Debug, Clone)]
struct FairJob {
    seq: u64,
    demand: f64,
    route: Vec<ResourceId>,
    rate_cap: Option<f64>,
    kind: JobKind,
}

#[derive(Debug)]
struct FairResource {
    spec: ResourceSpec,
    stats: ResourceStats,
    /// Jobs crossing this resource (simple + custom).
    n_active: u32,
    /// Simple jobs riding this resource's virtual clock.
    n_simple: u32,
    /// Virtual clock: cumulative per-job service delivered, in work units.
    vt: f64,
    /// Min-heap of `(virtual finish, seq, slot)` for simple jobs. Entries
    /// are lazily invalidated on completion/cancel and compacted when
    /// stale entries outnumber live jobs 2:1.
    heap: BinaryHeap<Reverse<(VKey, u64, u32)>>,
    /// Slots of custom jobs crossing this resource.
    custom_members: Vec<u32>,
    /// Sum of current custom rates on this resource (for stats).
    custom_rate_sum: f64,
}

impl FairResource {
    fn share(&self) -> f64 {
        debug_assert!(self.n_active > 0);
        self.spec.capacity() / self.n_active as f64
    }
}

fn simple_valid(jobs: &[Option<FairJob>], slot: u32, seq: u64, vf: f64) -> bool {
    matches!(
        jobs.get(slot as usize).and_then(Option::as_ref),
        Some(j) if j.seq == seq
            && matches!(j.kind, JobKind::Simple { vfinish } if vfinish.to_bits() == vf.to_bits())
    )
}

fn custom_valid(jobs: &[Option<FairJob>], slot: u32, seq: u64, at: SimTime) -> bool {
    matches!(
        jobs.get(slot as usize).and_then(Option::as_ref),
        Some(j) if j.seq == seq && matches!(j.kind, JobKind::Custom { pred, .. } if pred == at)
    )
}

/// Virtual-time fair-sharing engine (the fast path).
#[derive(Debug, Default)]
pub(crate) struct FairEngine {
    resources: Vec<FairResource>,
    jobs: Vec<Option<FairJob>>,
    free_slots: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    active_jobs: usize,
    custom_count: usize,
    /// Min-heap of `(predicted completion, seq, slot)` for custom jobs,
    /// lazily invalidated like the per-resource simple heaps.
    custom_heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
}

impl FairEngine {
    pub(crate) fn new() -> Self {
        FairEngine::default()
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn active_jobs(&self) -> usize {
        self.active_jobs
    }

    pub(crate) fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(FairResource {
            spec,
            stats: ResourceStats::default(),
            n_active: 0,
            n_simple: 0,
            vt: 0.0,
            heap: BinaryHeap::new(),
            custom_members: Vec::new(),
            custom_rate_sum: 0.0,
        });
        id
    }

    pub(crate) fn resource_count(&self) -> usize {
        self.resources.len()
    }

    pub(crate) fn resource(&self, id: ResourceId) -> &ResourceSpec {
        &self.resources[id.index()].spec
    }

    pub(crate) fn stats(&self, id: ResourceId) -> ResourceStats {
        self.resources[id.index()].stats
    }

    pub(crate) fn stats_snapshot(&self) -> Vec<ResourceStats> {
        self.resources.iter().map(|r| r.stats).collect()
    }

    pub(crate) fn completion_index_len(&self) -> usize {
        self.resources.iter().map(|r| r.heap.len()).sum::<usize>() + self.custom_heap.len()
    }

    pub(crate) fn submit(
        &mut self,
        route: &[ResourceId],
        amount: f64,
        rate_cap: Option<f64>,
    ) -> Result<JobId, SimError> {
        if route.is_empty() {
            return Err(SimError::EmptyRoute);
        }
        for r in route {
            if r.index() >= self.resources.len() {
                return Err(SimError::UnknownResource(r.index()));
            }
        }
        if !amount.is_finite() || amount < 0.0 {
            return Err(SimError::InvalidAmount(amount));
        }
        if let Some(cap) = rate_cap {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(SimError::InvalidAmount(cap));
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.jobs.push(None);
                (self.jobs.len() - 1) as u32
            }
        };
        let simple = route.len() == 1 && rate_cap.is_none();
        for r in route {
            let res = &mut self.resources[r.index()];
            res.n_active += 1;
            if simple {
                res.n_simple += 1;
            } else {
                res.custom_members.push(slot);
            }
        }
        let kind = if simple {
            let res = &mut self.resources[route[0].index()];
            let vfinish = res.vt + amount;
            res.heap.push(Reverse((VKey(vfinish), seq, slot)));
            JobKind::Simple { vfinish }
        } else {
            let mut rate = rate_cap.unwrap_or(f64::INFINITY);
            for r in route {
                rate = rate.min(self.resources[r.index()].share());
            }
            let pred = if amount <= completion_eps(amount) {
                self.now
            } else {
                self.now + SimTime::from_secs_f64_ceil(amount / rate)
            };
            for r in route {
                self.resources[r.index()].custom_rate_sum += rate;
            }
            self.custom_heap.push(Reverse((pred, seq, slot)));
            self.custom_count += 1;
            JobKind::Custom { remaining: amount, rate, anchor: self.now, pred }
        };
        self.jobs[slot as usize] =
            Some(FairJob { seq, demand: amount, route: route.to_vec(), rate_cap, kind });
        self.active_jobs += 1;
        // The new member shrinks the share on every route resource; custom
        // jobs crossing those resources must re-anchor. (The new job itself
        // is skipped: its rate already reflects the post-submit shares.)
        self.reanchor_customs_on(route, Some(slot));
        Ok(JobId { slot, seq })
    }

    /// Removes a job before it completes, returning its remaining demand.
    /// Returns `None` if the job is not active. Freed share redistributes
    /// immediately: the route resources' virtual clocks accelerate and
    /// custom jobs crossing them re-anchor.
    pub(crate) fn cancel(&mut self, id: JobId) -> Option<f64> {
        let found = matches!(
            self.jobs.get(id.slot as usize)?,
            Some(j) if j.seq == id.seq
        );
        if !found {
            return None;
        }
        let job = self.jobs[id.slot as usize].take().unwrap();
        let remaining = match &job.kind {
            JobKind::Simple { vfinish } => {
                let vt = self.resources[job.route[0].index()].vt;
                (vfinish - vt).max(0.0)
            }
            JobKind::Custom { remaining, rate, anchor, .. } => {
                let dt = (self.now - *anchor).as_secs_f64();
                (remaining - rate * dt).max(0.0)
            }
        };
        self.remove_membership(&job, id.slot);
        if matches!(job.kind, JobKind::Custom { .. }) {
            self.custom_count -= 1;
        }
        self.free_slots.push(id.slot);
        self.active_jobs -= 1;
        self.reanchor_customs_on(&job.route, None);
        Some(remaining)
    }

    /// Decrements membership counters and rate sums for a departing job.
    /// The job's heap entries are left behind as lazily-discarded stale
    /// entries.
    fn remove_membership(&mut self, job: &FairJob, slot: u32) {
        match &job.kind {
            JobKind::Simple { .. } => {
                let res = &mut self.resources[job.route[0].index()];
                res.n_active -= 1;
                res.n_simple -= 1;
            }
            JobKind::Custom { rate, .. } => {
                for r in &job.route {
                    let res = &mut self.resources[r.index()];
                    res.n_active -= 1;
                    res.custom_rate_sum -= rate;
                    if let Some(pos) = res.custom_members.iter().position(|&s| s == slot) {
                        res.custom_members.swap_remove(pos);
                    }
                }
            }
        }
    }

    /// Re-anchors every custom job crossing any of `rs` (each at most
    /// once), except `skip`. Jobs whose rate is bit-unchanged keep their
    /// anchor and prediction — progress is linear, so the absolute
    /// prediction stays exact and no stale heap entry is created.
    fn reanchor_customs_on(&mut self, rs: &[ResourceId], skip: Option<u32>) {
        if self.custom_count == 0 {
            return;
        }
        let mut slots: Vec<u32> = Vec::new();
        for r in rs {
            slots.extend_from_slice(&self.resources[r.index()].custom_members);
        }
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            if Some(slot) != skip {
                self.reanchor(slot);
            }
        }
    }

    fn reanchor(&mut self, slot: u32) {
        let Some(job) = self.jobs.get(slot as usize).and_then(Option::as_ref) else {
            return;
        };
        let JobKind::Custom { rate: old_rate, .. } = job.kind else {
            return;
        };
        let mut new_rate = job.rate_cap.unwrap_or(f64::INFINITY);
        for r in &job.route {
            new_rate = new_rate.min(self.resources[r.index()].share());
        }
        if new_rate.to_bits() == old_rate.to_bits() {
            return;
        }
        let now = self.now;
        let route = job.route.clone();
        let (seq, demand) = (job.seq, job.demand);
        let job = self.jobs[slot as usize].as_mut().unwrap();
        let JobKind::Custom { remaining, rate, anchor, pred } = &mut job.kind else {
            unreachable!("checked above");
        };
        let dt = (now - *anchor).as_secs_f64();
        if dt > 0.0 {
            *remaining = (*remaining - *rate * dt).max(0.0);
        }
        *anchor = now;
        *rate = new_rate;
        let p = if *remaining <= completion_eps(demand) {
            now
        } else {
            now + SimTime::from_secs_f64_ceil(*remaining / new_rate)
        };
        *pred = p;
        for r in &route {
            self.resources[r.index()].custom_rate_sum += new_rate - old_rate;
        }
        self.custom_heap.push(Reverse((p, seq, slot)));
    }

    /// Compacts any completion heap whose stale entries outnumber live
    /// jobs 2:1 (same policy as the oracle's `pred_heap`).
    fn maybe_compact(&mut self) {
        for ri in 0..self.resources.len() {
            if self.resources[ri].heap.len() > 2 * self.resources[ri].n_simple as usize + 64 {
                let mut entries = std::mem::take(&mut self.resources[ri].heap).into_vec();
                entries.retain(|&Reverse((VKey(vf), seq, slot))| {
                    simple_valid(&self.jobs, slot, seq, vf)
                });
                self.resources[ri].heap = BinaryHeap::from(entries);
            }
        }
        if self.custom_heap.len() > 2 * self.custom_count + 64 {
            let mut entries = std::mem::take(&mut self.custom_heap).into_vec();
            entries.retain(|&Reverse((at, seq, slot))| custom_valid(&self.jobs, slot, seq, at));
            self.custom_heap = BinaryHeap::from(entries);
        }
    }

    pub(crate) fn next_completion_time(&mut self) -> Option<SimTime> {
        if self.active_jobs == 0 {
            return None;
        }
        self.maybe_compact();
        let mut best: Option<SimTime> = None;
        for ri in 0..self.resources.len() {
            while let Some(&Reverse((VKey(vf), seq, slot))) = self.resources[ri].heap.peek() {
                if !simple_valid(&self.jobs, slot, seq, vf) {
                    self.resources[ri].heap.pop();
                    continue;
                }
                let res = &self.resources[ri];
                let gap = vf - res.vt;
                let t = if gap <= vtol(vf, res.vt) {
                    self.now
                } else {
                    self.now + SimTime::from_secs_f64_ceil(gap / res.share())
                };
                best = Some(best.map_or(t, |b| b.min(t)));
                break;
            }
        }
        while let Some(&Reverse((at, seq, slot))) = self.custom_heap.peek() {
            if !custom_valid(&self.jobs, slot, seq, at) {
                self.custom_heap.pop();
                continue;
            }
            let t = at.max(self.now);
            best = Some(best.map_or(t, |b| b.min(t)));
            break;
        }
        best
    }

    /// O(n) reference: predicts every active job directly. Kept for the
    /// crossover benchmark and equivalence tests, mirroring the oracle's
    /// `next_completion_time_scan`.
    pub(crate) fn next_completion_time_scan(&mut self) -> Option<SimTime> {
        if self.active_jobs == 0 {
            return None;
        }
        let mut best: Option<SimTime> = None;
        for j in self.jobs.iter().flatten() {
            let t = match &j.kind {
                JobKind::Simple { vfinish } => {
                    let res = &self.resources[j.route[0].index()];
                    let gap = vfinish - res.vt;
                    if gap <= vtol(*vfinish, res.vt) {
                        self.now
                    } else {
                        self.now + SimTime::from_secs_f64_ceil(gap / res.share())
                    }
                }
                JobKind::Custom { pred, .. } => (*pred).max(self.now),
            };
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        best
    }

    pub(crate) fn advance_to(&mut self, t: SimTime) -> Result<Vec<Completion>, SimError> {
        if t < self.now {
            return Err(SimError::TimeReversal { now: self.now, requested: t });
        }
        let dt = (t - self.now).as_secs_f64();

        // Advance virtual clocks and accumulate statistics. Membership is
        // constant over the window: submits and cancels happen at `now`,
        // completions are materialized at `t` below.
        if dt > 0.0 {
            for res in &mut self.resources {
                let cap = res.spec.capacity();
                let mut alloc = res.custom_rate_sum.max(0.0);
                if res.n_active > 0 {
                    let share = cap / res.n_active as f64;
                    alloc += res.n_simple as f64 * share;
                    res.vt += share * dt;
                }
                let rate = alloc.min(cap);
                res.stats.units_served += rate * dt;
                res.stats.busy_seconds += (rate / cap) * dt;
                res.stats.observed_seconds += dt;
            }
        }
        self.now = t;

        // Pop every job whose virtual finish (or absolute prediction) has
        // been reached.
        let mut done: Vec<(u64, JobId)> = Vec::new();
        for ri in 0..self.resources.len() {
            while let Some(&Reverse((VKey(vf), seq, slot))) = self.resources[ri].heap.peek() {
                if !simple_valid(&self.jobs, slot, seq, vf) {
                    self.resources[ri].heap.pop();
                    continue;
                }
                let vt = self.resources[ri].vt;
                if vf <= vt + vtol(vf, vt) {
                    self.resources[ri].heap.pop();
                    done.push((seq, JobId { slot, seq }));
                } else {
                    break;
                }
            }
        }
        while let Some(&Reverse((at, seq, slot))) = self.custom_heap.peek() {
            if !custom_valid(&self.jobs, slot, seq, at) {
                self.custom_heap.pop();
                continue;
            }
            if at <= t {
                self.custom_heap.pop();
                done.push((seq, JobId { slot, seq }));
            } else {
                break;
            }
        }
        done.sort_by_key(|(seq, _)| *seq);
        // A custom job whose rate changed back and forth can have two
        // *valid* heap entries with identical predictions; keep one.
        done.dedup_by_key(|(seq, _)| *seq);

        let mut completions = Vec::with_capacity(done.len());
        let mut changed: Vec<ResourceId> = Vec::new();
        for (_, id) in done {
            let job = self.jobs[id.slot as usize].take().expect("validated above");
            self.remove_membership(&job, id.slot);
            if matches!(job.kind, JobKind::Custom { .. }) {
                self.custom_count -= 1;
            }
            changed.extend_from_slice(&job.route);
            self.free_slots.push(id.slot);
            self.active_jobs -= 1;
            completions.push(Completion { job: id, at: t });
        }
        if !completions.is_empty() {
            changed.sort_unstable();
            changed.dedup();
            self.reanchor_customs_on(&changed, None);
        }
        Ok(completions)
    }

    pub(crate) fn run_to_idle(&mut self) -> Result<SimTime, SimError> {
        while self.active_jobs > 0 {
            // Shares are always strictly positive, so every active job has
            // a valid prediction: `Stalled` is unreachable here.
            let t = self.next_completion_time().ok_or(SimError::Stalled)?;
            self.advance_to(t)?;
        }
        Ok(self.now)
    }

    pub(crate) fn job_rate(&mut self, id: JobId) -> Option<f64> {
        match self.jobs.get(id.slot as usize)? {
            Some(j) if j.seq == id.seq => Some(match &j.kind {
                JobKind::Simple { .. } => self.resources[j.route[0].index()].share(),
                JobKind::Custom { rate, .. } => *rate,
            }),
            _ => None,
        }
    }

    pub(crate) fn job_remaining(&self, id: JobId) -> Option<f64> {
        match self.jobs.get(id.slot as usize)? {
            Some(j) if j.seq == id.seq => Some(match &j.kind {
                JobKind::Simple { vfinish } => {
                    (vfinish - self.resources[j.route[0].index()].vt).max(0.0)
                }
                JobKind::Custom { remaining, rate, anchor, .. } => {
                    let dt = (self.now - *anchor).as_secs_f64();
                    (remaining - rate * dt).max(0.0)
                }
            }),
            _ => None,
        }
    }
}
