//! Task-graph execution on the flow engine.
//!
//! [`execute`] runs a [`TaskGraph`] to completion on a [`FlowEngine`],
//! honoring dependencies, and returns a [`Timeline`] with per-task spans,
//! the foreground makespan and per-resource statistics for the window.

use crate::engine::{FlowEngine, JobId};
use crate::error::SimError;
use crate::resource::{ResourceId, ResourceStats};
use crate::task::{TaskGraph, TaskId, TaskKind};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Start and end instant of one executed task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// When the task started (all dependencies satisfied).
    pub start: SimTime,
    /// When the task completed.
    pub end: SimTime,
}

impl TaskSpan {
    /// Duration of the span in seconds.
    pub fn seconds(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

/// Result of executing a [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct Timeline {
    spans: Vec<Option<TaskSpan>>,
    started_at: SimTime,
    foreground_end: SimTime,
    finished_at: SimTime,
    resource_delta: Vec<ResourceStats>,
}

impl Timeline {
    /// The instant execution began.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// The instant the last *foreground* task finished.
    pub fn foreground_end(&self) -> SimTime {
        self.foreground_end
    }

    /// The instant the last task (including background) finished.
    pub fn finished_at(&self) -> SimTime {
        self.finished_at
    }

    /// Foreground makespan: time from start to the last foreground
    /// completion. Background tasks (e.g. delayed KV-cache spills) contend
    /// for bandwidth but do not extend this value.
    pub fn makespan(&self) -> SimTime {
        self.foreground_end - self.started_at
    }

    /// Makespan including background tasks.
    pub fn total_duration(&self) -> SimTime {
        self.finished_at - self.started_at
    }

    /// The span of a task, if it executed.
    pub fn span(&self, id: TaskId) -> Option<TaskSpan> {
        self.spans.get(id.index()).copied().flatten()
    }

    /// Sums task durations by label category (prefix before `':'`).
    ///
    /// Because tasks overlap, the sum across categories generally exceeds
    /// the makespan; use the result for *relative* breakdowns as the paper
    /// does in Figs. 2b, 4b and 11b.
    pub fn category_seconds(&self, graph: &TaskGraph) -> Vec<(String, f64)> {
        let mut acc: HashMap<&str, f64> = HashMap::new();
        for (id, task) in graph.iter() {
            if let Some(span) = self.span(id) {
                *acc.entry(task.category()).or_insert(0.0) += span.seconds();
            }
        }
        let mut v: Vec<(String, f64)> = acc.into_iter().map(|(k, s)| (k.to_string(), s)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Per-resource statistics accumulated over this execution window.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the engine the graph ran on.
    pub fn resource_stats(&self, id: ResourceId) -> ResourceStats {
        self.resource_delta[id.index()]
    }

    /// Utilization of a resource over the execution window, in `[0, 1]`.
    pub fn utilization(&self, id: ResourceId) -> f64 {
        self.resource_stats(id).utilization()
    }
}

/// Executes `graph` on `engine`, starting at the engine's current time.
///
/// # Errors
///
/// * [`SimError::UnknownTask`] if a dependency index is out of range.
/// * [`SimError::DependencyCycle`] if the graph is not a DAG.
/// * Any engine error surfaced while submitting or advancing.
pub fn execute(engine: &mut FlowEngine, graph: &TaskGraph) -> Result<Timeline, SimError> {
    let n = graph.len();
    let started_at = engine.now();
    let stats_before = engine.stats_snapshot();

    // Build dependency counts and successor lists.
    let mut indegree: Vec<u32> = vec![0; n];
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, task) in graph.iter() {
        for d in task.deps() {
            if d.index() >= n {
                return Err(SimError::UnknownTask(d.index()));
            }
            indegree[id.index()] += 1;
            successors[d.index()].push(id.0);
        }
    }

    let mut spans: Vec<Option<TaskSpan>> = vec![None; n];
    let mut starts: Vec<Option<SimTime>> = vec![None; n];
    let mut completed = 0usize;
    let mut foreground_end = started_at;
    let mut finished_at = started_at;

    let mut job_to_task: HashMap<JobId, u32> = HashMap::new();
    // (wake time, insertion order, task) — min-heap via Reverse.
    let mut wakeups: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
    let mut wake_seq = 0u64;

    // Stack of tasks ready to start at `now`.
    let mut ready: Vec<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
    // Preserve submission order for determinism.
    ready.reverse();

    // Completes `task` at `now`, unlocking successors onto `ready`.
    macro_rules! complete {
        ($task:expr, $now:expr, $ready:expr) => {{
            let t: u32 = $task;
            let now: SimTime = $now;
            let start = starts[t as usize].unwrap_or(now);
            spans[t as usize] = Some(TaskSpan { start, end: now });
            completed += 1;
            finished_at = finished_at.max(now);
            if !graph.task(TaskId(t)).is_background() {
                foreground_end = foreground_end.max(now);
            }
            for &s in &successors[t as usize] {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    $ready.push(s);
                }
            }
        }};
    }

    loop {
        // Start every ready task at the current time; milestones and
        // zero-work tasks complete (and cascade) immediately.
        while let Some(t) = ready.pop() {
            let now = engine.now();
            starts[t as usize] = Some(now);
            match graph.task(TaskId(t)).kind() {
                TaskKind::Milestone => complete!(t, now, ready),
                TaskKind::Delay { duration } => {
                    if duration.is_zero() {
                        complete!(t, now, ready);
                    } else {
                        wakeups.push(Reverse((now + *duration, wake_seq, t)));
                        wake_seq += 1;
                    }
                }
                TaskKind::Transfer { bytes, route, rate_cap } => {
                    if *bytes <= 0.0 {
                        complete!(t, now, ready);
                    } else {
                        let job = engine.submit(route, *bytes, *rate_cap)?;
                        job_to_task.insert(job, t);
                    }
                }
                TaskKind::Compute { ops, resource } => {
                    if *ops <= 0.0 {
                        complete!(t, now, ready);
                    } else {
                        let job = engine.submit(&[*resource], *ops, None)?;
                        job_to_task.insert(job, t);
                    }
                }
            }
        }

        if completed == n {
            break;
        }

        // Decide the next event time.
        let flow_next = engine.next_completion_time();
        let wake_next = wakeups.peek().map(|Reverse((t, _, _))| *t);
        let next = match (flow_next, wake_next) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                let stuck: Vec<usize> = (0..n).filter(|&i| spans[i].is_none()).collect();
                return Err(SimError::DependencyCycle(stuck));
            }
        };

        // Advance flows; collect flow completions at `next`.
        for c in engine.advance_to(next)? {
            if let Some(t) = job_to_task.remove(&c.job) {
                complete!(t, next, ready);
            }
        }
        // Fire due wakeups.
        while let Some(Reverse((t, _, _))) = wakeups.peek() {
            if *t > next {
                break;
            }
            let Reverse((_, _, task)) = wakeups.pop().unwrap();
            complete!(task, next, ready);
        }
    }

    // Resource deltas over the window.
    let stats_after = engine.stats_snapshot();
    let resource_delta =
        stats_after.iter().zip(stats_before.iter()).map(|(a, b)| a.since(b)).collect();

    Ok(Timeline { spans, started_at, foreground_end, finished_at, resource_delta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{ResourceKind, ResourceSpec};

    fn engine_with(bw: &[f64]) -> (FlowEngine, Vec<ResourceId>) {
        let mut eng = FlowEngine::new();
        let ids = bw
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                eng.add_resource(ResourceSpec::new(format!("r{i}"), ResourceKind::Link, b))
            })
            .collect();
        (eng, ids)
    }

    #[test]
    fn sequential_chain_sums_durations() {
        let (mut eng, r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        let a = g.transfer("a", 1e9, vec![r[0]], &[]);
        let b = g.transfer("b", 2e9, vec![r[0]], &[a]);
        g.delay("c", SimTime::from_secs(1), &[b]);
        let tl = execute(&mut eng, &g).unwrap();
        assert_eq!(tl.makespan(), SimTime::from_secs(4));
        assert_eq!(tl.span(a).unwrap().end, SimTime::from_secs(1));
        assert_eq!(tl.span(b).unwrap().start, SimTime::from_secs(1));
    }

    #[test]
    fn parallel_tasks_share_bandwidth() {
        let (mut eng, r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        g.transfer("a", 1e9, vec![r[0]], &[]);
        g.transfer("b", 1e9, vec![r[0]], &[]);
        let tl = execute(&mut eng, &g).unwrap();
        assert_eq!(tl.makespan(), SimTime::from_secs(2));
    }

    #[test]
    fn independent_resources_overlap() {
        let (mut eng, r) = engine_with(&[1e9, 1e9]);
        let mut g = TaskGraph::new();
        g.transfer("a", 1e9, vec![r[0]], &[]);
        g.transfer("b", 1e9, vec![r[1]], &[]);
        let tl = execute(&mut eng, &g).unwrap();
        assert_eq!(tl.makespan(), SimTime::from_secs(1));
    }

    #[test]
    fn milestones_cascade_instantly() {
        let (mut eng, _r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        let a = g.milestone("a", &[]);
        let b = g.milestone("b", &[a]);
        let c = g.milestone("c", &[b]);
        let tl = execute(&mut eng, &g).unwrap();
        assert_eq!(tl.makespan(), SimTime::ZERO);
        assert_eq!(tl.span(c).unwrap().end, SimTime::ZERO);
    }

    #[test]
    fn background_excluded_from_makespan() {
        let (mut eng, r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        g.transfer("fg", 1e9, vec![r[0]], &[]);
        let spill = g.transfer("spill", 3e9, vec![r[0]], &[]);
        g.set_background(spill);
        let tl = execute(&mut eng, &g).unwrap();
        // Foreground shares the link while the spill runs: fg finishes at 2s.
        assert_eq!(tl.makespan(), SimTime::from_secs(2));
        assert_eq!(tl.total_duration(), SimTime::from_secs(4));
    }

    #[test]
    fn diamond_dependencies() {
        let (mut eng, r) = engine_with(&[1e9, 1e9]);
        let mut g = TaskGraph::new();
        let src = g.delay("src", SimTime::from_secs(1), &[]);
        let l = g.transfer("left", 1e9, vec![r[0]], &[src]);
        let rt = g.transfer("right", 2e9, vec![r[1]], &[src]);
        let sink = g.milestone("sink", &[l, rt]);
        let tl = execute(&mut eng, &g).unwrap();
        assert_eq!(tl.span(sink).unwrap().end, SimTime::from_secs(3));
    }

    #[test]
    fn cycle_detected() {
        let (mut eng, _r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        let a = g.milestone("a", &[]);
        let b = g.milestone("b", &[a]);
        g.add_deps(a, &[b]);
        match execute(&mut eng, &g) {
            Err(SimError::DependencyCycle(ids)) => assert_eq!(ids, vec![0, 1]),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_dependency_rejected() {
        let (mut eng, _r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        let a = g.milestone("a", &[]);
        // Manually corrupt: dependency on a non-existent task id.
        g.add_deps(a, &[]);
        let mut g2 = TaskGraph::new();
        g2.milestone("x", &[TaskId(5)]);
        assert!(matches!(execute(&mut eng, &g2), Err(SimError::UnknownTask(5))));
    }

    #[test]
    fn zero_work_tasks_complete_instantly() {
        let (mut eng, r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        let a = g.transfer("a", 0.0, vec![r[0]], &[]);
        let b = g.compute("b", 0.0, r[0], &[a]);
        let tl = execute(&mut eng, &g).unwrap();
        assert_eq!(tl.span(b).unwrap().end, SimTime::ZERO);
    }

    #[test]
    fn category_seconds_aggregates_prefixes() {
        let (mut eng, r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        let a = g.transfer("loadw:0", 1e9, vec![r[0]], &[]);
        g.transfer("loadw:1", 1e9, vec![r[0]], &[a]);
        g.delay("compute:0", SimTime::from_secs(1), &[]);
        let tl = execute(&mut eng, &g).unwrap();
        let cats = tl.category_seconds(&g);
        let loadw = cats.iter().find(|(c, _)| c == "loadw").unwrap().1;
        let comp = cats.iter().find(|(c, _)| c == "compute").unwrap().1;
        assert!((loadw - 2.0).abs() < 1e-9);
        assert!((comp - 1.0).abs() < 1e-9);
    }

    #[test]
    fn successive_graphs_on_one_engine_accumulate_time() {
        let (mut eng, r) = engine_with(&[1e9]);
        let mut g = TaskGraph::new();
        g.transfer("a", 1e9, vec![r[0]], &[]);
        let t1 = execute(&mut eng, &g).unwrap();
        let t2 = execute(&mut eng, &g).unwrap();
        assert_eq!(t1.started_at(), SimTime::ZERO);
        assert_eq!(t2.started_at(), SimTime::from_secs(1));
        assert_eq!(t2.finished_at(), SimTime::from_secs(2));
        // Window stats are deltas, not cumulative.
        assert!((t2.resource_stats(r[0]).units_served - 1e9).abs() < 1e3);
    }

    #[test]
    fn utilization_reported_per_window() {
        let (mut eng, r) = engine_with(&[2e9]);
        let mut g = TaskGraph::new();
        let a = g.transfer("a", 1e9, vec![r[0]], &[]);
        g.delay("wait", SimTime::from_millis(500), &[a]);
        let tl = execute(&mut eng, &g).unwrap();
        // Busy 0.5s of a 1.0s window.
        assert!((tl.utilization(r[0]) - 0.5).abs() < 1e-9);
    }
}
