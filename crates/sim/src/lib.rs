//! # hilos-sim — deterministic flow-level discrete-event simulator
//!
//! This crate is the hardware substrate of the HILOS reproduction. Every
//! device in the modeled systems — PCIe links, DRAM and HBM ports, SSD read
//! and write channels, GPU/CPU/FPGA compute engines — is a *resource* with a
//! capacity in units/second. Work items (*jobs*) demand an amount of units
//! across a *route* of resources they occupy simultaneously; concurrent jobs
//! share capacity by **max-min fairness** (progressive filling with optional
//! per-job rate caps), the classical flow-level model of bandwidth sharing.
//!
//! On top of the engine sits a [`TaskGraph`] layer: DAGs of transfers,
//! computes, fixed delays and milestones, with *background* tasks that
//! contend for bandwidth without extending the foreground makespan (used
//! for the paper's delayed KV-cache writeback). [`execute`] runs a graph
//! and returns a [`Timeline`] with per-task spans and per-resource
//! utilization — the raw material of the paper's breakdown and energy
//! figures.
//!
//! The simulation is single-threaded and bit-deterministic: time is integer
//! picoseconds and event ordering is tied to submission order.
//!
//! # Example
//!
//! Model a GPU loading weights over PCIe while a background spill contends
//! for the same link:
//!
//! ```
//! use hilos_sim::{execute, FlowEngine, ResourceKind, ResourceSpec, SimTime, TaskGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut eng = FlowEngine::new();
//! let pcie = eng.add_resource(ResourceSpec::new("pcie", ResourceKind::Link, 31.5e9));
//! let gpu = eng.add_resource(ResourceSpec::new("gpu", ResourceKind::Compute, 100e12));
//!
//! let mut g = TaskGraph::new();
//! let w = g.transfer("loadw:attn", 3.6e9, vec![pcie], &[]);
//! g.compute("qkv:proj", 14.5e9, gpu, &[w]);
//! let spill = g.transfer("spill:kv", 1.0e9, vec![pcie], &[]);
//! g.set_background(spill);
//!
//! let timeline = execute(&mut eng, &g)?;
//! assert!(timeline.makespan() > SimTime::ZERO);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod executor;
mod resource;
mod task;
mod time;
mod trace;

pub use engine::{Completion, FlowEngine, JobId};
pub use error::SimError;
pub use executor::{execute, TaskSpan, Timeline};
pub use resource::{ResourceId, ResourceKind, ResourceSpec, ResourceStats};
pub use task::{Task, TaskGraph, TaskId, TaskKind};
pub use time::{SimTime, PS_PER_SEC};
pub use trace::{critical_path, gantt, GanttLane};
