//! # hilos-sim — deterministic flow-level discrete-event simulator
//!
//! This crate is the hardware substrate of the HILOS reproduction. Every
//! device in the modeled systems — PCIe links, DRAM and HBM ports, SSD read
//! and write channels, GPU/CPU/FPGA compute engines — is a *resource* with a
//! capacity in units/second. Work items (*jobs*) demand an amount of units
//! across a *route* of resources they occupy simultaneously; concurrent jobs
//! share capacity by **max-min fairness** (progressive filling with optional
//! per-job rate caps), the classical flow-level model of bandwidth sharing.
//!
//! # Two engines, one contract
//!
//! [`FlowEngine`] hides two interchangeable implementations behind the
//! [`FlowEngineImpl`] selector:
//!
//! * **Progressive filling** (default): exact max-min rates, recomputed
//!   over all jobs × resources whenever the active set changes. This is
//!   O(jobs × resources) per submit/complete/cancel — fine for thousands
//!   of concurrent flows, a wall at millions. It is bit-reproducible and
//!   serves as the *equivalence oracle*: every golden FNV pin in the
//!   serving and cluster layers is taken under it.
//! * **Virtual time**: the dslab-style `fair_fast_with_cancel`
//!   construction. The key observation is that under fair sharing the
//!   completion *order* of jobs on a resource is invariant — each job gets
//!   the same share `capacity / n`, so whoever needs the least service
//!   finishes first, no matter how `n` changes later. A per-resource
//!   *virtual clock* (cumulative per-job service, advanced by
//!   `share · dt`) therefore lets each job's completion be characterised
//!   *once at submit* by its virtual finish `V + demand`; the completion
//!   index is a min-heap on that number, and submit/complete/cancel are
//!   O(log n) with no per-job rate rescans. Multi-resource routes and
//!   rate-capped jobs fall outside the uniform model and are carried
//!   explicitly with re-anchored predictions; their completion times are
//!   conservative (never earlier than the oracle's). The module docs of
//!   `src/fair.rs` and the differential proptests in
//!   `tests/differential.rs` spell out the exact guarantees.
//!
//! The oracle is the right choice when bit-stable baselines matter
//! (golden-pinned regression runs); virtual time is the right choice when
//! trace scale matters (the 1M-request serving benchmark in
//! `bench_serving` runs under it).
//!
//! On top of the engine sits a [`TaskGraph`] layer: DAGs of transfers,
//! computes, fixed delays and milestones, with *background* tasks that
//! contend for bandwidth without extending the foreground makespan (used
//! for the paper's delayed KV-cache writeback). [`execute`] runs a graph
//! and returns a [`Timeline`] with per-task spans and per-resource
//! utilization — the raw material of the paper's breakdown and energy
//! figures.
//!
//! The simulation is single-threaded and bit-deterministic: time is integer
//! picoseconds and event ordering is tied to submission order.
//!
//! # Example
//!
//! Model a GPU loading weights over PCIe while a background spill contends
//! for the same link:
//!
//! ```
//! use hilos_sim::{execute, FlowEngine, ResourceKind, ResourceSpec, SimTime, TaskGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut eng = FlowEngine::new();
//! let pcie = eng.add_resource(ResourceSpec::new("pcie", ResourceKind::Link, 31.5e9));
//! let gpu = eng.add_resource(ResourceSpec::new("gpu", ResourceKind::Compute, 100e12));
//!
//! let mut g = TaskGraph::new();
//! let w = g.transfer("loadw:attn", 3.6e9, vec![pcie], &[]);
//! g.compute("qkv:proj", 14.5e9, gpu, &[w]);
//! let spill = g.transfer("spill:kv", 1.0e9, vec![pcie], &[]);
//! g.set_background(spill);
//!
//! let timeline = execute(&mut eng, &g)?;
//! assert!(timeline.makespan() > SimTime::ZERO);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod executor;
mod fair;
mod oracle;
mod resource;
mod task;
mod time;
mod trace;

pub use engine::{Completion, FlowEngine, FlowEngineImpl, JobId};
pub use error::SimError;
pub use executor::{execute, TaskSpan, Timeline};
pub use resource::{ResourceId, ResourceKind, ResourceSpec, ResourceStats};
pub use task::{Task, TaskGraph, TaskId, TaskKind};
pub use time::{SimTime, PS_PER_SEC};
pub use trace::{critical_path, gantt, GanttLane};
